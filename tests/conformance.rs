//! Cross-backend conformance: the real threaded cluster (`agreement-net`)
//! and the simulator agree on benign executions of the same protocol and
//! inputs.
//!
//! The ROADMAP's multi-backend goal is that the *same* protocol state
//! machines run unchanged under the adversarial simulator and under real OS
//! scheduling. This is the first conformance guard for it: for benign runs
//! whose outcome is schedule-independent (unanimous inputs force the decided
//! value; agreement and validity must hold under any fair schedule), the
//! `net::cluster` decisions must match the sim's benign-async scenario
//! outcome for the same protocol and inputs.
//!
//! The cluster's interleaving is whatever the OS does, so only
//! schedule-independent facts are compared: termination, agreement, validity
//! and the decided value itself. Deterministic per-schedule details (message
//! counts, decision times) are meaningless across backends and stay out.

use std::time::Duration;

use agreement::model::{Bit, InputAssignment, ProtocolBuilder, SystemConfig};
use agreement::net::Cluster;
use agreement::sim::{run_async, FairAsyncAdversary, RunLimits};

/// Runs one benign execution on both backends and checks every
/// schedule-independent fact matches.
fn assert_backends_agree(
    cfg: SystemConfig,
    inputs: InputAssignment,
    builder: &dyn ProtocolBuilder,
    seed: u64,
) {
    let sim = run_async(
        cfg,
        inputs.clone(),
        builder,
        &mut FairAsyncAdversary::default(),
        seed,
        RunLimits::small(),
    );
    assert!(
        sim.all_correct_decided(),
        "sim benign-async run must terminate"
    );
    assert!(sim.is_correct(&inputs));

    let cluster = Cluster::new(cfg, inputs.clone(), seed)
        .deadline(Duration::from_secs(30))
        .run(builder);
    assert!(!cluster.timed_out, "cluster run timed out");
    assert!(cluster.all_live_decided());
    assert!(cluster.agreement_holds());
    assert!(cluster.validity_holds(&inputs));
    assert!(!cluster.conflicting_write);

    // Unanimous inputs force the decided value on every backend; both sides
    // must land on the same bit.
    let sim_value = sim.decided_value().expect("sim decided");
    let cluster_value = cluster
        .decisions
        .iter()
        .flatten()
        .next()
        .copied()
        .expect("cluster decided");
    assert_eq!(
        sim_value, cluster_value,
        "backends decided different values"
    );
    assert!(
        cluster.decisions.iter().flatten().all(|&v| v == sim_value),
        "cluster nodes disagree with the sim's decision"
    );
}

#[test]
fn ben_or_cluster_matches_sim_on_unanimous_inputs() {
    use agreement::protocols::BenOrBuilder;
    for (value, seed) in [(Bit::Zero, 7u64), (Bit::One, 21)] {
        let cfg = SystemConfig::new(5, 1).unwrap();
        let inputs = InputAssignment::unanimous(5, value);
        assert_backends_agree(cfg, inputs, &BenOrBuilder::new(), seed);
    }
}

#[test]
fn bracha_cluster_matches_sim_on_unanimous_inputs() {
    use agreement::protocols::BrachaBuilder;
    let cfg = SystemConfig::new(7, 2).unwrap();
    let inputs = InputAssignment::unanimous(7, Bit::One);
    assert_backends_agree(cfg, inputs, &BrachaBuilder::new(), 13);
}

#[test]
fn cluster_surfaces_timeout_when_quorum_is_unreachable() {
    // The sim proves non-termination analytically; the threaded cluster can
    // only report it via the wall clock. `ClusterOutcome::timed_out` is that
    // report: silencing 3 of 5 processors leaves 2 < n - t = 4 senders, so
    // Ben-Or can never assemble a quorum and the bounded blocking collector
    // must give up at the deadline with the flag raised.
    use agreement::model::ProcessorId;
    use agreement::protocols::BenOrBuilder;
    let cfg = SystemConfig::new(5, 1).unwrap();
    let inputs = InputAssignment::unanimous(5, Bit::One);
    let outcome = Cluster::new(cfg, inputs, 3)
        .silence(vec![
            ProcessorId::new(0),
            ProcessorId::new(1),
            ProcessorId::new(2),
        ])
        .deadline(Duration::from_millis(300))
        .run(&BenOrBuilder::new());
    assert!(
        outcome.timed_out,
        "unreachable quorum must surface timed_out"
    );
    assert!(!outcome.all_live_decided());
}

#[test]
fn reset_tolerant_cluster_matches_sim_on_unanimous_inputs() {
    use agreement::protocols::ResetTolerantBuilder;
    let cfg = SystemConfig::with_sixth_resilience(7).unwrap();
    let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
    let inputs = InputAssignment::unanimous(7, Bit::Zero);
    assert_backends_agree(cfg, inputs, &builder, 17);
}

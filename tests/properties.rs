//! Property-based tests over the core invariants: agreement and validity hold
//! for every seed, input assignment and adversary mix we can generate; window
//! legality and Hamming metric axioms hold for arbitrary parameters.
//!
//! The build environment is offline, so instead of proptest the cases are
//! generated from a deterministic [`ProcessorRng`] stream: every run explores
//! the same cases, and a failing case is reproducible from its printed seed.

use agreement::adversary::{RotatingResetAdversary, SplitVoteAdversary};
use agreement::analysis::{hamming_distance, talagrand_bound, ProductDistribution};
use agreement::model::{Bit, InputAssignment, ProcessorId, ProcessorRng, SystemConfig, Thresholds};
use agreement::protocols::{BenOrBuilder, ResetTolerantBuilder, RoundTally};
use agreement::sim::{run_async, run_windowed, FairAsyncAdversary, RunLimits, Window};

const CASES: u64 = 16;

fn arbitrary_inputs(rng: &mut ProcessorRng, n: usize) -> InputAssignment {
    InputAssignment::new((0..n).map(|_| rng.bit()).collect())
}

/// Agreement and validity are never violated by the reset-tolerant protocol
/// under the split-vote adversary, whatever the seed and inputs.
#[test]
fn reset_tolerant_never_violates_safety() {
    let cfg = SystemConfig::with_sixth_resilience(13).unwrap();
    let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
    for case in 0..CASES {
        let mut gen = ProcessorRng::labelled(0xA11CE, case);
        let seed = gen.range(1_000);
        let inputs = arbitrary_inputs(&mut gen, 13);
        let outcome = run_windowed(
            cfg,
            inputs.clone(),
            &builder,
            &mut SplitVoteAdversary::new(),
            seed,
            RunLimits::windows(20_000),
        );
        assert!(
            outcome.agreement_holds(),
            "case {case} seed {seed} inputs {inputs}"
        );
        assert!(
            outcome.validity_holds(&inputs),
            "case {case} seed {seed} inputs {inputs}"
        );
        assert!(
            outcome.violations.is_empty(),
            "case {case} seed {seed} inputs {inputs}"
        );
    }
}

/// The same invariants under the rotating-reset adversary.
#[test]
fn reset_storms_never_violate_safety() {
    let cfg = SystemConfig::with_sixth_resilience(7).unwrap();
    let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
    for case in 0..CASES {
        let mut gen = ProcessorRng::labelled(0xB0B, case);
        let seed = gen.range(1_000);
        let inputs = arbitrary_inputs(&mut gen, 7);
        let outcome = run_windowed(
            cfg,
            inputs.clone(),
            &builder,
            &mut RotatingResetAdversary::new(),
            seed,
            RunLimits::windows(20_000),
        );
        assert!(
            outcome.agreement_holds(),
            "case {case} seed {seed} inputs {inputs}"
        );
        assert!(
            outcome.validity_holds(&inputs),
            "case {case} seed {seed} inputs {inputs}"
        );
    }
}

/// Ben-Or under fair asynchronous scheduling is safe and live for any inputs.
#[test]
fn ben_or_fair_schedule_safety_and_liveness() {
    let cfg = SystemConfig::new(6, 2).unwrap();
    for case in 0..CASES {
        let mut gen = ProcessorRng::labelled(0xC0DE, case);
        let seed = gen.range(1_000);
        let inputs = arbitrary_inputs(&mut gen, 6);
        let outcome = run_async(
            cfg,
            inputs.clone(),
            &BenOrBuilder::new(),
            &mut FairAsyncAdversary::default(),
            seed,
            RunLimits::steps(1_000_000),
        );
        assert!(
            outcome.agreement_holds(),
            "case {case} seed {seed} inputs {inputs}"
        );
        assert!(
            outcome.validity_holds(&inputs),
            "case {case} seed {seed} inputs {inputs}"
        );
        assert!(
            outcome.all_correct_decided(),
            "case {case} seed {seed} inputs {inputs}"
        );
    }
}

/// Hamming distance satisfies the metric axioms.
#[test]
fn hamming_distance_is_a_metric() {
    for case in 0..CASES {
        let mut gen = ProcessorRng::labelled(0xD15, case);
        let vector =
            |gen: &mut ProcessorRng| -> Vec<u8> { (0..12).map(|_| gen.range(4) as u8).collect() };
        let a = vector(&mut gen);
        let b = vector(&mut gen);
        let c = vector(&mut gen);
        assert_eq!(hamming_distance(&a, &a), 0);
        assert_eq!(hamming_distance(&a, &b), hamming_distance(&b, &a));
        assert!(
            hamming_distance(&a, &c) <= hamming_distance(&a, &b) + hamming_distance(&b, &c),
            "triangle inequality failed: {a:?} {b:?} {c:?}"
        );
        assert!(hamming_distance(&a, &b) <= a.len());
    }
}

/// Every window built from legal (R, S) choices validates, and every window
/// with an oversized reset set is rejected.
#[test]
fn window_validation_matches_definition_one() {
    for case in 0..CASES {
        let mut gen = ProcessorRng::labelled(0xE44, case);
        let n = 4 + gen.range(8) as usize;
        let t_fraction = gen.range(3) as usize;
        let reset_extra = gen.range(3) as usize;
        let t = (n / 6).max(t_fraction.min(n - 1));
        let cfg = SystemConfig::new(n, t).unwrap();
        let senders: Vec<ProcessorId> = ProcessorId::all(n).skip(t).collect();
        let legal = Window::uniform(&cfg, ProcessorId::all(n).take(t).collect(), senders.clone());
        assert!(legal.validate(&cfg).is_ok(), "case {case}: n={n} t={t}");
        let oversized: Vec<ProcessorId> = ProcessorId::all(n).take(t + 1 + reset_extra).collect();
        if oversized.len() > t {
            let illegal = Window::uniform(&cfg, oversized, senders);
            assert!(illegal.validate(&cfg).is_err(), "case {case}: n={n} t={t}");
        }
    }
}

/// Tally counts never exceed the number of distinct voters and are
/// insensitive to duplicate votes.
#[test]
fn tally_counts_are_bounded_by_distinct_voters() {
    for case in 0..CASES {
        let mut gen = ProcessorRng::labelled(0xF00D, case);
        let votes: Vec<(usize, bool)> = (0..gen.range(60))
            .map(|_| (gen.range(10) as usize, gen.bit().is_one()))
            .collect();
        let mut tally = RoundTally::new();
        for (sender, value) in &votes {
            tally.record(1, 0, ProcessorId::new(*sender), Some(Bit::from(*value)));
            // A duplicate never changes the counts.
            tally.record(1, 0, ProcessorId::new(*sender), Some(Bit::from(!*value)));
        }
        let distinct: std::collections::BTreeSet<usize> = votes.iter().map(|(s, _)| *s).collect();
        assert_eq!(tally.total(1, 0), distinct.len(), "case {case}");
        assert!(
            tally.count(1, 0, Bit::Zero) + tally.count(1, 0, Bit::One) == distinct.len(),
            "case {case}"
        );
    }
}

/// The Talagrand bound is never violated by singleton sets under random
/// biased product distributions (exact computation, small n).
#[test]
fn talagrand_holds_for_singletons() {
    for case in 0..CASES {
        let mut gen = ProcessorRng::labelled(0x7A1A, case);
        let biases: Vec<f64> = (0..6)
            .map(|_| 0.05 + 0.9 * gen.range(1_000) as f64 / 1_000.0)
            .collect();
        let d = gen.range(6) as usize;
        let seed = gen.range(1_000);
        let distribution = ProductDistribution::biased_bits(&biases);
        let mut rng = ProcessorRng::from_seed(seed);
        let point = distribution.sample(&mut rng);
        let a = vec![point];
        let check = agreement::analysis::check_talagrand(&distribution, &a, d);
        assert!(
            check.lhs <= talagrand_bound(d, biases.len()) + 1e-12,
            "case {case}: biases {biases:?} d {d}"
        );
    }
}

/// Threshold validation accepts exactly the Theorem 4 region.
#[test]
fn threshold_validation_matches_theorem_4() {
    let cfg = SystemConfig::new(13, 2).unwrap();
    // Small enough to sweep exhaustively — stronger than sampling.
    for t1 in 1usize..14 {
        for t2 in 1usize..14 {
            for t3 in 1usize..14 {
                let thresholds = Thresholds::new(t1, t2, t3);
                let expected =
                    t1 <= 13 - 4 && t1 >= t2 && t2 >= t3 + 2 && 2 * t3 > 13 && 2 * t3 > t1;
                assert_eq!(
                    thresholds.is_valid_for(&cfg),
                    expected,
                    "T1={t1} T2={t2} T3={t3}"
                );
            }
        }
    }
}

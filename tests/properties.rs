//! Property-based tests (proptest) over the core invariants: agreement and
//! validity hold for every seed, input assignment and adversary mix we can
//! generate; window legality and Hamming metric axioms hold for arbitrary
//! parameters.

use agreement::adversary::{RotatingResetAdversary, SplitVoteAdversary};
use agreement::analysis::{hamming_distance, talagrand_bound, ProductDistribution};
use agreement::model::{Bit, InputAssignment, ProcessorId, ProcessorRng, SystemConfig, Thresholds};
use agreement::protocols::{BenOrBuilder, ResetTolerantBuilder, RoundTally};
use agreement::sim::{run_async, run_windowed, FairAsyncAdversary, RunLimits, Window};
use proptest::prelude::*;

fn arbitrary_inputs(n: usize) -> impl Strategy<Value = InputAssignment> {
    proptest::collection::vec(any::<bool>(), n)
        .prop_map(|bits| InputAssignment::new(bits.into_iter().map(Bit::from).collect()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Agreement and validity are never violated by the reset-tolerant
    /// protocol under the split-vote adversary, whatever the seed and inputs.
    #[test]
    fn reset_tolerant_never_violates_safety(seed in 0u64..1_000, inputs in arbitrary_inputs(13)) {
        let cfg = SystemConfig::with_sixth_resilience(13).unwrap();
        let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
        let outcome = run_windowed(
            cfg,
            inputs.clone(),
            &builder,
            &mut SplitVoteAdversary::new(),
            seed,
            RunLimits::windows(20_000),
        );
        prop_assert!(outcome.agreement_holds());
        prop_assert!(outcome.validity_holds(&inputs));
        prop_assert!(outcome.violations.is_empty());
    }

    /// The same invariants under the rotating-reset adversary.
    #[test]
    fn reset_storms_never_violate_safety(seed in 0u64..1_000, inputs in arbitrary_inputs(7)) {
        let cfg = SystemConfig::with_sixth_resilience(7).unwrap();
        let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
        let outcome = run_windowed(
            cfg,
            inputs.clone(),
            &builder,
            &mut RotatingResetAdversary::new(),
            seed,
            RunLimits::windows(20_000),
        );
        prop_assert!(outcome.agreement_holds());
        prop_assert!(outcome.validity_holds(&inputs));
    }

    /// Ben-Or under fair asynchronous scheduling is safe and live for any inputs.
    #[test]
    fn ben_or_fair_schedule_safety_and_liveness(seed in 0u64..1_000, inputs in arbitrary_inputs(6)) {
        let cfg = SystemConfig::new(6, 2).unwrap();
        let outcome = run_async(
            cfg,
            inputs.clone(),
            &BenOrBuilder::new(),
            &mut FairAsyncAdversary::default(),
            seed,
            RunLimits::steps(1_000_000),
        );
        prop_assert!(outcome.agreement_holds());
        prop_assert!(outcome.validity_holds(&inputs));
        prop_assert!(outcome.all_correct_decided());
    }

    /// Hamming distance satisfies the metric axioms.
    #[test]
    fn hamming_distance_is_a_metric(
        a in proptest::collection::vec(0u8..4, 12),
        b in proptest::collection::vec(0u8..4, 12),
        c in proptest::collection::vec(0u8..4, 12),
    ) {
        prop_assert_eq!(hamming_distance(&a, &a), 0);
        prop_assert_eq!(hamming_distance(&a, &b), hamming_distance(&b, &a));
        prop_assert!(hamming_distance(&a, &c) <= hamming_distance(&a, &b) + hamming_distance(&b, &c));
        prop_assert!(hamming_distance(&a, &b) <= a.len());
    }

    /// Every window built from legal (R, S) choices validates, and every
    /// window with an oversized reset set is rejected.
    #[test]
    fn window_validation_matches_definition_one(
        n in 4usize..12,
        t_fraction in 0usize..3,
        reset_extra in 0usize..3,
    ) {
        let t = (n / 6).max(t_fraction.min(n - 1));
        let cfg = SystemConfig::new(n, t).unwrap();
        let senders: Vec<ProcessorId> = ProcessorId::all(n).skip(t).collect();
        let legal = Window::uniform(&cfg, ProcessorId::all(n).take(t).collect(), senders.clone());
        prop_assert!(legal.validate(&cfg).is_ok());
        let oversized: Vec<ProcessorId> = ProcessorId::all(n).take(t + 1 + reset_extra).collect();
        if oversized.len() > t {
            let illegal = Window::uniform(&cfg, oversized, senders);
            prop_assert!(illegal.validate(&cfg).is_err());
        }
    }

    /// Tally counts never exceed the number of distinct voters and are
    /// insensitive to duplicate votes.
    #[test]
    fn tally_counts_are_bounded_by_distinct_voters(
        votes in proptest::collection::vec((0usize..10, any::<bool>()), 0..60)
    ) {
        let mut tally = RoundTally::new();
        for (sender, value) in &votes {
            tally.record(1, 0, ProcessorId::new(*sender), Some(Bit::from(*value)));
            // A duplicate never changes the counts.
            tally.record(1, 0, ProcessorId::new(*sender), Some(Bit::from(!*value)));
        }
        let distinct: std::collections::BTreeSet<usize> = votes.iter().map(|(s, _)| *s).collect();
        prop_assert_eq!(tally.total(1, 0), distinct.len());
        prop_assert!(tally.count(1, 0, Bit::Zero) + tally.count(1, 0, Bit::One) == distinct.len());
    }

    /// The Talagrand bound is never violated by singleton sets under random
    /// biased product distributions (exact computation, small n).
    #[test]
    fn talagrand_holds_for_singletons(
        biases in proptest::collection::vec(0.05f64..0.95, 6),
        d in 0usize..6,
        seed in 0u64..1_000,
    ) {
        let distribution = ProductDistribution::biased_bits(&biases);
        let mut rng = ProcessorRng::from_seed(seed);
        let point = distribution.sample(&mut rng);
        let a = vec![point];
        let check = agreement::analysis::check_talagrand(&distribution, &a, d);
        prop_assert!(check.lhs <= talagrand_bound(d, biases.len()) + 1e-12);
    }

    /// Threshold validation accepts exactly the Theorem 4 region.
    #[test]
    fn threshold_validation_matches_theorem_4(
        t1 in 1usize..14, t2 in 1usize..14, t3 in 1usize..14,
    ) {
        let cfg = SystemConfig::new(13, 2).unwrap();
        let thresholds = Thresholds::new(t1, t2, t3);
        let expected = t1 <= 13 - 4 && t1 >= t2 && t2 >= t3 + 2 && 2 * t3 > 13 && 2 * t3 > t1;
        prop_assert_eq!(thresholds.is_valid_for(&cfg), expected);
    }
}

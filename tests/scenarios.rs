//! Property tests for the data-driven scenario layer.
//!
//! Two guarantees are pinned here:
//!
//! 1. **Determinism** — every scenario in the registry, run at
//!    `Scale::Quick`, produces an identical [`RunOutcome`] when re-run with
//!    the same seed. Scenario data plus a seed fully determines an execution.
//! 2. **Equivalence** — the declarative experiment tables produce exactly the
//!    bytes the pre-scenario hand-rolled trial loops produced: re-running E1's
//!    workloads through the raw `TrialPlan`/`run_window_trials` path (the old
//!    implementation, inlined here) yields cell-for-cell identical rows.

use agreement::adversary::{RotatingResetAdversary, SplitVoteAdversary};
use agreement::core::experiments::{exp1_correctness, Scale};
use agreement::core::{fmt_f64, fmt_rate, run_window_trials, scenario_registry, TrialPlan};
use agreement::model::{Bit, InputAssignment, SystemConfig};
use agreement::protocols::ResetTolerantBuilder;
use agreement::sim::RunLimits;

#[test]
fn every_registered_scenario_is_deterministic_per_seed() {
    for spec in scenario_registry(Scale::Quick) {
        let seed = spec.base_seed;
        let first = spec
            .run_single(seed)
            .unwrap_or_else(|err| panic!("{} failed to run: {err}", spec.id()));
        let second = spec
            .run_single(seed)
            .unwrap_or_else(|err| panic!("{} failed to re-run: {err}", spec.id()));
        assert_eq!(
            first,
            second,
            "scenario {} must be deterministic for seed {seed}",
            spec.id()
        );
    }
}

#[test]
fn declarative_e1_matches_the_hand_rolled_trial_loops() {
    // The pre-scenario implementation of E1, inlined: explicit loops over
    // sizes, inputs and adversaries, each calling the raw campaign path.
    let scale = Scale::Quick;
    let sizes: &[usize] = &[7, 13];
    let trials = 10;
    let mut expected_rows: Vec<Vec<String>> = Vec::new();
    for &n in sizes {
        let cfg = SystemConfig::with_sixth_resilience(n).expect("n >= 1");
        let builder = ResetTolerantBuilder::recommended(&cfg).expect("t < n/6");
        for (label, inputs) in [
            ("unanimous-1", InputAssignment::unanimous(n, Bit::One)),
            ("split", InputAssignment::evenly_split(n)),
        ] {
            for adversary in ["rotating-reset", "split-vote"] {
                let plan = TrialPlan::new(cfg, inputs.clone())
                    .trials(trials)
                    .limits(RunLimits::windows(5_000));
                let aggregate = match adversary {
                    "rotating-reset" => {
                        run_window_trials(&plan, &builder, RotatingResetAdversary::new)
                    }
                    _ => run_window_trials(&plan, &builder, SplitVoteAdversary::new),
                };
                expected_rows.push(vec![
                    n.to_string(),
                    cfg.t().to_string(),
                    label.to_string(),
                    adversary.to_string(),
                    fmt_rate(aggregate.agreement_rate),
                    fmt_rate(aggregate.validity_rate),
                    fmt_rate(aggregate.termination_rate),
                    fmt_f64(aggregate.decision_time.mean),
                    fmt_f64(aggregate.resets.mean),
                ]);
            }
        }
    }

    let declarative = exp1_correctness(scale);
    assert_eq!(
        declarative.rows(),
        &expected_rows[..],
        "the declarative E1 table must be byte-identical to the hand-rolled loops"
    );
}

//! Property tests for the data-driven scenario layer and its structured
//! report pipeline.
//!
//! Four guarantees are pinned here:
//!
//! 1. **Determinism** — every scenario in the registry, run at
//!    `Scale::Quick`, produces an identical [`RunOutcome`] when re-run with
//!    the same seed. Scenario data plus a seed fully determines an execution.
//! 2. **Equivalence** — the declarative experiment tables produce exactly the
//!    bytes the pre-scenario hand-rolled trial loops produced: re-running E1's
//!    workloads through the raw `TrialPlan`/`run_window_trials` path (the old
//!    implementation, inlined here) yields cell-for-cell identical rows.
//! 3. **Machine readability** — the per-scenario JSON records the `scenarios`
//!    binary emits under `--json` round-trip through the in-tree parser, and
//!    every per-trial JSONL line parses back into its [`TrialRecord`].
//! 4. **Thread-count invariance** — record streams (and therefore every sink
//!    output derived from them) are bit-identical across campaign thread
//!    counts.

use agreement::adversary::{RotatingResetAdversary, SplitVoteAdversary};
use agreement::analysis::JsonValue;
use agreement::core::experiments::{exp1_correctness, exp1_specs, Scale};
use agreement::core::{
    fmt_f64, fmt_rate, run_window_trials, scenario_registry, Campaign, JsonReportSink, JsonlSink,
    ReportSink, TrialPlan, TrialRecord,
};
use agreement::model::{Bit, InputAssignment, SystemConfig};
use agreement::protocols::ResetTolerantBuilder;
use agreement::sim::RunLimits;

#[test]
fn every_registered_scenario_is_deterministic_per_seed() {
    for spec in scenario_registry(Scale::Quick) {
        let seed = spec.base_seed;
        let first = spec
            .run_single(seed)
            .unwrap_or_else(|err| panic!("{} failed to run: {err}", spec.id()));
        let second = spec
            .run_single(seed)
            .unwrap_or_else(|err| panic!("{} failed to re-run: {err}", spec.id()));
        assert_eq!(
            first,
            second,
            "scenario {} must be deterministic for seed {seed}",
            spec.id()
        );
    }
}

#[test]
fn declarative_e1_matches_the_hand_rolled_trial_loops() {
    // The pre-scenario implementation of E1, inlined: explicit loops over
    // sizes, inputs and adversaries, each calling the raw campaign path.
    let scale = Scale::Quick;
    let sizes: &[usize] = &[7, 13];
    let trials = 10;
    let mut expected_rows: Vec<Vec<String>> = Vec::new();
    for &n in sizes {
        let cfg = SystemConfig::with_sixth_resilience(n).expect("n >= 1");
        let builder = ResetTolerantBuilder::recommended(&cfg).expect("t < n/6");
        for (label, inputs) in [
            ("unanimous-1", InputAssignment::unanimous(n, Bit::One)),
            ("split", InputAssignment::evenly_split(n)),
        ] {
            for adversary in ["rotating-reset", "split-vote"] {
                let plan = TrialPlan::new(cfg, inputs.clone())
                    .trials(trials)
                    .limits(RunLimits::windows(5_000));
                let aggregate = match adversary {
                    "rotating-reset" => {
                        run_window_trials(&plan, &builder, RotatingResetAdversary::new)
                    }
                    _ => run_window_trials(&plan, &builder, SplitVoteAdversary::new),
                };
                expected_rows.push(vec![
                    n.to_string(),
                    cfg.t().to_string(),
                    label.to_string(),
                    adversary.to_string(),
                    fmt_rate(aggregate.agreement_rate),
                    fmt_rate(aggregate.validity_rate),
                    fmt_rate(aggregate.termination_rate),
                    fmt_f64(aggregate.decision_time.mean),
                    fmt_f64(aggregate.resets.mean),
                ]);
            }
        }
    }

    let declarative = exp1_correctness(scale);
    assert_eq!(
        declarative.rows(),
        &expected_rows[..],
        "the declarative E1 table must be byte-identical to the hand-rolled loops"
    );
}

#[test]
fn e1_json_records_round_trip_through_the_in_tree_parser() {
    // The in-process version of the CI job:
    // `scenarios --filter e1 --json out.json && scenarios --check out.json`.
    let mut sink = JsonReportSink::new();
    for spec in exp1_specs(Scale::Quick).iter().map(|s| {
        let mut s = s.clone();
        s.trials = 3;
        s
    }) {
        let mut sinks: Vec<&mut dyn ReportSink> = vec![&mut sink];
        spec.run_with_sinks(&Campaign::default(), &mut sinks)
            .unwrap_or_else(|err| panic!("{} failed: {err}", spec.id()));
    }
    let doc = sink.into_json();
    let text = doc.to_string();
    let parsed = JsonValue::parse(&text).expect("emitted scenario JSON parses");
    assert_eq!(parsed, doc, "emit → parse must not change the document");

    let scenarios = parsed
        .get("scenarios")
        .and_then(JsonValue::as_array)
        .expect("document carries a scenarios array");
    assert_eq!(scenarios.len(), exp1_specs(Scale::Quick).len());
    for entry in scenarios {
        let id = entry.get("id").and_then(JsonValue::as_str).unwrap();
        assert!(id.starts_with("e1/"), "unexpected id {id}");
        assert_eq!(entry.get("trials").and_then(JsonValue::as_u64), Some(3));
        let agreement = entry
            .get("agreement_rate")
            .and_then(JsonValue::as_f64)
            .unwrap();
        assert_eq!(agreement, 1.0, "E1 scenarios must agree: {id}");
        assert!(
            entry.get("decision_time_dist").is_some(),
            "records carry distributions"
        );
    }
}

#[test]
fn jsonl_streams_are_bit_identical_across_thread_counts() {
    let spec = {
        let mut spec = exp1_specs(Scale::Quick)
            .into_iter()
            .find(|s| s.adversary == "split-vote")
            .expect("E1 registers a split-vote workload");
        spec.trials = 8;
        spec
    };

    let emit = |campaign: &Campaign| -> String {
        let mut sink = JsonlSink::new();
        let mut sinks: Vec<&mut dyn ReportSink> = vec![&mut sink];
        spec.run_with_sinks(campaign, &mut sinks)
            .expect("spec runs");
        sink.into_string()
    };

    let serial = emit(&Campaign::serial());
    assert_eq!(serial.lines().count(), 8);
    for threads in [2usize, 3, 0] {
        let parallel = emit(&Campaign::with_threads(threads));
        assert_eq!(
            serial, parallel,
            "thread count {threads} changed the JSONL byte stream"
        );
    }

    // Every line parses back into the record it came from, in trial order.
    for (i, line) in serial.lines().enumerate() {
        let value = JsonValue::parse(line).expect("JSONL line parses");
        let record = TrialRecord::from_json(&value).expect("line is a full record");
        assert_eq!(record.trial, i as u64);
        assert_eq!(record.seed, spec.base_seed + i as u64);
    }
}

#[test]
fn scenario_reports_expose_distributions_consistent_with_the_aggregate() {
    let mut spec = exp1_specs(Scale::Quick).remove(0);
    spec.trials = 5;
    let report = spec.run().expect("spec runs");
    let aggregate = &report.aggregate;
    assert_eq!(report.decision_times.count(), 5);
    assert_eq!(report.decision_times.min(), aggregate.decision_time.min);
    assert_eq!(report.decision_times.max(), aggregate.decision_time.max);
    assert_eq!(report.decision_times.summary(), aggregate.decision_time);
    assert_eq!(report.message_counts.summary(), aggregate.messages);
    assert!(report.decision_times.percentile(50.0) <= report.decision_times.percentile(90.0));
}

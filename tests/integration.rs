//! Cross-crate integration tests: full protocol × adversary runs through the
//! public facade, checking the paper's guarantees end to end.

use agreement::adversary::{
    AdaptiveCommitteeKiller, EquivocatingAdversary, LockstepBalancingAdversary,
    NonAdaptiveCrashAdversary, RotatingResetAdversary, ScheduledCrashAdversary, SplitVoteAdversary,
    TargetedResetAdversary,
};
use agreement::analysis::{success_probability, window_bound};
use agreement::core::experiments::{exp4_zset_separation, Scale};
use agreement::model::{Bit, InputAssignment, ProcessorId, SystemConfig};
use agreement::net::Cluster;
use agreement::protocols::{BenOrBuilder, BrachaBuilder, CommitteeBuilder, ResetTolerantBuilder};
use agreement::sim::{
    run_async, run_windowed, FairAsyncAdversary, FullDeliveryAdversary, RunLimits,
};

/// Theorem 4, end to end: the reset-tolerant protocol agrees, stays valid and
/// terminates against every strongly adaptive adversary we implement.
#[test]
fn reset_tolerant_is_correct_against_every_windowed_adversary() {
    let cfg = SystemConfig::with_sixth_resilience(13).unwrap();
    let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
    for seed in 0..3u64 {
        for inputs in [
            InputAssignment::unanimous(13, Bit::Zero),
            InputAssignment::unanimous(13, Bit::One),
            InputAssignment::evenly_split(13),
            InputAssignment::split_at(13, 3),
        ] {
            let adversaries: Vec<Box<dyn agreement::sim::WindowAdversary>> = vec![
                Box::new(FullDeliveryAdversary),
                Box::new(RotatingResetAdversary::new()),
                Box::new(TargetedResetAdversary::new()),
                Box::new(SplitVoteAdversary::new()),
                Box::new(SplitVoteAdversary::with_resets()),
            ];
            for mut adversary in adversaries {
                let outcome = run_windowed(
                    cfg,
                    inputs.clone(),
                    &builder,
                    adversary.as_mut(),
                    seed,
                    RunLimits::windows(30_000),
                );
                assert!(
                    outcome.all_correct_decided(),
                    "non-termination against {} on {inputs} (seed {seed})",
                    adversary.name()
                );
                assert!(
                    outcome.is_correct(&inputs),
                    "violation against {}",
                    adversary.name()
                );
            }
        }
    }
}

/// Validity pins the decision on unanimous inputs, for every protocol.
#[test]
fn unanimous_inputs_force_the_decision_value_across_protocols() {
    for value in [Bit::Zero, Bit::One] {
        let cfg = SystemConfig::with_sixth_resilience(13).unwrap();
        let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
        let inputs = InputAssignment::unanimous(13, value);
        let outcome = run_windowed(
            cfg,
            inputs.clone(),
            &builder,
            &mut SplitVoteAdversary::new(),
            1,
            RunLimits::small(),
        );
        assert_eq!(outcome.decided_value(), Some(value));

        let cfg = SystemConfig::new(7, 2).unwrap();
        let inputs = InputAssignment::unanimous(7, value);
        let outcome = run_async(
            cfg,
            inputs.clone(),
            &BenOrBuilder::new(),
            &mut FairAsyncAdversary::default(),
            2,
            RunLimits::small(),
        );
        assert_eq!(outcome.decided_value(), Some(value));

        let outcome = run_async(
            cfg,
            inputs.clone(),
            &BrachaBuilder::new(),
            &mut FairAsyncAdversary::default(),
            3,
            RunLimits::steps(500_000),
        );
        assert_eq!(
            outcome.decided_value(),
            Some(value),
            "bracha under fair scheduling"
        );
    }
}

/// Ben-Or tolerates t crash failures (Aguilera–Toueg setting).
#[test]
fn ben_or_terminates_despite_crashes_and_byzantine_equivocation_stays_safe() {
    let cfg = SystemConfig::new(9, 4).unwrap();
    let inputs = InputAssignment::split_at(9, 2);
    let mut adversary = ScheduledCrashAdversary::new(vec![
        ProcessorId::new(0),
        ProcessorId::new(1),
        ProcessorId::new(2),
        ProcessorId::new(3),
    ]);
    let outcome = run_async(
        cfg,
        inputs.clone(),
        &BenOrBuilder::new(),
        &mut adversary,
        5,
        RunLimits::standard(),
    );
    assert!(outcome.all_correct_decided());
    assert!(outcome.is_correct(&inputs));

    // Byzantine equivocation never breaks Bracha's safety.
    let cfg = SystemConfig::new(7, 2).unwrap();
    let inputs = InputAssignment::unanimous(7, Bit::One);
    let outcome = run_async(
        cfg,
        inputs.clone(),
        &BrachaBuilder::new(),
        &mut EquivocatingAdversary::new(),
        11,
        RunLimits::steps(60_000),
    );
    assert!(outcome.agreement_holds());
    assert!(outcome.validity_holds(&inputs));
}

/// The paper's introduction, as code: adaptive adversaries defeat committees,
/// non-adaptive ones usually do not, quorum protocols survive both.
#[test]
fn committee_contrast_matches_the_papers_argument() {
    let n = 24;
    let t = 2;
    let cfg = SystemConfig::new(n, t).unwrap();
    let inputs = InputAssignment::unanimous(n, Bit::Zero);
    let committee = CommitteeBuilder::random(&cfg, 5, 7);

    let mut killer = AdaptiveCommitteeKiller::new(committee.committee().to_vec());
    let stalled = run_async(
        cfg,
        inputs.clone(),
        &committee,
        &mut killer,
        1,
        RunLimits::small(),
    );
    assert!(
        !stalled.all_correct_decided(),
        "the adaptive killer must stall the committee"
    );

    let mut successes = 0;
    for seed in 0..5 {
        let mut non_adaptive = NonAdaptiveCrashAdversary::random(n, t, seed);
        let outcome = run_async(
            cfg,
            inputs.clone(),
            &committee,
            &mut non_adaptive,
            seed,
            RunLimits::small(),
        );
        if outcome.all_correct_decided() && outcome.is_correct(&inputs) {
            successes += 1;
        }
    }
    assert!(
        successes >= 4,
        "non-adaptive crashes should rarely hit the committee ({successes}/5)"
    );

    let mut killer = AdaptiveCommitteeKiller::new(committee.committee().to_vec());
    let robust = run_async(
        cfg,
        inputs.clone(),
        &BenOrBuilder::new(),
        &mut killer,
        1,
        RunLimits::standard(),
    );
    assert!(robust.all_correct_decided());
    assert!(robust.is_correct(&inputs));
}

/// Theorem 17's scheduling strategy produces longer chains on split inputs
/// than fair scheduling, while preserving correctness.
#[test]
fn crash_model_balancing_slows_ben_or_without_breaking_it() {
    let cfg = SystemConfig::new(8, 2).unwrap();
    let inputs = InputAssignment::evenly_split(8);
    let mut balanced_chains = 0u64;
    let mut fair_chains = 0u64;
    for seed in 0..3u64 {
        let slow = run_async(
            cfg,
            inputs.clone(),
            &BenOrBuilder::new(),
            &mut LockstepBalancingAdversary::new(),
            seed,
            RunLimits::steps(2_000_000),
        );
        assert!(slow.all_correct_decided());
        assert!(slow.is_correct(&inputs));
        balanced_chains += slow.longest_chain;
        let fair = run_async(
            cfg,
            inputs.clone(),
            &BenOrBuilder::new(),
            &mut FairAsyncAdversary::default(),
            seed,
            RunLimits::steps(2_000_000),
        );
        fair_chains += fair.longest_chain;
    }
    assert!(balanced_chains >= fair_chains);
}

/// The Theorem 5 envelope is consistent: E grows with n, the success bound
/// stays at least 1/2, and the measured split-vote runs dominate it.
#[test]
fn lower_bound_envelope_is_consistent_with_measurements() {
    let c = 1.0 / 6.0;
    assert!(window_bound(200, c) > window_bound(100, c));
    for n in [13usize, 25, 61, 121, 601] {
        assert!(success_probability(n, c) >= 0.5);
    }
    let cfg = SystemConfig::with_sixth_resilience(13).unwrap();
    let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
    let inputs = InputAssignment::evenly_split(13);
    let outcome = run_windowed(
        cfg,
        inputs,
        &builder,
        &mut SplitVoteAdversary::new(),
        3,
        RunLimits::windows(30_000),
    );
    assert!(outcome.all_decided_at.unwrap() as f64 >= window_bound(13, c));
}

/// The Z-set machinery reproduces Lemma 13's separation on the abstract model
/// when invoked through the experiment harness.
#[test]
fn zset_experiment_reports_separation_beyond_t() {
    let table = exp4_zset_separation(Scale::Quick);
    for row in table.rows() {
        assert_eq!(row[6], "true", "{row:?}");
    }
}

/// The simulator and the threaded cluster agree on the decided value for
/// unanimous inputs (they run the same state machines).
#[test]
fn simulator_and_threaded_cluster_agree_on_unanimous_runs() {
    let cfg = SystemConfig::new(5, 1).unwrap();
    let inputs = InputAssignment::unanimous(5, Bit::One);
    let sim = run_async(
        cfg,
        inputs.clone(),
        &BenOrBuilder::new(),
        &mut FairAsyncAdversary::default(),
        3,
        RunLimits::small(),
    );
    let net = Cluster::new(cfg, inputs.clone(), 3).run(&BenOrBuilder::new());
    assert_eq!(sim.decided_value(), Some(Bit::One));
    assert!(net.agreement_holds());
    assert_eq!(net.decisions.iter().flatten().next(), Some(&Bit::One));
}

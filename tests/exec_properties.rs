//! Properties of the unified `ExecutionCore` and the parallel campaign
//! runner.
//!
//! The window and asynchronous engines are thin drivers over one shared core;
//! these tests pin down the guarantees the refactor relies on:
//!
//! 1. **Determinism** — for a fixed seed, `run_windowed` / `run_async`
//!    produce identical outcomes on every invocation (the refactor cannot
//!    introduce hidden state).
//! 2. **Driver equivalence** — driving the core step by step through the
//!    engines produces the same outcome as `ExecutionCore::run` with the
//!    corresponding scheduler.
//! 3. **Campaign determinism** — parallel aggregation is bit-identical to the
//!    serial path regardless of thread count.

use agreement::adversary::{RotatingResetAdversary, ScheduledCrashAdversary, SplitVoteAdversary};
use agreement::core::{Campaign, TrialPlan};
use agreement::model::{Bit, InputAssignment, ProcessorId, ProcessorRng, SystemConfig};
use agreement::protocols::{BenOrBuilder, BrachaBuilder, ResetTolerantBuilder};
use agreement::sim::{
    run_async, run_windowed, AsyncEngine, AsyncScheduler, ExecutionCore, FairAsyncAdversary,
    FullDeliveryAdversary, RunLimits, RunOutcome, WindowEngine, WindowScheduler,
};

const CASES: u64 = 12;

fn assert_outcomes_identical(a: &RunOutcome, b: &RunOutcome, context: &str) {
    assert_eq!(a.decisions, b.decisions, "{context}: decisions");
    assert_eq!(a.crashed, b.crashed, "{context}: crashed");
    assert_eq!(a.duration, b.duration, "{context}: duration");
    assert_eq!(
        a.first_decision_at, b.first_decision_at,
        "{context}: first_decision_at"
    );
    assert_eq!(
        a.all_decided_at, b.all_decided_at,
        "{context}: all_decided_at"
    );
    assert_eq!(a.violations, b.violations, "{context}: violations");
    assert_eq!(a.messages_sent, b.messages_sent, "{context}: messages_sent");
    assert_eq!(
        a.messages_delivered, b.messages_delivered,
        "{context}: messages_delivered"
    );
    assert_eq!(
        a.resets_performed, b.resets_performed,
        "{context}: resets_performed"
    );
    assert_eq!(
        a.crashes_performed, b.crashes_performed,
        "{context}: crashes_performed"
    );
    assert_eq!(a.longest_chain, b.longest_chain, "{context}: longest_chain");
    assert_eq!(
        a.halted_by_adversary, b.halted_by_adversary,
        "{context}: halted"
    );
    assert_eq!(
        a.trace.total_events(),
        b.trace.total_events(),
        "{context}: trace events"
    );
    assert_eq!(
        a.trace.stored(),
        b.trace.stored(),
        "{context}: trace contents"
    );
}

/// Re-running `run_windowed` with a fixed seed reproduces the outcome
/// bit-for-bit, across inputs and adversaries.
#[test]
fn windowed_runs_are_deterministic_for_fixed_seeds() {
    let cfg = SystemConfig::with_sixth_resilience(13).unwrap();
    let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
    for case in 0..CASES {
        let mut gen = ProcessorRng::labelled(0x5EED, case);
        let seed = gen.range(10_000);
        let inputs = InputAssignment::new((0..13).map(|_| gen.bit()).collect());
        let limits = RunLimits::windows(20_000);
        let first = run_windowed(
            cfg,
            inputs.clone(),
            &builder,
            &mut SplitVoteAdversary::new(),
            seed,
            limits,
        );
        let second = run_windowed(
            cfg,
            inputs.clone(),
            &builder,
            &mut SplitVoteAdversary::new(),
            seed,
            limits,
        );
        assert_outcomes_identical(
            &first,
            &second,
            &format!("windowed case {case} seed {seed}"),
        );
    }
}

/// Re-running `run_async` with a fixed seed reproduces the outcome
/// bit-for-bit, including crash scheduling and chain metrics.
#[test]
fn async_runs_are_deterministic_for_fixed_seeds() {
    let cfg = SystemConfig::new(7, 2).unwrap();
    for case in 0..CASES {
        let mut gen = ProcessorRng::labelled(0xAB5EED, case);
        let seed = gen.range(10_000);
        let inputs = InputAssignment::new((0..7).map(|_| gen.bit()).collect());
        let crash_list = vec![ProcessorId::new(gen.range(7) as usize)];
        let limits = RunLimits::steps(500_000);
        let first = run_async(
            cfg,
            inputs.clone(),
            &BenOrBuilder::new(),
            &mut ScheduledCrashAdversary::new(crash_list.clone()),
            seed,
            limits,
        );
        let second = run_async(
            cfg,
            inputs.clone(),
            &BenOrBuilder::new(),
            &mut ScheduledCrashAdversary::new(crash_list),
            seed,
            limits,
        );
        assert_outcomes_identical(&first, &second, &format!("async case {case} seed {seed}"));
    }
}

/// Driving the core directly with a `WindowScheduler` matches the
/// `WindowEngine` driver exactly.
#[test]
fn window_engine_and_raw_core_agree() {
    let cfg = SystemConfig::with_sixth_resilience(7).unwrap();
    let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
    for case in 0..CASES {
        let mut gen = ProcessorRng::labelled(0xCAFE, case);
        let seed = gen.range(10_000);
        let inputs = InputAssignment::new((0..7).map(|_| gen.bit()).collect());
        let limits = RunLimits::windows(20_000);

        let mut engine = WindowEngine::new(cfg, inputs.clone(), &builder, seed);
        let engine_outcome = engine.run(&mut RotatingResetAdversary::new(), limits);

        let mut core = ExecutionCore::new(cfg, inputs, &builder, seed);
        let mut adversary = RotatingResetAdversary::new();
        let mut scheduler = WindowScheduler::new(&mut adversary);
        let core_outcome = core.run(&mut scheduler, limits);

        assert_outcomes_identical(
            &engine_outcome,
            &core_outcome,
            &format!("window core case {case} seed {seed}"),
        );
    }
}

/// Driving the core directly with an `AsyncScheduler` matches the
/// `AsyncEngine` driver exactly (including the eager initial sends the
/// asynchronous model performs at construction).
#[test]
fn async_engine_and_raw_core_agree() {
    let cfg = SystemConfig::new(7, 2).unwrap();
    for case in 0..CASES {
        let mut gen = ProcessorRng::labelled(0xBEEF, case);
        let seed = gen.range(10_000);
        let inputs = InputAssignment::new((0..7).map(|_| gen.bit()).collect());
        let limits = RunLimits::steps(500_000);

        let mut engine = AsyncEngine::new(cfg, inputs.clone(), &BrachaBuilder::new(), seed);
        let engine_outcome = engine.run(&mut FairAsyncAdversary::default(), limits);

        let mut core = ExecutionCore::new(cfg, inputs, &BrachaBuilder::new(), seed);
        let mut adversary = FairAsyncAdversary::default();
        let mut scheduler = AsyncScheduler::new(&mut adversary);
        let core_outcome = core.run(&mut scheduler, limits);

        assert_outcomes_identical(
            &engine_outcome,
            &core_outcome,
            &format!("async core case {case} seed {seed}"),
        );
    }
}

/// A window execution never books crashes or async-style chains, and an
/// asynchronous execution never books resets — the shared core keeps the two
/// models' bookkeeping apart.
#[test]
fn model_specific_counters_stay_separated() {
    let cfg = SystemConfig::with_sixth_resilience(13).unwrap();
    let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
    let windowed = run_windowed(
        cfg,
        InputAssignment::evenly_split(13),
        &builder,
        &mut RotatingResetAdversary::new(),
        1,
        RunLimits::windows(5_000),
    );
    assert_eq!(windowed.crashes_performed, 0);
    assert!(windowed.resets_performed > 0);

    let cfg = SystemConfig::new(7, 2).unwrap();
    let asynchronous = run_async(
        cfg,
        InputAssignment::evenly_split(7),
        &BenOrBuilder::new(),
        &mut ScheduledCrashAdversary::new(vec![ProcessorId::new(0)]),
        1,
        RunLimits::steps(500_000),
    );
    assert_eq!(asynchronous.resets_performed, 0);
    assert_eq!(asynchronous.crashes_performed, 1);
}

/// The parallel campaign aggregates bit-identically to the serial path for
/// the same base seed, whatever the thread count — both for window and for
/// asynchronous campaigns.
#[test]
fn campaign_aggregation_is_thread_count_invariant() {
    let cfg = SystemConfig::with_sixth_resilience(13).unwrap();
    let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
    let plan = TrialPlan::new(cfg, InputAssignment::evenly_split(13))
        .trials(10)
        .base_seed(0xFEED)
        .limits(RunLimits::windows(3_000));
    let serial = Campaign::serial().run_windowed(&plan, &builder, SplitVoteAdversary::new);
    for threads in [2usize, 4, 7, 16, 0] {
        let parallel =
            Campaign::with_threads(threads).run_windowed(&plan, &builder, SplitVoteAdversary::new);
        assert_eq!(serial, parallel, "threads={threads}");
    }

    let cfg = SystemConfig::new(6, 2).unwrap();
    let plan = TrialPlan::new(cfg, InputAssignment::evenly_split(6))
        .trials(10)
        .base_seed(0xF00)
        .limits(RunLimits::steps(500_000));
    let serial = Campaign::serial().run_async(&plan, &BenOrBuilder::new(), |_| {
        FairAsyncAdversary::default()
    });
    for threads in [3usize, 8, 0] {
        let parallel =
            Campaign::with_threads(threads).run_async(&plan, &BenOrBuilder::new(), |_| {
                FairAsyncAdversary::default()
            });
        assert_eq!(serial, parallel, "threads={threads}");
    }
}

/// The benign full-delivery baseline still terminates in one window through
/// the unified core, pinning the E1 fast path.
#[test]
fn full_delivery_baseline_outcome_is_pinned() {
    let cfg = SystemConfig::with_sixth_resilience(7).unwrap();
    let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
    let inputs = InputAssignment::unanimous(7, Bit::One);
    let outcome = run_windowed(
        cfg,
        inputs.clone(),
        &builder,
        &mut FullDeliveryAdversary,
        42,
        RunLimits::small(),
    );
    assert!(outcome.is_correct(&inputs));
    assert_eq!(outcome.decided_value(), Some(Bit::One));
    assert!(outcome.all_decided_at.is_some());
}

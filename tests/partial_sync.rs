//! Properties of the partial-synchrony execution model.
//!
//! Three guarantees are pinned here:
//!
//! 1. **The bounded-delay invariant** — the scheduler *enforces* eventual
//!    synchrony: once the adversary's GST has passed, no pending message
//!    (from a non-omitted sender, to a non-crashed recipient) is ever older
//!    than the declared bound Δ. This is checked after *every* step of
//!    step-wise executions driven by a worst-case stonewalling adversary, so
//!    the delivery guarantee demonstrably comes from the scheduler, not from
//!    adversary goodwill.
//! 2. **Thread-count invariance** — partial-sync scenario reports and record
//!    streams are bit-identical across campaign thread counts, exactly like
//!    the two older models.
//! 3. **Trace-gating transparency** — `NoTrace` workspace runs of the
//!    partial-sync model equal `FullTrace` fresh runs in every field but the
//!    trace.

use agreement::core::experiments::Scale;
use agreement::core::{partial_sync_scenarios, Campaign};
use agreement::model::{Bit, InputAssignment, ProcessorId, SystemConfig, Trace};
use agreement::protocols::{BenOrBuilder, BrachaBuilder};
use agreement::sim::{
    run_partial_sync, PartialSyncAction, PartialSyncAdversary, PartialSyncEngine, RunLimits,
    RunOutcome, SystemView, TrialWorkspace,
};

/// A worst-case adversary for delivery bounds: it never delivers anything by
/// choice, crashes one optional victim early, and stalls forever after.
struct Stonewall {
    gst: u64,
    delta: u64,
    omitted: Vec<ProcessorId>,
    crash_victim: Option<ProcessorId>,
    step: u64,
}

impl PartialSyncAdversary for Stonewall {
    fn name(&self) -> &'static str {
        "stonewall"
    }
    fn gst(&self) -> u64 {
        self.gst
    }
    fn delta(&self) -> u64 {
        self.delta
    }
    fn omitted_senders(&self) -> &[ProcessorId] {
        &self.omitted
    }
    fn next_action(&mut self, _view: &SystemView<'_>) -> PartialSyncAction {
        self.step += 1;
        if self.step == 5 {
            if let Some(victim) = self.crash_victim {
                return PartialSyncAction::Crash(victim);
            }
        }
        PartialSyncAction::Stall
    }
}

/// Asserts the bounded-delay invariant on an engine's current state: no
/// pending message between correct processors (and non-omitted senders) has
/// outlived its deadline `max(sent_at, gst) + delta`.
fn assert_no_overdue(
    engine: &PartialSyncEngine,
    gst: u64,
    delta: u64,
    omitted: &[ProcessorId],
    t: usize,
) {
    let now = engine.time();
    if now < gst {
        return;
    }
    let n = engine.config().n();
    for from in ProcessorId::all(n) {
        if omitted.iter().take(t).any(|&s| s == from) {
            continue;
        }
        for to in ProcessorId::all(n) {
            if engine.core().is_crashed(to) {
                continue;
            }
            if let Some(sent) = engine.core().buffer().head_sent_at(from, to) {
                let deadline = sent.max(gst) + delta;
                assert!(
                    deadline >= now,
                    "pending message {from}->{to} sent at {sent} is overdue at \
                     step {now} (gst {gst}, delta {delta})"
                );
            }
        }
    }
}

/// Every post-GST pending message is delivered within Δ steps, whatever the
/// adversary does — checked after every step, across seeds, protocols, GSTs
/// and Δs, with and without omission faults and crashes.
#[test]
fn bounded_delay_invariant_holds_after_every_step() {
    let cases: &[(u64, u64, Vec<ProcessorId>, Option<ProcessorId>)] = &[
        (0, 1, vec![], None),
        (17, 4, vec![], None),
        (40, 3, vec![ProcessorId::new(2)], None),
        (10, 8, vec![], Some(ProcessorId::new(3))),
        (25, 2, vec![ProcessorId::new(0)], None),
        // Omission + crash together: the shared fault budget (t = 1) is
        // already spent on the omission, so the crash must be refused and
        // the run must still decide from n - t live voices.
        (25, 2, vec![ProcessorId::new(0)], Some(ProcessorId::new(4))),
    ];
    for seed in 0..4u64 {
        for (gst, delta, omitted, crash_victim) in cases {
            let cfg = SystemConfig::new(5, 1).unwrap();
            let inputs = InputAssignment::evenly_split(5);
            let mut engine = PartialSyncEngine::new(cfg, inputs, &BenOrBuilder::new(), seed);
            let mut adversary = Stonewall {
                gst: *gst,
                delta: *delta,
                omitted: omitted.clone(),
                crash_victim: *crash_victim,
                step: 0,
            };
            for _ in 0..2_000 {
                if engine.all_correct_decided() || !engine.step(&mut adversary) {
                    break;
                }
                assert_no_overdue(&engine, *gst, *delta, omitted, cfg.t());
            }
            // The run cannot be stalled forever: the model's enforcement
            // alone drives the quorum protocol to a decision.
            assert!(
                engine.all_correct_decided(),
                "gst {gst}, delta {delta}: stonewalled run never decided"
            );
        }
    }
}

/// Omissions and crashes draw from one fault budget: with the budget spent
/// on omissions, crash actions are refused (and only logged), so at most
/// `t` voices are ever silenced and `n - t` quorums stay reachable.
#[test]
fn omission_and_crash_share_one_fault_budget() {
    let cfg = SystemConfig::new(5, 1).unwrap();
    let inputs = InputAssignment::unanimous(5, Bit::One);
    let mut engine = PartialSyncEngine::new(cfg, inputs.clone(), &BenOrBuilder::new(), 3);
    let mut adversary = Stonewall {
        gst: 0,
        delta: 4,
        omitted: vec![ProcessorId::new(0)],
        crash_victim: Some(ProcessorId::new(4)),
        step: 0,
    };
    while !engine.all_correct_decided() && engine.steps_elapsed() < 2_000 {
        if !engine.step(&mut adversary) {
            break;
        }
    }
    let outcome = engine.outcome();
    assert_eq!(
        outcome.crashes_performed, 0,
        "the crash beyond the shared budget must be refused"
    );
    assert!(
        outcome.crashed.iter().all(|&c| !c),
        "no processor may actually crash once omissions spent the budget"
    );
    assert!(outcome.all_correct_decided());
    assert!(outcome.is_correct(&inputs));
}

/// The same invariant under Bracha (broadcast-heavy, shared arena payloads)
/// to cover the shared-payload delivery path.
#[test]
fn bounded_delay_invariant_holds_for_bracha() {
    let cfg = SystemConfig::new(7, 2).unwrap();
    let inputs = InputAssignment::unanimous(7, Bit::One);
    let mut engine = PartialSyncEngine::new(cfg, inputs, &BrachaBuilder::new(), 11);
    let (gst, delta) = (23, 5);
    let mut adversary = Stonewall {
        gst,
        delta,
        omitted: vec![],
        crash_victim: None,
        step: 0,
    };
    for _ in 0..2_000 {
        if engine.all_correct_decided() || !engine.step(&mut adversary) {
            break;
        }
        assert_no_overdue(&engine, gst, delta, &[], cfg.t());
    }
    assert!(engine.all_correct_decided());
}

/// Partial-sync scenario reports (aggregate, distributions, meta) are
/// bit-identical across campaign thread counts, including serial.
#[test]
fn partial_sync_reports_are_identical_across_thread_counts() {
    let specs = partial_sync_scenarios(Scale::Quick);
    assert!(specs.len() >= 6, "the partial-sync family must stay rich");
    let spec = specs
        .iter()
        .find(|s| s.adversary == "gst-procrastinator" && s.protocol.label() == "ben-or")
        .expect("registry carries ben-or under the procrastinator");
    let serial = spec.run_on(&Campaign::serial()).unwrap();
    assert_eq!(serial.meta.model, "partial-sync");
    assert_eq!(serial.aggregate.termination_rate, 1.0);
    assert_eq!(serial.aggregate.agreement_rate, 1.0);
    for threads in [2usize, 3, 0] {
        let parallel = spec.run_on(&Campaign::with_threads(threads)).unwrap();
        assert_eq!(
            serial, parallel,
            "thread count {threads} changed a partial-sync report"
        );
    }
}

/// `NoTrace` workspace runs of the partial-sync model are bit-identical to
/// fresh `FullTrace` runs in every field but the trace.
#[test]
fn partial_sync_no_trace_runs_match_full_trace_runs() {
    fn strip_trace(mut outcome: RunOutcome) -> RunOutcome {
        outcome.trace = Trace::new();
        outcome
    }
    let cfg = SystemConfig::new(7, 1).unwrap();
    let inputs = InputAssignment::evenly_split(7);
    let mut workspace = TrialWorkspace::new();
    for seed in 0..6u64 {
        let mut fresh_adversary = agreement::adversary::GstProcrastinatorAdversary::new(32, 3);
        let fresh = run_partial_sync(
            cfg,
            inputs.clone(),
            &BenOrBuilder::new(),
            &mut fresh_adversary,
            seed,
            RunLimits::small(),
        );
        assert!(
            fresh.trace.total_events() > 0,
            "the diagnostic path keeps its trace"
        );
        let mut reused_adversary = agreement::adversary::GstProcrastinatorAdversary::new(32, 3);
        let reused = workspace.run_partial_sync(
            cfg,
            &inputs,
            &BenOrBuilder::new(),
            &mut reused_adversary,
            seed,
            RunLimits::small(),
        );
        assert_eq!(
            reused.trace.total_events(),
            0,
            "workspace runs are trace-free"
        );
        assert_eq!(reused, strip_trace(fresh), "seed {seed}");
    }
}

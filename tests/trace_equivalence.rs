//! Equivalence of the trace-free campaign hot path and the trace-keeping
//! diagnostic path.
//!
//! The campaign workers run `NoTrace` executions inside reused
//! `TrialWorkspace`s; single-run entry points (`run_windowed` / `run_async`)
//! keep `FullTrace`. These tests pin the claim that makes the optimisation
//! safe: the two paths are **bit-identical** in everything except the trace
//! itself —
//!
//! 1. per-outcome: every decision, counter and metric of a `NoTrace`
//!    workspace run equals the `FullTrace` fresh-engine run, for both
//!    schedulers, across seeds and adversaries;
//! 2. per-record: campaign `TrialRecord` streams equal records distilled
//!    from fresh trace-keeping runs, across thread counts (fresh-per-trial
//!    vs reused-workspace determinism);
//! 3. per-aggregate: the E1-shaped aggregate derived from the two streams is
//!    identical.

use agreement::adversary::{RotatingResetAdversary, ScheduledCrashAdversary, SplitVoteAdversary};
use agreement::core::{Aggregate, Campaign, TrialPlan, TrialRecord};
use agreement::model::{InputAssignment, ProcessorId, ProcessorRng, SystemConfig, Trace};
use agreement::protocols::{BenOrBuilder, BrachaBuilder, ResetTolerantBuilder};
use agreement::sim::{
    run_async, run_windowed, FairAsyncAdversary, RunLimits, RunOutcome, TrialWorkspace,
};

const CASES: u64 = 8;

/// The trace is the one field the trace-free path legitimately lacks.
fn strip_trace(mut outcome: RunOutcome) -> RunOutcome {
    outcome.trace = Trace::new();
    outcome
}

/// `NoTrace` workspace runs equal `FullTrace` fresh runs in every field but
/// the trace — windowed model, resetting and benign-ish adversaries, with the
/// workspace deliberately reused across all cases.
#[test]
fn windowed_no_trace_runs_match_full_trace_runs() {
    let cfg = SystemConfig::with_sixth_resilience(13).unwrap();
    let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
    let limits = RunLimits::windows(5_000);
    let mut workspace = TrialWorkspace::new();
    for case in 0..CASES {
        let mut gen = ProcessorRng::labelled(0x7AC3, case);
        let seed = gen.range(100_000);
        let inputs = InputAssignment::new((0..13).map(|_| gen.bit()).collect());

        let traced = run_windowed(
            cfg,
            inputs.clone(),
            &builder,
            &mut SplitVoteAdversary::new(),
            seed,
            limits,
        );
        assert!(
            traced.trace.total_events() > 0,
            "the diagnostic path keeps its trace"
        );
        let trace_free = workspace.run_windowed(
            cfg,
            &inputs,
            &builder,
            &mut SplitVoteAdversary::new(),
            seed,
            limits,
        );
        assert_eq!(trace_free.trace.total_events(), 0);
        assert_eq!(
            trace_free,
            strip_trace(traced),
            "split-vote case {case} seed {seed}"
        );

        let traced = run_windowed(
            cfg,
            inputs.clone(),
            &builder,
            &mut RotatingResetAdversary::new(),
            seed,
            limits,
        );
        let trace_free = workspace.run_windowed(
            cfg,
            &inputs,
            &builder,
            &mut RotatingResetAdversary::new(),
            seed,
            limits,
        );
        assert_eq!(
            trace_free,
            strip_trace(traced),
            "rotating-reset case {case} seed {seed}"
        );
    }
}

/// Same equivalence for the asynchronous scheduler, including crash
/// scheduling (which exercises `drop_to` on the shared payload arena) and
/// Bracha's reliable-broadcast traffic (boxed `Rbc` payloads).
#[test]
fn async_no_trace_runs_match_full_trace_runs() {
    let cfg = SystemConfig::new(7, 2).unwrap();
    let limits = RunLimits::steps(500_000);
    let mut workspace = TrialWorkspace::new();
    for case in 0..CASES {
        let mut gen = ProcessorRng::labelled(0xA57AC3, case);
        let seed = gen.range(100_000);
        let inputs = InputAssignment::new((0..7).map(|_| gen.bit()).collect());
        let crash_list = vec![ProcessorId::new(gen.range(7) as usize)];

        let traced = run_async(
            cfg,
            inputs.clone(),
            &BenOrBuilder::new(),
            &mut ScheduledCrashAdversary::new(crash_list.clone()),
            seed,
            limits,
        );
        let trace_free = workspace.run_async(
            cfg,
            &inputs,
            &BenOrBuilder::new(),
            &mut ScheduledCrashAdversary::new(crash_list),
            seed,
            limits,
        );
        assert_eq!(
            trace_free,
            strip_trace(traced),
            "ben-or crash case {case} seed {seed}"
        );

        let traced = run_async(
            cfg,
            inputs.clone(),
            &BrachaBuilder::new(),
            &mut FairAsyncAdversary::default(),
            seed,
            limits,
        );
        let trace_free = workspace.run_async(
            cfg,
            &inputs,
            &BrachaBuilder::new(),
            &mut FairAsyncAdversary::default(),
            seed,
            limits,
        );
        assert_eq!(
            trace_free,
            strip_trace(traced),
            "bracha fair case {case} seed {seed}"
        );
    }
}

/// Campaign record streams (reused `NoTrace` workspaces, any thread count)
/// equal records distilled from fresh trace-keeping engines, one per trial —
/// and so do the aggregates derived from them. This is the E1 shape.
#[test]
fn campaign_records_match_fresh_full_trace_records_across_thread_counts() {
    let cfg = SystemConfig::with_sixth_resilience(13).unwrap();
    let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
    let plan = TrialPlan::new(cfg, InputAssignment::evenly_split(13))
        .trials(9)
        .limits(RunLimits::windows(2_000));

    // Fresh-per-trial reference: a brand-new FullTrace engine per seed.
    let reference: Vec<TrialRecord> = (0..plan.trials)
        .map(|trial| {
            let seed = plan.base_seed + trial;
            let outcome = run_windowed(
                plan.cfg,
                plan.inputs.clone(),
                &builder,
                &mut SplitVoteAdversary::new(),
                seed,
                plan.limits,
            );
            TrialRecord::from_outcome(trial, seed, &outcome, &plan.inputs)
        })
        .collect();

    for threads in [1usize, 2, 3, 8, 0] {
        let campaign =
            Campaign::with_threads(threads)
                .run_windowed_records(&plan, &builder, |_| SplitVoteAdversary::new());
        assert_eq!(
            campaign, reference,
            "thread count {threads}: workspace reuse changed a record"
        );
    }

    let campaign =
        Campaign::parallel().run_windowed_records(&plan, &builder, |_| SplitVoteAdversary::new());
    assert_eq!(
        Aggregate::from_records(&campaign, plan.limits.max_windows),
        Aggregate::from_records(&reference, plan.limits.max_windows),
        "derived aggregates must be identical"
    );
}

/// The async campaign path is pinned the same way.
#[test]
fn async_campaign_records_match_fresh_full_trace_records() {
    let cfg = SystemConfig::new(5, 1).unwrap();
    let plan = TrialPlan::new(cfg, InputAssignment::evenly_split(5))
        .trials(8)
        .limits(RunLimits::small())
        .base_seed(0xFA1);

    let reference: Vec<TrialRecord> = (0..plan.trials)
        .map(|trial| {
            let seed = plan.base_seed + trial;
            let outcome = run_async(
                plan.cfg,
                plan.inputs.clone(),
                &BenOrBuilder::new(),
                &mut FairAsyncAdversary::default(),
                seed,
                plan.limits,
            );
            TrialRecord::from_outcome(trial, seed, &outcome, &plan.inputs)
        })
        .collect();

    for threads in [1usize, 4, 0] {
        let campaign =
            Campaign::with_threads(threads).run_async_records(&plan, &BenOrBuilder::new(), |_| {
                FairAsyncAdversary::default()
            });
        assert_eq!(campaign, reference, "thread count {threads}");
    }
    assert_eq!(
        Aggregate::from_records(&reference, plan.limits.max_steps),
        Campaign::serial().run_async(&plan, &BenOrBuilder::new(), |_| {
            FairAsyncAdversary::default()
        }),
    );
}

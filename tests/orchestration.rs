//! Multi-process orchestration equivalence: the coordinator's slot-ordered
//! merge of worker-streamed records must be **byte-identical** to a
//! single-process campaign — across worker counts, across a worker killed
//! mid-range, and across a checkpoint-resumed coordinator.
//!
//! This is the process-boundary extension of the thread-count and
//! buffer-layout equivalence suites: trial `t` of a spec is fully determined
//! by `base_seed + t`, so *where* it runs (which thread, which process,
//! before or after a crash) must never show in the rendered reports.

use std::time::Duration;

use agreement::core::experiments::Scale;
use agreement::core::orchestrate::{
    append_checkpoint, read_checkpoint, CheckpointEntry, FaultPlan, OrchestrateError,
    OrchestrationEvent, Orchestrator, Session,
};
use agreement::core::{
    scenario_registry, stream_records, Campaign, JsonReportSink, JsonlSink, ReportSink,
    ScenarioSpec,
};

fn worker_command() -> Vec<String> {
    vec![env!("CARGO_BIN_EXE_orchestrate_worker").to_string()]
}

fn start_session(workers: usize) -> Session {
    Orchestrator::new(Scale::Quick, worker_command())
        .workers(workers)
        .start()
        .expect("spawn orchestration workers")
}

/// The full legacy registry plus the n = 100 `subquad/` slice, with trials
/// and limits cut down so the sweep stays test-sized. Cutting limits is
/// safe: coordinator and single-process run under the same caps (the run
/// frame carries them), and the equality below is on complete documents.
fn equivalence_specs() -> Vec<ScenarioSpec> {
    let specs: Vec<ScenarioSpec> = scenario_registry(Scale::Quick)
        .into_iter()
        .filter(|spec| !spec.id().contains("subquad/") || spec.id().contains("/n100t"))
        .map(|mut spec| {
            spec.trials = 2;
            spec.limits.max_windows = spec.limits.max_windows.min(300);
            spec.limits.max_steps = spec.limits.max_steps.min(50_000);
            spec
        })
        .collect();
    assert!(specs.len() >= 40, "registry unexpectedly small");
    specs
}

/// Renders specs single-process through the machine-readable sinks.
fn render_local(specs: &[ScenarioSpec]) -> (String, String) {
    let campaign = Campaign::parallel();
    let mut json = JsonReportSink::with_scale("quick");
    let mut jsonl = JsonlSink::new();
    for spec in specs {
        let mut sinks: Vec<&mut dyn ReportSink> = vec![&mut json, &mut jsonl];
        spec.run_with_sinks(&campaign, &mut sinks)
            .unwrap_or_else(|err| panic!("{} failed locally: {err}", spec.id()));
    }
    (json.into_json().to_string(), jsonl.as_str().to_string())
}

/// Renders specs through a live worker pool and the slot-ordered merge.
fn render_orchestrated(specs: &[ScenarioSpec], session: &mut Session) -> (String, String) {
    let mut json = JsonReportSink::with_scale("quick");
    let mut jsonl = JsonlSink::new();
    for spec in specs {
        let records = session
            .run_spec_records(spec)
            .unwrap_or_else(|err| panic!("{} failed orchestrated: {err}", spec.id()));
        let meta = spec.meta().expect("feasible spec has metadata");
        let mut sinks: Vec<&mut dyn ReportSink> = vec![&mut json, &mut jsonl];
        stream_records(&meta, &records, &mut sinks);
    }
    (json.into_json().to_string(), jsonl.as_str().to_string())
}

#[test]
fn merged_registry_reports_are_byte_identical_across_worker_counts() {
    let specs = equivalence_specs();
    let (local_json, local_jsonl) = render_local(&specs);
    for workers in [1usize, 2, 4] {
        let mut session = start_session(workers);
        let (json, jsonl) = render_orchestrated(&specs, &mut session);
        session.shutdown().expect("worker shutdown");
        assert_eq!(
            local_json, json,
            "JSON report diverges at {workers} worker(s)"
        );
        assert_eq!(
            local_jsonl, jsonl,
            "per-trial JSONL diverges at {workers} worker(s)"
        );
    }
}

#[test]
fn batch_size_and_compression_never_show_in_the_merged_reports() {
    // The record wire has three shapes — legacy per-trial JSON frames
    // (batch 0), degenerate one-record blocks (batch 1), and full columnar
    // blocks with or without LZ compression — and none of them may leave a
    // trace in the rendered output. `batch 0` doubles as the
    // backward-compatibility check: the coordinator sends v1 run frames and
    // consumes the v1 record stream.
    let specs = equivalence_specs();
    let (local_json, local_jsonl) = render_local(&specs);
    for (batch, compress) in [(0u64, false), (1, false), (7, true), (256, true)] {
        let mut session = Orchestrator::new(Scale::Quick, worker_command())
            .workers(2)
            .batch_records(batch)
            .compress(compress)
            .start()
            .expect("spawn orchestration workers");
        let (json, jsonl) = render_orchestrated(&specs, &mut session);
        session.shutdown().expect("worker shutdown");
        assert_eq!(
            local_json, json,
            "JSON report diverges at batch {batch} compress {compress}"
        );
        assert_eq!(
            local_jsonl, jsonl,
            "per-trial JSONL diverges at batch {batch} compress {compress}"
        );
    }
}

/// Picks one mid-sized windowed spec and gives it enough trials that the
/// dispatch loop has several ranges to hand out.
fn fault_spec() -> ScenarioSpec {
    let mut spec = scenario_registry(Scale::Quick)
        .into_iter()
        .find(|spec| spec.id().starts_with("e2/") && spec.id().contains("n13"))
        .expect("e2 n13 scenario registered");
    spec.trials = 8;
    spec.limits.max_windows = spec.limits.max_windows.min(300);
    spec
}

/// A spec whose trials are individually slow (sampled-committee agreement at
/// n = 1000, ~milliseconds each), so a `kill -9` issued the instant a range
/// is assigned reliably lands while the worker is still inside it.
fn slow_spec() -> ScenarioSpec {
    let mut spec = scenario_registry(Scale::Quick)
        .into_iter()
        .find(|spec| {
            spec.id()
                .starts_with("subquad/sampled-committee20/fair-round-robin")
        })
        .expect("subquad n1000 scenario registered");
    spec.trials = 8;
    spec
}

#[test]
fn killing_a_worker_mid_range_still_merges_byte_identically() {
    let spec = slow_spec();
    let campaign = Campaign::parallel();
    let expected = spec
        .run_range_records(&campaign, 0, spec.trials)
        .expect("local run");

    // Respawn is pinned off so the loss count below is exact; respawn itself
    // is covered by `a_killed_worker_is_respawned_and_the_pool_recovers`.
    let mut session = Orchestrator::new(Scale::Quick, worker_command())
        .workers(2)
        .chunk(4)
        .respawn_budget(0)
        .start()
        .expect("spawn orchestration workers");
    let mut victim = session.take_worker_process(1);
    let mut killed = false;
    let mut lost = 0usize;
    let records = session
        .run_spec_records_with(&spec, |event| {
            // Kill worker 1 the moment it receives its first range: SIGKILL
            // lands in microseconds, milliseconds before the worker could
            // finish the range, so the coordinator must discard the partial
            // range and re-run it on the survivor without any trace in the
            // merged stream.
            if let OrchestrationEvent::RangeAssigned { worker: 1, .. } = event {
                if !killed {
                    killed = true;
                    victim.kill().expect("kill worker 1");
                }
            }
            if matches!(event, OrchestrationEvent::WorkerLost { .. }) {
                lost += 1;
            }
        })
        .expect("orchestrated run survives a killed worker");
    session.shutdown().expect("worker shutdown");
    victim.wait().expect("reap killed worker");

    assert!(killed, "worker 1 was never assigned a range");
    assert_eq!(lost, 1, "exactly the killed worker must be reported lost");
    assert_eq!(records, expected, "merge diverges after a worker kill");
}

#[test]
fn a_killed_worker_is_respawned_and_the_pool_recovers() {
    let spec = slow_spec();
    let campaign = Campaign::parallel();
    let expected = spec
        .run_range_records(&campaign, 0, spec.trials)
        .expect("local run");

    let mut session = Orchestrator::new(Scale::Quick, worker_command())
        .workers(2)
        .chunk(1)
        .respawn_budget(2)
        .start()
        .expect("spawn orchestration workers");
    let mut victim = session.take_worker_process(1);
    let mut killed = false;
    let mut lost = 0usize;
    let mut respawned = Vec::new();
    let mut observe =
        |event: OrchestrationEvent, killed: &mut bool, victim: &mut std::process::Child| {
            if let OrchestrationEvent::RangeAssigned { worker: 1, .. } = event {
                if !*killed {
                    *killed = true;
                    victim.kill().expect("kill worker 1");
                }
            }
            match event {
                OrchestrationEvent::WorkerLost { .. } => lost += 1,
                OrchestrationEvent::WorkerRespawned { worker } => respawned.push(worker),
                _ => {}
            }
        };
    let records = session
        .run_spec_records_with(&spec, |event| observe(event, &mut killed, &mut victim))
        .expect("orchestrated run survives a killed worker");
    // The respawn backoff is tens of milliseconds; if the first run drained
    // faster than that, the pending respawn fires at the top of the next
    // dispatch loop. Either way, by the end of this second run the pool must
    // be back at full strength and the output still byte-identical.
    let again = session
        .run_spec_records_with(&spec, |event| observe(event, &mut killed, &mut victim))
        .expect("second run on the recovered pool");
    assert!(killed, "worker 1 was never assigned a range");
    assert_eq!(lost, 1, "exactly the killed worker must be reported lost");
    assert_eq!(
        respawned.len(),
        1,
        "the killed worker must be respawned once"
    );
    assert_eq!(session.live_workers(), 2, "pool must be back at strength");
    assert_eq!(records, expected, "merge diverges across a respawn");
    assert_eq!(again, expected, "recovered pool diverges");
    session.shutdown().expect("worker shutdown");
    victim.wait().expect("reap killed worker");
}

#[test]
fn a_stalled_worker_is_speculatively_re_dispatched() {
    let spec = slow_spec();
    let campaign = Campaign::parallel();
    let expected = spec
        .run_range_records(&campaign, 0, spec.trials)
        .expect("local run");

    // Two chunks of four trials: worker 0 takes (0,4), worker 1 takes (4,8)
    // and is immediately SIGSTOPped — alive at the TCP level but silent, the
    // failure mode a plain hangup detector cannot see. After one receive
    // timeout the coordinator must re-dispatch (4,8) speculatively on the
    // idle survivor and finish without waiting for the 2× hard drop.
    let mut session = Orchestrator::new(Scale::Quick, worker_command())
        .workers(2)
        .chunk(4)
        .recv_timeout(Duration::from_secs(2))
        .respawn_budget(0)
        .start()
        .expect("spawn orchestration workers");
    let mut victim = session.take_worker_process(1);
    let pid = victim.id().to_string();
    let mut stopped = false;
    let mut speculated = Vec::new();
    let records = session
        .run_spec_records_with(&spec, |event| match event {
            OrchestrationEvent::RangeAssigned { worker: 1, .. } if !stopped => {
                stopped = true;
                let status = std::process::Command::new("kill")
                    .args(["-STOP", &pid])
                    .status()
                    .expect("run kill -STOP");
                assert!(status.success(), "SIGSTOP worker 1");
            }
            OrchestrationEvent::RangeSpeculated { lo, hi, .. } => speculated.push((lo, hi)),
            _ => {}
        })
        .expect("orchestrated run routes around the stalled worker");
    assert!(stopped, "worker 1 was never assigned a range");
    assert_eq!(
        speculated,
        vec![(4, 8)],
        "the stalled range must be re-dispatched exactly once"
    );
    assert_eq!(records, expected, "merge diverges across speculation");
    // Resume the stalled worker so it notices its closed socket and exits,
    // then shut the survivor down.
    let status = std::process::Command::new("kill")
        .args(["-CONT", &pid])
        .status()
        .expect("run kill -CONT");
    assert!(status.success(), "SIGCONT worker 1");
    session.shutdown().expect("worker shutdown");
    victim.wait().expect("reap stalled worker");
}

#[test]
fn duplicated_worker_frames_merge_byte_identically() {
    let spec = fault_spec();
    let campaign = Campaign::parallel();
    let expected = spec
        .run_range_records(&campaign, 0, spec.trials)
        .expect("local run");

    // Duplicate 90% of worker frames (records and range_done alike; the
    // hello is protected by the default grace frame). The coordinator's
    // expected-trial cursor and completed-range set must swallow every
    // replay without a trace in the merged stream.
    let mut plan = FaultPlan::new(0xD0D0);
    plan.duplicate = 0.9;
    let mut session = Orchestrator::new(Scale::Quick, worker_command())
        .workers(2)
        .chunk(2)
        .worker_faults(plan)
        .respawn_budget(0)
        .start()
        .expect("spawn orchestration workers");
    let records = session
        .run_spec_records(&spec)
        .expect("duplicated frames must be idempotent");
    session.shutdown().expect("worker shutdown");
    assert_eq!(records, expected, "merge diverges under duplicated frames");
}

#[test]
fn worker_error_frames_exhaust_the_pool_without_hanging_shutdown() {
    // A spec whose id resolves locally but not in the workers' registry:
    // every worker answers its run frame with an in-protocol error frame and
    // is dropped with its TCP connection still established — the loss path
    // that used to leave forwarder threads (and worker processes) blocked on
    // open sockets, deadlocking shutdown. Losing a worker now closes its
    // connection, so the run reports exhaustion and shutdown returns.
    let mut spec = fault_spec();
    spec.tag = "no-such-tag".to_string();

    // With the default respawn budget the coordinator would replace the
    // erroring workers (which then error again); pin it to zero so the pool
    // drains exactly once.
    let mut session = Orchestrator::new(Scale::Quick, worker_command())
        .workers(2)
        .respawn_budget(0)
        .start()
        .expect("spawn orchestration workers");
    let mut lost = 0usize;
    let err = session
        .run_spec_records_with(&spec, |event| {
            if matches!(event, OrchestrationEvent::WorkerLost { .. }) {
                lost += 1;
            }
        })
        .expect_err("an id unknown to the workers must exhaust the pool");
    assert!(
        matches!(err, OrchestrateError::WorkersExhausted(_)),
        "expected WorkersExhausted, got: {err}"
    );
    assert_eq!(lost, 2, "both workers must be reported lost");
    assert_eq!(session.live_workers(), 0);
    session
        .shutdown()
        .expect("shutdown after losing every worker");
}

#[test]
fn checkpoint_resume_skips_completed_ranges_and_merges_identically() {
    let spec = fault_spec();
    let campaign = Campaign::parallel();
    let expected = spec
        .run_range_records(&campaign, 0, spec.trials)
        .expect("local run");

    // Simulate a coordinator that died after persisting two ranges.
    let path = std::env::temp_dir().join(format!(
        "agreement-orchestration-resume-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    for (lo, hi) in [(0u64, 3u64), (5, 7)] {
        append_checkpoint(
            &path,
            &CheckpointEntry {
                scenario: spec.id(),
                base_seed: spec.base_seed,
                trials: spec.trials,
                lo,
                hi,
                records: expected[lo as usize..hi as usize].to_vec(),
            },
        )
        .expect("seed checkpoint");
    }

    let mut session = Orchestrator::new(Scale::Quick, worker_command())
        .workers(2)
        .checkpoint(&path)
        .start()
        .expect("spawn orchestration workers");
    let mut restored = Vec::new();
    let mut assigned = Vec::new();
    let records = session
        .run_spec_records_with(&spec, |event| match event {
            OrchestrationEvent::RangeRestored { lo, hi } => restored.push((lo, hi)),
            OrchestrationEvent::RangeAssigned { lo, hi, .. } => assigned.push((lo, hi)),
            _ => {}
        })
        .expect("resumed run");
    session.shutdown().expect("worker shutdown");

    assert_eq!(restored, vec![(0, 3), (5, 7)]);
    assert!(
        assigned
            .iter()
            .all(|&(lo, hi)| (hi <= 5 && lo >= 3) || lo >= 7),
        "a checkpointed trial was re-dispatched: {assigned:?}"
    );
    assert_eq!(records, expected, "resumed merge diverges");

    // The completed run must have persisted the missing ranges too: a second
    // resume finds full coverage.
    let entries = read_checkpoint(&path).expect("re-read checkpoint");
    let covered: u64 = entries
        .iter()
        .filter(|e| e.scenario == spec.id())
        .map(|e| e.hi - e.lo)
        .sum();
    assert_eq!(covered, spec.trials, "checkpoint does not cover all trials");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn coalesced_checkpoint_writes_resume_exactly_like_before() {
    // Regression guard for the coalesced checkpoint path: a session now
    // appends each completed range through one persistent handle as a single
    // write, and the file it produces must still drive a resume exactly as
    // the per-line writer did — every line CRC-parseable, full coverage, and
    // a resumed coordinator restoring everything and dispatching nothing.
    let spec = fault_spec();
    let campaign = Campaign::parallel();
    let expected = spec
        .run_range_records(&campaign, 0, spec.trials)
        .expect("local run");

    let path = std::env::temp_dir().join(format!(
        "agreement-orchestration-coalesce-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);

    let mut session = Orchestrator::new(Scale::Quick, worker_command())
        .workers(2)
        .chunk(2)
        .checkpoint(&path)
        .start()
        .expect("spawn orchestration workers");
    let records = session.run_spec_records(&spec).expect("checkpointed run");
    session.shutdown().expect("worker shutdown");
    assert_eq!(records, expected, "checkpointed merge diverges");

    let entries = read_checkpoint(&path).expect("session-written checkpoint parses");
    let covered: u64 = entries.iter().map(|e| e.hi - e.lo).sum();
    assert_eq!(covered, spec.trials, "coalesced writes missed a range");

    // A fresh coordinator must restore every range and dispatch none.
    let mut resumed = Orchestrator::new(Scale::Quick, worker_command())
        .workers(2)
        .chunk(2)
        .checkpoint(&path)
        .start()
        .expect("spawn resumed workers");
    let mut restored = 0u64;
    let mut assigned = Vec::new();
    let again = resumed
        .run_spec_records_with(&spec, |event| match event {
            OrchestrationEvent::RangeRestored { lo, hi } => restored += hi - lo,
            OrchestrationEvent::RangeAssigned { lo, hi, .. } => assigned.push((lo, hi)),
            _ => {}
        })
        .expect("resumed run");
    resumed.shutdown().expect("worker shutdown");
    assert_eq!(restored, spec.trials, "resume restored a partial range set");
    assert!(assigned.is_empty(), "resume re-dispatched {assigned:?}");
    assert_eq!(again, expected, "resumed merge diverges");
    let _ = std::fs::remove_file(&path);
}

//! Pins the Probe/Metrics instrumentation contract:
//!
//! 1. **Hook placement** — a [`MetricsProbe`] attached to an engine observes,
//!    event by event, exactly the counters the core assembles into
//!    [`RunOutcome::metrics`] at outcome time (for the event-observable
//!    fields; `rounds` and `coin_flips` happen inside processors and are
//!    core-assembled only).
//! 2. **Probe transparency** — instrumenting an execution does not change it:
//!    a probed run produces the same `RunOutcome` as the default
//!    [`NoProbe`] run.
//! 3. **Mirror fields** — the legacy scalar counters on [`RunOutcome`] stay
//!    equal to their [`Metrics`] counterparts.

use agreement::adversary::RotatingResetAdversary;
use agreement::model::{Bit, InputAssignment, SystemConfig};
use agreement::protocols::{BenOrBuilder, ResetTolerantBuilder};
use agreement::sim::{
    run_async, run_windowed, AsyncEngine, FairAsyncAdversary, Metrics, MetricsProbe, RunLimits,
    RunOutcome, WindowEngine,
};

fn assert_event_counters_match(observed: Metrics, assembled: Metrics) {
    assert_eq!(observed.messages_sent, assembled.messages_sent);
    assert_eq!(observed.messages_delivered, assembled.messages_delivered);
    assert_eq!(observed.messages_dropped, assembled.messages_dropped);
    assert_eq!(observed.windows, assembled.windows);
    assert_eq!(observed.steps, assembled.steps);
    assert_eq!(observed.resets_consumed, assembled.resets_consumed);
    assert_eq!(observed.crashes, assembled.crashes);
    assert_eq!(observed.max_chain, assembled.max_chain);
    // Not event-observable: only the core can assemble these.
    assert_eq!(observed.rounds, 0);
    assert_eq!(observed.coin_flips, 0);
}

fn assert_mirrors_hold(outcome: &RunOutcome) {
    assert_eq!(outcome.messages_sent, outcome.metrics.messages_sent);
    assert_eq!(
        outcome.messages_delivered,
        outcome.metrics.messages_delivered
    );
    assert_eq!(outcome.resets_performed, outcome.metrics.resets_consumed);
    assert_eq!(outcome.crashes_performed, outcome.metrics.crashes);
}

#[test]
fn windowed_probe_matches_core_assembled_metrics() {
    let cfg = SystemConfig::with_sixth_resilience(13).unwrap();
    let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
    let inputs = InputAssignment::evenly_split(13);
    let limits = RunLimits::windows(2_000);

    let mut engine =
        WindowEngine::with_probe(cfg, inputs.clone(), &builder, 7, MetricsProbe::new());
    let mut adversary = RotatingResetAdversary::new();
    let probed = engine.run(&mut adversary, limits);
    assert_event_counters_match(engine.core().probe().observed(), probed.metrics);
    assert_mirrors_hold(&probed);
    assert_eq!(probed.metrics.windows, probed.duration);
    assert_eq!(probed.metrics.steps, 0);
    assert!(probed.metrics.resets_consumed > 0, "the adversary resets");
    assert!(
        probed.metrics.max_chain > 0,
        "windowed deliveries grow causal chains too"
    );

    // Instrumentation is invisible: the NoProbe run is identical.
    let plain = run_windowed(
        cfg,
        inputs,
        &builder,
        &mut RotatingResetAdversary::new(),
        7,
        limits,
    );
    assert_eq!(plain, probed);
}

#[test]
fn async_probe_matches_core_assembled_metrics() {
    let cfg = SystemConfig::new(5, 1).unwrap();
    let builder = BenOrBuilder::new();
    let inputs = InputAssignment::evenly_split(5);
    let limits = RunLimits::small();

    let mut engine =
        AsyncEngine::with_probe(cfg, inputs.clone(), &builder, 11, MetricsProbe::new());
    let mut adversary = FairAsyncAdversary::default();
    let probed = engine.run(&mut adversary, limits);
    assert_event_counters_match(engine.core().probe().observed(), probed.metrics);
    assert_mirrors_hold(&probed);
    assert_eq!(probed.metrics.steps, probed.duration);
    assert_eq!(probed.metrics.windows, 0);
    assert!(probed.metrics.rounds > 0, "Ben-Or digests report rounds");
    assert!(
        probed.metrics.max_chain >= probed.longest_chain,
        "the causal watermark dominates the first-decision chain metric"
    );

    let plain = run_async(
        cfg,
        inputs,
        &builder,
        &mut FairAsyncAdversary::default(),
        11,
        limits,
    );
    assert_eq!(plain, probed);
}

#[test]
fn unanimous_windowed_run_counts_every_broadcast() {
    // 5 processors, full delivery, majority-in-one-window protocol economics:
    // the reset-tolerant protocol broadcasts every window, so sent counts are
    // a multiple of n per window and everything sent in a surviving window is
    // delivered or discarded — the three message counters must reconcile.
    let cfg = SystemConfig::with_sixth_resilience(7).unwrap();
    let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
    let inputs = InputAssignment::unanimous(7, Bit::One);
    let outcome = run_windowed(
        cfg,
        inputs,
        &builder,
        &mut agreement::sim::FullDeliveryAdversary,
        3,
        RunLimits::small(),
    );
    assert!(outcome.all_correct_decided());
    let metrics = outcome.metrics;
    assert!(metrics.messages_sent >= metrics.messages_delivered);
    assert!(
        metrics.messages_delivered + metrics.messages_dropped <= metrics.messages_sent,
        "every sent message is delivered, dropped, or still buffered"
    );
}

#[test]
fn coin_flips_are_counted_when_the_protocol_actually_flips() {
    // Ben-Or under the lockstep balancing scheduler (Theorem 17's strategy)
    // is forced into inconclusive rounds, so its processors must consult
    // their private coins.
    use agreement::adversary::LockstepBalancingAdversary;
    let cfg = SystemConfig::new(6, 1).unwrap();
    let outcome = run_async(
        cfg,
        InputAssignment::evenly_split(6),
        &BenOrBuilder::new(),
        &mut LockstepBalancingAdversary::new(),
        21,
        RunLimits::steps(100_000),
    );
    assert!(
        outcome.metrics.coin_flips > 0,
        "balanced rounds force coin flips"
    );
}

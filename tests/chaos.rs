//! Chaos soak: the orchestrated merge must stay **byte-identical** to a
//! single-process campaign while the transport is actively sabotaged.
//!
//! Every run here injects a seeded fault schedule into the worker
//! connections — dropped, duplicated, bit-flipped, truncated, and delayed
//! frames — on top of a worker killed with SIGKILL mid-campaign. The
//! coordinator's recovery machinery (CRC-detected corruption, worker drop
//! and requeue, respawn with backoff, idempotent completion tracking) must
//! hide all of it: trial `t` is fully determined by `base_seed + t`, so no
//! fault schedule that stays inside the respawn budget may ever show in the
//! rendered reports.

use agreement::core::experiments::Scale;
use agreement::core::orchestrate::{FaultPlan, OrchestrationEvent, Orchestrator, Session};
use agreement::core::{
    scenario_registry, stream_records, Campaign, JsonReportSink, JsonlSink, ReportSink,
    ScenarioSpec,
};

fn worker_command() -> Vec<String> {
    vec![env!("CARGO_BIN_EXE_orchestrate_worker").to_string()]
}

/// The legacy registry with trials and limits cut down to soak size (same
/// shape as the orchestration equivalence suite; cutting limits is safe
/// because both sides run under the caps carried by the run frame).
fn soak_specs() -> Vec<ScenarioSpec> {
    let specs: Vec<ScenarioSpec> = scenario_registry(Scale::Quick)
        .into_iter()
        .filter(|spec| !spec.id().contains("subquad/"))
        .map(|mut spec| {
            spec.trials = 2;
            spec.limits.max_windows = spec.limits.max_windows.min(300);
            spec.limits.max_steps = spec.limits.max_steps.min(50_000);
            spec
        })
        .collect();
    assert!(specs.len() >= 40, "registry unexpectedly small");
    specs
}

/// A fault mix mild enough that eight registry sweeps stay inside the
/// respawn budget with overwhelming probability, but hot enough that every
/// failure class fires across the soak: lost frames, replayed frames,
/// CRC-detected corruption, torn frames, and jittered delivery.
fn soak_plan(seed: u64) -> FaultPlan {
    let mut plan = FaultPlan::new(seed);
    plan.drop = 0.004;
    plan.duplicate = 0.05;
    plan.bit_flip = 0.003;
    plan.truncate = 0.002;
    plan.delay = 0.05;
    plan.delay_ms = 5;
    plan
}

fn render_local(specs: &[ScenarioSpec]) -> (String, String) {
    let campaign = Campaign::parallel();
    let mut json = JsonReportSink::with_scale("quick");
    let mut jsonl = JsonlSink::new();
    for spec in specs {
        let mut sinks: Vec<&mut dyn ReportSink> = vec![&mut json, &mut jsonl];
        spec.run_with_sinks(&campaign, &mut sinks)
            .unwrap_or_else(|err| panic!("{} failed locally: {err}", spec.id()));
    }
    (json.into_json().to_string(), jsonl.as_str().to_string())
}

/// Sweeps the registry through a chaos session, SIGKILLing one worker when
/// the sweep reaches its midpoint. Returns the rendered reports plus how
/// many workers were lost and respawned along the way.
fn render_chaos_sweep(
    specs: &[ScenarioSpec],
    session: &mut Session,
    victim: &mut std::process::Child,
) -> (String, String, usize, usize) {
    let mut json = JsonReportSink::with_scale("quick");
    let mut jsonl = JsonlSink::new();
    let mut lost = 0usize;
    let mut respawned = 0usize;
    let midpoint = specs.len() / 2;
    for (index, spec) in specs.iter().enumerate() {
        if index == midpoint {
            // Mid-campaign SIGKILL. The worker may already have been felled
            // by an injected fault — then this is a no-op and the fault plan
            // alone supplies the chaos.
            victim.kill().expect("SIGKILL worker 1");
        }
        let records = session
            .run_spec_records_with(spec, |event| match event {
                OrchestrationEvent::WorkerLost { .. } => lost += 1,
                OrchestrationEvent::WorkerRespawned { .. } => respawned += 1,
                _ => {}
            })
            .unwrap_or_else(|err| panic!("{} failed under chaos: {err}", spec.id()));
        let meta = spec.meta().expect("feasible spec has metadata");
        let mut sinks: Vec<&mut dyn ReportSink> = vec![&mut json, &mut jsonl];
        stream_records(&meta, &records, &mut sinks);
    }
    (
        json.into_json().to_string(),
        jsonl.as_str().to_string(),
        lost,
        respawned,
    )
}

#[test]
fn eight_seeded_fault_schedules_with_worker_kills_merge_byte_identically() {
    let specs = soak_specs();
    let (local_json, local_jsonl) = render_local(&specs);
    let mut total_lost = 0usize;
    let mut total_respawned = 0usize;
    for seed in [11u64, 22, 33, 44, 55, 66, 77, 88] {
        let mut session = Orchestrator::new(Scale::Quick, worker_command())
            .workers(2)
            .worker_faults(soak_plan(seed))
            .recv_timeout(std::time::Duration::from_secs(2))
            .respawn_budget(12)
            .start()
            .expect("spawn chaos workers");
        let mut victim = session.take_worker_process(1);
        let (json, jsonl, lost, respawned) = render_chaos_sweep(&specs, &mut session, &mut victim);
        session.shutdown().expect("worker shutdown");
        victim.wait().expect("reap killed worker");
        total_lost += lost;
        total_respawned += respawned;
        assert_eq!(local_json, json, "JSON report diverges under seed {seed}");
        assert_eq!(
            local_jsonl, jsonl,
            "per-trial JSONL diverges under seed {seed}"
        );
    }
    // The SIGKILLs alone guarantee churn: across eight sweeps the recovery
    // machinery must actually have fired, or the soak proved nothing.
    assert!(
        total_lost >= 8,
        "expected at least one loss per sweep, saw {total_lost}"
    );
    assert!(
        total_respawned >= 8,
        "expected at least one respawn per sweep, saw {total_respawned}"
    );
}

/// Batched + compressed record streams under a hot corruption schedule: the
/// block frames carrying many records each are exactly where a bit flip is
/// most damaging, and the transport's CRC trailer must catch every one
/// before the columnar decoder runs — a corrupt block surfaces as a dropped
/// worker and a re-queued range, never as a bad decode, so the merge stays
/// byte-identical to a fault-free single-process run.
#[test]
fn four_fault_seeds_over_batched_compressed_blocks_merge_byte_identically() {
    let specs = soak_specs();
    let (local_json, local_jsonl) = render_local(&specs);
    let mut total_lost = 0usize;
    for seed in [0xB10C01u64, 0xB10C02, 0xB10C03, 0xB10C04] {
        // Hotter flip/truncate rates than the kill soak: with batching, a
        // sweep sends far fewer (larger) frames, and the point here is that
        // damaged blocks are *detected*, so aim enough damage at them that
        // several blocks are hit every sweep.
        let mut plan = FaultPlan::new(seed);
        plan.bit_flip = 0.02;
        plan.truncate = 0.01;
        plan.duplicate = 0.05;
        plan.delay = 0.05;
        plan.delay_ms = 3;
        let mut session = Orchestrator::new(Scale::Quick, worker_command())
            .workers(2)
            .batch_records(2)
            .compress(true)
            .worker_faults(plan)
            .recv_timeout(std::time::Duration::from_secs(2))
            .respawn_budget(40)
            .start()
            .expect("spawn chaos workers");
        let mut json = JsonReportSink::with_scale("quick");
        let mut jsonl = JsonlSink::new();
        for spec in &specs {
            let records = session
                .run_spec_records_with(spec, |event| {
                    if matches!(event, OrchestrationEvent::WorkerLost { .. }) {
                        total_lost += 1;
                    }
                })
                .unwrap_or_else(|err| panic!("{} failed under chaos: {err}", spec.id()));
            let meta = spec.meta().expect("feasible spec has metadata");
            let mut sinks: Vec<&mut dyn ReportSink> = vec![&mut json, &mut jsonl];
            stream_records(&meta, &records, &mut sinks);
        }
        session.shutdown().expect("worker shutdown");
        assert_eq!(
            local_json,
            json.into_json().to_string(),
            "JSON report diverges under seed {seed:#x}"
        );
        assert_eq!(
            local_jsonl,
            jsonl.as_str(),
            "per-trial JSONL diverges under seed {seed:#x}"
        );
    }
    // At these rates corruption must actually have felled workers — each
    // loss is a detected damaged frame (or its fallout) whose range was
    // re-queued and re-run. Zero losses would mean the soak proved nothing.
    assert!(
        total_lost >= 4,
        "expected the corruption schedule to fell workers, saw {total_lost} losses"
    );
}

/// With a single worker every recovery decision is sequential, so the event
/// log is a pure function of the fault seed: running the same seed twice
/// must reproduce the same losses, respawns, and re-dispatches in the same
/// order. (The plan deliberately excludes `drop` and `hang`: those are
/// healed by wall-clock timeouts, which order events by elapsed time rather
/// than by frame index.)
#[test]
fn the_same_fault_seed_reproduces_the_same_recovery_log() {
    let specs: Vec<ScenarioSpec> = soak_specs()
        .into_iter()
        .take(3)
        .map(|mut spec| {
            spec.trials = 8;
            spec
        })
        .collect();
    // The run is deterministic by construction, so this seed is a verified
    // fixture: under it the plan fells the worker at least once (asserted
    // below), exercising the loss → respawn → re-run path on both passes.
    let mut plan = FaultPlan::new(0xC4A05);
    plan.bit_flip = 0.05;
    plan.truncate = 0.025;
    plan.duplicate = 0.3;
    plan.delay = 0.1;
    plan.delay_ms = 3;

    let run_once = || -> (Vec<OrchestrationEvent>, Vec<String>) {
        let mut session = Orchestrator::new(Scale::Quick, worker_command())
            .workers(1)
            .worker_faults(plan.clone())
            .respawn_budget(12)
            .start()
            .expect("spawn chaos worker");
        let mut log = Vec::new();
        let mut merged = Vec::new();
        for spec in &specs {
            let records = session
                .run_spec_records_with(spec, |event| log.push(event))
                .unwrap_or_else(|err| panic!("{} failed under chaos: {err}", spec.id()));
            merged.extend(records.iter().map(|r| r.to_json().to_string()));
        }
        session.shutdown().expect("worker shutdown");
        (log, merged)
    };

    let (first_log, first_records) = run_once();
    let (second_log, second_records) = run_once();
    assert_eq!(
        first_log, second_log,
        "recovery log is not reproducible from the fault seed"
    );
    assert_eq!(first_records, second_records, "merged records diverge");
    // And chaos must actually have occurred, or reproducibility is vacuous.
    assert!(
        first_log
            .iter()
            .any(|e| matches!(e, OrchestrationEvent::WorkerLost { .. })),
        "fault plan never felled the worker; raise the rates"
    );
}

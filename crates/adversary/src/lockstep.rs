//! The lockstep balancing adversary for the crash model (Section 5).
//!
//! Theorem 17 shows that *forgetful, fully communicative* algorithms (such as
//! Ben-Or's) need exponentially long message chains against an asynchronous
//! adversary causing at most `t` crash failures. The concrete scheduling
//! strategy behind the bound is the same balancing idea as in the strongly
//! adaptive case: in every protocol round, show each processor a subset of
//! `n - t` messages whose values are as balanced as possible, so that no
//! majority forms and every processor re-randomizes its estimate.
//!
//! [`LockstepBalancingAdversary`] implements that strategy against
//! [`agreement_protocols::BenOr`]: it drives the execution round by round
//! (a legal asynchronous schedule — it simply delays the excluded messages),
//! hiding up to `t` majority-side reports in phase 1 and up to `t` value
//! proposals in phase 2. It causes **zero** crash failures: scheduling alone
//! is enough, which matches the theorem's statement that the bound holds for
//! any adversary with a budget of `t >= 1` crash faults.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use agreement_model::{Bit, Payload, ProcessorId};
use agreement_sim::{AsyncAction, AsyncAdversary, SystemView};

/// The balancing (split-vote) scheduler for Ben-Or under the crash model.
#[derive(Debug, Clone, Default)]
pub struct LockstepBalancingAdversary {
    planned: VecDeque<AsyncAction>,
    fallback_cursor: usize,
}

impl LockstepBalancingAdversary {
    /// Creates the adversary.
    pub fn new() -> Self {
        LockstepBalancingAdversary::default()
    }

    /// The lowest round any live processor is still working on.
    fn current_round(view: &SystemView<'_>) -> u64 {
        view.digests
            .iter()
            .zip(view.crashed)
            .filter(|(_, crashed)| !**crashed)
            .filter_map(|(d, _)| d.round)
            .min()
            .unwrap_or(1)
    }

    /// `true` if some live processor at `round` is still waiting for phase-1
    /// reports (Ben-Or's digest labels the waiting phase).
    fn in_report_stage(view: &SystemView<'_>, round: u64) -> bool {
        view.digests
            .iter()
            .zip(view.crashed)
            .filter(|(_, crashed)| !**crashed)
            .any(|(d, _)| d.round == Some(round) && d.phase == "report")
    }

    /// Fresh per-sender values for the current stage: `Some(Some(bit))` for a
    /// value-carrying message, `Some(None)` for a `?` proposal, `None` if the
    /// sender has no fresh stage message in the buffer yet.
    fn stage_values(
        view: &SystemView<'_>,
        round: u64,
        report_stage: bool,
    ) -> BTreeMap<ProcessorId, Option<Bit>> {
        let mut values = BTreeMap::new();
        for (from, _to, payload) in view.buffer.iter() {
            let entry = match payload {
                Payload::Report { round: r, value } if report_stage && *r == round => Some(*value),
                Payload::Proposal { round: r, value } if !report_stage && *r == round => *value,
                _ => continue,
            };
            values.entry(from).or_insert(entry);
        }
        values
    }

    /// Chooses up to `t` senders to exclude so the delivered values stay as
    /// balanced (report stage) or as proposal-free (proposal stage) as possible.
    fn excluded_senders(
        values: &BTreeMap<ProcessorId, Option<Bit>>,
        t: usize,
        report_stage: bool,
    ) -> Vec<ProcessorId> {
        let zeros: Vec<ProcessorId> = values
            .iter()
            .filter(|(_, v)| **v == Some(Bit::Zero))
            .map(|(s, _)| *s)
            .collect();
        let ones: Vec<ProcessorId> = values
            .iter()
            .filter(|(_, v)| **v == Some(Bit::One))
            .map(|(s, _)| *s)
            .collect();
        if report_stage {
            // Exclude from the majority side, up to the imbalance.
            let (majority, minority) = if zeros.len() >= ones.len() {
                (zeros, ones)
            } else {
                (ones, zeros)
            };
            let excess = majority.len() - minority.len();
            majority.into_iter().take(excess.min(t)).collect()
        } else {
            // Hide value proposals (both values, larger group first).
            let mut proposers = if zeros.len() >= ones.len() {
                [zeros, ones].concat()
            } else {
                [ones, zeros].concat()
            };
            proposers.truncate(t);
            proposers
        }
    }

    /// Plans a full stage: deliver, to every live recipient, every pending
    /// message from every non-excluded sender (draining backlogs of delayed
    /// stale messages along the way — Ben-Or ignores them).
    fn plan_stage(&mut self, view: &SystemView<'_>, excluded: &[ProcessorId]) {
        let n = view.n();
        for recipient in ProcessorId::all(n) {
            if view.crashed[recipient.index()] {
                continue;
            }
            for sender in ProcessorId::all(n) {
                if excluded.contains(&sender) {
                    continue;
                }
                for _ in 0..view.buffer.pending_on(sender, recipient) {
                    self.planned.push_back(AsyncAction::Deliver {
                        from: sender,
                        to: recipient,
                    });
                }
            }
        }
    }

    /// One fair delivery step, used when the lockstep structure is not
    /// detectable (e.g. mixed rounds right after a decision).
    fn fallback(&mut self, view: &SystemView<'_>) -> AsyncAction {
        match view.next_pending_channel(self.fallback_cursor) {
            Some((next_cursor, from, to)) => {
                self.fallback_cursor = next_cursor;
                AsyncAction::Deliver { from, to }
            }
            None => AsyncAction::Halt,
        }
    }
}

impl AsyncAdversary for LockstepBalancingAdversary {
    fn name(&self) -> &'static str {
        "lockstep-balancing"
    }

    fn next_action(&mut self, view: &SystemView<'_>) -> AsyncAction {
        if let Some(action) = self.planned.pop_front() {
            return action;
        }
        let live = view.crashed.iter().filter(|&&c| !c).count();
        let round = Self::current_round(view);
        let report_stage = Self::in_report_stage(view, round);
        let values = Self::stage_values(view, round, report_stage);
        // Only commit to a balanced stage plan once every live processor's
        // fresh stage message is available; otherwise make fair progress.
        if values.len() >= live {
            let excluded = Self::excluded_senders(&values, view.t(), report_stage);
            self.plan_stage(view, &excluded);
        }
        match self.planned.pop_front() {
            Some(action) => action,
            None => self.fallback(view),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agreement_model::{InputAssignment, SystemConfig};
    use agreement_protocols::BenOrBuilder;
    use agreement_sim::{run_async, FairAsyncAdversary, RunLimits};

    #[test]
    fn unanimous_inputs_still_decide_quickly() {
        let cfg = SystemConfig::new(8, 2).unwrap();
        let inputs = InputAssignment::unanimous(8, Bit::One);
        let outcome = run_async(
            cfg,
            inputs.clone(),
            &BenOrBuilder::new(),
            &mut LockstepBalancingAdversary::new(),
            3,
            RunLimits::small(),
        );
        assert!(outcome.all_correct_decided());
        assert!(outcome.is_correct(&inputs));
        assert_eq!(outcome.crashes_performed, 0, "scheduling alone is used");
    }

    #[test]
    fn split_inputs_are_delayed_but_eventually_decided_correctly() {
        let cfg = SystemConfig::new(8, 2).unwrap();
        let inputs = InputAssignment::evenly_split(8);
        let outcome = run_async(
            cfg,
            inputs.clone(),
            &BenOrBuilder::new(),
            &mut LockstepBalancingAdversary::new(),
            11,
            RunLimits::steps(2_000_000),
        );
        assert!(
            outcome.all_correct_decided(),
            "Ben-Or terminates with probability one"
        );
        assert!(outcome.is_correct(&inputs));
        assert!(
            outcome.longest_chain > 2,
            "the balancer must force more than one round of chains (got {})",
            outcome.longest_chain
        );
    }

    #[test]
    fn balancer_forces_longer_chains_than_fair_scheduling_on_split_inputs() {
        let cfg = SystemConfig::new(8, 2).unwrap();
        let inputs = InputAssignment::evenly_split(8);
        let mut balanced_total = 0u64;
        let mut fair_total = 0u64;
        for seed in 0..5u64 {
            let balanced = run_async(
                cfg,
                inputs.clone(),
                &BenOrBuilder::new(),
                &mut LockstepBalancingAdversary::new(),
                seed,
                RunLimits::steps(2_000_000),
            );
            let fair = run_async(
                cfg,
                inputs.clone(),
                &BenOrBuilder::new(),
                &mut FairAsyncAdversary::default(),
                seed,
                RunLimits::steps(2_000_000),
            );
            balanced_total += balanced.longest_chain;
            fair_total += fair.longest_chain;
        }
        assert!(
            balanced_total >= fair_total,
            "balancing must not shorten chains (balanced {balanced_total} vs fair {fair_total})"
        );
    }
}

//! Helpers for constructing delivery (sender) sets.
//!
//! A window adversary's main lever is the choice of the sender sets `S_i`
//! (`|S_i| >= n - t`). These helpers build the common shapes: everyone, a
//! fixed exclusion, and the *balanced* selection used by the split-vote
//! adversary (exclude up to `t` senders from the majority side so that the
//! delivered values are as close to an even split as possible).

use agreement_model::{Bit, ProcessorId};

/// All `n` senders.
pub fn full_senders(n: usize) -> Vec<ProcessorId> {
    ProcessorId::all(n).collect()
}

/// All senders except those in `excluded` (which must leave at least `n - t`
/// senders for the result to be a legal delivery set; the caller is
/// responsible for respecting that budget).
pub fn senders_excluding(n: usize, excluded: &[ProcessorId]) -> Vec<ProcessorId> {
    ProcessorId::all(n)
        .filter(|id| !excluded.contains(id))
        .collect()
}

/// Chooses a delivery set of at least `n - t` senders that makes the
/// delivered `Zero`/`One` values as balanced as possible.
///
/// `values[i]` is the value advocated by sender `i`'s fresh message, or `None`
/// if sender `i` has no fresh value-bearing message this window (e.g. it was
/// reset and is silent); value-less senders are always included since
/// excluding them costs exclusion budget without changing the balance.
///
/// Returns the chosen sender set together with the resulting delivered counts
/// `(zeros, ones)`.
pub fn balanced_senders(values: &[Option<Bit>], t: usize) -> (Vec<ProcessorId>, (usize, usize)) {
    let n = values.len();
    let zeros: Vec<usize> = (0..n).filter(|&i| values[i] == Some(Bit::Zero)).collect();
    let ones: Vec<usize> = (0..n).filter(|&i| values[i] == Some(Bit::One)).collect();
    let silent: Vec<usize> = (0..n).filter(|&i| values[i].is_none()).collect();

    // Exclude from the majority side only, and only as much as the budget and
    // the imbalance allow.
    let imbalance = zeros.len().abs_diff(ones.len());
    let exclude_count = imbalance.min(t);
    let (majority, minority) = if zeros.len() >= ones.len() {
        (&zeros, &ones)
    } else {
        (&ones, &zeros)
    };
    let excluded: Vec<usize> = majority.iter().copied().take(exclude_count).collect();

    let mut senders: Vec<ProcessorId> = Vec::with_capacity(n - exclude_count);
    senders.extend(
        majority
            .iter()
            .skip(exclude_count)
            .map(|&i| ProcessorId::new(i)),
    );
    senders.extend(minority.iter().map(|&i| ProcessorId::new(i)));
    senders.extend(silent.iter().map(|&i| ProcessorId::new(i)));
    senders.sort_unstable();

    let delivered_majority = majority.len() - excluded.len();
    let counts = if zeros.len() >= ones.len() {
        (delivered_majority, ones.len())
    } else {
        (zeros.len(), delivered_majority)
    };
    (senders, counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_senders_lists_everyone() {
        assert_eq!(full_senders(3).len(), 3);
        assert_eq!(full_senders(0).len(), 0);
    }

    #[test]
    fn senders_excluding_removes_exactly_the_excluded() {
        let excluded = vec![ProcessorId::new(1), ProcessorId::new(3)];
        let senders = senders_excluding(5, &excluded);
        assert_eq!(
            senders,
            vec![
                ProcessorId::new(0),
                ProcessorId::new(2),
                ProcessorId::new(4)
            ]
        );
    }

    #[test]
    fn balanced_senders_excludes_majority_up_to_budget() {
        // 6 zeros, 2 ones, budget 2: exclude 2 zeros -> 4 zeros, 2 ones delivered.
        let values: Vec<Option<Bit>> = (0..8)
            .map(|i| Some(if i < 6 { Bit::Zero } else { Bit::One }))
            .collect();
        let (senders, (z, o)) = balanced_senders(&values, 2);
        assert_eq!(senders.len(), 6);
        assert_eq!((z, o), (4, 2));
    }

    #[test]
    fn balanced_senders_does_not_over_exclude_when_already_balanced() {
        let values: Vec<Option<Bit>> = (0..6)
            .map(|i| Some(if i % 2 == 0 { Bit::Zero } else { Bit::One }))
            .collect();
        let (senders, (z, o)) = balanced_senders(&values, 2);
        assert_eq!(senders.len(), 6, "no exclusions needed for a perfect split");
        assert_eq!((z, o), (3, 3));
    }

    #[test]
    fn balanced_senders_keeps_silent_processors() {
        let values = vec![Some(Bit::One), Some(Bit::One), Some(Bit::One), None, None];
        let (senders, (z, o)) = balanced_senders(&values, 1);
        // One `One` excluded; both silent senders retained.
        assert_eq!(senders.len(), 4);
        assert_eq!((z, o), (0, 2));
        assert!(senders.contains(&ProcessorId::new(3)));
        assert!(senders.contains(&ProcessorId::new(4)));
    }

    #[test]
    fn balanced_senders_with_zero_budget_excludes_nothing() {
        let values = vec![Some(Bit::Zero), Some(Bit::One), Some(Bit::One)];
        let (senders, (z, o)) = balanced_senders(&values, 0);
        assert_eq!(senders.len(), 3);
        assert_eq!((z, o), (1, 2));
    }
}

//! Strongly adaptive resetting adversaries for the acceptable-window model.
//!
//! These adversaries exercise the resetting power of the strongly adaptive
//! adversary (Section 2): in every acceptable window they reset up to `t`
//! processors, chosen either blindly (rotating through the identities) or
//! adaptively (targeting the processors that have made the most progress).
//! Delivery is otherwise full, so they probe fault tolerance rather than
//! scheduling slowness; combine with
//! [`SplitVoteAdversary`](crate::SplitVoteAdversary) for the
//! slowness experiments.

use agreement_model::ProcessorId;
use agreement_sim::{SystemView, Window, WindowAdversary};

use crate::delivery::full_senders;

/// Resets a rotating set of `t` processors every window and delivers from
/// everyone.
///
/// Window `w` resets processors `{(w * t) mod n, ..., (w * t + t - 1) mod n}`,
/// so over `⌈n / t⌉` windows every processor is reset at least once — far more
/// total failures than a static `t`-bounded adversary could cause, which is
/// exactly the regime the reset-tolerant protocol is designed for.
#[derive(Debug, Clone, Copy, Default)]
pub struct RotatingResetAdversary {
    window: u64,
}

impl RotatingResetAdversary {
    /// Creates the adversary.
    pub fn new() -> Self {
        RotatingResetAdversary { window: 0 }
    }
}

impl WindowAdversary for RotatingResetAdversary {
    fn name(&self) -> &'static str {
        "rotating-reset"
    }

    fn next_window(&mut self, view: &SystemView<'_>) -> Window {
        let n = view.n();
        let t = view.t();
        let start = (self.window as usize).wrapping_mul(t) % n.max(1);
        let resets: Vec<ProcessorId> = (0..t).map(|k| ProcessorId::new((start + k) % n)).collect();
        self.window += 1;
        Window::uniform(&view.config, resets, full_senders(n))
    }
}

/// Resets the `t` processors that are *furthest ahead* (highest round number)
/// every window, and delivers from everyone.
///
/// This is the natural adaptive strategy for slowing a round-based protocol:
/// progress made by the leaders is repeatedly erased. The reset-tolerant
/// protocol still terminates (Theorem 4) because the `n - t` survivors carry
/// the round forward and resynchronize the victims.
#[derive(Debug, Clone, Copy, Default)]
pub struct TargetedResetAdversary;

impl TargetedResetAdversary {
    /// Creates the adversary.
    pub fn new() -> Self {
        TargetedResetAdversary
    }
}

impl WindowAdversary for TargetedResetAdversary {
    fn name(&self) -> &'static str {
        "targeted-reset"
    }

    fn next_window(&mut self, view: &SystemView<'_>) -> Window {
        let n = view.n();
        let t = view.t();
        // Rank processors by round (undecided ones first among equals), reset
        // the t most advanced ones.
        let mut ranked: Vec<(u64, usize)> = view
            .digests
            .iter()
            .enumerate()
            .map(|(i, d)| (d.round.unwrap_or(0), i))
            .collect();
        ranked.sort_by(|a, b| b.cmp(a));
        let resets: Vec<ProcessorId> = ranked
            .into_iter()
            .take(t)
            .map(|(_, i)| ProcessorId::new(i))
            .collect();
        Window::uniform(&view.config, resets, full_senders(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agreement_model::{Bit, InputAssignment, SystemConfig};
    use agreement_protocols::ResetTolerantBuilder;
    use agreement_sim::{run_windowed, RunLimits, WindowEngine};

    fn cfg(n: usize) -> SystemConfig {
        SystemConfig::with_sixth_resilience(n).unwrap()
    }

    #[test]
    fn rotating_resets_cycle_through_all_processors() {
        let cfg = cfg(13);
        let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
        let inputs = InputAssignment::unanimous(13, Bit::One);
        let mut engine = WindowEngine::new(cfg, inputs, &builder, 1);
        let mut adversary = RotatingResetAdversary::new();
        for _ in 0..13 {
            engine.step_window(&mut adversary);
        }
        let outcome = engine.outcome();
        // t = 2 resets per window over 13 windows.
        assert_eq!(outcome.resets_performed, 26);
        assert!(outcome.agreement_holds());
    }

    #[test]
    fn rotating_reset_run_still_terminates_and_agrees_on_unanimous_input() {
        let cfg = cfg(13);
        let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
        let inputs = InputAssignment::unanimous(13, Bit::Zero);
        let outcome = run_windowed(
            cfg,
            inputs.clone(),
            &builder,
            &mut RotatingResetAdversary::new(),
            3,
            RunLimits::small(),
        );
        assert!(outcome.all_correct_decided());
        assert!(outcome.is_correct(&inputs));
        assert_eq!(outcome.decided_value(), Some(Bit::Zero));
    }

    #[test]
    fn targeted_reset_run_terminates_and_agrees_on_unanimous_input() {
        let cfg = cfg(13);
        let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
        let inputs = InputAssignment::unanimous(13, Bit::One);
        let outcome = run_windowed(
            cfg,
            inputs.clone(),
            &builder,
            &mut TargetedResetAdversary::new(),
            5,
            RunLimits::small(),
        );
        assert!(outcome.all_correct_decided());
        assert!(outcome.is_correct(&inputs));
    }

    #[test]
    fn targeted_reset_produces_valid_windows_even_with_zero_budget() {
        let cfg = SystemConfig::new(5, 0).unwrap();
        let builder =
            ResetTolerantBuilder::with_thresholds(agreement_model::Thresholds::new(5, 5, 5));
        let inputs = InputAssignment::unanimous(5, Bit::One);
        let outcome = run_windowed(
            cfg,
            inputs.clone(),
            &builder,
            &mut TargetedResetAdversary::new(),
            5,
            RunLimits::small(),
        );
        assert_eq!(outcome.resets_performed, 0);
        assert!(outcome.all_correct_decided());
    }
}

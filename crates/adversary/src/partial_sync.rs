//! Partial-synchrony adversaries: the *curtailed* strategies of the model's
//! family, contrasting with the unbounded window/async schedulers.
//!
//! The partial-synchrony model (see `agreement_sim::PartialSyncScheduler`)
//! lets an adversary pick a global stabilization time and a delivery bound Δ,
//! schedule with full asynchronous freedom before GST, and omit up to `t`
//! senders afterwards — but nothing more: once GST passes, every other
//! pending message is force-delivered within Δ. The strategies here span the
//! power range the model leaves open:
//!
//! * [`GstProcrastinatorAdversary`] — maximum pre-GST obstruction: it stalls
//!   every message until its (late) GST and keeps stalling afterwards, so
//!   every delivery is the model's enforcement. Expected decision time is
//!   `gst + O(Δ · rounds)` — delayed, but no longer unbounded, which is
//!   exactly the contrast with the strongly adaptive lower bounds.
//! * [`PostGstOmissionAdversary`] — immediate synchrony but `t` senders'
//!   messages are omitted outright (send-omission faults); quorum protocols
//!   must decide from `n - t` voices.
//!
//! The benign baseline (`BenignEventualAdversary`: GST 0, eager fair
//! delivery) lives in `agreement-sim` next to the other benign schedulers.

use agreement_model::ProcessorId;
use agreement_sim::{PartialSyncAction, PartialSyncAdversary, SystemView};

/// Stalls everything until an adversary-chosen (late) GST, and contributes
/// nothing afterwards either: every delivery in the execution is forced by
/// the model's bounded-delay enforcement.
///
/// This is the strongest delay attack partial synchrony admits. Against the
/// same protocols the strongly adaptive and fully asynchronous adversaries
/// stall exponentially, it can only add an additive `gst` before the
/// Δ-paced decision cascade starts.
#[derive(Debug, Clone)]
pub struct GstProcrastinatorAdversary {
    gst: u64,
    delta: u64,
}

impl GstProcrastinatorAdversary {
    /// The registry default stabilization time.
    pub const DEFAULT_GST: u64 = 512;
    /// The registry default delivery bound.
    pub const DEFAULT_DELTA: u64 = 4;

    /// A procrastinator that stabilizes at `gst` with post-GST bound `delta`.
    pub fn new(gst: u64, delta: u64) -> Self {
        GstProcrastinatorAdversary {
            gst,
            delta: delta.max(1),
        }
    }
}

impl Default for GstProcrastinatorAdversary {
    fn default() -> Self {
        GstProcrastinatorAdversary::new(Self::DEFAULT_GST, Self::DEFAULT_DELTA)
    }
}

impl PartialSyncAdversary for GstProcrastinatorAdversary {
    fn name(&self) -> &'static str {
        "gst-procrastinator"
    }

    fn gst(&self) -> u64 {
        self.gst
    }

    fn delta(&self) -> u64 {
        self.delta
    }

    fn next_action(&mut self, view: &SystemView<'_>) -> PartialSyncAction {
        // Nothing to gain by acting: stall until the model's enforcement has
        // delivered everything and the execution is quiescent, then halt.
        if view.time > self.gst && view.buffer.is_empty() {
            PartialSyncAction::Halt
        } else {
            PartialSyncAction::Stall
        }
    }
}

/// Synchrony from the start (GST = 0), but the messages of up to `t`
/// designated senders are omitted outright — the send-omission analogue of a
/// withholding crash, without spending the crash budget.
///
/// Everything else is left to the model's Δ-paced forced delivery, so the
/// adversary's entire remaining power is the choice of victims.
#[derive(Debug, Clone)]
pub struct PostGstOmissionAdversary {
    omitted: Vec<ProcessorId>,
    delta: u64,
}

impl PostGstOmissionAdversary {
    /// The registry default delivery bound.
    pub const DEFAULT_DELTA: u64 = 4;

    /// Omits the given senders (the scheduler honours at most the first `t`)
    /// under the post-GST bound `delta`.
    pub fn new(omitted: Vec<ProcessorId>, delta: u64) -> Self {
        PostGstOmissionAdversary {
            omitted,
            delta: delta.max(1),
        }
    }
}

impl PartialSyncAdversary for PostGstOmissionAdversary {
    fn name(&self) -> &'static str {
        "post-gst-omission"
    }

    fn gst(&self) -> u64 {
        0
    }

    fn delta(&self) -> u64 {
        self.delta
    }

    fn omitted_senders(&self) -> &[ProcessorId] {
        &self.omitted
    }

    fn next_action(&mut self, view: &SystemView<'_>) -> PartialSyncAction {
        // Forced delivery paces every non-omitted channel; once only omitted
        // messages remain pending, nothing will ever change again.
        let t = view.t();
        let any_live_pending = view.buffer.iter().any(|(from, to, _)| {
            !view.crashed[to.index()] && !self.omitted.iter().take(t).any(|&s| s == from)
        });
        if any_live_pending {
            PartialSyncAction::Stall
        } else {
            PartialSyncAction::Halt
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agreement_model::{Bit, InputAssignment, SystemConfig};
    use agreement_protocols::BenOrBuilder;
    use agreement_sim::{run_partial_sync, RunLimits};

    #[test]
    fn procrastinator_delays_but_cannot_prevent_decision() {
        let cfg = SystemConfig::new(7, 1).unwrap();
        let inputs = InputAssignment::unanimous(7, Bit::One);
        let mut adversary = GstProcrastinatorAdversary::new(64, 4);
        let outcome = run_partial_sync(
            cfg,
            inputs.clone(),
            &BenOrBuilder::new(),
            &mut adversary,
            5,
            RunLimits::small(),
        );
        assert!(
            outcome.all_correct_decided(),
            "the model forces termination"
        );
        assert!(outcome.is_correct(&inputs));
        // No decision can precede GST: nothing is delivered before it.
        assert!(outcome.first_decision_at.unwrap() > 64);
    }

    #[test]
    fn procrastinator_defaults_are_the_documented_constants() {
        let adversary = GstProcrastinatorAdversary::default();
        assert_eq!(adversary.gst(), GstProcrastinatorAdversary::DEFAULT_GST);
        assert_eq!(adversary.delta(), GstProcrastinatorAdversary::DEFAULT_DELTA);
        assert_eq!(adversary.name(), "gst-procrastinator");
        // Degenerate Δ = 0 clamps to 1.
        assert_eq!(GstProcrastinatorAdversary::new(5, 0).delta(), 1);
    }

    #[test]
    fn omission_of_t_senders_still_lets_quorums_decide() {
        let cfg = SystemConfig::new(7, 2).unwrap();
        let inputs = InputAssignment::unanimous(7, Bit::Zero);
        let mut adversary =
            PostGstOmissionAdversary::new(vec![ProcessorId::new(0), ProcessorId::new(1)], 4);
        let outcome = run_partial_sync(
            cfg,
            inputs.clone(),
            &BenOrBuilder::new(),
            &mut adversary,
            9,
            RunLimits::small(),
        );
        assert!(outcome.all_correct_decided());
        assert!(outcome.is_correct(&inputs));
        // The two omitted senders' messages were never delivered.
        assert!(outcome.messages_delivered < outcome.messages_sent);
    }
}

//! Data-driven adversary construction: the [`AdversaryFactory`] trait and the
//! [`registry`] of every adversary this reproduction ships.
//!
//! The scenario layer (`agreement-core`) describes a workload as *data* — a
//! protocol crossed with an adversary, an input pattern, a model and a size —
//! and needs to turn the adversary part of that description into a live
//! scheduler at trial time. Each adversary module therefore exposes one
//! factory here: a named constructor from an [`AdversaryBuildCtx`] (system
//! configuration, per-trial seed, and optional target set), tagged with the
//! [`ModelDescriptor`] of the execution model it schedules. The [`registry`]
//! enumerates every paper adversary plus the benign baselines of
//! `agreement-sim`, so arbitrary combinations can be expanded from tables
//! instead of hand-rolled loops.
//!
//! A factory builds a model-erased [`BuiltAdversary`]; the campaign runs it
//! without matching on the model — the execution-model axis stays open, and
//! adding a model means registering factories, not editing dispatch sites.
//!
//! | Factory name | Model | Built adversary |
//! |---|---|---|
//! | `full-delivery` | windowed | [`FullDeliveryAdversary`] |
//! | `rotating-reset` | windowed | [`RotatingResetAdversary`] |
//! | `targeted-reset` | windowed | [`TargetedResetAdversary`] |
//! | `split-vote` | windowed | [`SplitVoteAdversary::new`] |
//! | `split-vote+resets` | windowed | [`SplitVoteAdversary::with_resets`] |
//! | `polarizing` | windowed | [`PolarizingAdversary`] |
//! | `fair-round-robin` | async | [`FairAsyncAdversary`] |
//! | `lockstep-balancing` | async | [`LockstepBalancingAdversary`] |
//! | `scheduled-crash` | async | [`ScheduledCrashAdversary::new`] on the targets (default: first `t`) |
//! | `withholding-crash` | async | [`ScheduledCrashAdversary::withholding`] on the targets (default: first `t`) |
//! | `non-adaptive-crash` | async | [`NonAdaptiveCrashAdversary::random`] from the trial seed |
//! | `adaptive-committee-killer` | async | [`AdaptiveCommitteeKiller`] on the targets (default: first `t`) |
//! | `equivocating-byzantine` | async | [`EquivocatingAdversary`] |
//! | `benign-eventual` | partial-sync | [`BenignEventualAdversary`] |
//! | `search-window` | windowed | [`SearchWindowAdversary`] on a seed-derived genome |
//! | `search-async` | async | [`SearchAsyncAdversary`] on a seed-derived genome |
//! | `search-partial-sync` | partial-sync | [`SearchPartialSyncAdversary`] on a seed-derived genome |
//! | `gst-procrastinator` | partial-sync | [`GstProcrastinatorAdversary`] at the documented defaults |
//! | `post-gst-omission` | partial-sync | [`PostGstOmissionAdversary`] on the targets (default: first `t`) |

use agreement_model::{ProcessorId, SystemConfig};
use agreement_sim::{
    AsyncAdversary, AsyncModel, BenignEventualAdversary, FairAsyncAdversary, FullDeliveryAdversary,
    ModelDescriptor, PartialSyncModel, WindowAdversary, WindowModel,
};

pub use agreement_sim::BuiltAdversary;

use crate::byzantine::EquivocatingAdversary;
use crate::crash::{AdaptiveCommitteeKiller, NonAdaptiveCrashAdversary, ScheduledCrashAdversary};
use crate::lockstep::LockstepBalancingAdversary;
use crate::partial_sync::{GstProcrastinatorAdversary, PostGstOmissionAdversary};
use crate::polarizing::PolarizingAdversary;
use crate::search::{
    Genome, SearchAsyncAdversary, SearchPartialSyncAdversary, SearchWindowAdversary,
    DEFAULT_TAPE_LEN,
};
use crate::split_vote::SplitVoteAdversary;
use crate::strongly_adaptive::{RotatingResetAdversary, TargetedResetAdversary};

/// Everything a factory may draw on when constructing an adversary instance.
#[derive(Debug, Clone)]
pub struct AdversaryBuildCtx {
    /// The static system configuration (`n`, `t`) of the execution.
    pub cfg: SystemConfig,
    /// The per-trial seed. Seeded adversaries (e.g. `non-adaptive-crash`)
    /// derive their private randomness from it; deterministic adversaries
    /// ignore it.
    pub seed: u64,
    /// Explicit processor targets for targeting adversaries (the committee
    /// for `adaptive-committee-killer`, the victim list for the crash
    /// schedulers, the omitted senders for `post-gst-omission`). Empty when
    /// the scenario supplies none; targeting factories then fall back to
    /// their documented default.
    pub targets: Vec<ProcessorId>,
}

impl AdversaryBuildCtx {
    /// A context with no explicit targets.
    pub fn new(cfg: SystemConfig, seed: u64) -> Self {
        AdversaryBuildCtx {
            cfg,
            seed,
            targets: Vec::new(),
        }
    }

    /// Attaches explicit targets (committee members, crash victims).
    pub fn with_targets(mut self, targets: Vec<ProcessorId>) -> Self {
        self.targets = targets;
        self
    }

    /// The targets to aim at: the explicit list when given, otherwise the
    /// first `t` processors (the canonical default victim set).
    fn targets_or_first_t(&self) -> Vec<ProcessorId> {
        if self.targets.is_empty() {
            ProcessorId::all(self.cfg.t()).collect()
        } else {
            self.targets.clone()
        }
    }
}

/// A named, model-tagged adversary constructor, usable from data.
///
/// Factories are stateless and shareable across the campaign worker threads;
/// a fresh adversary instance is built per trial. The model tag is an open
/// [`ModelDescriptor`] — new execution models register factories without any
/// dispatch site having to enumerate them.
pub trait AdversaryFactory: Send + Sync {
    /// The registry name, equal to the built adversary's `name()`.
    fn name(&self) -> &'static str;

    /// Which execution model the built adversary schedules.
    fn model(&self) -> &'static ModelDescriptor;

    /// Builds a fresh adversary instance for one trial.
    fn build(&self, ctx: &AdversaryBuildCtx) -> BuiltAdversary;

    /// Builds a windowed adversary.
    ///
    /// # Panics
    ///
    /// Panics when this factory's model is not the windowed model; callers
    /// that need a concrete scheduler type dispatch on
    /// [`AdversaryFactory::model`] first. (The campaign path never does —
    /// it runs the [`BuiltAdversary`] as-is.)
    fn build_window(&self, ctx: &AdversaryBuildCtx) -> Box<dyn WindowAdversary> {
        self.build(ctx).into_window().unwrap_or_else(|| {
            panic!(
                "adversary '{}' schedules the {} model, not windows",
                self.name(),
                self.model()
            )
        })
    }

    /// Builds an asynchronous adversary.
    ///
    /// # Panics
    ///
    /// Panics when this factory's model is not the asynchronous model.
    fn build_async(&self, ctx: &AdversaryBuildCtx) -> Box<dyn AsyncAdversary> {
        self.build(ctx).into_async().unwrap_or_else(|| {
            panic!(
                "adversary '{}' schedules the {} model, not the async model",
                self.name(),
                self.model()
            )
        })
    }

    // Deliberately NO per-model builder for newer models: the campaign path
    // runs `build()`'s model-erased result as-is, and a caller that really
    // needs a concrete scheduler type uses `build(ctx).into_model::<M>()`.
    // `build_window`/`build_async` survive for the pre-descriptor callers.
}

/// Declares a unit-struct factory with the least ceremony. `$model` is the
/// [`ExecutionModel`](agreement_sim::ExecutionModel) marker whose descriptor
/// tags the factory.
macro_rules! declare_factory {
    ($(#[$doc:meta])* $factory:ident, $name:literal, $model:ident, |$ctx:ident| $build:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default)]
        pub struct $factory;

        impl AdversaryFactory for $factory {
            fn name(&self) -> &'static str {
                $name
            }

            fn model(&self) -> &'static ModelDescriptor {
                <$model as agreement_sim::ExecutionModel>::descriptor()
            }

            fn build(&self, $ctx: &AdversaryBuildCtx) -> BuiltAdversary {
                $build
            }
        }
    };
}

declare_factory!(
    /// Benign baseline: full delivery, no resets.
    FullDeliveryFactory,
    "full-delivery",
    WindowModel,
    |_ctx| BuiltAdversary::windowed(Box::new(FullDeliveryAdversary))
);

declare_factory!(
    /// Resets a rotating set of `t` processors every window.
    RotatingResetFactory,
    "rotating-reset",
    WindowModel,
    |_ctx| BuiltAdversary::windowed(Box::new(RotatingResetAdversary::new()))
);

declare_factory!(
    /// Resets the `t` most advanced processors every window.
    TargetedResetFactory,
    "targeted-reset",
    WindowModel,
    |_ctx| BuiltAdversary::windowed(Box::new(TargetedResetAdversary::new()))
);

declare_factory!(
    /// The split-vote balancing adversary (delivery exclusion only).
    SplitVoteFactory,
    "split-vote",
    WindowModel,
    |_ctx| BuiltAdversary::windowed(Box::new(SplitVoteAdversary::new()))
);

declare_factory!(
    /// The split-vote balancing adversary, also spending the reset budget.
    SplitVoteResetsFactory,
    "split-vote+resets",
    WindowModel,
    |_ctx| BuiltAdversary::windowed(Box::new(SplitVoteAdversary::with_resets()))
);

declare_factory!(
    /// Shows half the processors a zero-leaning view, half a one-leaning one.
    PolarizingFactory,
    "polarizing",
    WindowModel,
    |_ctx| BuiltAdversary::windowed(Box::new(PolarizingAdversary::new()))
);

declare_factory!(
    /// Benign baseline: fair round-robin delivery, no failures.
    FairAsyncFactory,
    "fair-round-robin",
    AsyncModel,
    |_ctx| BuiltAdversary::asynchronous(Box::new(FairAsyncAdversary::default()))
);

declare_factory!(
    /// The Theorem 17 balancing scheduler for forgetful protocols.
    LockstepBalancingFactory,
    "lockstep-balancing",
    AsyncModel,
    |_ctx| BuiltAdversary::asynchronous(Box::new(LockstepBalancingAdversary::new()))
);

declare_factory!(
    /// Crashes the targets (default: the first `t` processors) up front;
    /// their earlier messages may still be delivered.
    ScheduledCrashFactory,
    "scheduled-crash",
    AsyncModel,
    |ctx| BuiltAdversary::asynchronous(Box::new(ScheduledCrashAdversary::new(
        ctx.targets_or_first_t()
    )))
);

declare_factory!(
    /// Crashes the targets (default: the first `t` processors) and withholds
    /// everything they ever sent.
    WithholdingCrashFactory,
    "withholding-crash",
    AsyncModel,
    |ctx| BuiltAdversary::asynchronous(Box::new(ScheduledCrashAdversary::withholding(
        ctx.targets_or_first_t()
    )))
);

declare_factory!(
    /// Picks `t` random victims from the trial seed before the execution
    /// starts (the committee comparison's non-adaptive adversary).
    NonAdaptiveCrashFactory,
    "non-adaptive-crash",
    AsyncModel,
    |ctx| BuiltAdversary::asynchronous(Box::new(NonAdaptiveCrashAdversary::random(
        ctx.cfg.n(),
        ctx.cfg.t(),
        ctx.seed
    )))
);

declare_factory!(
    /// Adaptively silences the (publicly known) committee passed as targets,
    /// falling back to the first `t` processors when no targets are given so
    /// the adversary never silently degenerates to fair scheduling.
    CommitteeKillerFactory,
    "adaptive-committee-killer",
    AsyncModel,
    |ctx| BuiltAdversary::asynchronous(Box::new(AdaptiveCommitteeKiller::new(
        ctx.targets_or_first_t()
    )))
);

declare_factory!(
    /// Declares the first `t` processors Byzantine and equivocates on their
    /// value-carrying messages.
    EquivocatingFactory,
    "equivocating-byzantine",
    AsyncModel,
    |_ctx| BuiltAdversary::asynchronous(Box::new(EquivocatingAdversary::new()))
);

declare_factory!(
    /// Benign partial-synchrony baseline: GST 0, eager fair delivery.
    BenignEventualFactory,
    "benign-eventual",
    PartialSyncModel,
    |_ctx| BuiltAdversary::partial_sync(Box::new(BenignEventualAdversary::default()))
);

declare_factory!(
    /// Stalls everything until a late GST, then lets the model's enforced
    /// Δ-paced delivery finish the run: the strongest delay attack partial
    /// synchrony admits.
    GstProcrastinatorFactory,
    "gst-procrastinator",
    PartialSyncModel,
    |_ctx| BuiltAdversary::partial_sync(Box::new(GstProcrastinatorAdversary::default()))
);

declare_factory!(
    /// Omits the messages of the targets (default: the first `t` processors)
    /// under immediate synchrony — send-omission faults.
    PostGstOmissionFactory,
    "post-gst-omission",
    PartialSyncModel,
    |ctx| BuiltAdversary::partial_sync(Box::new(PostGstOmissionAdversary::new(
        ctx.targets_or_first_t(),
        PostGstOmissionAdversary::DEFAULT_DELTA
    )))
);

declare_factory!(
    /// Genome-decoded windowed schedule for the coverage-guided search: the
    /// per-trial seed is expanded into a random choice tape, so every trial
    /// of a campaign explores a different schedule (a seed-range sweep *is*
    /// the random-walk phase of the search).
    SearchWindowFactory,
    "search-window",
    WindowModel,
    |ctx| {
        let genome = Genome::from_seed(
            <WindowModel as agreement_sim::ExecutionModel>::descriptor().id(),
            ctx.seed,
            DEFAULT_TAPE_LEN,
        );
        BuiltAdversary::windowed(Box::new(
            SearchWindowAdversary::from_genome(&genome).expect("model tags match by construction"),
        ))
    }
);

declare_factory!(
    /// Genome-decoded asynchronous schedule for the coverage-guided search.
    SearchAsyncFactory,
    "search-async",
    AsyncModel,
    |ctx| {
        let genome = Genome::from_seed(
            <AsyncModel as agreement_sim::ExecutionModel>::descriptor().id(),
            ctx.seed,
            DEFAULT_TAPE_LEN,
        );
        BuiltAdversary::asynchronous(Box::new(
            SearchAsyncAdversary::from_genome(&genome).expect("model tags match by construction"),
        ))
    }
);

declare_factory!(
    /// Genome-decoded partial-synchrony schedule (GST/Δ/omissions decoded
    /// from the tape header) for the coverage-guided search.
    SearchPartialSyncFactory,
    "search-partial-sync",
    PartialSyncModel,
    |ctx| {
        let genome = Genome::from_seed(
            <PartialSyncModel as agreement_sim::ExecutionModel>::descriptor().id(),
            ctx.seed,
            DEFAULT_TAPE_LEN,
        );
        BuiltAdversary::partial_sync(Box::new(
            SearchPartialSyncAdversary::from_genome(&genome, &ctx.cfg)
                .expect("model tags match by construction"),
        ))
    }
);

/// Every adversary factory this crate ships, benign baselines included.
static REGISTRY: [&dyn AdversaryFactory; 19] = [
    &FullDeliveryFactory,
    &RotatingResetFactory,
    &TargetedResetFactory,
    &SplitVoteFactory,
    &SplitVoteResetsFactory,
    &PolarizingFactory,
    &FairAsyncFactory,
    &LockstepBalancingFactory,
    &ScheduledCrashFactory,
    &WithholdingCrashFactory,
    &NonAdaptiveCrashFactory,
    &CommitteeKillerFactory,
    &EquivocatingFactory,
    &BenignEventualFactory,
    &GstProcrastinatorFactory,
    &PostGstOmissionFactory,
    &SearchWindowFactory,
    &SearchAsyncFactory,
    &SearchPartialSyncFactory,
];

/// The full adversary registry: every paper adversary plus the benign
/// baselines, constructible from data by name.
pub fn registry() -> &'static [&'static dyn AdversaryFactory] {
    &REGISTRY
}

/// Looks an adversary factory up by its registry name.
pub fn find_adversary(name: &str) -> Option<&'static dyn AdversaryFactory> {
    registry().iter().copied().find(|f| f.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use agreement_sim::{ASYNC, PARTIAL_SYNC, WINDOWED};
    use std::collections::BTreeSet;

    fn ctx(n: usize, t: usize, seed: u64) -> AdversaryBuildCtx {
        AdversaryBuildCtx::new(SystemConfig::new(n, t).unwrap(), seed)
    }

    #[test]
    fn registry_names_are_unique_and_match_built_instances() {
        let mut seen = BTreeSet::new();
        for factory in registry() {
            assert!(
                seen.insert(factory.name()),
                "duplicate registry name {}",
                factory.name()
            );
            let built = factory.build(&ctx(7, 2, 1));
            assert_eq!(built.model(), factory.model(), "{}", factory.name());
            assert_eq!(built.name(), factory.name(), "factory name must match");
        }
        assert_eq!(registry().len(), 19);
    }

    #[test]
    fn registry_spans_all_three_models() {
        let models: BTreeSet<&str> = registry().iter().map(|f| f.model().id()).collect();
        assert!(models.contains("windowed"));
        assert!(models.contains("async"));
        assert!(models.contains("partial-sync"));
    }

    #[test]
    fn find_adversary_resolves_names_and_rejects_unknowns() {
        assert_eq!(find_adversary("split-vote").unwrap().name(), "split-vote");
        assert_eq!(find_adversary("fair-round-robin").unwrap().model(), &ASYNC);
        assert_eq!(
            find_adversary("gst-procrastinator").unwrap().model(),
            &PARTIAL_SYNC
        );
        assert_eq!(find_adversary("full-delivery").unwrap().model(), &WINDOWED);
        assert!(find_adversary("no-such-adversary").is_none());
    }

    #[test]
    fn model_specific_builders_unwrap_the_right_variant() {
        let c = ctx(7, 2, 3);
        let window = SplitVoteFactory.build_window(&c);
        assert_eq!(window.name(), "split-vote");
        let asynchronous = LockstepBalancingFactory.build_async(&c);
        assert_eq!(asynchronous.name(), "lockstep-balancing");
        let partial = GstProcrastinatorFactory
            .build(&c)
            .into_partial_sync()
            .expect("gst-procrastinator schedules partial synchrony");
        assert_eq!(partial.name(), "gst-procrastinator");
    }

    #[test]
    #[should_panic(expected = "schedules the async model")]
    fn window_builder_panics_for_async_factories() {
        let _ = FairAsyncFactory.build_window(&ctx(4, 1, 0));
    }

    #[test]
    #[should_panic(expected = "schedules the partial-sync model")]
    fn async_builder_panics_for_partial_sync_factories() {
        let _ = BenignEventualFactory.build_async(&ctx(4, 1, 0));
    }

    #[test]
    fn targeting_factories_respect_explicit_targets_and_defaults() {
        let default_ctx = ctx(9, 3, 5);
        let built = ScheduledCrashFactory.build(&default_ctx);
        assert_eq!(built.model(), &ASYNC);
        assert_eq!(
            default_ctx.targets_or_first_t(),
            vec![
                ProcessorId::new(0),
                ProcessorId::new(1),
                ProcessorId::new(2)
            ]
        );
        let explicit = ctx(9, 3, 5).with_targets(vec![ProcessorId::new(7)]);
        assert_eq!(explicit.targets_or_first_t(), vec![ProcessorId::new(7)]);
        // The committee killer shares the same fallback: with no targets it
        // attacks the first `t` processors rather than degenerating to a
        // benign fair scheduler.
        let killer = CommitteeKillerFactory.build(&default_ctx);
        assert_eq!(killer.model(), &ASYNC);
        assert_eq!(killer.name(), "adaptive-committee-killer");
        // The omission factory targets the same default victim set.
        let omission = PostGstOmissionFactory.build(&default_ctx);
        assert_eq!(omission.model(), &PARTIAL_SYNC);
        let omission = omission.into_partial_sync().expect("partial-sync model");
        assert_eq!(
            omission.omitted_senders(),
            &[
                ProcessorId::new(0),
                ProcessorId::new(1),
                ProcessorId::new(2)
            ]
        );
    }

    #[test]
    fn non_adaptive_factory_derives_victims_from_the_trial_seed() {
        let a = NonAdaptiveCrashFactory.build(&ctx(20, 5, 7));
        let b = NonAdaptiveCrashFactory.build(&ctx(20, 5, 7));
        // Same seed, same adversary: verified indirectly through the name and
        // the deterministic constructor it delegates to (see crash.rs tests).
        assert_eq!(a.name(), b.name());
    }
}

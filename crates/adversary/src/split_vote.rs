//! The split-vote (balancing) adversary: the concrete strategy behind the
//! paper's observation that the Section 3 protocol runs for exponential time
//! on adversarially split inputs.
//!
//! At the end of Section 3 the paper argues: *"with high probability per
//! round, the adversary can continually extend the execution to last one more
//! round without deciding by showing every processor an approximate split
//! between 0 and 1 messages, and then having all of them set their next bits
//! randomly"*. This adversary implements exactly that strategy:
//!
//! * it reads the fresh round messages in the buffer (full information),
//! * excludes up to `t` senders from the majority side so every processor sees
//!   the most balanced view the window constraints allow, and
//! * optionally also resets up to `t` processors holding the majority estimate
//!   so that the next window's sending pool is itself more balanced.
//!
//! Decisions therefore require a spontaneous `T2`-sized majority of the
//! processors' *random* re-sampled bits, which happens with probability
//! exponentially small in `n` — the execution stretches over exponentially
//! many windows in expectation.

use agreement_model::{Bit, Payload, ProcessorId};
use agreement_sim::{SystemView, Window, WindowAdversary};

use crate::delivery::balanced_senders;

/// The split-vote balancing adversary for the acceptable-window model.
#[derive(Debug, Clone, Copy)]
pub struct SplitVoteAdversary {
    use_resets: bool,
}

impl SplitVoteAdversary {
    /// Balancing by delivery exclusion only (no resets).
    pub fn new() -> Self {
        SplitVoteAdversary { use_resets: false }
    }

    /// Balancing by delivery exclusion *and* by resetting up to `t` processors
    /// that currently hold the majority estimate.
    pub fn with_resets() -> Self {
        SplitVoteAdversary { use_resets: true }
    }

    /// Whether the adversary also spends its reset budget on balancing.
    pub fn uses_resets(&self) -> bool {
        self.use_resets
    }

    /// The value advocated by each sender's fresh message this window, if any.
    fn fresh_values(view: &SystemView<'_>) -> Vec<Option<Bit>> {
        let n = view.n();
        let probe = ProcessorId::new(0);
        (0..n)
            .map(|s| {
                let sender = ProcessorId::new(s);
                view.buffer
                    .peek(sender, probe)
                    .and_then(Payload::advocated_value)
            })
            .collect()
    }
}

impl Default for SplitVoteAdversary {
    fn default() -> Self {
        SplitVoteAdversary::new()
    }
}

impl WindowAdversary for SplitVoteAdversary {
    fn name(&self) -> &'static str {
        if self.use_resets {
            "split-vote+resets"
        } else {
            "split-vote"
        }
    }

    fn next_window(&mut self, view: &SystemView<'_>) -> Window {
        let t = view.t();
        let values = Self::fresh_values(view);
        let (senders, _counts) = balanced_senders(&values, t);

        let resets = if self.use_resets && t > 0 {
            // Reset processors whose *current estimate* belongs to the majority
            // side, to thin out that side's votes in the next window.
            let zeros = view.estimate_count(Bit::Zero);
            let ones = view.estimate_count(Bit::One);
            if zeros == ones {
                Vec::new()
            } else {
                let majority = if zeros > ones { Bit::Zero } else { Bit::One };
                view.digests
                    .iter()
                    .enumerate()
                    .filter(|(i, d)| !view.crashed[*i] && d.estimate == Some(majority))
                    .map(|(i, _)| ProcessorId::new(i))
                    .take(t.min(zeros.abs_diff(ones)))
                    .collect()
            }
        } else {
            Vec::new()
        };

        Window::uniform(&view.config, resets, senders)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agreement_model::{InputAssignment, SystemConfig};
    use agreement_protocols::ResetTolerantBuilder;
    use agreement_sim::{run_windowed, FullDeliveryAdversary, RunLimits, WindowEngine};

    fn cfg13() -> SystemConfig {
        SystemConfig::with_sixth_resilience(13).unwrap()
    }

    #[test]
    fn split_inputs_are_not_decided_in_the_first_window() {
        let cfg = cfg13();
        let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
        let inputs = InputAssignment::evenly_split(13); // 7 zeros, 6 ones
        let mut engine = WindowEngine::new(cfg, inputs, &builder, 17);
        let mut adversary = SplitVoteAdversary::new();
        engine.step_window(&mut adversary);
        let outcome = engine.outcome();
        assert!(
            !outcome.any_decided(),
            "a balanced first window must not reach the T2 threshold"
        );
    }

    #[test]
    fn unanimous_inputs_defeat_the_balancer_immediately() {
        // With all inputs equal the imbalance is n, far beyond the exclusion
        // budget t, so the very first window decides (validity in action).
        let cfg = cfg13();
        let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
        let inputs = InputAssignment::unanimous(13, Bit::One);
        let outcome = run_windowed(
            cfg,
            inputs.clone(),
            &builder,
            &mut SplitVoteAdversary::new(),
            5,
            RunLimits::small(),
        );
        assert!(outcome.all_correct_decided());
        assert_eq!(outcome.decided_value(), Some(Bit::One));
        assert_eq!(outcome.first_decision_at, Some(1));
    }

    #[test]
    fn split_run_eventually_terminates_correctly() {
        let cfg = cfg13();
        let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
        let inputs = InputAssignment::evenly_split(13);
        let outcome = run_windowed(
            cfg,
            inputs.clone(),
            &builder,
            &mut SplitVoteAdversary::new(),
            23,
            RunLimits::windows(5_000),
        );
        assert!(outcome.all_correct_decided(), "measure-one termination");
        assert!(outcome.is_correct(&inputs), "measure-one correctness");
        assert!(
            outcome.first_decision_at.unwrap() > 1,
            "the balancer must have delayed the decision past the first window"
        );
    }

    #[test]
    fn balancer_is_slower_than_full_delivery_on_split_inputs() {
        let cfg = cfg13();
        let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
        let inputs = InputAssignment::evenly_split(13);
        let mut total_split = 0u64;
        let mut total_full = 0u64;
        for seed in 0..5 {
            let split = run_windowed(
                cfg,
                inputs.clone(),
                &builder,
                &mut SplitVoteAdversary::new(),
                seed,
                RunLimits::windows(5_000),
            );
            let full = run_windowed(
                cfg,
                inputs.clone(),
                &builder,
                &mut FullDeliveryAdversary,
                seed,
                RunLimits::windows(5_000),
            );
            total_split += split.all_decided_at.unwrap_or(5_000);
            total_full += full.all_decided_at.unwrap_or(5_000);
        }
        assert!(
            total_split >= total_full,
            "balancing must not make decisions come faster (split {total_split} vs full {total_full})"
        );
    }

    #[test]
    fn reset_variant_terminates_correctly_and_uses_resets() {
        let cfg = cfg13();
        let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
        let inputs = InputAssignment::evenly_split(13);
        let outcome = run_windowed(
            cfg,
            inputs.clone(),
            &builder,
            &mut SplitVoteAdversary::with_resets(),
            31,
            RunLimits::windows(20_000),
        );
        assert!(outcome.all_correct_decided());
        assert!(outcome.is_correct(&inputs));
        assert!(
            outcome.resets_performed > 0,
            "the reset variant should spend resets"
        );
    }

    #[test]
    fn adversary_names_distinguish_variants() {
        assert_eq!(SplitVoteAdversary::new().name(), "split-vote");
        assert_eq!(
            SplitVoteAdversary::with_resets().name(),
            "split-vote+resets"
        );
        assert!(SplitVoteAdversary::with_resets().uses_resets());
        assert!(!SplitVoteAdversary::default().uses_resets());
    }
}

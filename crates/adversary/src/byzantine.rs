//! A Byzantine message-corruption adversary for the fully asynchronous model.
//!
//! The paper's Byzantine adversary may corrupt the messages sent by up to `t`
//! processors — in particular it can make a corrupted processor *lie about its
//! local random coins* and show different values to different recipients
//! (equivocation). [`EquivocatingAdversary`] implements that behaviour: it
//! declares the first `t` processors corrupted and rewrites each of their
//! value-carrying messages so that even-indexed recipients see `Zero` and
//! odd-indexed recipients see `One`, scheduling fairly otherwise.
//!
//! Bracha's protocol (via reliable broadcast) is designed to withstand exactly
//! this; the tests confirm correct runs survive equivocation for `t < n/3`.

use std::collections::BTreeSet;

use agreement_model::{Bit, Payload, ProcessorId};
use agreement_sim::{AsyncAction, AsyncAdversary, SystemView};

/// Declares the first `t` processors Byzantine and equivocates on their
/// value-carrying messages.
#[derive(Debug, Clone, Default)]
pub struct EquivocatingAdversary {
    corrupted_declared: usize,
    corrupted_heads: BTreeSet<(ProcessorId, ProcessorId)>,
    cursor: usize,
}

impl EquivocatingAdversary {
    /// Creates the adversary; the number of corrupted processors is taken from
    /// the system view's fault budget at run time.
    pub fn new() -> Self {
        EquivocatingAdversary::default()
    }

    /// The equivocated value shown to `recipient`.
    fn lie_for(recipient: ProcessorId) -> Bit {
        if recipient.index().is_multiple_of(2) {
            Bit::Zero
        } else {
            Bit::One
        }
    }

    /// Rewrites `payload` so that its advocated value becomes `value`, if the
    /// payload carries one; returns `None` when there is nothing to corrupt.
    fn corrupted_payload(payload: &Payload, value: Bit) -> Option<Payload> {
        match payload {
            Payload::Report { round, .. } => Some(Payload::Report {
                round: *round,
                value,
            }),
            Payload::Proposal { round, .. } => Some(Payload::Proposal {
                round: *round,
                value: Some(value),
            }),
            Payload::BrachaVote { round, phase, .. } => Some(Payload::BrachaVote {
                round: *round,
                phase: *phase,
                value: Some(value),
            }),
            Payload::Rbc {
                step,
                origin,
                broadcast_id,
                inner,
            } => Self::corrupted_payload(inner, value).map(|corrupted| Payload::Rbc {
                step: *step,
                origin: *origin,
                broadcast_id: *broadcast_id,
                inner: Box::new(corrupted),
            }),
            _ => None,
        }
    }
}

impl AsyncAdversary for EquivocatingAdversary {
    fn name(&self) -> &'static str {
        "equivocating-byzantine"
    }

    fn next_action(&mut self, view: &SystemView<'_>) -> AsyncAction {
        // First spend the fault budget declaring the corrupted set.
        if self.corrupted_declared < view.t() {
            let id = ProcessorId::new(self.corrupted_declared);
            self.corrupted_declared += 1;
            return AsyncAction::CorruptProcessor(id);
        }
        let Some((next_cursor, from, to)) = view.next_pending_channel(self.cursor) else {
            return AsyncAction::Halt;
        };
        // Corrupt the head of a corrupted sender's channel exactly once (the
        // cursor stays put), then deliver it on the next visit.
        if from.index() < view.t() && !self.corrupted_heads.contains(&(from, to)) {
            if let Some(head) = view.buffer.peek(from, to) {
                if let Some(corrupted) = Self::corrupted_payload(head, Self::lie_for(to)) {
                    self.corrupted_heads.insert((from, to));
                    return AsyncAction::Corrupt {
                        from,
                        to,
                        payload: corrupted,
                    };
                }
            }
        }
        self.corrupted_heads.remove(&(from, to));
        self.cursor = next_cursor;
        AsyncAction::Deliver { from, to }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agreement_model::{InputAssignment, SystemConfig};
    use agreement_protocols::{BenOrBuilder, BrachaBuilder};
    use agreement_sim::{run_async, RunLimits};

    #[test]
    fn corrupted_payload_rewrites_value_carriers_only() {
        let report = Payload::Report {
            round: 3,
            value: Bit::Zero,
        };
        let corrupted = EquivocatingAdversary::corrupted_payload(&report, Bit::One).unwrap();
        assert_eq!(corrupted.advocated_value(), Some(Bit::One));
        assert_eq!(corrupted.round(), Some(3));

        let opaque = Payload::Opaque(vec![1, 2, 3]);
        assert!(EquivocatingAdversary::corrupted_payload(&opaque, Bit::One).is_none());

        let rbc = Payload::Rbc {
            step: agreement_model::RbcStep::Echo,
            origin: ProcessorId::new(0),
            broadcast_id: 5,
            inner: Box::new(report),
        };
        let corrupted = EquivocatingAdversary::corrupted_payload(&rbc, Bit::One).unwrap();
        assert_eq!(corrupted.advocated_value(), Some(Bit::One));
    }

    #[test]
    fn lies_alternate_by_recipient_parity() {
        assert_eq!(
            EquivocatingAdversary::lie_for(ProcessorId::new(0)),
            Bit::Zero
        );
        assert_eq!(
            EquivocatingAdversary::lie_for(ProcessorId::new(1)),
            Bit::One
        );
    }

    #[test]
    fn bracha_stays_safe_under_equivocation_with_unanimous_inputs() {
        // n = 7, t = 2 < n/3: whatever the equivocating processors do, Bracha
        // must never disagree and never invent a value. (This build of Bracha
        // omits the message-validation step, so a worst-case Byzantine
        // scheduler may delay termination indefinitely — see the module
        // documentation of `agreement_protocols::Bracha` — which is why this
        // test checks safety over a bounded prefix rather than termination.)
        let cfg = SystemConfig::new(7, 2).unwrap();
        let inputs = InputAssignment::unanimous(7, Bit::One);
        let outcome = run_async(
            cfg,
            inputs.clone(),
            &BrachaBuilder::new(),
            &mut EquivocatingAdversary::new(),
            21,
            RunLimits::steps(60_000),
        );
        assert!(outcome.agreement_holds(), "Bracha must never disagree");
        assert!(
            outcome.validity_holds(&inputs),
            "Bracha must never invent a value"
        );
        assert!(outcome.violations.is_empty());
        assert!(
            outcome.trace.corruption_count() > 0,
            "the adversary must actually have equivocated"
        );
    }

    #[test]
    fn equivocation_is_recorded_in_the_trace() {
        let cfg = SystemConfig::new(7, 2).unwrap();
        let inputs = InputAssignment::unanimous(7, Bit::One);
        let outcome = run_async(
            cfg,
            inputs.clone(),
            &BrachaBuilder::new(),
            &mut EquivocatingAdversary::new(),
            4,
            RunLimits::steps(20_000),
        );
        assert!(
            outcome.trace.corruption_count() > 0,
            "the adversary should have corrupted at least one message"
        );
    }

    #[test]
    fn ben_or_with_unanimous_inputs_also_survives_mild_equivocation() {
        // Ben-Or's crash-model thresholds happen to mask 1 liar out of 9 for
        // unanimous inputs; this exercises the adversary against a second
        // protocol (it is not a general Byzantine-resilience claim).
        let cfg = SystemConfig::new(9, 1).unwrap();
        let inputs = InputAssignment::unanimous(9, Bit::One);
        let outcome = run_async(
            cfg,
            inputs.clone(),
            &BenOrBuilder::new(),
            &mut EquivocatingAdversary::new(),
            13,
            RunLimits::steps(500_000),
        );
        assert!(outcome.agreement_holds());
        assert!(outcome.validity_holds(&inputs));
    }
}

//! Crash-failure adversaries for the fully asynchronous model, including the
//! non-adaptive adversary used by the committee comparison (experiment E7) and
//! the adaptive "committee killer" the paper's introduction describes.

use agreement_model::{ProcessorId, ProcessorRng};
use agreement_sim::{AsyncAction, AsyncAdversary, SystemView};

/// Crashes an explicit set of processors at the start of the execution and
/// schedules (round-robin) fairly afterwards.
///
/// By default messages the victims sent *before* crashing may still be
/// delivered, as the crash model allows. [`ScheduledCrashAdversary::withholding`]
/// additionally suppresses every message sent by a victim that was actually
/// crashed — also permitted, since the model only obliges delivery of messages
/// from processors that take infinitely many steps. Victims beyond the fault
/// budget are never crashed, so their messages keep flowing.
#[derive(Debug, Clone)]
pub struct ScheduledCrashAdversary {
    victims: Vec<ProcessorId>,
    next_victim: usize,
    withhold_from_victims: bool,
    cursor: usize,
}

impl ScheduledCrashAdversary {
    /// Crashes `victims` (in order) before delivering anything; messages the
    /// victims already sent may still be delivered.
    pub fn new(victims: Vec<ProcessorId>) -> Self {
        ScheduledCrashAdversary {
            victims,
            next_victim: 0,
            withhold_from_victims: false,
            cursor: 0,
        }
    }

    /// Like [`ScheduledCrashAdversary::new`], but additionally withholds every
    /// message sent by a victim, so the victims are silenced entirely.
    pub fn withholding(victims: Vec<ProcessorId>) -> Self {
        ScheduledCrashAdversary {
            victims,
            next_victim: 0,
            withhold_from_victims: true,
            cursor: 0,
        }
    }

    /// The processors this adversary crashes.
    pub fn victims(&self) -> &[ProcessorId] {
        &self.victims
    }

    fn deliver_fairly(&mut self, view: &SystemView<'_>) -> AsyncAction {
        let admit = |from: ProcessorId, _to: ProcessorId| {
            !(self.withhold_from_victims
                && view.crashed[from.index()]
                && self.victims.contains(&from))
        };
        match view.next_pending_channel_where(self.cursor, admit) {
            Some((next_cursor, from, to)) => {
                self.cursor = next_cursor;
                AsyncAction::Deliver { from, to }
            }
            None => AsyncAction::Halt,
        }
    }
}

impl AsyncAdversary for ScheduledCrashAdversary {
    fn name(&self) -> &'static str {
        if self.withhold_from_victims {
            "withholding-crash"
        } else {
            "scheduled-crash"
        }
    }

    fn next_action(&mut self, view: &SystemView<'_>) -> AsyncAction {
        if self.next_victim < self.victims.len() {
            let victim = self.victims[self.next_victim];
            self.next_victim += 1;
            return AsyncAction::Crash(victim);
        }
        self.deliver_fairly(view)
    }
}

/// The non-adaptive crash adversary: it must pick its `t` victims *before*
/// the execution starts (from a private random seed), without seeing the
/// protocol's random choices — in particular without knowing which processors
/// will end up on a committee.
#[derive(Debug, Clone)]
pub struct NonAdaptiveCrashAdversary {
    inner: ScheduledCrashAdversary,
}

impl NonAdaptiveCrashAdversary {
    /// Picks `count` distinct victims uniformly at random from `seed` among
    /// `n` processors. The victims are silenced entirely (their messages are
    /// withheld), giving the adversary its best shot without adaptivity.
    pub fn random(n: usize, count: usize, seed: u64) -> Self {
        let mut rng = ProcessorRng::labelled(seed, 0xAD5E);
        let victims = rng
            .choose_distinct(n, count.min(n))
            .into_iter()
            .map(ProcessorId::new)
            .collect();
        NonAdaptiveCrashAdversary {
            inner: ScheduledCrashAdversary::withholding(victims),
        }
    }

    /// The victims chosen ahead of time.
    pub fn victims(&self) -> &[ProcessorId] {
        self.inner.victims()
    }
}

impl AsyncAdversary for NonAdaptiveCrashAdversary {
    fn name(&self) -> &'static str {
        "non-adaptive-crash"
    }

    fn next_action(&mut self, view: &SystemView<'_>) -> AsyncAction {
        self.inner.next_action(view)
    }
}

/// The adaptive committee killer: it waits until the final committee is
/// determined (here: it is public from the start) and crashes committee
/// members first — silencing them entirely — spending the whole fault budget
/// on them. This is the strategy the paper's introduction uses to argue that
/// committee-based protocols cannot resist adaptive adversaries.
#[derive(Debug, Clone)]
pub struct AdaptiveCommitteeKiller {
    inner: ScheduledCrashAdversary,
}

impl AdaptiveCommitteeKiller {
    /// Targets the given committee (in order). Only the first `t` will
    /// actually be crashed — the engine enforces the budget — and only the
    /// crashed targets have their messages withheld; non-crashed targets keep
    /// participating normally.
    pub fn new(committee: Vec<ProcessorId>) -> Self {
        AdaptiveCommitteeKiller {
            inner: ScheduledCrashAdversary::withholding(committee),
        }
    }

    /// The committee members this adversary goes after.
    pub fn targets(&self) -> &[ProcessorId] {
        self.inner.victims()
    }
}

impl AsyncAdversary for AdaptiveCommitteeKiller {
    fn name(&self) -> &'static str {
        "adaptive-committee-killer"
    }

    fn next_action(&mut self, view: &SystemView<'_>) -> AsyncAction {
        self.inner.next_action(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agreement_model::{Bit, InputAssignment, SystemConfig};
    use agreement_protocols::{BenOrBuilder, CommitteeBuilder};
    use agreement_sim::{run_async, RunLimits};

    #[test]
    fn scheduled_crash_kills_exactly_its_victims_and_ben_or_survives() {
        let cfg = SystemConfig::new(7, 3).unwrap();
        let inputs = InputAssignment::unanimous(7, Bit::One);
        let mut adversary =
            ScheduledCrashAdversary::new(vec![ProcessorId::new(0), ProcessorId::new(1)]);
        let outcome = run_async(
            cfg,
            inputs.clone(),
            &BenOrBuilder::new(),
            &mut adversary,
            5,
            RunLimits::small(),
        );
        assert_eq!(outcome.crashes_performed, 2);
        assert!(outcome.crashed[0] && outcome.crashed[1]);
        assert!(outcome.all_correct_decided());
        assert_eq!(outcome.decided_value(), Some(Bit::One));
        assert!(outcome.is_correct(&inputs));
    }

    #[test]
    fn withholding_crash_silences_victims_but_ben_or_still_decides() {
        // n = 7, t = 2 silenced processors: the quorum n - t = 5 is reachable
        // from the 5 survivors alone.
        let cfg = SystemConfig::new(7, 2).unwrap();
        let inputs = InputAssignment::unanimous(7, Bit::Zero);
        let mut adversary =
            ScheduledCrashAdversary::withholding(vec![ProcessorId::new(5), ProcessorId::new(6)]);
        let outcome = run_async(
            cfg,
            inputs.clone(),
            &BenOrBuilder::new(),
            &mut adversary,
            8,
            RunLimits::small(),
        );
        assert!(outcome.all_correct_decided());
        assert!(outcome.is_correct(&inputs));
        // No message from a silenced victim was ever delivered.
        let victims = [ProcessorId::new(5), ProcessorId::new(6)];
        assert!(outcome
            .trace
            .stored()
            .iter()
            .all(|e| !matches!(e, agreement_model::TraceEvent::Delivered { from, .. } if victims.contains(from))));
    }

    #[test]
    fn non_adaptive_adversary_is_deterministic_per_seed() {
        let a = NonAdaptiveCrashAdversary::random(20, 5, 7);
        let b = NonAdaptiveCrashAdversary::random(20, 5, 7);
        assert_eq!(a.victims(), b.victims());
        assert_eq!(a.victims().len(), 5);
        let c = NonAdaptiveCrashAdversary::random(20, 5, 8);
        assert_ne!(a.victims(), c.victims());
    }

    #[test]
    fn non_adaptive_adversary_rarely_hits_a_small_committee() {
        // With n = 30, t = 3 random victims and a committee of 5, the committee
        // usually keeps enough correct members; the committee protocol then decides.
        let cfg = SystemConfig::new(30, 3).unwrap();
        let committee_builder = CommitteeBuilder::random(&cfg, 5, 12345);
        let inputs = InputAssignment::unanimous(30, Bit::Zero);
        let mut successes = 0;
        for seed in 0..10u64 {
            let mut adversary = NonAdaptiveCrashAdversary::random(30, 3, seed);
            let outcome = run_async(
                cfg,
                inputs.clone(),
                &committee_builder,
                &mut adversary,
                seed,
                RunLimits::small(),
            );
            if outcome.all_correct_decided() && outcome.is_correct(&inputs) {
                successes += 1;
            }
        }
        assert!(
            successes >= 7,
            "the non-adaptive adversary should usually fail to break the committee (got {successes}/10)"
        );
    }

    #[test]
    fn adaptive_killer_stalls_the_committee_protocol() {
        // Same system, but the adversary knows the committee, crashes three of
        // its five members (its whole budget) and withholds their messages.
        let cfg = SystemConfig::new(30, 3).unwrap();
        let committee_builder = CommitteeBuilder::random(&cfg, 5, 12345);
        let inputs = InputAssignment::unanimous(30, Bit::Zero);
        let mut adversary = AdaptiveCommitteeKiller::new(committee_builder.committee().to_vec());
        assert_eq!(adversary.targets().len(), 5);
        let outcome = run_async(
            cfg,
            inputs.clone(),
            &committee_builder,
            &mut adversary,
            99,
            RunLimits::small(),
        );
        // Only 2 of 5 committee members survive, below the committee's internal
        // quorum of 4, so no announcement is ever made and nobody decides: the
        // hallmark failure of non-adaptively-secure designs.
        assert!(!outcome.all_correct_decided());
        assert!(!outcome.any_decided());
        assert_eq!(outcome.crashes_performed, 3);
    }

    #[test]
    fn adaptive_killer_does_not_break_quorum_based_protocols() {
        // Against Ben-Or (quorum-based, no committee), crashing any t = 3
        // processors changes nothing: the rest still decide.
        let cfg = SystemConfig::new(7, 3).unwrap();
        let inputs = InputAssignment::unanimous(7, Bit::One);
        let mut adversary = AdaptiveCommitteeKiller::new(vec![
            ProcessorId::new(0),
            ProcessorId::new(1),
            ProcessorId::new(2),
        ]);
        let outcome = run_async(
            cfg,
            inputs.clone(),
            &BenOrBuilder::new(),
            &mut adversary,
            3,
            RunLimits::small(),
        );
        assert!(outcome.all_correct_decided());
        assert!(outcome.is_correct(&inputs));
    }
}

//! Genome-driven search adversaries: the decode side of the schedule-space
//! search (`agreement-search`).
//!
//! The search treats an adversary's entire choice sequence — delivery
//! ordering, stall/corrupt/crash decisions, crash timing, and for partial
//! synchrony the GST/Δ placement — as a [`Genome`]: a bounded byte tape
//! tagged with the execution model it drives. One decoder per model turns the
//! tape into live scheduling decisions:
//!
//! * [`SearchWindowAdversary`] decodes acceptable windows (reset set +
//!   per-processor sender exclusions) that are valid **by construction**, so
//!   no tape can trip the window engine's Definition 1 validation panic.
//! * [`SearchAsyncAdversary`] decodes per-step async actions: round-robin
//!   delivery with decoded skips, blind "stall" deliveries that burn a step,
//!   crashes, Byzantine corruption declarations and forged payloads. Illegal
//!   decodes (over-budget crashes, corrupting an honest sender) are *allowed
//!   out* — the execution core refuses them defensively, so they are no-ops,
//!   never panics.
//! * [`SearchPartialSyncAdversary`] decodes a constant GST/Δ/omission header
//!   up front, then per-step deliver/stall/crash decisions.
//!
//! Every decoder degrades gracefully when the tape runs out: the window model
//! falls back to full-delivery windows, the async and partial-sync models to
//! fair round-robin delivery. **Every genome is therefore a valid schedule**
//! — the search layer can mutate tapes arbitrarily without constructing an
//! illegal adversary.
//!
//! Construction from an explicit genome is strict about models: a genome
//! tagged `async` handed to the windowed decoder is a corrupted artifact or a
//! caller bug, and silently falling back to a benign schedule would make the
//! mistake invisible (the same failure class as the committee killer's old
//! fair-scheduling fallback). [`SearchWindowAdversary::from_genome`] and
//! friends return [`GenomeError::ModelMismatch`] instead, and
//! [`build_from_genome`] rejects unknown model tags loudly.

use std::error::Error;
use std::fmt;

use agreement_model::{Bit, Payload, ProcessorId, ProcessorRng, SystemConfig};
use agreement_sim::{
    AsyncAction, AsyncAdversary, BuiltAdversary, PartialSyncAction, PartialSyncAdversary,
    SystemView, Window, WindowAdversary, ASYNC, PARTIAL_SYNC, WINDOWED,
};

/// Tape length of the seed-derived genomes built by the factory entries: long
/// enough for tens of decoded windows (or hundreds of async steps) of
/// adversarial interference, short enough that random tapes stay cheap to
/// store and mutate. After the tape runs out the decoders fall back to benign
/// scheduling, so the prefix is where all the adversarial power lives.
pub const DEFAULT_TAPE_LEN: usize = 512;

/// RNG stream label for [`Genome::from_seed`] (disjoint from every processor
/// and adversary stream already in use).
const GENOME_STREAM: u64 = 0x005E_A2C4_0001;

/// A seed-addressable adversary strategy: a bounded byte tape tagged with the
/// model descriptor id (`windowed`, `async`, `partial-sync`) it drives.
///
/// The tape is pure data — hex-serializable, mutable byte-by-byte, and
/// decodable into a valid schedule no matter its contents. Equality is
/// structural, which is what the search corpus de-duplicates on.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Genome {
    model: String,
    tape: Vec<u8>,
}

impl Genome {
    /// A genome from an explicit model tag and tape.
    pub fn new(model: impl Into<String>, tape: Vec<u8>) -> Self {
        Genome {
            model: model.into(),
            tape,
        }
    }

    /// Derives a `len`-byte random tape from a seed (the "random walk" side
    /// of the search, and what the registry factories build per trial).
    pub fn from_seed(model: &str, seed: u64, len: usize) -> Self {
        let mut rng = ProcessorRng::labelled(seed, GENOME_STREAM);
        let tape = (0..len).map(|_| rng.range(256) as u8).collect();
        Genome::new(model, tape)
    }

    /// The model descriptor id this genome is tagged with.
    pub fn model(&self) -> &str {
        &self.model
    }

    /// The raw choice tape.
    pub fn tape(&self) -> &[u8] {
        &self.tape
    }

    /// Replaces the tape, keeping the model tag (the mutation entry point).
    pub fn with_tape(&self, tape: Vec<u8>) -> Self {
        Genome::new(self.model.clone(), tape)
    }

    /// Serializes the tape as lowercase hex (the artifact wire format).
    pub fn to_hex(&self) -> String {
        let mut out = String::with_capacity(self.tape.len() * 2);
        for byte in &self.tape {
            out.push_str(&format!("{byte:02x}"));
        }
        out
    }

    /// Parses a genome back from a model tag and a hex tape.
    ///
    /// # Errors
    ///
    /// Returns [`GenomeError::BadHex`] on odd length or non-hex characters.
    pub fn from_hex(model: impl Into<String>, hex: &str) -> Result<Self, GenomeError> {
        if !hex.len().is_multiple_of(2) {
            return Err(GenomeError::BadHex {
                detail: format!("odd hex length {}", hex.len()),
            });
        }
        let mut tape = Vec::with_capacity(hex.len() / 2);
        for i in (0..hex.len()).step_by(2) {
            let pair = &hex[i..i + 2];
            let byte = u8::from_str_radix(pair, 16).map_err(|_| GenomeError::BadHex {
                detail: format!("invalid hex pair '{pair}' at offset {i}"),
            })?;
            tape.push(byte);
        }
        Ok(Genome::new(model, tape))
    }
}

/// Why a genome could not be turned into an adversary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenomeError {
    /// The genome's model tag names a model this decoder does not drive.
    ModelMismatch {
        /// The model tag the genome carries.
        genome: String,
        /// The model descriptor id the decoder drives.
        expected: &'static str,
    },
    /// The genome's model tag names no registered execution model at all.
    UnknownModel {
        /// The unrecognized model tag.
        model: String,
    },
    /// The hex tape could not be parsed.
    BadHex {
        /// What was wrong with the hex string.
        detail: String,
    },
}

impl fmt::Display for GenomeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenomeError::ModelMismatch { genome, expected } => write!(
                f,
                "genome is tagged for model '{genome}' but this decoder drives '{expected}' — \
                 refusing to run it as a benign schedule"
            ),
            GenomeError::UnknownModel { model } => {
                write!(
                    f,
                    "genome model tag '{model}' names no registered execution model"
                )
            }
            GenomeError::BadHex { detail } => write!(f, "genome hex tape is invalid: {detail}"),
        }
    }
}

impl Error for GenomeError {}

/// A forward-only reader over a genome tape. Every read returns `None` once
/// the tape is exhausted; the decoders translate that into their benign
/// fallback, so exhaustion is a schedule feature, not an error.
#[derive(Debug, Clone)]
pub struct TapeReader {
    tape: Vec<u8>,
    pos: usize,
}

impl TapeReader {
    /// A reader at the start of `tape`.
    pub fn new(tape: Vec<u8>) -> Self {
        TapeReader { tape, pos: 0 }
    }

    /// The next tape byte, or `None` at the end.
    pub fn byte(&mut self) -> Option<u8> {
        let byte = *self.tape.get(self.pos)?;
        self.pos += 1;
        Some(byte)
    }

    /// Two tape bytes folded little-endian into a `u16`.
    pub fn u16(&mut self) -> Option<u16> {
        let lo = self.byte()?;
        let hi = self.byte()?;
        Some(u16::from_le_bytes([lo, hi]))
    }

    /// `true` once every byte has been consumed.
    pub fn exhausted(&self) -> bool {
        self.pos >= self.tape.len()
    }
}

/// Decodes `k` *distinct* processor ids from the tape. Collisions are
/// resolved by probing to the next unchosen id, so any byte sequence yields a
/// valid distinct set (`k <= n` always holds at the call sites: `k <= t < n`).
fn distinct_ids(reader: &mut TapeReader, n: usize, k: usize) -> Option<Vec<ProcessorId>> {
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    for _ in 0..k {
        let mut index = reader.byte()? as usize % n;
        while chosen.contains(&index) {
            index = (index + 1) % n;
        }
        chosen.push(index);
    }
    Some(chosen.into_iter().map(ProcessorId::new).collect())
}

/// The genome decoder for the strongly adaptive windowed model.
///
/// Each window consumes `1 + r + n * (1 + e_i)` tape bytes: a reset count
/// `r <= t` with `r` distinct reset ids, then per processor an exclusion
/// count `e_i <= t` with `e_i` distinct excluded senders. Windows built this
/// way satisfy Definition 1 by construction; on tape exhaustion every further
/// window is full delivery.
#[derive(Debug, Clone)]
pub struct SearchWindowAdversary {
    reader: TapeReader,
}

impl SearchWindowAdversary {
    /// A decoder over a raw tape.
    pub fn from_tape(tape: Vec<u8>) -> Self {
        SearchWindowAdversary {
            reader: TapeReader::new(tape),
        }
    }

    /// A decoder from a tagged genome.
    ///
    /// # Errors
    ///
    /// Returns [`GenomeError::ModelMismatch`] when the genome is tagged for a
    /// different model — a corrupted artifact must fail loudly, not run as a
    /// benign windowed schedule.
    pub fn from_genome(genome: &Genome) -> Result<Self, GenomeError> {
        if genome.model() != WINDOWED.id() {
            return Err(GenomeError::ModelMismatch {
                genome: genome.model().to_string(),
                expected: WINDOWED.id(),
            });
        }
        Ok(SearchWindowAdversary::from_tape(genome.tape().to_vec()))
    }

    fn decode_window(&mut self, view: &SystemView<'_>) -> Option<Window> {
        let n = view.n();
        let t = view.t();
        let reset_count = self.reader.byte()? as usize % (t + 1);
        let resets = distinct_ids(&mut self.reader, n, reset_count)?;
        let all: Vec<ProcessorId> = ProcessorId::all(n).collect();
        let mut deliveries = Vec::with_capacity(n);
        for _ in 0..n {
            let excluded_count = self.reader.byte()? as usize % (t + 1);
            let excluded = distinct_ids(&mut self.reader, n, excluded_count)?;
            let senders: Vec<ProcessorId> = all
                .iter()
                .copied()
                .filter(|p| !excluded.contains(p))
                .collect();
            deliveries.push(senders);
        }
        let window = Window::new(resets, deliveries);
        debug_assert!(window.validate(&view.config).is_ok());
        Some(window)
    }
}

impl WindowAdversary for SearchWindowAdversary {
    fn name(&self) -> &'static str {
        "search-window"
    }

    fn next_window(&mut self, view: &SystemView<'_>) -> Window {
        self.decode_window(view)
            .unwrap_or_else(|| Window::full_delivery(&view.config))
    }
}

/// The genome decoder for the fully asynchronous model.
///
/// Per step one op byte selects the action class (delivery-heavy so random
/// tapes make progress), with follow-up bytes decoding its operands:
///
/// * ops 0–8: deliver, skipping 0–3 pending channels past the round-robin
///   cursor (the high op bits pick the skip);
/// * op 9: a "blind" delivery on a decoded channel — a no-op stall when that
///   channel is empty, which is how an async genome withholds progress;
/// * ops 10–11: crash a decoded processor (the core refuses over-budget
///   crashes, so hostile tapes stay legal);
/// * op 12: declare a decoded processor Byzantine-corrupted;
/// * ops 13–15: forge a `Report` payload on a declared-corrupted sender's
///   channel (decoded round/value), degrading to a blind delivery while no
///   corruption has been declared.
///
/// On tape exhaustion the decoder becomes a fair round-robin scheduler and
/// halts once nothing is pending.
#[derive(Debug, Clone)]
pub struct SearchAsyncAdversary {
    reader: TapeReader,
    cursor: usize,
    corrupted: Vec<ProcessorId>,
}

impl SearchAsyncAdversary {
    /// A decoder over a raw tape.
    pub fn from_tape(tape: Vec<u8>) -> Self {
        SearchAsyncAdversary {
            reader: TapeReader::new(tape),
            cursor: 0,
            corrupted: Vec::new(),
        }
    }

    /// A decoder from a tagged genome.
    ///
    /// # Errors
    ///
    /// Returns [`GenomeError::ModelMismatch`] when the genome is tagged for a
    /// different model.
    pub fn from_genome(genome: &Genome) -> Result<Self, GenomeError> {
        if genome.model() != ASYNC.id() {
            return Err(GenomeError::ModelMismatch {
                genome: genome.model().to_string(),
                expected: ASYNC.id(),
            });
        }
        Ok(SearchAsyncAdversary::from_tape(genome.tape().to_vec()))
    }

    /// Fair round-robin delivery from the persistent cursor; `None` when no
    /// channel is pending (the adversary has nothing left to schedule).
    fn deliver_skipping(
        &mut self,
        view: &SystemView<'_>,
        skip: usize,
    ) -> Option<(ProcessorId, ProcessorId)> {
        let mut cursor = self.cursor;
        let mut found = None;
        for _ in 0..=skip {
            match view.next_pending_channel(cursor) {
                Some((next, from, to)) => {
                    cursor = next;
                    found = Some((from, to));
                }
                None => break,
            }
        }
        if found.is_some() {
            self.cursor = cursor;
        }
        found
    }

    fn blind_channel(&mut self, n: usize) -> Option<(ProcessorId, ProcessorId)> {
        let from = ProcessorId::new(self.reader.byte()? as usize % n);
        let to = ProcessorId::new(self.reader.byte()? as usize % n);
        Some((from, to))
    }

    fn decode_action(&mut self, view: &SystemView<'_>) -> Option<AsyncAction> {
        let n = view.n();
        let op = self.reader.byte()?;
        let action = match op % 16 {
            0..=8 => {
                let skip = (op >> 4) as usize % 4;
                match self.deliver_skipping(view, skip) {
                    Some((from, to)) => AsyncAction::Deliver { from, to },
                    None => AsyncAction::Halt,
                }
            }
            9 => {
                let (from, to) = self.blind_channel(n)?;
                AsyncAction::Deliver { from, to }
            }
            10 | 11 => AsyncAction::Crash(ProcessorId::new(self.reader.byte()? as usize % n)),
            12 => {
                let id = ProcessorId::new(self.reader.byte()? as usize % n);
                if !self.corrupted.contains(&id) {
                    self.corrupted.push(id);
                }
                AsyncAction::CorruptProcessor(id)
            }
            _ => {
                if self.corrupted.is_empty() {
                    let (from, to) = self.blind_channel(n)?;
                    AsyncAction::Deliver { from, to }
                } else {
                    let from = self.corrupted[self.reader.byte()? as usize % self.corrupted.len()];
                    let to = ProcessorId::new(self.reader.byte()? as usize % n);
                    let round = u64::from(self.reader.byte()?) % 64;
                    let value = if self.reader.byte()? % 2 == 0 {
                        Bit::Zero
                    } else {
                        Bit::One
                    };
                    AsyncAction::Corrupt {
                        from,
                        to,
                        payload: Payload::Report { round, value },
                    }
                }
            }
        };
        Some(action)
    }
}

impl AsyncAdversary for SearchAsyncAdversary {
    fn name(&self) -> &'static str {
        "search-async"
    }

    fn next_action(&mut self, view: &SystemView<'_>) -> AsyncAction {
        self.decode_action(view)
            .unwrap_or_else(|| match self.deliver_skipping(view, 0) {
                Some((from, to)) => AsyncAction::Deliver { from, to },
                None => AsyncAction::Halt,
            })
    }
}

/// The genome decoder for the partial-synchrony model.
///
/// The tape opens with a constant header — GST (two bytes, `0..512`), Δ (one
/// byte, `1..=32`) and an omitted-sender set of at most `t` ids — decoded
/// once at construction, because the trait requires them constant over a run.
/// The remaining bytes decode per-step actions: cursor-based delivery of
/// admissible (non-omitted) channels, stalls, crashes and blind deliveries.
/// On tape exhaustion the decoder delivers admissible channels fairly and
/// halts once nothing admissible is pending (the enforced post-GST bound has
/// the last word either way).
#[derive(Debug, Clone)]
pub struct SearchPartialSyncAdversary {
    reader: TapeReader,
    gst: u64,
    delta: u64,
    omitted: Vec<ProcessorId>,
    cursor: usize,
}

impl SearchPartialSyncAdversary {
    /// Decodes the constant GST/Δ/omission header from `tape` for a system
    /// of `cfg.n()` processors; a tape too short for the header yields the
    /// benign defaults (GST 0, Δ 8, no omissions).
    pub fn from_tape(tape: Vec<u8>, cfg: &SystemConfig) -> Self {
        let mut reader = TapeReader::new(tape);
        let header = (|| {
            let gst = u64::from(reader.u16()?) % 512;
            let delta = 1 + u64::from(reader.byte()?) % 32;
            let omission_count = reader.byte()? as usize % (cfg.t() + 1);
            let omitted = distinct_ids(&mut reader, cfg.n(), omission_count)?;
            Some((gst, delta, omitted))
        })();
        let (gst, delta, omitted) = header.unwrap_or((0, 8, Vec::new()));
        SearchPartialSyncAdversary {
            reader,
            gst,
            delta,
            omitted,
            cursor: 0,
        }
    }

    /// A decoder from a tagged genome.
    ///
    /// # Errors
    ///
    /// Returns [`GenomeError::ModelMismatch`] when the genome is tagged for a
    /// different model.
    pub fn from_genome(genome: &Genome, cfg: &SystemConfig) -> Result<Self, GenomeError> {
        if genome.model() != PARTIAL_SYNC.id() {
            return Err(GenomeError::ModelMismatch {
                genome: genome.model().to_string(),
                expected: PARTIAL_SYNC.id(),
            });
        }
        Ok(SearchPartialSyncAdversary::from_tape(
            genome.tape().to_vec(),
            cfg,
        ))
    }

    /// The next admissible (non-omitted, non-crashed-recipient) pending
    /// channel at or after the persistent cursor.
    fn next_admissible(&mut self, view: &SystemView<'_>) -> Option<(ProcessorId, ProcessorId)> {
        let omitted = &self.omitted;
        let found =
            view.next_pending_channel_where(self.cursor, |from, _| !omitted.contains(&from));
        match found {
            Some((next, from, to)) => {
                self.cursor = next;
                Some((from, to))
            }
            None => None,
        }
    }

    fn decode_action(&mut self, view: &SystemView<'_>) -> Option<PartialSyncAction> {
        let n = view.n();
        let op = self.reader.byte()?;
        let action = match op % 8 {
            0..=4 => match self.next_admissible(view) {
                Some((from, to)) => PartialSyncAction::Deliver { from, to },
                None => PartialSyncAction::Stall,
            },
            5 => PartialSyncAction::Stall,
            6 => PartialSyncAction::Crash(ProcessorId::new(self.reader.byte()? as usize % n)),
            _ => {
                let from = ProcessorId::new(self.reader.byte()? as usize % n);
                let to = ProcessorId::new(self.reader.byte()? as usize % n);
                PartialSyncAction::Deliver { from, to }
            }
        };
        Some(action)
    }
}

impl PartialSyncAdversary for SearchPartialSyncAdversary {
    fn name(&self) -> &'static str {
        "search-partial-sync"
    }

    fn gst(&self) -> u64 {
        self.gst
    }

    fn delta(&self) -> u64 {
        self.delta
    }

    fn omitted_senders(&self) -> &[ProcessorId] {
        &self.omitted
    }

    fn next_action(&mut self, view: &SystemView<'_>) -> PartialSyncAction {
        self.decode_action(view)
            .unwrap_or_else(|| match self.next_admissible(view) {
                Some((from, to)) => PartialSyncAction::Deliver { from, to },
                None => PartialSyncAction::Halt,
            })
    }
}

/// Builds the model-erased adversary a genome encodes, dispatching on its
/// model tag.
///
/// # Errors
///
/// Returns [`GenomeError::UnknownModel`] when the tag matches no registered
/// execution model — never a silent benign fallback.
pub fn build_from_genome(
    genome: &Genome,
    cfg: &SystemConfig,
) -> Result<BuiltAdversary, GenomeError> {
    if genome.model() == WINDOWED.id() {
        Ok(BuiltAdversary::windowed(Box::new(
            SearchWindowAdversary::from_genome(genome)?,
        )))
    } else if genome.model() == ASYNC.id() {
        Ok(BuiltAdversary::asynchronous(Box::new(
            SearchAsyncAdversary::from_genome(genome)?,
        )))
    } else if genome.model() == PARTIAL_SYNC.id() {
        Ok(BuiltAdversary::partial_sync(Box::new(
            SearchPartialSyncAdversary::from_genome(genome, cfg)?,
        )))
    } else {
        Err(GenomeError::UnknownModel {
            model: genome.model().to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genome_hex_round_trips() {
        let genome = Genome::from_seed(ASYNC.id(), 7, 32);
        let back = Genome::from_hex(ASYNC.id(), &genome.to_hex()).unwrap();
        assert_eq!(genome, back);
    }

    #[test]
    fn genome_from_seed_is_deterministic_and_seed_sensitive() {
        let a = Genome::from_seed(ASYNC.id(), 7, 64);
        let b = Genome::from_seed(ASYNC.id(), 7, 64);
        let c = Genome::from_seed(ASYNC.id(), 8, 64);
        assert_eq!(a, b);
        assert_ne!(a.tape(), c.tape());
    }

    #[test]
    fn bad_hex_is_rejected() {
        assert!(matches!(
            Genome::from_hex("async", "abc"),
            Err(GenomeError::BadHex { .. })
        ));
        assert!(matches!(
            Genome::from_hex("async", "zz"),
            Err(GenomeError::BadHex { .. })
        ));
    }

    #[test]
    fn decoders_reject_foreign_model_tags_loudly() {
        let cfg = SystemConfig::new(5, 1).unwrap();
        let wrong = Genome::from_seed(ASYNC.id(), 1, 16);
        let err = SearchWindowAdversary::from_genome(&wrong).unwrap_err();
        assert!(matches!(err, GenomeError::ModelMismatch { .. }));
        assert!(err.to_string().contains("refusing"));
        assert!(
            SearchAsyncAdversary::from_genome(&Genome::from_seed(WINDOWED.id(), 1, 16)).is_err()
        );
        assert!(SearchPartialSyncAdversary::from_genome(
            &Genome::from_seed(ASYNC.id(), 1, 16),
            &cfg
        )
        .is_err());
        assert!(matches!(
            build_from_genome(&Genome::from_seed("no-such-model", 1, 16), &cfg),
            Err(GenomeError::UnknownModel { .. })
        ));
    }

    #[test]
    fn build_from_genome_dispatches_on_the_tag() {
        let cfg = SystemConfig::new(7, 2).unwrap();
        for (tag, expected) in [
            (WINDOWED.id(), "search-window"),
            (ASYNC.id(), "search-async"),
            (PARTIAL_SYNC.id(), "search-partial-sync"),
        ] {
            let built = build_from_genome(&Genome::from_seed(tag, 3, 64), &cfg).unwrap();
            assert_eq!(built.name(), expected);
            assert_eq!(built.model().id(), tag);
        }
    }

    #[test]
    fn partial_sync_header_is_constant_and_in_range() {
        let cfg = SystemConfig::new(7, 2).unwrap();
        let genome = Genome::from_seed(PARTIAL_SYNC.id(), 11, 128);
        let adversary = SearchPartialSyncAdversary::from_genome(&genome, &cfg).unwrap();
        assert!(adversary.gst() < 512);
        assert!((1..=32).contains(&adversary.delta()));
        assert!(adversary.omitted_senders().len() <= cfg.t());
        // The empty tape yields the benign defaults, not a panic.
        let empty = SearchPartialSyncAdversary::from_tape(Vec::new(), &cfg);
        assert_eq!(empty.gst(), 0);
        assert_eq!(empty.delta(), 8);
        assert!(empty.omitted_senders().is_empty());
    }

    #[test]
    fn distinct_ids_resolves_collisions() {
        let mut reader = TapeReader::new(vec![3, 3, 3, 3]);
        let ids = distinct_ids(&mut reader, 5, 4).unwrap();
        let mut sorted: Vec<usize> = ids.iter().map(|p| p.index()).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "ids must be distinct: {ids:?}");
    }

    #[test]
    fn tape_reader_reports_exhaustion() {
        let mut reader = TapeReader::new(vec![1, 2]);
        assert_eq!(reader.u16(), Some(0x0201));
        assert!(reader.exhausted());
        assert_eq!(reader.byte(), None);
    }
}

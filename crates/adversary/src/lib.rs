//! Adversary strategies for the reproduction of Lewko & Lewko (PODC 2013).
//!
//! Every adversary the paper defines, uses or argues about is implemented
//! against the engine interfaces of `agreement-sim`:
//!
//! | Adversary | Model | Paper role |
//! |---|---|---|
//! | [`RotatingResetAdversary`], [`TargetedResetAdversary`] | acceptable windows | exercise the strongly adaptive adversary's resetting power (Section 2, Theorem 4) |
//! | [`SplitVoteAdversary`] | acceptable windows | the balancing strategy that forces exponential running time on split inputs (end of Section 3, and the concrete face of Theorem 5) |
//! | [`LockstepBalancingAdversary`] | asynchronous, crash | the scheduling strategy behind Theorem 17 against forgetful, fully communicative algorithms |
//! | [`ScheduledCrashAdversary`], [`NonAdaptiveCrashAdversary`] | asynchronous, crash | baseline crash adversaries; the non-adaptive one is what committee protocols tolerate |
//! | [`AdaptiveCommitteeKiller`] | asynchronous, crash | the introduction's argument that adaptive adversaries defeat committee-based protocols |
//! | [`EquivocatingAdversary`] | asynchronous, Byzantine | message corruption / lying about coins, which Bracha's reliable broadcast withstands |
//! | [`PolarizingAdversary`] | acceptable windows | the unfair-but-legal delivery split that probes the Theorem 4 threshold constraints (experiment E8) |
//! | [`GstProcrastinatorAdversary`] | partial synchrony | maximum pre-GST obstruction; shows the curtailed adversary's delay is additive, not exponential |
//! | [`PostGstOmissionAdversary`] | partial synchrony | send-omission of up to `t` senders under immediate synchrony |
//! | [`SearchWindowAdversary`], [`SearchAsyncAdversary`], [`SearchPartialSyncAdversary`] | all three | genome-decoded schedules for the coverage-guided search (`agreement-search`) — discovered rather than hand-coded strategies |
//!
//! The benign baselines (`FullDeliveryAdversary`, `FairAsyncAdversary`,
//! `BenignEventualAdversary`) live in `agreement-sim` itself.
//!
//! Every adversary is also constructible *from data* through the
//! [`AdversaryFactory`] registry in [`factory`]: [`registry()`] enumerates a
//! named, model-tagged factory per adversary (benign baselines included), and
//! [`find_adversary`] resolves a name to its factory. The scenario layer in
//! `agreement-core` expands protocol × adversary × input × size tables over
//! this registry.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod byzantine;
mod crash;
mod delivery;
pub mod factory;
mod lockstep;
mod partial_sync;
mod polarizing;
pub mod search;
mod split_vote;
mod strongly_adaptive;

pub use byzantine::EquivocatingAdversary;
pub use crash::{AdaptiveCommitteeKiller, NonAdaptiveCrashAdversary, ScheduledCrashAdversary};
pub use delivery::{balanced_senders, full_senders, senders_excluding};
pub use factory::{find_adversary, registry, AdversaryBuildCtx, AdversaryFactory, BuiltAdversary};
pub use lockstep::LockstepBalancingAdversary;
pub use partial_sync::{GstProcrastinatorAdversary, PostGstOmissionAdversary};
pub use polarizing::PolarizingAdversary;
pub use search::{
    build_from_genome, Genome, GenomeError, SearchAsyncAdversary, SearchPartialSyncAdversary,
    SearchWindowAdversary, TapeReader, DEFAULT_TAPE_LEN,
};
pub use split_vote::SplitVoteAdversary;
pub use strongly_adaptive::{RotatingResetAdversary, TargetedResetAdversary};

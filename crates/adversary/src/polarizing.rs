//! The polarizing window adversary: a deliberately unfair (but legal)
//! delivery strategy that probes the Theorem 4 threshold constraints.
//!
//! The adversary shows the first half of the processors a zero-leaning view
//! and the second half a one-leaning view, all within the legal
//! `|S_i| >= n - t` delivery budget: each side drops up to `t` senders
//! advocating the opposite value. Valid Theorem 4 thresholds withstand the
//! polarization (agreement stays at 100%); broken thresholds admit
//! disagreement. Experiment E8 runs exactly this contrast.

use agreement_model::{Bit, Payload, ProcessorId};
use agreement_sim::{SystemView, Window, WindowAdversary};

/// Shows half the processors a zero-leaning view and half a one-leaning view,
/// dropping up to `t` opposite-value senders from each view.
#[derive(Debug, Clone, Copy, Default)]
pub struct PolarizingAdversary;

impl PolarizingAdversary {
    /// Creates the adversary.
    pub fn new() -> Self {
        PolarizingAdversary
    }
}

impl WindowAdversary for PolarizingAdversary {
    fn name(&self) -> &'static str {
        "polarizing"
    }

    fn next_window(&mut self, view: &SystemView<'_>) -> Window {
        let n = view.n();
        let t = view.t();
        let probe = ProcessorId::new(0);
        let value_of = |s: usize| {
            view.buffer
                .peek(ProcessorId::new(s), probe)
                .and_then(Payload::advocated_value)
        };
        let zeros: Vec<ProcessorId> = (0..n)
            .filter(|&s| value_of(s) == Some(Bit::Zero))
            .map(ProcessorId::new)
            .collect();
        let ones: Vec<ProcessorId> = (0..n)
            .filter(|&s| value_of(s) == Some(Bit::One))
            .map(ProcessorId::new)
            .collect();
        let rest: Vec<ProcessorId> = (0..n)
            .filter(|&s| value_of(s).is_none())
            .map(ProcessorId::new)
            .collect();
        // Zero-leaning view: drop up to t one-senders; one-leaning view: drop
        // up to t zero-senders.
        let mut zero_leaning: Vec<ProcessorId> = zeros.clone();
        zero_leaning.extend(ones.iter().skip(t.min(ones.len())));
        zero_leaning.extend(rest.iter().copied());
        let mut one_leaning: Vec<ProcessorId> = ones;
        one_leaning.extend(zeros.iter().skip(t.min(zeros.len())));
        one_leaning.extend(rest);
        let deliveries: Vec<Vec<ProcessorId>> = (0..n)
            .map(|i| {
                if i < n / 2 {
                    zero_leaning.clone()
                } else {
                    one_leaning.clone()
                }
            })
            .collect();
        Window::new(Vec::new(), deliveries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agreement_model::{InputAssignment, SystemConfig, Thresholds};
    use agreement_protocols::ResetTolerantBuilder;
    use agreement_sim::{run_windowed, RunLimits};

    #[test]
    fn valid_thresholds_withstand_polarization() {
        let cfg = SystemConfig::with_sixth_resilience(13).unwrap();
        let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
        let inputs = InputAssignment::evenly_split(13);
        for seed in 0..3u64 {
            let outcome = run_windowed(
                cfg,
                inputs.clone(),
                &builder,
                &mut PolarizingAdversary::new(),
                seed,
                RunLimits::windows(2_000),
            );
            assert!(outcome.agreement_holds(), "seed {seed}: {outcome:?}");
            assert!(outcome.validity_holds(&inputs), "seed {seed}");
        }
    }

    #[test]
    fn broken_t2_admits_disagreement_under_polarization() {
        let cfg = SystemConfig::with_sixth_resilience(13).unwrap();
        // T2 = 5 violates T2 >= T3 + t; the polarizing adversary finds the gap.
        let builder = ResetTolerantBuilder::with_thresholds(Thresholds::new(9, 5, 7));
        let inputs = InputAssignment::evenly_split(13);
        let disagreed = (0..10u64).any(|seed| {
            let outcome = run_windowed(
                cfg,
                inputs.clone(),
                &builder,
                &mut PolarizingAdversary::new(),
                seed,
                RunLimits::windows(2_000),
            );
            !outcome.agreement_holds()
        });
        assert!(
            disagreed,
            "a far-too-small T2 must admit disagreement under polarization"
        );
    }
}

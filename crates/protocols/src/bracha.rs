//! Bracha's randomized asynchronous agreement protocol (PODC 1984), built on
//! reliable broadcast, tolerating `t < n/3` Byzantine failures.
//!
//! Every message of the protocol is disseminated with [`ReliableBroadcaster`],
//! which prevents a Byzantine origin from showing different values to
//! different correct processors. Each round `r` has three phases; a processor
//! waits, in each phase, until it has *accepted* `n - t` reliably broadcast
//! round-`r` phase votes:
//!
//! * **Phase 1** — broadcast the current estimate; set the estimate to the
//!   majority of the accepted phase-1 votes.
//! * **Phase 2** — broadcast the new estimate; if more than `n/2` of the
//!   accepted phase-2 votes agree on `v`, adopt `v` and advertise it in
//!   phase 3, otherwise advertise "no majority".
//! * **Phase 3** — broadcast the advertisement; if at least `2t + 1` accepted
//!   phase-3 votes advertise the same `v`, decide `v`; if at least `t + 1` do,
//!   adopt `v`; otherwise set the estimate to a fresh random bit.
//!
//! As the paper recounts, this protocol achieves measure one correctness and
//! termination with optimal resilience, but (like Ben-Or's) its expected
//! running time is exponential when the adversary keeps the views balanced.
//!
//! **Scope of this implementation.** Bracha's full protocol additionally
//! *validates* each received value against what its sender could legitimately
//! have computed, which is what rules out indefinite stalling by Byzantine
//! processors. This implementation omits the validation step for simplicity:
//! it preserves agreement and validity under Byzantine equivocation (the
//! reliable-broadcast layer already prevents conflicting acceptances) and
//! terminates with probability one under crash failures, but a worst-case
//! Byzantine scheduler can delay its termination indefinitely. The
//! experiments in this workspace only rely on the preserved properties.

use agreement_model::{
    Bit, Context, Payload, ProcessorId, Protocol, ProtocolBuilder, StateDigest, SystemConfig,
};

use crate::reliable_broadcast::ReliableBroadcaster;
use crate::tally::RoundTally;

/// Bracha's agreement protocol: single-processor state machine.
#[derive(Debug)]
pub struct Bracha {
    n: usize,
    t: usize,
    input: Bit,
    round: u64,
    phase: u8,
    estimate: Bit,
    rbc: ReliableBroadcaster,
    votes: RoundTally,
    decided: Option<Bit>,
    reset_count: u64,
}

impl Bracha {
    /// Creates the protocol state for a processor with the given input.
    ///
    /// # Panics
    ///
    /// Panics unless `3 * t < n` (required by reliable broadcast).
    pub fn new(input: Bit, cfg: &SystemConfig) -> Self {
        Bracha {
            n: cfg.n(),
            t: cfg.t(),
            input,
            round: 1,
            phase: 1,
            estimate: input,
            rbc: ReliableBroadcaster::new(cfg.n(), cfg.t()),
            votes: RoundTally::new(),
            decided: None,
            reset_count: 0,
        }
    }

    /// The current round.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The phase (1, 2 or 3) whose quorum the processor is waiting for.
    pub fn phase(&self) -> u8 {
        self.phase
    }

    /// The current estimate.
    pub fn estimate(&self) -> Bit {
        self.estimate
    }

    fn quorum(&self) -> usize {
        self.n - self.t
    }

    fn broadcast_id(round: u64, phase: u8) -> u64 {
        round * 4 + u64::from(phase)
    }

    fn broadcast_vote(&mut self, value: Option<Bit>, ctx: &mut dyn Context) {
        let vote = Payload::BrachaVote {
            round: self.round,
            phase: self.phase,
            value,
        };
        self.rbc
            .broadcast(Self::broadcast_id(self.round, self.phase), vote, ctx);
    }

    fn try_progress(&mut self, ctx: &mut dyn Context) {
        loop {
            let r = self.round;
            let p = self.phase;
            if self.votes.total(r, p) < self.quorum() {
                break;
            }
            match p {
                1 => {
                    if let Some(v) = self.votes.majority_value(r, 1) {
                        self.estimate = v;
                    }
                    self.phase = 2;
                    self.broadcast_vote(Some(self.estimate), ctx);
                }
                2 => {
                    let advertised = Bit::ALL
                        .into_iter()
                        .find(|&v| 2 * self.votes.count(r, 2, v) > self.n);
                    if let Some(v) = advertised {
                        self.estimate = v;
                    }
                    self.phase = 3;
                    self.broadcast_vote(advertised, ctx);
                }
                3 => {
                    let decide_value = Bit::ALL
                        .into_iter()
                        .find(|&v| self.votes.count(r, 3, v) > 2 * self.t);
                    let adopt_value = Bit::ALL
                        .into_iter()
                        .find(|&v| self.votes.count(r, 3, v) > self.t);
                    if let Some(v) = decide_value {
                        self.decided = Some(v);
                        ctx.decide(v);
                        self.estimate = v;
                    } else if let Some(v) = adopt_value {
                        self.estimate = v;
                    } else {
                        self.estimate = ctx.random_bit();
                    }
                    self.round = r + 1;
                    self.phase = 1;
                    self.votes.forget_rounds_before(self.round);
                    self.broadcast_vote(Some(self.estimate), ctx);
                }
                _ => unreachable!("Bracha only has phases 1..=3"),
            }
        }
    }
}

impl Protocol for Bracha {
    fn on_start(&mut self, ctx: &mut dyn Context) {
        self.broadcast_vote(Some(self.estimate), ctx);
    }

    fn on_message(&mut self, from: ProcessorId, payload: &Payload, ctx: &mut dyn Context) {
        let accepted = self.rbc.on_message(from, payload, ctx);
        let mut progressed = false;
        for broadcast in accepted {
            if let Payload::BrachaVote {
                round,
                phase,
                value,
            } = broadcast.payload
            {
                if round >= self.round {
                    self.votes.record(round, phase, broadcast.origin, value);
                    progressed = true;
                }
            }
        }
        if progressed {
            self.try_progress(ctx);
        }
    }

    fn on_reset(&mut self, _ctx: &mut dyn Context) {
        // Bracha's protocol was not designed for resetting failures; restart
        // from scratch. It is only run under crash/Byzantine adversaries here.
        self.reset_count += 1;
        self.round = 1;
        self.phase = 1;
        self.estimate = self.input;
        self.rbc.clear();
        self.votes.clear();
    }

    fn digest(&self) -> StateDigest {
        StateDigest {
            round: Some(self.round),
            estimate: Some(self.estimate),
            decided: self.decided,
            reset_count: self.reset_count,
            phase: match self.phase {
                1 => "phase1",
                2 => "phase2",
                _ => "phase3",
            },
        }
    }
}

/// Builder for [`Bracha`] instances.
///
/// # Examples
///
/// ```
/// use agreement_model::{ProtocolBuilder, SystemConfig};
/// use agreement_protocols::BrachaBuilder;
///
/// let cfg = SystemConfig::with_third_resilience(10)?;
/// assert_eq!(BrachaBuilder::new().name(), "bracha");
/// # Ok::<(), agreement_model::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct BrachaBuilder;

impl BrachaBuilder {
    /// Creates the builder.
    pub fn new() -> Self {
        BrachaBuilder
    }
}

impl ProtocolBuilder for BrachaBuilder {
    fn name(&self) -> &'static str {
        "bracha"
    }

    fn build(&self, _id: ProcessorId, input: Bit, cfg: &SystemConfig) -> Box<dyn Protocol> {
        Box::new(Bracha::new(input, cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agreement_model::RbcStep;

    #[derive(Debug)]
    struct TestCtx {
        id: ProcessorId,
        cfg: SystemConfig,
        sent: Vec<Payload>,
        decided: Option<Bit>,
    }

    impl TestCtx {
        fn new(id: usize, n: usize, t: usize) -> Self {
            TestCtx {
                id: ProcessorId::new(id),
                cfg: SystemConfig::new(n, t).unwrap(),
                sent: Vec::new(),
                decided: None,
            }
        }
    }

    impl Context for TestCtx {
        fn id(&self) -> ProcessorId {
            self.id
        }
        fn config(&self) -> SystemConfig {
            self.cfg
        }
        fn input(&self) -> Bit {
            Bit::Zero
        }
        fn send(&mut self, to: ProcessorId, payload: Payload) {
            if to == ProcessorId::new(0) {
                self.sent.push(payload);
            }
        }
        fn random_bit(&mut self) -> Bit {
            Bit::Zero
        }
        fn random_range(&mut self, _b: u64) -> u64 {
            0
        }
        fn random_ticket(&mut self) -> u64 {
            0
        }
        fn decide(&mut self, value: Bit) {
            if self.decided.is_none() {
                self.decided = Some(value);
            }
        }
        fn decision(&self) -> Option<Bit> {
            self.decided
        }
    }

    /// Shortcut: deliver `count` already-accepted-equivalent votes by sending
    /// `2t + 1` Ready messages per origin directly.
    fn accept_vote(
        p: &mut Bracha,
        ctx: &mut TestCtx,
        origin: usize,
        round: u64,
        phase: u8,
        value: Option<Bit>,
    ) {
        let inner = Payload::BrachaVote {
            round,
            phase,
            value,
        };
        let accept_threshold = 2 * ctx.cfg.t() + 1;
        for sender in 0..accept_threshold {
            let msg = Payload::Rbc {
                step: RbcStep::Ready,
                origin: ProcessorId::new(origin),
                broadcast_id: Bracha::broadcast_id(round, phase),
                inner: Box::new(inner.clone()),
            };
            p.on_message(ProcessorId::new(sender), &msg, ctx);
        }
    }

    /// n = 4, t = 1: quorum 3, accept threshold 3, decide threshold 3.
    fn setup(input: Bit) -> (Bracha, TestCtx) {
        let ctx = TestCtx::new(0, 4, 1);
        (Bracha::new(input, &ctx.cfg), ctx)
    }

    #[test]
    fn start_reliably_broadcasts_phase_one_vote() {
        let (mut p, mut ctx) = setup(Bit::One);
        p.on_start(&mut ctx);
        assert_eq!(ctx.sent.len(), 1);
        match &ctx.sent[0] {
            Payload::Rbc {
                step: RbcStep::Init,
                origin,
                inner,
                ..
            } => {
                assert_eq!(*origin, ProcessorId::new(0));
                assert!(matches!(
                    **inner,
                    Payload::BrachaVote {
                        round: 1,
                        phase: 1,
                        value: Some(Bit::One)
                    }
                ));
            }
            other => panic!("expected an RBC init, got {other:?}"),
        }
    }

    #[test]
    fn accepted_phase_one_quorum_moves_to_phase_two_with_majority_estimate() {
        let (mut p, mut ctx) = setup(Bit::One);
        p.on_start(&mut ctx);
        for origin in 1..=3 {
            accept_vote(&mut p, &mut ctx, origin, 1, 1, Some(Bit::Zero));
        }
        assert_eq!(p.phase(), 2);
        assert_eq!(p.estimate(), Bit::Zero);
    }

    #[test]
    fn phase_three_supermajority_decides() {
        let (mut p, mut ctx) = setup(Bit::One);
        p.on_start(&mut ctx);
        for origin in 1..=3 {
            accept_vote(&mut p, &mut ctx, origin, 1, 1, Some(Bit::One));
        }
        for origin in 1..=3 {
            accept_vote(&mut p, &mut ctx, origin, 1, 2, Some(Bit::One));
        }
        for origin in 1..=3 {
            accept_vote(&mut p, &mut ctx, origin, 1, 3, Some(Bit::One));
        }
        assert_eq!(ctx.decided, Some(Bit::One));
        assert_eq!(p.round(), 2, "the protocol keeps going after deciding");
        assert_eq!(p.phase(), 1);
    }

    #[test]
    fn phase_three_weak_support_adopts_without_deciding() {
        let (mut p, mut ctx) = setup(Bit::One);
        p.on_start(&mut ctx);
        for origin in 1..=3 {
            accept_vote(&mut p, &mut ctx, origin, 1, 1, Some(Bit::One));
        }
        for origin in 1..=3 {
            accept_vote(&mut p, &mut ctx, origin, 1, 2, Some(Bit::One));
        }
        // Two "Zero" advertisements and one abstention: only t + 1 = 2 support Zero.
        accept_vote(&mut p, &mut ctx, 1, 1, 3, Some(Bit::Zero));
        accept_vote(&mut p, &mut ctx, 2, 1, 3, Some(Bit::Zero));
        accept_vote(&mut p, &mut ctx, 3, 1, 3, None);
        assert_eq!(ctx.decided, None);
        assert_eq!(p.estimate(), Bit::Zero);
        assert_eq!(p.round(), 2);
    }

    #[test]
    fn stale_round_votes_are_ignored() {
        let (mut p, mut ctx) = setup(Bit::One);
        p.on_start(&mut ctx);
        // Finish round 1 entirely (deciding One).
        for phase in 1..=3 {
            for origin in 1..=3 {
                accept_vote(&mut p, &mut ctx, origin, 1, phase, Some(Bit::One));
            }
        }
        assert_eq!(p.round(), 2);
        // A late round-1 vote does not disturb round 2.
        accept_vote(&mut p, &mut ctx, 1, 1, 1, Some(Bit::Zero));
        assert_eq!(p.round(), 2);
        assert_eq!(p.estimate(), Bit::One);
    }

    #[test]
    fn reset_restarts_protocol_state() {
        let (mut p, mut ctx) = setup(Bit::One);
        p.on_start(&mut ctx);
        for origin in 1..=3 {
            accept_vote(&mut p, &mut ctx, origin, 1, 1, Some(Bit::Zero));
        }
        assert_eq!(p.phase(), 2);
        p.on_reset(&mut ctx);
        assert_eq!(p.round(), 1);
        assert_eq!(p.phase(), 1);
        assert_eq!(p.estimate(), Bit::One);
        assert_eq!(p.digest().reset_count, 1);
    }

    #[test]
    fn builder_reports_name() {
        let cfg = SystemConfig::with_third_resilience(7).unwrap();
        let b = BrachaBuilder::new();
        assert_eq!(b.name(), "bracha");
        let p = b.build(ProcessorId::new(1), Bit::Zero, &cfg);
        assert_eq!(p.digest().phase, "phase1");
    }
}

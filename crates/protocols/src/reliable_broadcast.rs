//! Bracha-style reliable broadcast.
//!
//! Reliable broadcast is the primitive underlying Bracha's agreement protocol:
//! it guarantees that if any correct processor accepts a broadcast `(origin,
//! id, payload)`, then every correct processor eventually accepts the same
//! payload for that `(origin, id)` — even if the origin is Byzantine and sends
//! conflicting initial messages.
//!
//! The classical three-step structure is implemented for `t < n/3`:
//!
//! * the origin sends `Init(m)` to everyone;
//! * on the first `Init(m)` from the origin, a processor sends `Echo(m)`;
//! * on more than `(n + t) / 2` `Echo(m)`, a processor sends `Ready(m)`;
//! * on `t + 1` `Ready(m)` it also sends `Ready(m)` (amplification);
//! * on `2t + 1` `Ready(m)` it **accepts** `m`.
//!
//! [`ReliableBroadcaster`] is a component, not a [`agreement_model::Protocol`]:
//! protocols embed it and feed it the `Rbc` payloads they receive.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use agreement_model::{Context, Payload, ProcessorId, RbcStep};

/// A broadcast accepted by the local processor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcceptedBroadcast {
    /// The processor whose payload was broadcast.
    pub origin: ProcessorId,
    /// The origin-scoped broadcast identifier.
    pub broadcast_id: u64,
    /// The accepted payload.
    pub payload: Payload,
}

#[derive(Debug, Default)]
struct Instance {
    /// Payload from the origin's `Init`, once seen (first one wins locally).
    echoed: bool,
    ready_sent: bool,
    accepted: bool,
    /// Echo voters per candidate payload.
    echoes: Vec<(Payload, BTreeSet<ProcessorId>)>,
    /// Ready voters per candidate payload.
    readies: Vec<(Payload, BTreeSet<ProcessorId>)>,
}

impl Instance {
    fn voters_mut<'a>(
        bucket: &'a mut Vec<(Payload, BTreeSet<ProcessorId>)>,
        payload: &Payload,
    ) -> &'a mut BTreeSet<ProcessorId> {
        if let Some(pos) = bucket.iter().position(|(p, _)| p == payload) {
            return &mut bucket[pos].1;
        }
        bucket.push((payload.clone(), BTreeSet::new()));
        &mut bucket.last_mut().expect("just pushed").1
    }

    fn count(bucket: &[(Payload, BTreeSet<ProcessorId>)], payload: &Payload) -> usize {
        bucket
            .iter()
            .find(|(p, _)| p == payload)
            .map_or(0, |(_, voters)| voters.len())
    }
}

/// The reliable-broadcast component: manages all broadcast instances this
/// processor participates in.
#[derive(Debug)]
pub struct ReliableBroadcaster {
    n: usize,
    t: usize,
    instances: BTreeMap<(ProcessorId, u64), Instance>,
}

impl ReliableBroadcaster {
    /// Creates a broadcaster for a system of `n` processors tolerating `t`
    /// Byzantine faults.
    ///
    /// # Panics
    ///
    /// Panics unless `3 * t < n`, the resilience required for reliable
    /// broadcast to be sound.
    pub fn new(n: usize, t: usize) -> Self {
        assert!(
            3 * t < n,
            "reliable broadcast requires t < n/3 (got n={n}, t={t})"
        );
        ReliableBroadcaster {
            n,
            t,
            instances: BTreeMap::new(),
        }
    }

    /// Echo threshold: strictly more than `(n + t) / 2` echoes.
    pub fn echo_threshold(&self) -> usize {
        (self.n + self.t) / 2 + 1
    }

    /// Ready amplification threshold: `t + 1` readies.
    pub fn ready_threshold(&self) -> usize {
        self.t + 1
    }

    /// Acceptance threshold: `2t + 1` readies.
    pub fn accept_threshold(&self) -> usize {
        2 * self.t + 1
    }

    /// Number of broadcast instances this processor is currently tracking.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Starts a reliable broadcast of `payload` with origin `ctx.id()`.
    pub fn broadcast(&mut self, broadcast_id: u64, payload: Payload, ctx: &mut dyn Context) {
        let message = Payload::Rbc {
            step: RbcStep::Init,
            origin: ctx.id(),
            broadcast_id,
            inner: Box::new(payload),
        };
        ctx.broadcast(message);
    }

    /// Processes an incoming `Rbc` payload. Non-`Rbc` payloads are ignored.
    ///
    /// Returns the broadcasts newly accepted as a result of this message
    /// (at most one per call in practice).
    pub fn on_message(
        &mut self,
        from: ProcessorId,
        payload: &Payload,
        ctx: &mut dyn Context,
    ) -> Vec<AcceptedBroadcast> {
        let Payload::Rbc {
            step,
            origin,
            broadcast_id,
            inner,
        } = payload
        else {
            return Vec::new();
        };
        let key = (*origin, *broadcast_id);
        let mut to_send: Vec<Payload> = Vec::new();
        let mut accepted = Vec::new();
        let echo_threshold = self.echo_threshold();
        let ready_threshold = self.ready_threshold();
        let accept_threshold = self.accept_threshold();
        let instance = self.instances.entry(key).or_default();

        match step {
            RbcStep::Init => {
                // Only the origin itself may initiate; ignore spoofed inits.
                if from == *origin && !instance.echoed {
                    instance.echoed = true;
                    to_send.push(Payload::Rbc {
                        step: RbcStep::Echo,
                        origin: *origin,
                        broadcast_id: *broadcast_id,
                        inner: inner.clone(),
                    });
                }
            }
            RbcStep::Echo => {
                Instance::voters_mut(&mut instance.echoes, inner).insert(from);
                if !instance.ready_sent
                    && Instance::count(&instance.echoes, inner) >= echo_threshold
                {
                    instance.ready_sent = true;
                    to_send.push(Payload::Rbc {
                        step: RbcStep::Ready,
                        origin: *origin,
                        broadcast_id: *broadcast_id,
                        inner: inner.clone(),
                    });
                }
            }
            RbcStep::Ready => {
                Instance::voters_mut(&mut instance.readies, inner).insert(from);
                let readies = Instance::count(&instance.readies, inner);
                if !instance.ready_sent && readies >= ready_threshold {
                    instance.ready_sent = true;
                    to_send.push(Payload::Rbc {
                        step: RbcStep::Ready,
                        origin: *origin,
                        broadcast_id: *broadcast_id,
                        inner: inner.clone(),
                    });
                }
                if !instance.accepted && readies >= accept_threshold {
                    instance.accepted = true;
                    accepted.push(AcceptedBroadcast {
                        origin: *origin,
                        broadcast_id: *broadcast_id,
                        payload: inner.as_ref().clone(),
                    });
                }
            }
        }

        for message in to_send {
            ctx.broadcast(message);
        }
        accepted
    }

    /// Discards all instance state (used when the embedding protocol is reset).
    pub fn clear(&mut self) {
        self.instances.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agreement_model::{Bit, SystemConfig};

    #[derive(Debug)]
    struct TestCtx {
        id: ProcessorId,
        cfg: SystemConfig,
        sent: Vec<Payload>,
    }

    impl TestCtx {
        fn new(id: usize, n: usize, t: usize) -> Self {
            TestCtx {
                id: ProcessorId::new(id),
                cfg: SystemConfig::new(n, t).unwrap(),
                sent: Vec::new(),
            }
        }

        /// One copy of each broadcast payload (messages to processor 0).
        fn broadcasts(&self) -> Vec<&Payload> {
            self.sent.iter().collect()
        }
    }

    impl Context for TestCtx {
        fn id(&self) -> ProcessorId {
            self.id
        }
        fn config(&self) -> SystemConfig {
            self.cfg
        }
        fn input(&self) -> Bit {
            Bit::Zero
        }
        fn send(&mut self, to: ProcessorId, payload: Payload) {
            if to == ProcessorId::new(0) {
                self.sent.push(payload);
            }
        }
        fn random_bit(&mut self) -> Bit {
            Bit::Zero
        }
        fn random_range(&mut self, _bound: u64) -> u64 {
            0
        }
        fn random_ticket(&mut self) -> u64 {
            0
        }
        fn decide(&mut self, _value: Bit) {}
        fn decision(&self) -> Option<Bit> {
            None
        }
    }

    fn inner() -> Payload {
        Payload::BrachaVote {
            round: 1,
            phase: 1,
            value: Some(Bit::One),
        }
    }

    fn rbc(step: RbcStep, origin: usize, id: u64) -> Payload {
        Payload::Rbc {
            step,
            origin: ProcessorId::new(origin),
            broadcast_id: id,
            inner: Box::new(inner()),
        }
    }

    /// n = 7, t = 2: echo threshold 5, ready threshold 3, accept threshold 5.
    fn setup() -> (ReliableBroadcaster, TestCtx) {
        (ReliableBroadcaster::new(7, 2), TestCtx::new(1, 7, 2))
    }

    #[test]
    fn thresholds_match_the_classical_values() {
        let (rbc, _) = setup();
        assert_eq!(rbc.echo_threshold(), 5);
        assert_eq!(rbc.ready_threshold(), 3);
        assert_eq!(rbc.accept_threshold(), 5);
    }

    #[test]
    #[should_panic(expected = "requires t < n/3")]
    fn resilience_bound_is_enforced() {
        let _ = ReliableBroadcaster::new(6, 2);
    }

    #[test]
    fn init_from_origin_triggers_echo() {
        let (mut r, mut ctx) = setup();
        let accepted = r.on_message(ProcessorId::new(3), &rbc(RbcStep::Init, 3, 7), &mut ctx);
        assert!(accepted.is_empty());
        assert_eq!(ctx.broadcasts().len(), 1);
        assert!(matches!(
            ctx.broadcasts()[0],
            Payload::Rbc {
                step: RbcStep::Echo,
                ..
            }
        ));
    }

    #[test]
    fn spoofed_init_is_ignored() {
        let (mut r, mut ctx) = setup();
        // Processor 4 claims to forward an Init originated by processor 3.
        let accepted = r.on_message(ProcessorId::new(4), &rbc(RbcStep::Init, 3, 7), &mut ctx);
        assert!(accepted.is_empty());
        assert!(ctx.broadcasts().is_empty());
    }

    #[test]
    fn echo_quorum_triggers_single_ready() {
        let (mut r, mut ctx) = setup();
        for sender in 0..5 {
            r.on_message(
                ProcessorId::new(sender),
                &rbc(RbcStep::Echo, 3, 7),
                &mut ctx,
            );
        }
        let readies = ctx
            .broadcasts()
            .iter()
            .filter(|p| {
                matches!(
                    p,
                    Payload::Rbc {
                        step: RbcStep::Ready,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(readies, 1, "ready must be sent exactly once");
        // Further echoes do not re-send ready.
        r.on_message(ProcessorId::new(5), &rbc(RbcStep::Echo, 3, 7), &mut ctx);
        let readies = ctx
            .broadcasts()
            .iter()
            .filter(|p| {
                matches!(
                    p,
                    Payload::Rbc {
                        step: RbcStep::Ready,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(readies, 1);
    }

    #[test]
    fn ready_amplification_at_t_plus_one() {
        let (mut r, mut ctx) = setup();
        for sender in 0..3 {
            r.on_message(
                ProcessorId::new(sender),
                &rbc(RbcStep::Ready, 3, 7),
                &mut ctx,
            );
        }
        let readies = ctx
            .broadcasts()
            .iter()
            .filter(|p| {
                matches!(
                    p,
                    Payload::Rbc {
                        step: RbcStep::Ready,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(readies, 1, "t + 1 readies amplify into our own ready");
    }

    #[test]
    fn accept_at_two_t_plus_one_readies_exactly_once() {
        let (mut r, mut ctx) = setup();
        let mut accepted_total = 0;
        for sender in 0..6 {
            let accepted = r.on_message(
                ProcessorId::new(sender),
                &rbc(RbcStep::Ready, 3, 7),
                &mut ctx,
            );
            accepted_total += accepted.len();
            if sender < 4 {
                assert!(
                    accepted.is_empty(),
                    "fewer than 2t+1 readies must not accept"
                );
            }
        }
        assert_eq!(accepted_total, 1);
    }

    #[test]
    fn accepted_broadcast_carries_origin_id_and_payload() {
        let (mut r, mut ctx) = setup();
        let mut result = Vec::new();
        for sender in 0..5 {
            result = r.on_message(
                ProcessorId::new(sender),
                &rbc(RbcStep::Ready, 3, 9),
                &mut ctx,
            );
        }
        assert_eq!(
            result,
            vec![AcceptedBroadcast {
                origin: ProcessorId::new(3),
                broadcast_id: 9,
                payload: inner(),
            }]
        );
    }

    #[test]
    fn equivocating_echoes_do_not_mix_counts() {
        let (mut r, mut ctx) = setup();
        let other_inner = Payload::BrachaVote {
            round: 1,
            phase: 1,
            value: Some(Bit::Zero),
        };
        let other = Payload::Rbc {
            step: RbcStep::Echo,
            origin: ProcessorId::new(3),
            broadcast_id: 7,
            inner: Box::new(other_inner),
        };
        // 3 echoes for One, 3 for Zero: neither reaches the threshold of 5.
        for sender in 0..3 {
            r.on_message(
                ProcessorId::new(sender),
                &rbc(RbcStep::Echo, 3, 7),
                &mut ctx,
            );
        }
        for sender in 3..6 {
            r.on_message(ProcessorId::new(sender), &other, &mut ctx);
        }
        assert!(
            ctx.broadcasts().is_empty(),
            "no ready may be sent on mixed echoes"
        );
    }

    #[test]
    fn broadcast_sends_init_with_own_origin() {
        let (mut r, mut ctx) = setup();
        r.broadcast(42, inner(), &mut ctx);
        assert_eq!(ctx.broadcasts().len(), 1);
        match ctx.broadcasts()[0] {
            Payload::Rbc {
                step: RbcStep::Init,
                origin,
                broadcast_id,
                ..
            } => {
                assert_eq!(*origin, ProcessorId::new(1));
                assert_eq!(*broadcast_id, 42);
            }
            other => panic!("unexpected payload {other:?}"),
        }
    }

    #[test]
    fn non_rbc_payloads_are_ignored_and_clear_resets_state() {
        let (mut r, mut ctx) = setup();
        let accepted = r.on_message(
            ProcessorId::new(2),
            &Payload::Decided { value: Bit::One },
            &mut ctx,
        );
        assert!(accepted.is_empty());
        r.on_message(ProcessorId::new(3), &rbc(RbcStep::Init, 3, 7), &mut ctx);
        assert_eq!(r.instance_count(), 1);
        r.clear();
        assert_eq!(r.instance_count(), 0);
    }
}

//! Randomized asynchronous agreement protocols for the reproduction of
//! Lewko & Lewko (PODC 2013).
//!
//! Five protocols are provided, all as event-driven
//! [`agreement_model::Protocol`] state machines:
//!
//! * [`ResetTolerant`] — the paper's Section 3 protocol: the Ben-Or/Bracha
//!   variant that tolerates the strongly adaptive (resetting) adversary for
//!   `t < n/6` with thresholds satisfying Theorem 4.
//! * [`BenOr`] — Ben-Or's classical protocol (crash model, `t < n/2`), which
//!   is *forgetful* and *fully communicative* in the sense of Section 5 and
//!   hence subject to Theorem 17's exponential lower bound.
//! * [`Bracha`] — Bracha's optimally resilient protocol (`t < n/3`), built on
//!   the [`ReliableBroadcaster`] primitive also exported here.
//! * [`CommitteeAgreement`] — a simplified Kapron-et-al.-style committee
//!   baseline: fast and correct with high probability against non-adaptive
//!   faults, defeated by an adaptive adversary that corrupts the (publicly
//!   known) committee.
//! * [`SampledCommittee`] — the sub-quadratic variant (Cohen–Keidar–
//!   Spiegelman style): proposals are multicast **within** the sampled
//!   committee only, so a decision costs `O(k² + k·n)` messages instead of
//!   `Θ(n²)` — the protocol the `subquad/` scaling scenarios chart at
//!   `n ∈ {100, 1000, 10000}`.
//!
//! The [`RoundTally`] helper centralizes the per-round vote bookkeeping every
//! protocol relies on.
//!
//! # Example
//!
//! Run the reset-tolerant protocol against the benign full-delivery adversary:
//!
//! ```
//! use agreement_model::{Bit, InputAssignment, SystemConfig};
//! use agreement_protocols::ResetTolerantBuilder;
//! use agreement_sim::{run_windowed, FullDeliveryAdversary, RunLimits};
//!
//! let cfg = SystemConfig::with_sixth_resilience(13)?;
//! let builder = ResetTolerantBuilder::recommended(&cfg)?;
//! let inputs = InputAssignment::unanimous(cfg.n(), Bit::One);
//! let outcome = run_windowed(
//!     cfg,
//!     inputs.clone(),
//!     &builder,
//!     &mut FullDeliveryAdversary,
//!     7,
//!     RunLimits::small(),
//! );
//! assert!(outcome.all_correct_decided());
//! assert_eq!(outcome.decided_value(), Some(Bit::One));
//! # Ok::<(), agreement_model::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod ben_or;
mod bracha;
mod committee;
mod reliable_broadcast;
mod reset_tolerant;
mod subquad;
mod tally;

pub use ben_or::{BenOr, BenOrBuilder};
pub use bracha::{Bracha, BrachaBuilder};
pub use committee::{CommitteeAgreement, CommitteeBuilder};
pub use reliable_broadcast::{AcceptedBroadcast, ReliableBroadcaster};
pub use reset_tolerant::{ResetTolerant, ResetTolerantBuilder};
pub use subquad::{SampledCommittee, SampledCommitteeBuilder};
pub use tally::RoundTally;

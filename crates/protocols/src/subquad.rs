//! A sub-quadratic committee-sampled agreement protocol in the style of
//! Cohen, Keidar and Spiegelman ("Not a COINcidence: sub-quadratic
//! asynchronous Byzantine agreement WHP", DISC 2020).
//!
//! Every protocol this crate shipped so far is *fully communicative*: each
//! round every processor broadcasts to all `n`, so a decision costs Θ(n²)
//! messages — the wall the paper's Section 5 lower bound says is unavoidable
//! against the strongly adaptive adversary, and that the sub-quadratic line
//! of work circumvents against weaker (non-adaptive) ones. This module
//! reproduces the communication structure that breaks the wall:
//!
//! * a **sampled committee** of `k` processors is drawn by public sortition
//!   (a seed fixed before the execution, as in [`crate::CommitteeBuilder`]);
//! * committee members exchange proposals **only within the committee**,
//!   using the engine's multicast primitive — `k²` messages, not `k·n`;
//! * members that assemble a quorum of `k - f` proposals (where
//!   `f = ⌊(k-1)/3⌋`) decide the majority and announce it to all `n`;
//! * everyone else decides on `f + 1` matching announcements.
//!
//! A decision therefore costs `O(k² + k·n)` messages; with `k = O(log n)`
//! that is `O(n log n)` — sub-quadratic, `o(n²)`. The flip side is exactly
//! the dichotomy the paper draws: the committee is public, so an **adaptive**
//! adversary (the `adaptive-committee-killer` strategy) crashes `f + 1`
//! members at the start and the protocol never terminates. The scenario
//! family `subquad/` charts both sides at `n ∈ {100, 1000, 10000}`.

use agreement_model::{
    Bit, CommitteeMsg, Context, Payload, ProcessorId, ProcessorRng, Protocol, ProtocolBuilder,
    StateDigest, SystemConfig,
};

use crate::tally::RoundTally;

/// Tally keys.
const KEY_PROPOSALS: u8 = 0;
const KEY_ANNOUNCES: u8 = 1;

/// Domain label for the sortition RNG stream.
const SORTITION_LABEL: u64 = 0x5AB01;

/// The committee-sampled sub-quadratic agreement protocol: single-processor
/// state machine.
///
/// Structurally a sibling of [`crate::CommitteeAgreement`], but with the
/// proposal exchange confined to the committee (via
/// [`Context::multicast`]) instead of broadcast to all `n` — the change that
/// makes the message count per decision `o(n²)`.
#[derive(Debug)]
pub struct SampledCommittee {
    committee: Vec<ProcessorId>,
    fault_tolerance: usize,
    is_member: bool,
    input: Bit,
    votes: RoundTally,
    announced: bool,
    decided: Option<Bit>,
    reset_count: u64,
}

impl SampledCommittee {
    /// Creates the state machine for processor `id` with the given input and
    /// the publicly known sampled `committee`.
    pub fn new(id: ProcessorId, input: Bit, committee: Vec<ProcessorId>) -> Self {
        let fault_tolerance = committee.len().saturating_sub(1) / 3;
        let is_member = committee.contains(&id);
        SampledCommittee {
            committee,
            fault_tolerance,
            is_member,
            input,
            votes: RoundTally::new(),
            announced: false,
            decided: None,
            reset_count: 0,
        }
    }

    /// The publicly known sampled committee.
    pub fn committee(&self) -> &[ProcessorId] {
        &self.committee
    }

    /// `f = ⌊(k-1)/3⌋`, the number of committee faults tolerated.
    pub fn fault_tolerance(&self) -> usize {
        self.fault_tolerance
    }

    /// Whether this processor is a committee member.
    pub fn is_member(&self) -> bool {
        self.is_member
    }

    fn committee_quorum(&self) -> usize {
        self.committee.len() - self.fault_tolerance
    }

    fn try_announce(&mut self, ctx: &mut dyn Context) {
        if self.announced || !self.is_member {
            return;
        }
        if self.votes.total(0, KEY_PROPOSALS) < self.committee_quorum() {
            return;
        }
        let value = self
            .votes
            .majority_value(0, KEY_PROPOSALS)
            .unwrap_or(self.input);
        self.announced = true;
        self.decided = Some(value);
        ctx.decide(value);
        // The announcement is the only all-to-all fan-out of the protocol:
        // k broadcasts in total, so k·n messages per decision.
        ctx.broadcast(Payload::Committee(CommitteeMsg::Announce { value }));
    }

    fn try_decide_from_announcements(&mut self, ctx: &mut dyn Context) {
        if self.decided.is_some() {
            return;
        }
        let needed = self.fault_tolerance + 1;
        if let Some(value) = self.votes.value_with_at_least(0, KEY_ANNOUNCES, needed) {
            self.decided = Some(value);
            ctx.decide(value);
        }
    }
}

impl Protocol for SampledCommittee {
    fn on_start(&mut self, ctx: &mut dyn Context) {
        if self.is_member {
            // Proposals stay inside the committee: k² messages in total,
            // independent of n. The member's own id is in the set, so its
            // proposal reaches it over the self channel like any other.
            let committee = self.committee.clone();
            ctx.multicast(
                &committee,
                Payload::Committee(CommitteeMsg::Proposal { value: self.input }),
            );
        }
    }

    fn on_message(&mut self, from: ProcessorId, payload: &Payload, ctx: &mut dyn Context) {
        // Only committee members' messages carry any weight.
        if !self.committee.contains(&from) {
            return;
        }
        match payload {
            Payload::Committee(CommitteeMsg::Proposal { value }) if self.is_member => {
                self.votes.record(0, KEY_PROPOSALS, from, Some(*value));
                self.try_announce(ctx);
            }
            Payload::Committee(CommitteeMsg::Announce { value }) => {
                self.votes.record(0, KEY_ANNOUNCES, from, Some(*value));
                self.try_decide_from_announcements(ctx);
            }
            _ => {}
        }
    }

    fn on_reset(&mut self, _ctx: &mut dyn Context) {
        self.reset_count += 1;
        self.votes.clear();
        self.announced = false;
    }

    fn digest(&self) -> StateDigest {
        StateDigest {
            round: Some(1),
            estimate: Some(self.input),
            decided: self.decided,
            reset_count: self.reset_count,
            phase: match (self.is_member, self.announced) {
                (true, true) => "member-announced",
                (true, false) => "member",
                (false, _) => "observer",
            },
        }
    }
}

/// Builder for [`SampledCommittee`] instances.
///
/// # Examples
///
/// ```
/// use agreement_model::{ProtocolBuilder, SystemConfig};
/// use agreement_protocols::SampledCommitteeBuilder;
///
/// let cfg = SystemConfig::with_third_resilience(100)?;
/// // A publicly sampled committee of 13 members.
/// let builder = SampledCommitteeBuilder::random(&cfg, 13, 42);
/// assert_eq!(builder.committee().len(), 13);
/// assert_eq!(builder.name(), "sampled-committee");
/// # Ok::<(), agreement_model::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SampledCommitteeBuilder {
    committee: Vec<ProcessorId>,
}

impl SampledCommitteeBuilder {
    /// Uses an explicitly given committee.
    ///
    /// # Panics
    ///
    /// Panics if the committee is empty or contains duplicates.
    pub fn with_committee(committee: Vec<ProcessorId>) -> Self {
        assert!(
            !committee.is_empty(),
            "committee must have at least one member"
        );
        let mut sorted = committee.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            committee.len(),
            "committee must not contain duplicates"
        );
        SampledCommitteeBuilder { committee }
    }

    /// Samples a committee of `size` distinct processors by public sortition
    /// with seed `seed` (drawn through a dedicated domain label, so it never
    /// collides with [`crate::CommitteeBuilder`]'s draw for the same seed).
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or exceeds `cfg.n()`.
    pub fn random(cfg: &SystemConfig, size: usize, seed: u64) -> Self {
        assert!(size > 0, "committee must have at least one member");
        assert!(
            size <= cfg.n(),
            "committee cannot exceed the number of processors"
        );
        let mut rng = ProcessorRng::labelled(seed, SORTITION_LABEL);
        let committee = rng
            .choose_distinct(cfg.n(), size)
            .into_iter()
            .map(ProcessorId::new)
            .collect();
        SampledCommitteeBuilder { committee }
    }

    /// The publicly known sampled committee used by every built instance.
    pub fn committee(&self) -> &[ProcessorId] {
        &self.committee
    }
}

impl ProtocolBuilder for SampledCommitteeBuilder {
    fn name(&self) -> &'static str {
        "sampled-committee"
    }

    fn build(&self, id: ProcessorId, input: Bit, _cfg: &SystemConfig) -> Box<dyn Protocol> {
        Box::new(SampledCommittee::new(id, input, self.committee.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct TestCtx {
        id: ProcessorId,
        cfg: SystemConfig,
        sent: Vec<(ProcessorId, Payload)>,
        decided: Option<Bit>,
    }

    impl TestCtx {
        fn new(id: usize, n: usize, t: usize) -> Self {
            TestCtx {
                id: ProcessorId::new(id),
                cfg: SystemConfig::new(n, t).unwrap(),
                sent: Vec::new(),
                decided: None,
            }
        }
    }

    impl Context for TestCtx {
        fn id(&self) -> ProcessorId {
            self.id
        }
        fn config(&self) -> SystemConfig {
            self.cfg
        }
        fn input(&self) -> Bit {
            Bit::Zero
        }
        fn send(&mut self, to: ProcessorId, payload: Payload) {
            self.sent.push((to, payload));
        }
        fn random_bit(&mut self) -> Bit {
            Bit::Zero
        }
        fn random_range(&mut self, _b: u64) -> u64 {
            0
        }
        fn random_ticket(&mut self) -> u64 {
            0
        }
        fn decide(&mut self, value: Bit) {
            if self.decided.is_none() {
                self.decided = Some(value);
            }
        }
        fn decision(&self) -> Option<Bit> {
            self.decided
        }
    }

    fn committee(indices: &[usize]) -> Vec<ProcessorId> {
        indices.iter().copied().map(ProcessorId::new).collect()
    }

    #[test]
    fn member_proposals_go_only_to_the_committee() {
        let mut ctx = TestCtx::new(1, 100, 10);
        let mut member =
            SampledCommittee::new(ProcessorId::new(1), Bit::One, committee(&[1, 2, 3, 4]));
        assert!(member.is_member());
        member.on_start(&mut ctx);
        // 4 proposals for a committee of 4 in a system of 100 — not 100.
        let recipients: Vec<usize> = ctx.sent.iter().map(|(to, _)| to.index()).collect();
        assert_eq!(recipients, vec![1, 2, 3, 4]);
        assert!(ctx.sent.iter().all(|(_, p)| matches!(
            p,
            Payload::Committee(CommitteeMsg::Proposal { value: Bit::One })
        )));
    }

    #[test]
    fn observer_sends_nothing_on_start() {
        let mut ctx = TestCtx::new(7, 100, 10);
        let mut observer =
            SampledCommittee::new(ProcessorId::new(7), Bit::Zero, committee(&[1, 2, 3, 4]));
        assert!(!observer.is_member());
        observer.on_start(&mut ctx);
        assert!(ctx.sent.is_empty());
    }

    #[test]
    fn member_announces_to_everyone_after_committee_quorum() {
        // Committee of 4: f = 1, quorum = 3.
        let mut ctx = TestCtx::new(1, 10, 2);
        let mut p = SampledCommittee::new(ProcessorId::new(1), Bit::Zero, committee(&[1, 2, 3, 4]));
        assert_eq!(p.fault_tolerance(), 1);
        p.on_start(&mut ctx);
        ctx.sent.clear();
        for member in [1usize, 2, 3] {
            p.on_message(
                ProcessorId::new(member),
                &Payload::Committee(CommitteeMsg::Proposal { value: Bit::One }),
                &mut ctx,
            );
        }
        assert_eq!(ctx.decided, Some(Bit::One));
        // The announcement is the broadcast phase: one message per processor.
        assert_eq!(ctx.sent.len(), 10);
        assert!(ctx.sent.iter().all(|(_, p)| matches!(
            p,
            Payload::Committee(CommitteeMsg::Announce { value: Bit::One })
        )));
        // Further proposals do not re-announce.
        p.on_message(
            ProcessorId::new(4),
            &Payload::Committee(CommitteeMsg::Proposal { value: Bit::Zero }),
            &mut ctx,
        );
        assert_eq!(ctx.sent.len(), 10);
    }

    #[test]
    fn observer_decides_on_f_plus_one_matching_announcements() {
        let mut ctx = TestCtx::new(8, 10, 2);
        let mut p = SampledCommittee::new(ProcessorId::new(8), Bit::Zero, committee(&[1, 2, 3, 4]));
        p.on_message(
            ProcessorId::new(1),
            &Payload::Committee(CommitteeMsg::Announce { value: Bit::One }),
            &mut ctx,
        );
        assert_eq!(ctx.decided, None, "f + 1 = 2 announcements are required");
        p.on_message(
            ProcessorId::new(2),
            &Payload::Committee(CommitteeMsg::Announce { value: Bit::One }),
            &mut ctx,
        );
        assert_eq!(ctx.decided, Some(Bit::One));
    }

    #[test]
    fn non_member_messages_are_ignored() {
        let mut ctx = TestCtx::new(8, 10, 2);
        let mut p = SampledCommittee::new(ProcessorId::new(8), Bit::Zero, committee(&[1, 2]));
        assert_eq!(p.fault_tolerance(), 0);
        p.on_message(
            ProcessorId::new(7),
            &Payload::Committee(CommitteeMsg::Announce { value: Bit::One }),
            &mut ctx,
        );
        assert_eq!(ctx.decided, None);
        p.on_message(
            ProcessorId::new(2),
            &Payload::Committee(CommitteeMsg::Announce { value: Bit::One }),
            &mut ctx,
        );
        assert_eq!(ctx.decided, Some(Bit::One));
    }

    #[test]
    fn sortition_is_deterministic_and_distinct_from_the_baseline_draw() {
        let cfg = SystemConfig::with_third_resilience(100).unwrap();
        let a = SampledCommitteeBuilder::random(&cfg, 13, 99);
        let b = SampledCommitteeBuilder::random(&cfg, 13, 99);
        assert_eq!(a.committee(), b.committee());
        let mut members = a.committee().to_vec();
        members.sort_unstable();
        members.dedup();
        assert_eq!(members.len(), 13);
        // A different domain label than CommitteeBuilder: the same seed must
        // not produce the same committee as the quadratic baseline.
        let baseline = crate::CommitteeBuilder::random(&cfg, 13, 99);
        assert_ne!(a.committee(), baseline.committee());
    }

    #[test]
    #[should_panic(expected = "committee must not contain duplicates")]
    fn duplicate_committee_members_rejected() {
        let _ = SampledCommitteeBuilder::with_committee(committee(&[1, 1, 2]));
    }

    #[test]
    fn builder_builds_members_and_observers() {
        let cfg = SystemConfig::new(6, 1).unwrap();
        let builder = SampledCommitteeBuilder::with_committee(committee(&[0, 1, 2]));
        let member = builder.build(ProcessorId::new(0), Bit::One, &cfg);
        assert_eq!(member.digest().phase, "member");
        let observer = builder.build(ProcessorId::new(5), Bit::One, &cfg);
        assert_eq!(observer.digest().phase, "observer");
    }
}

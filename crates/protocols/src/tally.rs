//! Vote tallies: per-round, per-sender bookkeeping of received values.
//!
//! Every protocol in this crate repeatedly answers questions of the form "how
//! many distinct processors have sent me value `v` for round `r` (and phase
//! `p`)?". [`RoundTally`] centralizes that bookkeeping: it records at most one
//! vote per sender per key, so a faulty or retransmitting sender can never be
//! counted twice.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use agreement_model::{Bit, ProcessorId};

/// A per-key tally of binary (or abstaining) votes with one vote per sender.
///
/// Keys are `(round, phase)` pairs; protocols that have no phases use phase 0.
///
/// # Examples
///
/// ```
/// use agreement_model::{Bit, ProcessorId};
/// use agreement_protocols::RoundTally;
///
/// let mut tally = RoundTally::new();
/// tally.record(1, 0, ProcessorId::new(0), Some(Bit::One));
/// tally.record(1, 0, ProcessorId::new(1), Some(Bit::Zero));
/// // A duplicate vote from the same sender is ignored.
/// tally.record(1, 0, ProcessorId::new(0), Some(Bit::Zero));
/// assert_eq!(tally.total(1, 0), 2);
/// assert_eq!(tally.count(1, 0, Bit::One), 1);
/// assert_eq!(tally.count(1, 0, Bit::Zero), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RoundTally {
    votes: BTreeMap<(u64, u8), KeyTally>,
}

#[derive(Debug, Clone, Default)]
struct KeyTally {
    voters: BTreeSet<ProcessorId>,
    zeros: usize,
    ones: usize,
    abstains: usize,
}

impl RoundTally {
    /// Creates an empty tally.
    pub fn new() -> Self {
        RoundTally::default()
    }

    /// Records a vote from `sender` for key `(round, phase)`.
    ///
    /// `value` of `None` records an abstention (e.g. Ben-Or's `?` proposal).
    /// Returns `true` if the vote was counted, `false` if this sender had
    /// already voted for this key.
    pub fn record(
        &mut self,
        round: u64,
        phase: u8,
        sender: ProcessorId,
        value: Option<Bit>,
    ) -> bool {
        let entry = self.votes.entry((round, phase)).or_default();
        if !entry.voters.insert(sender) {
            return false;
        }
        match value {
            Some(Bit::Zero) => entry.zeros += 1,
            Some(Bit::One) => entry.ones += 1,
            None => entry.abstains += 1,
        }
        true
    }

    /// Total number of distinct voters recorded for `(round, phase)`.
    pub fn total(&self, round: u64, phase: u8) -> usize {
        self.votes
            .get(&(round, phase))
            .map_or(0, |k| k.voters.len())
    }

    /// Number of votes for `value` recorded for `(round, phase)`.
    pub fn count(&self, round: u64, phase: u8, value: Bit) -> usize {
        self.votes.get(&(round, phase)).map_or(0, |k| match value {
            Bit::Zero => k.zeros,
            Bit::One => k.ones,
        })
    }

    /// Number of abstentions (`None` votes) recorded for `(round, phase)`.
    pub fn abstentions(&self, round: u64, phase: u8) -> usize {
        self.votes.get(&(round, phase)).map_or(0, |k| k.abstains)
    }

    /// Returns `true` if `sender` has already voted for `(round, phase)`.
    pub fn has_voted(&self, round: u64, phase: u8, sender: ProcessorId) -> bool {
        self.votes
            .get(&(round, phase))
            .is_some_and(|k| k.voters.contains(&sender))
    }

    /// The value with the most votes for `(round, phase)`; ties favour
    /// [`Bit::One`] (a fixed, publicly known tie-break).
    pub fn majority_value(&self, round: u64, phase: u8) -> Option<Bit> {
        let key = self.votes.get(&(round, phase))?;
        if key.zeros == 0 && key.ones == 0 {
            return None;
        }
        Some(if key.ones >= key.zeros {
            Bit::One
        } else {
            Bit::Zero
        })
    }

    /// Returns `Some(v)` if at least `threshold` votes were cast for `v`.
    /// If both values reach the threshold (only possible when `2 * threshold
    /// <= total votes`), the larger count wins and ties favour [`Bit::One`].
    pub fn value_with_at_least(&self, round: u64, phase: u8, threshold: usize) -> Option<Bit> {
        let key = self.votes.get(&(round, phase))?;
        let zero_hit = key.zeros >= threshold;
        let one_hit = key.ones >= threshold;
        match (zero_hit, one_hit) {
            (false, false) => None,
            (true, false) => Some(Bit::Zero),
            (false, true) => Some(Bit::One),
            (true, true) => Some(if key.ones >= key.zeros {
                Bit::One
            } else {
                Bit::Zero
            }),
        }
    }

    /// Rounds for which at least `threshold` distinct voters have been
    /// recorded in phase `phase`, in increasing order.
    pub fn rounds_with_at_least(&self, phase: u8, threshold: usize) -> Vec<u64> {
        self.votes
            .iter()
            .filter(|((_, p), k)| *p == phase && k.voters.len() >= threshold)
            .map(|((r, _), _)| *r)
            .collect()
    }

    /// Discards all recorded votes for rounds strictly before `round`.
    /// Keeps the memory footprint of long executions bounded.
    pub fn forget_rounds_before(&mut self, round: u64) {
        self.votes.retain(|(r, _), _| *r >= round);
    }

    /// Discards everything (used when a processor is reset).
    pub fn clear(&mut self) {
        self.votes.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessorId {
        ProcessorId::new(i)
    }

    #[test]
    fn duplicate_votes_are_ignored() {
        let mut t = RoundTally::new();
        assert!(t.record(1, 0, p(0), Some(Bit::One)));
        assert!(!t.record(1, 0, p(0), Some(Bit::One)));
        assert!(!t.record(1, 0, p(0), Some(Bit::Zero)));
        assert_eq!(t.total(1, 0), 1);
        assert_eq!(t.count(1, 0, Bit::One), 1);
        assert_eq!(t.count(1, 0, Bit::Zero), 0);
        assert!(t.has_voted(1, 0, p(0)));
        assert!(!t.has_voted(1, 0, p(1)));
    }

    #[test]
    fn phases_and_rounds_are_independent_keys() {
        let mut t = RoundTally::new();
        t.record(1, 0, p(0), Some(Bit::One));
        t.record(1, 1, p(0), Some(Bit::Zero));
        t.record(2, 0, p(0), Some(Bit::Zero));
        assert_eq!(t.total(1, 0), 1);
        assert_eq!(t.total(1, 1), 1);
        assert_eq!(t.total(2, 0), 1);
        assert_eq!(t.count(1, 1, Bit::Zero), 1);
    }

    #[test]
    fn abstentions_count_towards_total_but_not_values() {
        let mut t = RoundTally::new();
        t.record(3, 2, p(0), None);
        t.record(3, 2, p(1), Some(Bit::Zero));
        assert_eq!(t.total(3, 2), 2);
        assert_eq!(t.abstentions(3, 2), 1);
        assert_eq!(t.count(3, 2, Bit::Zero), 1);
        assert_eq!(t.count(3, 2, Bit::One), 0);
    }

    #[test]
    fn majority_value_breaks_ties_towards_one() {
        let mut t = RoundTally::new();
        assert_eq!(t.majority_value(1, 0), None);
        t.record(1, 0, p(0), Some(Bit::Zero));
        assert_eq!(t.majority_value(1, 0), Some(Bit::Zero));
        t.record(1, 0, p(1), Some(Bit::One));
        assert_eq!(t.majority_value(1, 0), Some(Bit::One));
        t.record(1, 0, p(2), Some(Bit::One));
        assert_eq!(t.majority_value(1, 0), Some(Bit::One));
    }

    #[test]
    fn majority_value_of_only_abstentions_is_none() {
        let mut t = RoundTally::new();
        t.record(1, 0, p(0), None);
        t.record(1, 0, p(1), None);
        assert_eq!(t.majority_value(1, 0), None);
    }

    #[test]
    fn value_with_at_least_respects_threshold() {
        let mut t = RoundTally::new();
        for i in 0..5 {
            t.record(1, 0, p(i), Some(Bit::Zero));
        }
        for i in 5..8 {
            t.record(1, 0, p(i), Some(Bit::One));
        }
        assert_eq!(t.value_with_at_least(1, 0, 5), Some(Bit::Zero));
        assert_eq!(t.value_with_at_least(1, 0, 6), None);
        assert_eq!(t.value_with_at_least(1, 0, 3), Some(Bit::Zero));
        assert_eq!(t.value_with_at_least(2, 0, 1), None);
    }

    #[test]
    fn rounds_with_at_least_reports_ready_rounds() {
        let mut t = RoundTally::new();
        for i in 0..4 {
            t.record(7, 0, p(i), Some(Bit::One));
        }
        for i in 0..2 {
            t.record(8, 0, p(i), Some(Bit::One));
        }
        assert_eq!(t.rounds_with_at_least(0, 3), vec![7]);
        assert_eq!(t.rounds_with_at_least(0, 1), vec![7, 8]);
        assert!(t.rounds_with_at_least(1, 1).is_empty());
    }

    #[test]
    fn forgetting_old_rounds_keeps_newer_ones() {
        let mut t = RoundTally::new();
        t.record(1, 0, p(0), Some(Bit::One));
        t.record(5, 0, p(0), Some(Bit::One));
        t.forget_rounds_before(3);
        assert_eq!(t.total(1, 0), 0);
        assert_eq!(t.total(5, 0), 1);
        t.clear();
        assert_eq!(t.total(5, 0), 0);
    }
}

//! A committee-election agreement baseline in the style of Kapron, Kempe,
//! King, Saia and Sanwalani (SODA 2008), the fast-but-non-adaptive protocol
//! the paper contrasts against.
//!
//! The full protocol of Kapron et al. builds a tree of elections that, with
//! probability `1 - o(1)`, ends in a small final committee containing a
//! bounded fraction of faulty processors; the final committee runs a classical
//! (slow) agreement protocol and announces the result. We reproduce the part
//! that matters for the paper's comparison and simplify the election
//! machinery: the final committee is selected by **public randomness** fixed
//! before the execution (a seed every processor knows). This preserves the two
//! properties the comparison rests on:
//!
//! * against a **non-adaptive** adversary (which must choose whom to corrupt
//!   without knowing the committee draw), a random committee is mostly correct
//!   with high probability, so the protocol is fast and almost always right;
//! * against an **adaptive** adversary, the committee is known as soon as the
//!   execution starts — the adversary "simply waits for the final committee to
//!   be determined and then causes faults", exactly as the paper's Section 1
//!   argues, producing non-termination or invalid outputs.
//!
//! Protocol: committee members exchange their inputs, take the majority of
//! `k - f` received proposals (where `k` is the committee size and
//! `f = ⌊(k-1)/3⌋` its fault tolerance), decide it, and announce it to all;
//! every other processor decides on the first value announced by `f + 1`
//! distinct committee members.

use agreement_model::{
    Bit, CommitteeMsg, Context, Payload, ProcessorId, ProcessorRng, Protocol, ProtocolBuilder,
    StateDigest, SystemConfig,
};

use crate::tally::RoundTally;

/// Tally keys.
const KEY_PROPOSALS: u8 = 0;
const KEY_ANNOUNCES: u8 = 1;

/// The committee-election agreement baseline: single-processor state machine.
#[derive(Debug)]
pub struct CommitteeAgreement {
    committee: Vec<ProcessorId>,
    fault_tolerance: usize,
    is_member: bool,
    input: Bit,
    votes: RoundTally,
    announced: bool,
    decided: Option<Bit>,
    reset_count: u64,
}

impl CommitteeAgreement {
    /// Creates the state machine for processor `id` with the given input and
    /// the publicly known `committee`.
    pub fn new(id: ProcessorId, input: Bit, committee: Vec<ProcessorId>) -> Self {
        let fault_tolerance = committee.len().saturating_sub(1) / 3;
        let is_member = committee.contains(&id);
        CommitteeAgreement {
            committee,
            fault_tolerance,
            is_member,
            input,
            votes: RoundTally::new(),
            announced: false,
            decided: None,
            reset_count: 0,
        }
    }

    /// The publicly known final committee.
    pub fn committee(&self) -> &[ProcessorId] {
        &self.committee
    }

    /// `f = ⌊(k-1)/3⌋`, the number of committee faults tolerated.
    pub fn fault_tolerance(&self) -> usize {
        self.fault_tolerance
    }

    /// Whether this processor is a committee member.
    pub fn is_member(&self) -> bool {
        self.is_member
    }

    fn committee_quorum(&self) -> usize {
        self.committee.len() - self.fault_tolerance
    }

    fn try_announce(&mut self, ctx: &mut dyn Context) {
        if self.announced || !self.is_member {
            return;
        }
        if self.votes.total(0, KEY_PROPOSALS) < self.committee_quorum() {
            return;
        }
        let value = self
            .votes
            .majority_value(0, KEY_PROPOSALS)
            .unwrap_or(self.input);
        self.announced = true;
        self.decided = Some(value);
        ctx.decide(value);
        ctx.broadcast(Payload::Committee(CommitteeMsg::Announce { value }));
    }

    fn try_decide_from_announcements(&mut self, ctx: &mut dyn Context) {
        if self.decided.is_some() {
            return;
        }
        let needed = self.fault_tolerance + 1;
        if let Some(value) = self.votes.value_with_at_least(0, KEY_ANNOUNCES, needed) {
            self.decided = Some(value);
            ctx.decide(value);
        }
    }
}

impl Protocol for CommitteeAgreement {
    fn on_start(&mut self, ctx: &mut dyn Context) {
        if self.is_member {
            ctx.broadcast(Payload::Committee(CommitteeMsg::Proposal {
                value: self.input,
            }));
        }
    }

    fn on_message(&mut self, from: ProcessorId, payload: &Payload, ctx: &mut dyn Context) {
        // Only committee members' messages carry any weight.
        if !self.committee.contains(&from) {
            return;
        }
        match payload {
            Payload::Committee(CommitteeMsg::Proposal { value }) if self.is_member => {
                self.votes.record(0, KEY_PROPOSALS, from, Some(*value));
                self.try_announce(ctx);
            }
            Payload::Committee(CommitteeMsg::Announce { value }) => {
                self.votes.record(0, KEY_ANNOUNCES, from, Some(*value));
                self.try_decide_from_announcements(ctx);
            }
            _ => {}
        }
    }

    fn on_reset(&mut self, _ctx: &mut dyn Context) {
        self.reset_count += 1;
        self.votes.clear();
        self.announced = false;
    }

    fn digest(&self) -> StateDigest {
        StateDigest {
            round: Some(1),
            estimate: Some(self.input),
            decided: self.decided,
            reset_count: self.reset_count,
            phase: match (self.is_member, self.announced) {
                (true, true) => "member-announced",
                (true, false) => "member",
                (false, _) => "observer",
            },
        }
    }
}

/// Builder for [`CommitteeAgreement`] instances.
///
/// # Examples
///
/// ```
/// use agreement_model::{ProtocolBuilder, SystemConfig};
/// use agreement_protocols::CommitteeBuilder;
///
/// let cfg = SystemConfig::with_third_resilience(27)?;
/// // A publicly known random committee of 7 members.
/// let builder = CommitteeBuilder::random(&cfg, 7, 42);
/// assert_eq!(builder.committee().len(), 7);
/// assert_eq!(builder.name(), "committee");
/// # Ok::<(), agreement_model::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CommitteeBuilder {
    committee: Vec<ProcessorId>,
}

impl CommitteeBuilder {
    /// Uses an explicitly given committee.
    ///
    /// # Panics
    ///
    /// Panics if the committee is empty or contains duplicates.
    pub fn with_committee(committee: Vec<ProcessorId>) -> Self {
        assert!(
            !committee.is_empty(),
            "committee must have at least one member"
        );
        let mut sorted = committee.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            committee.len(),
            "committee must not contain duplicates"
        );
        CommitteeBuilder { committee }
    }

    /// Selects a committee of `size` distinct processors using the public
    /// random seed `seed` (the non-adaptive adversary does not know it when
    /// choosing whom to corrupt; the adaptive adversary does).
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or exceeds `cfg.n()`.
    pub fn random(cfg: &SystemConfig, size: usize, seed: u64) -> Self {
        assert!(size > 0, "committee must have at least one member");
        assert!(
            size <= cfg.n(),
            "committee cannot exceed the number of processors"
        );
        let mut rng = ProcessorRng::labelled(seed, 0xC0881);
        let committee = rng
            .choose_distinct(cfg.n(), size)
            .into_iter()
            .map(ProcessorId::new)
            .collect();
        CommitteeBuilder { committee }
    }

    /// The publicly known committee used by every built instance.
    pub fn committee(&self) -> &[ProcessorId] {
        &self.committee
    }
}

impl ProtocolBuilder for CommitteeBuilder {
    fn name(&self) -> &'static str {
        "committee"
    }

    fn build(&self, id: ProcessorId, input: Bit, _cfg: &SystemConfig) -> Box<dyn Protocol> {
        Box::new(CommitteeAgreement::new(id, input, self.committee.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct TestCtx {
        id: ProcessorId,
        cfg: SystemConfig,
        sent: Vec<Payload>,
        decided: Option<Bit>,
    }

    impl TestCtx {
        fn new(id: usize, n: usize, t: usize) -> Self {
            TestCtx {
                id: ProcessorId::new(id),
                cfg: SystemConfig::new(n, t).unwrap(),
                sent: Vec::new(),
                decided: None,
            }
        }
    }

    impl Context for TestCtx {
        fn id(&self) -> ProcessorId {
            self.id
        }
        fn config(&self) -> SystemConfig {
            self.cfg
        }
        fn input(&self) -> Bit {
            Bit::Zero
        }
        fn send(&mut self, to: ProcessorId, payload: Payload) {
            if to == ProcessorId::new(0) {
                self.sent.push(payload);
            }
        }
        fn random_bit(&mut self) -> Bit {
            Bit::Zero
        }
        fn random_range(&mut self, _b: u64) -> u64 {
            0
        }
        fn random_ticket(&mut self) -> u64 {
            0
        }
        fn decide(&mut self, value: Bit) {
            if self.decided.is_none() {
                self.decided = Some(value);
            }
        }
        fn decision(&self) -> Option<Bit> {
            self.decided
        }
    }

    fn committee(indices: &[usize]) -> Vec<ProcessorId> {
        indices.iter().copied().map(ProcessorId::new).collect()
    }

    #[test]
    fn member_broadcasts_proposal_on_start_observer_stays_silent() {
        let mut ctx = TestCtx::new(1, 9, 2);
        let mut member =
            CommitteeAgreement::new(ProcessorId::new(1), Bit::One, committee(&[1, 2, 3, 4]));
        assert!(member.is_member());
        member.on_start(&mut ctx);
        assert_eq!(ctx.sent.len(), 1);
        assert!(matches!(
            ctx.sent[0],
            Payload::Committee(CommitteeMsg::Proposal { value: Bit::One })
        ));

        let mut ctx = TestCtx::new(7, 9, 2);
        let mut observer =
            CommitteeAgreement::new(ProcessorId::new(7), Bit::Zero, committee(&[1, 2, 3, 4]));
        assert!(!observer.is_member());
        observer.on_start(&mut ctx);
        assert!(ctx.sent.is_empty());
    }

    #[test]
    fn member_announces_majority_of_committee_proposals_and_decides() {
        // Committee of 4: f = 1, quorum = 3.
        let mut ctx = TestCtx::new(1, 9, 2);
        let mut p =
            CommitteeAgreement::new(ProcessorId::new(1), Bit::Zero, committee(&[1, 2, 3, 4]));
        assert_eq!(p.fault_tolerance(), 1);
        p.on_start(&mut ctx);
        ctx.sent.clear();
        for member in [1usize, 2, 3] {
            p.on_message(
                ProcessorId::new(member),
                &Payload::Committee(CommitteeMsg::Proposal { value: Bit::One }),
                &mut ctx,
            );
        }
        assert_eq!(ctx.decided, Some(Bit::One));
        assert_eq!(ctx.sent.len(), 1);
        assert!(matches!(
            ctx.sent[0],
            Payload::Committee(CommitteeMsg::Announce { value: Bit::One })
        ));
        // Further proposals do not re-announce.
        p.on_message(
            ProcessorId::new(4),
            &Payload::Committee(CommitteeMsg::Proposal { value: Bit::Zero }),
            &mut ctx,
        );
        assert_eq!(ctx.sent.len(), 1);
    }

    #[test]
    fn observer_decides_on_f_plus_one_matching_announcements() {
        let mut ctx = TestCtx::new(8, 9, 2);
        let mut p =
            CommitteeAgreement::new(ProcessorId::new(8), Bit::Zero, committee(&[1, 2, 3, 4]));
        p.on_message(
            ProcessorId::new(1),
            &Payload::Committee(CommitteeMsg::Announce { value: Bit::One }),
            &mut ctx,
        );
        assert_eq!(ctx.decided, None, "f + 1 = 2 announcements are required");
        p.on_message(
            ProcessorId::new(2),
            &Payload::Committee(CommitteeMsg::Announce { value: Bit::One }),
            &mut ctx,
        );
        assert_eq!(ctx.decided, Some(Bit::One));
    }

    #[test]
    fn announcements_from_non_members_are_ignored() {
        let mut ctx = TestCtx::new(8, 9, 2);
        let mut p = CommitteeAgreement::new(ProcessorId::new(8), Bit::Zero, committee(&[1, 2]));
        assert_eq!(p.fault_tolerance(), 0);
        // Processor 7 is not on the committee; its announcement carries no weight.
        p.on_message(
            ProcessorId::new(7),
            &Payload::Committee(CommitteeMsg::Announce { value: Bit::One }),
            &mut ctx,
        );
        assert_eq!(ctx.decided, None);
        p.on_message(
            ProcessorId::new(2),
            &Payload::Committee(CommitteeMsg::Announce { value: Bit::One }),
            &mut ctx,
        );
        assert_eq!(ctx.decided, Some(Bit::One));
    }

    #[test]
    fn duplicate_announcements_from_one_member_do_not_decide() {
        let mut ctx = TestCtx::new(8, 9, 2);
        let mut p =
            CommitteeAgreement::new(ProcessorId::new(8), Bit::Zero, committee(&[1, 2, 3, 4]));
        for _ in 0..3 {
            p.on_message(
                ProcessorId::new(1),
                &Payload::Committee(CommitteeMsg::Announce { value: Bit::One }),
                &mut ctx,
            );
        }
        assert_eq!(ctx.decided, None);
    }

    #[test]
    fn singleton_committee_decides_its_own_input_immediately() {
        let mut ctx = TestCtx::new(0, 5, 1);
        let mut p = CommitteeAgreement::new(ProcessorId::new(0), Bit::One, committee(&[0]));
        p.on_start(&mut ctx);
        // The lone member's own proposal (delivered over the self channel) decides.
        p.on_message(
            ProcessorId::new(0),
            &Payload::Committee(CommitteeMsg::Proposal { value: Bit::One }),
            &mut ctx,
        );
        assert_eq!(ctx.decided, Some(Bit::One));
    }

    #[test]
    fn random_builder_selects_distinct_members_deterministically() {
        let cfg = SystemConfig::with_third_resilience(27).unwrap();
        let a = CommitteeBuilder::random(&cfg, 7, 99);
        let b = CommitteeBuilder::random(&cfg, 7, 99);
        assert_eq!(a.committee(), b.committee());
        let mut members = a.committee().to_vec();
        members.dedup();
        assert_eq!(members.len(), 7);
        let c = CommitteeBuilder::random(&cfg, 7, 100);
        assert_ne!(a.committee(), c.committee());
    }

    #[test]
    #[should_panic(expected = "committee must not contain duplicates")]
    fn duplicate_committee_members_rejected() {
        let _ = CommitteeBuilder::with_committee(committee(&[1, 1, 2]));
    }

    #[test]
    #[should_panic(expected = "committee cannot exceed")]
    fn oversized_random_committee_rejected() {
        let cfg = SystemConfig::new(4, 1).unwrap();
        let _ = CommitteeBuilder::random(&cfg, 5, 1);
    }

    #[test]
    fn builder_builds_members_and_observers() {
        let cfg = SystemConfig::new(6, 1).unwrap();
        let builder = CommitteeBuilder::with_committee(committee(&[0, 1, 2]));
        let member = builder.build(ProcessorId::new(0), Bit::One, &cfg);
        assert_eq!(member.digest().phase, "member");
        let observer = builder.build(ProcessorId::new(5), Bit::One, &cfg);
        assert_eq!(observer.digest().phase, "observer");
    }
}

//! The paper's Section 3 protocol: randomized agreement tolerating resetting
//! failures organized into acceptable windows (the *reset-tolerant* variant of
//! Ben-Or's and Bracha's protocols).
//!
//! Each processor `p` keeps a round number `r_p` and an estimate `x_p`
//! (initially its input) and repeats:
//!
//! * **step 1** — send `(r_p, x_p)` to all processors;
//! * **step 2** — wait until `T1` messages `(r_q, x_q)` with `r_q = r_p` have
//!   arrived;
//! * **step 3** — if at least `T2` of them carry the same value `v`, write `v`
//!   to the output bit (if unwritten); if at least `T3` carry the same `v`,
//!   set `x_p = v`; otherwise set `x_p` to a fresh random bit;
//! * **step 4** — increment `r_p` and return to step 1.
//!
//! **Handling resets.** A processor that detects it has been reset waits until
//! it has received at least `T1` messages `(r_q, x_q)` sharing a common round
//! `r`, adopts `r_p = r`, and resumes from step 3 (it refrains from sending
//! until then).
//!
//! Theorem 4: with `t < n/6` and thresholds satisfying
//! `n - 2t >= T1 >= T2 >= T3 + t` and `2*T3 > n`, this protocol achieves
//! measure one correctness and termination against every strongly adaptive
//! adversary — at the cost of expected exponential running time for
//! adversarially split inputs, which Theorem 5 shows is unavoidable.

use agreement_model::{
    Bit, ConfigError, Context, Payload, ProcessorId, Protocol, ProtocolBuilder, StateDigest,
    SystemConfig, Thresholds,
};

use crate::tally::RoundTally;

/// Which part of the protocol the processor is currently executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Normal operation in the round carried by `round`.
    Normal,
    /// Resynchronizing after a reset: waiting for `T1` same-round messages.
    Resync,
}

/// The reset-tolerant agreement protocol of Section 3 (single processor state).
#[derive(Debug)]
pub struct ResetTolerant {
    thresholds: Thresholds,
    mode: Mode,
    round: u64,
    estimate: Bit,
    tally: RoundTally,
    last_processed_round: u64,
    reset_count: u64,
    decided: Option<Bit>,
}

impl ResetTolerant {
    /// Creates the protocol state for a processor with the given input.
    pub fn new(input: Bit, thresholds: Thresholds) -> Self {
        ResetTolerant {
            thresholds,
            mode: Mode::Normal,
            round: 1,
            estimate: input,
            tally: RoundTally::new(),
            last_processed_round: 0,
            reset_count: 0,
            decided: None,
        }
    }

    /// The thresholds this instance runs with.
    pub fn thresholds(&self) -> Thresholds {
        self.thresholds
    }

    /// The current round number (meaningful only in normal mode).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The current estimate `x_p`.
    pub fn estimate(&self) -> Bit {
        self.estimate
    }

    /// Whether the processor is currently resynchronizing after a reset.
    pub fn is_resynchronizing(&self) -> bool {
        self.mode == Mode::Resync
    }

    fn send_round_message(&self, ctx: &mut dyn Context) {
        ctx.broadcast(Payload::Report {
            round: self.round,
            value: self.estimate,
        });
    }

    /// Executes step 3 for round `r` using the recorded tally, then step 4.
    fn step_three_and_four(&mut self, r: u64, ctx: &mut dyn Context) {
        let t2 = self.thresholds.t2();
        let t3 = self.thresholds.t3();
        if let Some(v) = self.tally.value_with_at_least(r, 0, t2) {
            self.decided = Some(v);
            ctx.decide(v);
        }
        if let Some(v) = self.tally.value_with_at_least(r, 0, t3) {
            self.estimate = v;
        } else {
            self.estimate = ctx.random_bit();
        }
        self.last_processed_round = r;
        // Step 4: advance and send the next round's message.
        self.round = r + 1;
        self.mode = Mode::Normal;
        self.tally.forget_rounds_before(self.round);
        self.send_round_message(ctx);
    }

    /// Drives the state machine as far as the received messages allow.
    fn try_progress(&mut self, ctx: &mut dyn Context) {
        loop {
            let t1 = self.thresholds.t1();
            match self.mode {
                Mode::Normal => {
                    let r = self.round;
                    if r > self.last_processed_round && self.tally.total(r, 0) >= t1 {
                        self.step_three_and_four(r, ctx);
                    } else {
                        break;
                    }
                }
                Mode::Resync => {
                    let ready = self.tally.rounds_with_at_least(0, t1);
                    match ready.first() {
                        Some(&r) => {
                            self.round = r;
                            self.step_three_and_four(r, ctx);
                        }
                        None => break,
                    }
                }
            }
        }
    }
}

impl Protocol for ResetTolerant {
    fn on_start(&mut self, ctx: &mut dyn Context) {
        self.send_round_message(ctx);
    }

    fn on_message(&mut self, from: ProcessorId, payload: &Payload, ctx: &mut dyn Context) {
        if let Payload::Report { round, value } = payload {
            // Messages for rounds the processor has already finished are stale.
            if self.mode == Mode::Normal && *round < self.round {
                return;
            }
            self.tally.record(*round, 0, from, Some(*value));
            self.try_progress(ctx);
        }
    }

    fn on_reset(&mut self, _ctx: &mut dyn Context) {
        // Memory is erased: the round number, estimate, and all recorded
        // messages are lost. The input bit, output bit and reset counter are
        // durable and owned by the harness; we only keep the (detectable)
        // fact that a reset happened.
        self.reset_count += 1;
        self.mode = Mode::Resync;
        self.round = 0;
        self.last_processed_round = 0;
        self.tally.clear();
        // A reset processor refrains from sending until it resynchronizes, so
        // nothing is sent here.
    }

    fn digest(&self) -> StateDigest {
        StateDigest {
            round: match self.mode {
                Mode::Normal => Some(self.round),
                Mode::Resync => None,
            },
            estimate: match self.mode {
                Mode::Normal => Some(self.estimate),
                Mode::Resync => None,
            },
            decided: self.decided,
            reset_count: self.reset_count,
            phase: match self.mode {
                Mode::Normal => "normal",
                Mode::Resync => "resync",
            },
        }
    }
}

/// Builder for [`ResetTolerant`] instances.
///
/// # Examples
///
/// ```
/// use agreement_model::{ProtocolBuilder, SystemConfig};
/// use agreement_protocols::ResetTolerantBuilder;
///
/// let cfg = SystemConfig::with_sixth_resilience(13)?;
/// let builder = ResetTolerantBuilder::recommended(&cfg)?;
/// assert_eq!(builder.name(), "reset-tolerant");
/// # Ok::<(), agreement_model::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ResetTolerantBuilder {
    thresholds: Thresholds,
}

impl ResetTolerantBuilder {
    /// Uses the explicitly given thresholds (they are *not* validated, so that
    /// experiments can deliberately explore invalid settings; see experiment
    /// E8).
    pub fn with_thresholds(thresholds: Thresholds) -> Self {
        ResetTolerantBuilder { thresholds }
    }

    /// Uses the Theorem 4 recommended thresholds for `cfg`.
    ///
    /// # Errors
    ///
    /// Returns an error if `cfg` violates `t < n/6`, in which case no valid
    /// thresholds exist.
    pub fn recommended(cfg: &SystemConfig) -> Result<Self, ConfigError> {
        Ok(ResetTolerantBuilder {
            thresholds: Thresholds::recommended(cfg)?,
        })
    }

    /// The thresholds instances built by this builder will use.
    pub fn thresholds(&self) -> Thresholds {
        self.thresholds
    }
}

impl ProtocolBuilder for ResetTolerantBuilder {
    fn name(&self) -> &'static str {
        "reset-tolerant"
    }

    fn build(&self, _id: ProcessorId, input: Bit, _cfg: &SystemConfig) -> Box<dyn Protocol> {
        Box::new(ResetTolerant::new(input, self.thresholds))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agreement_model::SystemConfig;
    use std::collections::VecDeque;

    /// A scripted test context.
    #[derive(Debug)]
    struct TestCtx {
        id: ProcessorId,
        cfg: SystemConfig,
        input: Bit,
        sent: Vec<(ProcessorId, Payload)>,
        decided: Option<Bit>,
        random_bits: VecDeque<Bit>,
    }

    impl TestCtx {
        fn new(n: usize, t: usize, input: Bit) -> Self {
            TestCtx {
                id: ProcessorId::new(0),
                cfg: SystemConfig::new(n, t).unwrap(),
                input,
                sent: Vec::new(),
                decided: None,
                random_bits: VecDeque::new(),
            }
        }

        fn broadcast_rounds(&self) -> Vec<u64> {
            self.sent
                .iter()
                .filter(|(to, _)| to.index() == 1)
                .filter_map(|(_, p)| p.round())
                .collect()
        }
    }

    impl Context for TestCtx {
        fn id(&self) -> ProcessorId {
            self.id
        }
        fn config(&self) -> SystemConfig {
            self.cfg
        }
        fn input(&self) -> Bit {
            self.input
        }
        fn send(&mut self, to: ProcessorId, payload: Payload) {
            self.sent.push((to, payload));
        }
        fn random_bit(&mut self) -> Bit {
            self.random_bits.pop_front().unwrap_or(Bit::Zero)
        }
        fn random_range(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            0
        }
        fn random_ticket(&mut self) -> u64 {
            0
        }
        fn decide(&mut self, value: Bit) {
            if self.decided.is_none() {
                self.decided = Some(value);
            }
        }
        fn decision(&self) -> Option<Bit> {
            self.decided
        }
    }

    /// n = 13, t = 2 gives the recommended thresholds T1 = T2 = 9, T3 = 7.
    fn setup(input: Bit) -> (ResetTolerant, TestCtx) {
        let cfg = SystemConfig::with_sixth_resilience(13).unwrap();
        let thresholds = Thresholds::recommended(&cfg).unwrap();
        assert_eq!(
            (thresholds.t1(), thresholds.t2(), thresholds.t3()),
            (9, 9, 7)
        );
        (
            ResetTolerant::new(input, thresholds),
            TestCtx::new(13, 2, input),
        )
    }

    fn feed_reports(
        protocol: &mut ResetTolerant,
        ctx: &mut TestCtx,
        round: u64,
        zeros: usize,
        ones: usize,
    ) {
        let mut sender = 1;
        for _ in 0..zeros {
            protocol.on_message(
                ProcessorId::new(sender),
                &Payload::Report {
                    round,
                    value: Bit::Zero,
                },
                ctx,
            );
            sender += 1;
        }
        for _ in 0..ones {
            protocol.on_message(
                ProcessorId::new(sender),
                &Payload::Report {
                    round,
                    value: Bit::One,
                },
                ctx,
            );
            sender += 1;
        }
    }

    #[test]
    fn start_sends_round_one_estimate_to_everyone() {
        let (mut p, mut ctx) = setup(Bit::One);
        p.on_start(&mut ctx);
        assert_eq!(ctx.sent.len(), 13);
        assert!(ctx.sent.iter().all(|(_, payload)| matches!(
            payload,
            Payload::Report {
                round: 1,
                value: Bit::One
            }
        )));
        assert_eq!(p.round(), 1);
    }

    #[test]
    fn strong_majority_decides_and_advances() {
        let (mut p, mut ctx) = setup(Bit::One);
        p.on_start(&mut ctx);
        ctx.sent.clear();
        // 9 matching One reports: reaches T1 = 9 and T2 = 9 simultaneously.
        feed_reports(&mut p, &mut ctx, 1, 0, 9);
        assert_eq!(ctx.decided, Some(Bit::One));
        assert_eq!(p.estimate(), Bit::One);
        assert_eq!(p.round(), 2);
        // Step 4 sent the round-2 message.
        assert_eq!(ctx.broadcast_rounds(), vec![2]);
    }

    #[test]
    fn t3_majority_fixes_estimate_without_deciding() {
        let (mut p, mut ctx) = setup(Bit::One);
        p.on_start(&mut ctx);
        // 7 zeros (meets T3 = 7) and 2 ones: total 9 = T1, but no value reaches T2 = 9.
        feed_reports(&mut p, &mut ctx, 1, 7, 2);
        assert_eq!(ctx.decided, None);
        assert_eq!(p.estimate(), Bit::Zero);
        assert_eq!(p.round(), 2);
    }

    #[test]
    fn split_view_samples_a_random_bit() {
        let (mut p, mut ctx) = setup(Bit::One);
        ctx.random_bits.push_back(Bit::One);
        p.on_start(&mut ctx);
        // 5 zeros, 4 ones: total 9 = T1 but neither value reaches T3 = 7.
        feed_reports(&mut p, &mut ctx, 1, 5, 4);
        assert_eq!(ctx.decided, None);
        assert_eq!(
            p.estimate(),
            Bit::One,
            "estimate must come from the scripted random bit"
        );
        assert_eq!(p.round(), 2);
    }

    #[test]
    fn messages_below_t1_do_not_advance_the_round() {
        let (mut p, mut ctx) = setup(Bit::Zero);
        p.on_start(&mut ctx);
        feed_reports(&mut p, &mut ctx, 1, 4, 4); // 8 < T1 = 9
        assert_eq!(p.round(), 1);
        assert_eq!(ctx.decided, None);
    }

    #[test]
    fn future_round_messages_are_buffered_and_used_after_advancing() {
        let (mut p, mut ctx) = setup(Bit::One);
        p.on_start(&mut ctx);
        // Deliver round-2 messages first; they must not be lost.
        feed_reports(&mut p, &mut ctx, 2, 0, 9);
        assert_eq!(
            p.round(),
            1,
            "round-2 messages alone cannot advance round 1"
        );
        // Now complete round 1 with a split view; the buffered round-2
        // messages then immediately advance the protocol to round 3.
        feed_reports(&mut p, &mut ctx, 1, 5, 4);
        assert_eq!(p.round(), 3);
        assert_eq!(
            ctx.decided,
            Some(Bit::One),
            "round 2 had a T2 majority of ones"
        );
    }

    #[test]
    fn stale_round_messages_are_ignored() {
        let (mut p, mut ctx) = setup(Bit::One);
        p.on_start(&mut ctx);
        feed_reports(&mut p, &mut ctx, 1, 0, 9);
        assert_eq!(p.round(), 2);
        // A late round-1 message must not be recorded for the current round.
        p.on_message(
            ProcessorId::new(12),
            &Payload::Report {
                round: 1,
                value: Bit::Zero,
            },
            &mut ctx,
        );
        assert_eq!(p.round(), 2);
    }

    #[test]
    fn reset_enters_resync_and_refrains_from_sending() {
        let (mut p, mut ctx) = setup(Bit::One);
        p.on_start(&mut ctx);
        feed_reports(&mut p, &mut ctx, 1, 0, 9);
        ctx.sent.clear();
        p.on_reset(&mut ctx);
        assert!(p.is_resynchronizing());
        assert!(ctx.sent.is_empty(), "a reset processor must not send");
        let digest = p.digest();
        assert_eq!(digest.round, None);
        assert_eq!(digest.estimate, None);
        assert_eq!(digest.reset_count, 1);
        assert_eq!(digest.phase, "resync");
    }

    #[test]
    fn reset_processor_rejoins_at_the_observed_round() {
        let (mut p, mut ctx) = setup(Bit::One);
        p.on_start(&mut ctx);
        p.on_reset(&mut ctx);
        ctx.sent.clear();
        // The other processors are in round 5; T1 of their reports resynchronize us.
        feed_reports(&mut p, &mut ctx, 5, 0, 9);
        assert!(!p.is_resynchronizing());
        assert_eq!(p.round(), 6, "step 4 advances past the adopted round");
        assert_eq!(p.estimate(), Bit::One);
        assert_eq!(ctx.decided, Some(Bit::One));
        assert_eq!(ctx.broadcast_rounds(), vec![6]);
    }

    #[test]
    fn unwritten_output_not_decided_on_weak_majority_after_resync() {
        let (mut p, mut ctx) = setup(Bit::Zero);
        p.on_start(&mut ctx);
        p.on_reset(&mut ctx);
        // Exactly T1 = 9 reports, 7 zeros and 2 ones: T3 reached, T2 not.
        feed_reports(&mut p, &mut ctx, 3, 7, 2);
        assert_eq!(ctx.decided, None);
        assert_eq!(p.estimate(), Bit::Zero);
        assert_eq!(p.round(), 4);
    }

    #[test]
    fn builder_produces_named_protocol_with_recommended_thresholds() {
        let cfg = SystemConfig::with_sixth_resilience(19).unwrap();
        let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
        assert_eq!(builder.name(), "reset-tolerant");
        assert!(builder.thresholds().is_valid_for(&cfg));
        let protocol = builder.build(ProcessorId::new(0), Bit::Zero, &cfg);
        assert_eq!(protocol.digest().round, Some(1));
    }

    #[test]
    fn builder_rejects_configs_beyond_sixth_resilience() {
        let cfg = SystemConfig::new(12, 2).unwrap();
        assert!(ResetTolerantBuilder::recommended(&cfg).is_err());
    }

    #[test]
    fn explicit_thresholds_are_used_verbatim() {
        let builder = ResetTolerantBuilder::with_thresholds(Thresholds::new(5, 4, 4));
        assert_eq!(builder.thresholds().t1(), 5);
        let cfg = SystemConfig::new(7, 1).unwrap();
        let p = builder.build(ProcessorId::new(2), Bit::One, &cfg);
        assert_eq!(p.digest().estimate, Some(Bit::One));
    }
}

//! Ben-Or's randomized asynchronous agreement protocol (PODC 1983), in the
//! crash-failure formulation whose correctness for `t < n/2` is proved by
//! Aguilera and Toueg (cited as [1] in the paper).
//!
//! Each round `r` has two phases:
//!
//! * **Phase 1 (report)** — broadcast `(r, x)`; wait for `n - t` round-`r`
//!   reports. If more than `n/2` of them carry the same value `v`, the
//!   processor *proposes* `v`; otherwise it proposes `?` (no preference).
//! * **Phase 2 (proposal)** — broadcast the proposal; wait for `n - t`
//!   round-`r` proposals. If at least `t + 1` of them propose the same value
//!   `v`, decide `v`; else if at least one proposes `v`, adopt `x = v`;
//!   otherwise set `x` to a fresh random bit. Then advance to round `r + 1`.
//!
//! The protocol is **forgetful** and **fully communicative** in the sense of
//! Definitions 15 and 16: each message depends only on the input bit, the
//! messages received since the previous sending event, and fresh randomness,
//! and receiving the latest messages from `n - t` processors always triggers a
//! new broadcast to all `n` processors. It is therefore in the class to which
//! Theorem 17's exponential lower bound applies.

use agreement_model::{
    Bit, Context, Payload, ProcessorId, Protocol, ProtocolBuilder, StateDigest, SystemConfig,
};

use crate::tally::RoundTally;

/// Phase identifiers used as tally keys.
const PHASE_REPORT: u8 = 1;
const PHASE_PROPOSAL: u8 = 2;

/// Ben-Or's protocol: single-processor state machine.
#[derive(Debug)]
pub struct BenOr {
    n: usize,
    t: usize,
    round: u64,
    estimate: Bit,
    waiting_phase: u8,
    tally: RoundTally,
    decided: Option<Bit>,
    reset_count: u64,
    input: Bit,
}

impl BenOr {
    /// Creates the protocol state for a processor with the given input.
    pub fn new(input: Bit, cfg: &SystemConfig) -> Self {
        BenOr {
            n: cfg.n(),
            t: cfg.t(),
            round: 1,
            estimate: input,
            waiting_phase: PHASE_REPORT,
            tally: RoundTally::new(),
            decided: None,
            reset_count: 0,
            input,
        }
    }

    /// The current round number.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The current estimate.
    pub fn estimate(&self) -> Bit {
        self.estimate
    }

    /// The phase (1 or 2) whose quorum the processor is currently waiting for.
    pub fn waiting_phase(&self) -> u8 {
        self.waiting_phase
    }

    fn quorum(&self) -> usize {
        self.n - self.t
    }

    fn send_report(&self, ctx: &mut dyn Context) {
        ctx.broadcast(Payload::Report {
            round: self.round,
            value: self.estimate,
        });
    }

    fn send_proposal(&self, proposal: Option<Bit>, ctx: &mut dyn Context) {
        ctx.broadcast(Payload::Proposal {
            round: self.round,
            value: proposal,
        });
    }

    fn try_progress(&mut self, ctx: &mut dyn Context) {
        loop {
            let r = self.round;
            match self.waiting_phase {
                PHASE_REPORT => {
                    if self.tally.total(r, PHASE_REPORT) < self.quorum() {
                        break;
                    }
                    // Strict majority of *all* processors among the received
                    // reports is required to propose.
                    let proposal = Bit::ALL
                        .into_iter()
                        .find(|&v| 2 * self.tally.count(r, PHASE_REPORT, v) > self.n);
                    self.send_proposal(proposal, ctx);
                    self.waiting_phase = PHASE_PROPOSAL;
                }
                PHASE_PROPOSAL => {
                    if self.tally.total(r, PHASE_PROPOSAL) < self.quorum() {
                        break;
                    }
                    let strong = Bit::ALL
                        .into_iter()
                        .find(|&v| self.tally.count(r, PHASE_PROPOSAL, v) > self.t);
                    let weak = Bit::ALL
                        .into_iter()
                        .find(|&v| self.tally.count(r, PHASE_PROPOSAL, v) >= 1);
                    if let Some(v) = strong {
                        self.decided = Some(v);
                        ctx.decide(v);
                        self.estimate = v;
                    } else if let Some(v) = weak {
                        self.estimate = v;
                    } else {
                        self.estimate = ctx.random_bit();
                    }
                    self.round = r + 1;
                    self.waiting_phase = PHASE_REPORT;
                    self.tally.forget_rounds_before(self.round);
                    self.send_report(ctx);
                }
                _ => unreachable!("Ben-Or only has phases 1 and 2"),
            }
        }
    }
}

impl Protocol for BenOr {
    fn on_start(&mut self, ctx: &mut dyn Context) {
        self.send_report(ctx);
    }

    fn on_message(&mut self, from: ProcessorId, payload: &Payload, ctx: &mut dyn Context) {
        match payload {
            Payload::Report { round, value } if *round >= self.round => {
                self.tally.record(*round, PHASE_REPORT, from, Some(*value));
            }
            Payload::Proposal { round, value } if *round >= self.round => {
                self.tally.record(*round, PHASE_PROPOSAL, from, *value);
            }
            _ => return,
        }
        self.try_progress(ctx);
    }

    fn on_reset(&mut self, _ctx: &mut dyn Context) {
        // Plain Ben-Or was not designed for resetting failures; the closest
        // faithful behaviour is to restart from round 1 with the input bit.
        // (It is only run under crash/Byzantine adversaries in this workspace;
        // the reset-tolerant variant handles the strongly adaptive adversary.)
        self.reset_count += 1;
        self.round = 1;
        self.estimate = self.input;
        self.waiting_phase = PHASE_REPORT;
        self.tally.clear();
    }

    fn digest(&self) -> StateDigest {
        StateDigest {
            round: Some(self.round),
            estimate: Some(self.estimate),
            decided: self.decided,
            reset_count: self.reset_count,
            phase: if self.waiting_phase == PHASE_REPORT {
                "report"
            } else {
                "proposal"
            },
        }
    }
}

/// Builder for [`BenOr`] instances.
///
/// # Examples
///
/// ```
/// use agreement_model::{ProtocolBuilder, SystemConfig};
/// use agreement_protocols::BenOrBuilder;
///
/// let cfg = SystemConfig::new(7, 3)?; // t < n/2
/// assert_eq!(BenOrBuilder::new().name(), "ben-or");
/// # Ok::<(), agreement_model::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct BenOrBuilder;

impl BenOrBuilder {
    /// Creates the builder.
    pub fn new() -> Self {
        BenOrBuilder
    }
}

impl ProtocolBuilder for BenOrBuilder {
    fn name(&self) -> &'static str {
        "ben-or"
    }

    fn build(&self, _id: ProcessorId, input: Bit, cfg: &SystemConfig) -> Box<dyn Protocol> {
        Box::new(BenOr::new(input, cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    #[derive(Debug)]
    struct TestCtx {
        cfg: SystemConfig,
        sent: Vec<Payload>,
        decided: Option<Bit>,
        random_bits: VecDeque<Bit>,
    }

    impl TestCtx {
        fn new(n: usize, t: usize) -> Self {
            TestCtx {
                cfg: SystemConfig::new(n, t).unwrap(),
                sent: Vec::new(),
                decided: None,
                random_bits: VecDeque::new(),
            }
        }

        /// Payloads sent to processor 1 (one copy of each broadcast).
        fn broadcasts(&self) -> Vec<&Payload> {
            // `sent` stores every (recipient, payload) pair flattened; since the
            // context below records only payloads, every n-th entry is one broadcast.
            self.sent.iter().collect()
        }
    }

    impl Context for TestCtx {
        fn id(&self) -> ProcessorId {
            ProcessorId::new(0)
        }
        fn config(&self) -> SystemConfig {
            self.cfg
        }
        fn input(&self) -> Bit {
            Bit::Zero
        }
        fn send(&mut self, to: ProcessorId, payload: Payload) {
            if to == ProcessorId::new(1) {
                self.sent.push(payload);
            }
        }
        fn random_bit(&mut self) -> Bit {
            self.random_bits.pop_front().unwrap_or(Bit::Zero)
        }
        fn random_range(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            0
        }
        fn random_ticket(&mut self) -> u64 {
            0
        }
        fn decide(&mut self, value: Bit) {
            if self.decided.is_none() {
                self.decided = Some(value);
            }
        }
        fn decision(&self) -> Option<Bit> {
            self.decided
        }
    }

    fn feed_reports(p: &mut BenOr, ctx: &mut TestCtx, round: u64, zeros: usize, ones: usize) {
        let mut sender = 0;
        for _ in 0..zeros {
            p.on_message(
                ProcessorId::new(sender),
                &Payload::Report {
                    round,
                    value: Bit::Zero,
                },
                ctx,
            );
            sender += 1;
        }
        for _ in 0..ones {
            p.on_message(
                ProcessorId::new(sender),
                &Payload::Report {
                    round,
                    value: Bit::One,
                },
                ctx,
            );
            sender += 1;
        }
    }

    fn feed_proposals(p: &mut BenOr, ctx: &mut TestCtx, round: u64, proposals: &[Option<Bit>]) {
        for (i, value) in proposals.iter().enumerate() {
            p.on_message(
                ProcessorId::new(i),
                &Payload::Proposal {
                    round,
                    value: *value,
                },
                ctx,
            );
        }
    }

    /// n = 7, t = 3: quorum = 4, majority > 3.5 means >= 4, decide needs >= 4 proposals.
    fn setup(input: Bit) -> (BenOr, TestCtx) {
        let ctx = TestCtx::new(7, 3);
        (BenOr::new(input, &ctx.cfg), ctx)
    }

    #[test]
    fn start_broadcasts_round_one_report() {
        let (mut p, mut ctx) = setup(Bit::One);
        p.on_start(&mut ctx);
        assert_eq!(ctx.broadcasts().len(), 1);
        assert!(matches!(
            ctx.broadcasts()[0],
            Payload::Report {
                round: 1,
                value: Bit::One
            }
        ));
        assert_eq!(p.waiting_phase(), 1);
    }

    #[test]
    fn majority_reports_produce_a_value_proposal() {
        let (mut p, mut ctx) = setup(Bit::Zero);
        p.on_start(&mut ctx);
        ctx.sent.clear();
        feed_reports(&mut p, &mut ctx, 1, 4, 0); // 4 zeros > n/2 = 3.5
        assert_eq!(p.waiting_phase(), 2);
        assert!(matches!(
            ctx.broadcasts()[0],
            Payload::Proposal {
                round: 1,
                value: Some(Bit::Zero)
            }
        ));
    }

    #[test]
    fn split_reports_produce_a_question_mark_proposal() {
        let (mut p, mut ctx) = setup(Bit::Zero);
        p.on_start(&mut ctx);
        ctx.sent.clear();
        feed_reports(&mut p, &mut ctx, 1, 2, 2);
        assert_eq!(p.waiting_phase(), 2);
        assert!(matches!(
            ctx.broadcasts()[0],
            Payload::Proposal {
                round: 1,
                value: None
            }
        ));
    }

    #[test]
    fn strong_proposal_count_decides() {
        let (mut p, mut ctx) = setup(Bit::Zero);
        p.on_start(&mut ctx);
        feed_reports(&mut p, &mut ctx, 1, 4, 0);
        feed_proposals(&mut p, &mut ctx, 1, &[Some(Bit::Zero); 4]); // t + 1 = 4
        assert_eq!(ctx.decided, Some(Bit::Zero));
        assert_eq!(p.estimate(), Bit::Zero);
        assert_eq!(
            p.round(),
            2,
            "the protocol keeps participating after deciding"
        );
    }

    #[test]
    fn single_proposal_adopts_value_without_deciding() {
        let (mut p, mut ctx) = setup(Bit::One);
        p.on_start(&mut ctx);
        feed_reports(&mut p, &mut ctx, 1, 2, 2);
        feed_proposals(&mut p, &mut ctx, 1, &[Some(Bit::Zero), None, None, None]);
        assert_eq!(ctx.decided, None);
        assert_eq!(p.estimate(), Bit::Zero);
        assert_eq!(p.round(), 2);
    }

    #[test]
    fn all_question_marks_sample_a_random_bit() {
        let (mut p, mut ctx) = setup(Bit::One);
        ctx.random_bits.push_back(Bit::One);
        p.on_start(&mut ctx);
        feed_reports(&mut p, &mut ctx, 1, 2, 2);
        feed_proposals(&mut p, &mut ctx, 1, &[None, None, None, None]);
        assert_eq!(ctx.decided, None);
        assert_eq!(p.estimate(), Bit::One);
        assert_eq!(p.round(), 2);
    }

    #[test]
    fn sub_quorum_messages_do_not_advance() {
        let (mut p, mut ctx) = setup(Bit::One);
        p.on_start(&mut ctx);
        feed_reports(&mut p, &mut ctx, 1, 2, 1); // 3 < quorum 4
        assert_eq!(p.waiting_phase(), 1);
        assert_eq!(p.round(), 1);
    }

    #[test]
    fn future_round_messages_are_retained() {
        let (mut p, mut ctx) = setup(Bit::One);
        p.on_start(&mut ctx);
        // Round-2 reports arrive early.
        feed_reports(&mut p, &mut ctx, 2, 0, 4);
        assert_eq!(p.round(), 1);
        // Complete round 1: phase 1 then phase 2 (all abstain -> random, scripted Zero).
        feed_reports(&mut p, &mut ctx, 1, 2, 2);
        feed_proposals(&mut p, &mut ctx, 1, &[None, None, None, None]);
        // The early round-2 reports now immediately complete phase 1 of round 2.
        assert_eq!(p.round(), 2);
        assert_eq!(p.waiting_phase(), 2);
    }

    #[test]
    fn reset_restarts_from_round_one() {
        let (mut p, mut ctx) = setup(Bit::One);
        p.on_start(&mut ctx);
        feed_reports(&mut p, &mut ctx, 1, 0, 4);
        assert_eq!(p.waiting_phase(), 2);
        p.on_reset(&mut ctx);
        assert_eq!(p.round(), 1);
        assert_eq!(p.waiting_phase(), 1);
        assert_eq!(p.estimate(), Bit::One);
        assert_eq!(p.digest().reset_count, 1);
    }

    #[test]
    fn builder_reports_name_and_builds_round_one_state() {
        let cfg = SystemConfig::new(5, 2).unwrap();
        let b = BenOrBuilder::new();
        assert_eq!(b.name(), "ben-or");
        let p = b.build(ProcessorId::new(3), Bit::Zero, &cfg);
        let d = p.digest();
        assert_eq!(d.round, Some(1));
        assert_eq!(d.estimate, Some(Bit::Zero));
        assert_eq!(d.phase, "report");
    }
}

//! 64-bit FNV-1a hashing for novelty signatures.
//!
//! The schedule-space search (`agreement-search`) buckets every trial's
//! [`Metrics`](https://docs.rs/)-style counters and folds the buckets into a
//! single `u64` *signature*; two trials with the same signature explored the
//! same behavioural region and only one of their genomes is worth keeping.
//! FNV-1a is the right tool for that job: non-cryptographic, allocation-free,
//! stable across platforms (the constants are fixed by the algorithm, not by
//! the host), and trivially reimplementable — which keeps committed artifacts
//! replayable forever.

/// The FNV-1a 64-bit offset basis.
pub const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The FNV-1a 64-bit prime.
pub const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes a byte slice with 64-bit FNV-1a in one call.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hasher = Fnv64::new();
    hasher.write_bytes(bytes);
    hasher.finish()
}

/// A streaming 64-bit FNV-1a hasher.
///
/// The write methods return `&mut Self` so a signature can be folded in one
/// chained expression:
///
/// ```
/// use agreement_analysis::Fnv64;
/// let sig = Fnv64::new().write_u64(3).write_u64(17).finish();
/// assert_ne!(sig, Fnv64::new().write_u64(17).write_u64(3).finish());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64 {
    state: u64,
}

impl Fnv64 {
    /// A hasher at the offset basis.
    pub fn new() -> Self {
        Fnv64 {
            state: FNV64_OFFSET,
        }
    }

    /// Folds one byte into the state.
    pub fn write_u8(&mut self, byte: u8) -> &mut Self {
        self.state = (self.state ^ u64::from(byte)).wrapping_mul(FNV64_PRIME);
        self
    }

    /// Folds a byte slice into the state.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &byte in bytes {
            self.write_u8(byte);
        }
        self
    }

    /// Folds a `u64` into the state, little-endian byte by byte (so the
    /// signature is identical on every platform).
    pub fn write_u64(&mut self, value: u64) -> &mut Self {
        self.write_bytes(&value.to_le_bytes())
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_fnv1a_vectors() {
        // Reference vectors from the FNV specification (draft-eastlake-fnv).
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut h = Fnv64::new();
        h.write_bytes(b"foo").write_bytes(b"bar");
        assert_eq!(h.finish(), fnv1a_64(b"foobar"));
    }

    #[test]
    fn u64_folding_is_order_sensitive_and_stable() {
        let a = Fnv64::new().write_u64(1).write_u64(2).finish();
        let b = Fnv64::new().write_u64(2).write_u64(1).finish();
        assert_ne!(a, b);
        // Pinned value: committed artifacts rely on signature stability.
        assert_eq!(
            a,
            fnv1a_64(&[1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0])
        );
    }
}

//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the integrity
//! check the wire transport and checkpoint files use to tell corruption from
//! content.
//!
//! The workspace runs in environments where bytes get damaged on purpose
//! (the fault-injection layer flips bits mid-frame) and by accident (a torn
//! checkpoint append). A 4-byte CRC trailer turns both from "parse garbage
//! and hope" into a detected [`FrameCorrupt`-style] condition the recovery
//! machinery can act on. The table is computed at compile time (`const fn`),
//! so this stays std-only with zero startup cost.

/// The reflected IEEE CRC-32 polynomial.
const POLYNOMIAL: u32 = 0xEDB8_8320;

/// Builds the byte-indexed CRC table at compile time.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut index = 0;
    while index < 256 {
        let mut crc = index as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLYNOMIAL
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[index] = crc;
        index += 1;
    }
    table
}

/// The 256-entry lookup table for [`crc32`], baked in at compile time.
pub const CRC32_TABLE: [u32; 256] = build_table();

/// Computes the CRC-32 (IEEE) checksum of `bytes`.
///
/// # Examples
///
/// ```
/// use agreement_analysis::crc32;
///
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926); // the standard check value
/// assert_eq!(crc32(b""), 0);
/// ```
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

/// A streaming CRC-32 state, for checksumming data that arrives in pieces.
///
/// # Examples
///
/// ```
/// use agreement_analysis::{crc32, Crc32};
///
/// let mut crc = Crc32::new();
/// crc.update(b"123");
/// crc.update(b"456789");
/// assert_eq!(crc.finish(), crc32(b"123456789"));
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh checksum state.
    #[must_use]
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &byte in bytes {
            let index = ((crc ^ u32::from(byte)) & 0xFF) as usize;
            crc = (crc >> 8) ^ CRC32_TABLE[index];
        }
        self.state = crc;
    }

    /// Finalizes and returns the checksum. The state may keep being fed; a
    /// later `finish` reflects everything fed so far.
    #[must_use]
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_standard_check_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot_at_every_split() {
        let data = b"deterministic fault injection";
        for split in 0..=data.len() {
            let mut crc = Crc32::new();
            crc.update(&data[..split]);
            crc.update(&data[split..]);
            assert_eq!(crc.finish(), crc32(data), "split at {split}");
        }
    }

    #[test]
    fn single_bit_flips_are_detected() {
        let data = b"payload under test";
        let clean = crc32(data);
        let mut copy = data.to_vec();
        for bit in 0..copy.len() * 8 {
            copy[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&copy), clean, "flip of bit {bit} went undetected");
            copy[bit / 8] ^= 1 << (bit % 8);
        }
    }
}

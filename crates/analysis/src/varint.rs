//! LEB128-style variable-length integers and zigzag mapping — the integer
//! primitives of the columnar record-block codec.
//!
//! A `u64` is emitted as 1–10 bytes, 7 payload bits per byte, low bits
//! first, the high bit of each byte marking continuation. Small values —
//! the overwhelmingly common case in per-trial counters — cost one byte.
//! [`zigzag_encode`] folds signed deltas into unsigned values so that
//! near-zero deltas of either sign stay in the one-byte range, which is what
//! makes delta-coding monotone columns (trial indices, seeds) pay off.
//!
//! Decoding is strict: a truncated varint, or an overlong encoding whose
//! tenth byte carries bits beyond the 64-bit range, is a loud error — never
//! a silently wrapped value. Std-only, like the sibling CRC32 and JSON
//! modules.

/// Longest legal encoding of a `u64`: nine full 7-bit groups plus one final
/// byte carrying the top single bit.
pub const MAX_VARINT_LEN: usize = 10;

/// Appends the LEB128 encoding of `value` to `out`.
pub fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one varint from `bytes` starting at `*pos`, advancing `*pos` past
/// it.
///
/// # Errors
///
/// A truncated encoding (continuation bit set on the final available byte)
/// or a value overflowing 64 bits is an error naming the offset — adversarial
/// input decodes loudly, never to a wrapped or partial value.
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, String> {
    let start = *pos;
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = bytes.get(*pos) else {
            return Err(format!("truncated varint at byte {start}"));
        };
        *pos += 1;
        let group = u64::from(byte & 0x7F);
        // The tenth byte may only carry the top bit of a u64; anything more
        // is an overlong or overflowing encoding.
        if shift == 63 && group > 1 {
            return Err(format!("varint at byte {start} overflows 64 bits"));
        }
        if shift >= 64 {
            return Err(format!("varint at byte {start} is longer than 10 bytes"));
        }
        value |= group << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Maps a signed value to an unsigned one with small absolute values staying
/// small: 0, -1, 1, -2, … become 0, 1, 2, 3, …
#[must_use]
pub fn zigzag_encode(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[must_use]
pub fn zigzag_decode(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny deterministic generator for the property sweeps (the analysis
    /// crate deliberately has no dependencies, so no shared RNG to borrow).
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn boundary_values_round_trip_at_expected_lengths() {
        let cases: &[(u64, usize)] = &[
            (0, 1),
            (1, 1),
            (127, 1),
            (128, 2),
            (16_383, 2),
            (16_384, 3),
            (u64::from(u32::MAX), 5),
            (u64::MAX, MAX_VARINT_LEN),
        ];
        for &(value, len) in cases {
            let mut buf = Vec::new();
            write_varint(&mut buf, value);
            assert_eq!(buf.len(), len, "length of {value}");
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Ok(value));
            assert_eq!(pos, buf.len(), "decode of {value} must consume exactly");
        }
    }

    #[test]
    fn random_values_round_trip_back_to_back() {
        let mut state = 0x5EED_CAFE_u64;
        let mut buf = Vec::new();
        let mut values = Vec::new();
        for i in 0..4_000u64 {
            // Mix magnitudes: raw 64-bit noise, small counters, and powers.
            let value = match i % 4 {
                0 => xorshift(&mut state),
                1 => xorshift(&mut state) % 100,
                2 => 1u64 << (xorshift(&mut state) % 64),
                _ => xorshift(&mut state) % 65_536,
            };
            values.push(value);
            write_varint(&mut buf, value);
        }
        let mut pos = 0;
        for &value in &values {
            assert_eq!(read_varint(&buf, &mut pos), Ok(value));
        }
        assert_eq!(pos, buf.len(), "stream fully consumed");
    }

    #[test]
    fn truncated_varints_error_loudly() {
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            let mut pos = 0;
            let err = read_varint(&buf[..cut], &mut pos).unwrap_err();
            assert!(err.contains("truncated"), "cut at {cut}: {err}");
        }
        assert!(read_varint(&[], &mut 0).is_err());
    }

    #[test]
    fn overlong_and_overflowing_encodings_are_rejected() {
        // Eleven continuation bytes: longer than any u64 encoding.
        let overlong = [0x80u8; 11];
        assert!(read_varint(&overlong, &mut 0).is_err());
        // Ten bytes whose last carries more than the top bit of a u64.
        let mut overflow = vec![0xFFu8; 9];
        overflow.push(0x02);
        let err = read_varint(&overflow, &mut 0).unwrap_err();
        assert!(err.contains("overflows"), "{err}");
        // The canonical u64::MAX encoding is exactly at the limit.
        let mut max = vec![0xFFu8; 9];
        max.push(0x01);
        assert_eq!(read_varint(&max, &mut 0), Ok(u64::MAX));
    }

    #[test]
    fn zigzag_is_a_small_preserving_bijection() {
        let cases: &[(i64, u64)] = &[(0, 0), (-1, 1), (1, 2), (-2, 3), (2, 4)];
        for &(signed, unsigned) in cases {
            assert_eq!(zigzag_encode(signed), unsigned);
            assert_eq!(zigzag_decode(unsigned), signed);
        }
        let mut state = 0xD1CE_u64;
        for _ in 0..2_000 {
            let value = xorshift(&mut state) as i64;
            assert_eq!(zigzag_decode(zigzag_encode(value)), value);
        }
        assert_eq!(zigzag_decode(zigzag_encode(i64::MIN)), i64::MIN);
        assert_eq!(zigzag_decode(zigzag_encode(i64::MAX)), i64::MAX);
    }
}

//! A std-only LZ77-style block codec: literal runs and bounded-window copy
//! ops, in the dependency-free spirit of the in-tree CRC32 and JSON.
//!
//! The orchestration wire uses this to shrink columnar record blocks before
//! framing. The format is deliberately simple — close kin of the LZ4 block
//! layout — and the decoder is paranoid: every offset, length, and output
//! bound is checked, so adversarial or truncated input decodes to a loud
//! error, never out-of-bounds reads or silent garbage. Integrity against
//! in-flight damage is the *frame* CRC's job (a bit-flipped payload is
//! rejected before this decoder ever sees it); this module's own checks are
//! about never trusting lengths it did not verify.
//!
//! # Format
//!
//! A compressed stream is a sequence of ops. Each op starts with a token
//! byte: the high nibble is the literal-run length, the low nibble the copy
//! length minus [`MIN_MATCH`]. A nibble of 15 is extended by subsequent
//! bytes (each adding 0–255, a value under 255 terminating the extension).
//! After the literals follows a 2-byte little-endian copy offset (1 ..=
//! [`WINDOW`], counted back from the current output position); the final op
//! of a stream carries literals only and omits the offset and copy length.
//! An empty input encodes to an empty stream.

/// Copy offsets reach at most this far back (the u16 offset range).
pub const WINDOW: usize = 64 * 1024;

/// Shortest copy worth emitting; shorter repeats ship as literals.
pub const MIN_MATCH: usize = 4;

/// Hash-table size for match finding (log2): 1 << 13 slots.
const HASH_BITS: u32 = 13;

fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

fn push_len(out: &mut Vec<u8>, mut len: usize) {
    while len >= 255 {
        out.push(255);
        len -= 255;
    }
    out.push(len as u8);
}

/// Compresses `input`. The output always decompresses (via
/// [`lz_decompress`] with the exact original length) back to `input`;
/// incompressible data degrades to literal runs with ~0.4% framing overhead.
#[must_use]
pub fn lz_compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut pos = 0usize;
    let mut literal_start = 0usize;

    while pos + MIN_MATCH <= input.len() {
        let slot = hash4(&input[pos..]);
        let candidate = table[slot];
        table[slot] = pos;
        let found = candidate != usize::MAX
            && pos - candidate <= WINDOW
            && input[candidate..candidate + MIN_MATCH] == input[pos..pos + MIN_MATCH];
        if !found {
            pos += 1;
            continue;
        }
        // Extend the match greedily.
        let mut len = MIN_MATCH;
        while pos + len < input.len() && input[candidate + len] == input[pos + len] {
            len += 1;
        }
        emit_op(
            &mut out,
            &input[literal_start..pos],
            Some((pos - candidate, len)),
        );
        pos += len;
        literal_start = pos;
    }
    // Trailing literals (the whole input, when nothing matched). A stream
    // may also end directly after a copy op; the decoder accepts both.
    if literal_start < input.len() {
        emit_op(&mut out, &input[literal_start..], None);
    }
    out
}

fn emit_op(out: &mut Vec<u8>, literals: &[u8], copy: Option<(usize, usize)>) {
    let lit_nibble = literals.len().min(15) as u8;
    let match_nibble = match copy {
        Some((_, len)) => (len - MIN_MATCH).min(15) as u8,
        None => 0,
    };
    out.push((lit_nibble << 4) | match_nibble);
    if literals.len() >= 15 {
        push_len(out, literals.len() - 15);
    }
    out.extend_from_slice(literals);
    if let Some((offset, len)) = copy {
        debug_assert!((1..=WINDOW).contains(&offset));
        out.extend_from_slice(&(offset as u16).wrapping_sub(1).to_le_bytes());
        if len - MIN_MATCH >= 15 {
            push_len(out, len - MIN_MATCH - 15);
        }
    }
}

fn read_extended(input: &[u8], pos: &mut usize, nibble: usize) -> Result<usize, String> {
    let mut len = nibble;
    if nibble == 15 {
        loop {
            let Some(&byte) = input.get(*pos) else {
                return Err("truncated length extension".to_string());
            };
            *pos += 1;
            len += byte as usize;
            if byte < 255 {
                break;
            }
        }
    }
    Ok(len)
}

/// Decompresses a [`lz_compress`] stream, expecting exactly `expected_len`
/// output bytes.
///
/// # Errors
///
/// Truncated input, an op whose copy offset reaches before the start of the
/// output, or output diverging from `expected_len` in either direction — all
/// reported with enough context to log. Nothing is ever read or written out
/// of bounds.
pub fn lz_decompress(input: &[u8], expected_len: usize) -> Result<Vec<u8>, String> {
    let mut out: Vec<u8> = Vec::with_capacity(expected_len);
    let mut pos = 0usize;
    while pos < input.len() {
        let token = input[pos];
        pos += 1;
        let lit_len = read_extended(input, &mut pos, (token >> 4) as usize)?;
        let literals = input
            .get(pos..pos + lit_len)
            .ok_or_else(|| format!("literal run of {lit_len} overruns the input at {pos}"))?;
        if out.len() + lit_len > expected_len {
            return Err(format!(
                "output exceeds the declared {expected_len} bytes in a literal run"
            ));
        }
        out.extend_from_slice(literals);
        pos += lit_len;
        if pos == input.len() {
            // Final op: literals only.
            break;
        }
        let offset_bytes = input
            .get(pos..pos + 2)
            .ok_or_else(|| format!("truncated copy offset at {pos}"))?;
        pos += 2;
        let offset = u16::from_le_bytes([offset_bytes[0], offset_bytes[1]]) as usize + 1;
        let copy_len = read_extended(input, &mut pos, (token & 0x0F) as usize)? + MIN_MATCH;
        if offset > out.len() {
            return Err(format!(
                "copy offset {offset} reaches before the output start (have {} bytes)",
                out.len()
            ));
        }
        if out.len() + copy_len > expected_len {
            return Err(format!(
                "output exceeds the declared {expected_len} bytes in a copy"
            ));
        }
        // Byte-at-a-time: overlapping copies (offset < len) are the RLE
        // idiom and must replicate the just-written bytes.
        let start = out.len() - offset;
        for i in 0..copy_len {
            let byte = out[start + i];
            out.push(byte);
        }
    }
    if out.len() != expected_len {
        return Err(format!(
            "stream ended at {} of the declared {expected_len} bytes",
            out.len()
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn round_trip(input: &[u8]) -> Vec<u8> {
        let packed = lz_compress(input);
        lz_decompress(&packed, input.len()).expect("round trip decodes")
    }

    #[test]
    fn empty_and_tiny_inputs_round_trip() {
        assert_eq!(round_trip(b""), b"");
        assert!(lz_compress(b"").is_empty());
        for len in 1..=8usize {
            let input: Vec<u8> = (0..len as u8).collect();
            assert_eq!(round_trip(&input), input);
        }
    }

    #[test]
    fn repetitive_input_compresses_and_round_trips() {
        let input: Vec<u8> = b"abcdefgh".iter().copied().cycle().take(8_192).collect();
        let packed = lz_compress(&input);
        assert!(
            packed.len() < input.len() / 8,
            "8-byte cycle should shrink well ({} of {})",
            packed.len(),
            input.len()
        );
        assert_eq!(lz_decompress(&packed, input.len()).unwrap(), input);

        // Pure RLE: a single repeated byte exercises overlapping copies.
        let runs = vec![0x41u8; 100_000];
        let packed = lz_compress(&runs);
        assert!(
            packed.len() < 1_000,
            "RLE should collapse: {}",
            packed.len()
        );
        assert_eq!(lz_decompress(&packed, runs.len()).unwrap(), runs);
    }

    #[test]
    fn incompressible_noise_round_trips() {
        let mut state = 0xBADC_0FFE_u64;
        let noise: Vec<u8> = (0..70_000).map(|_| xorshift(&mut state) as u8).collect();
        assert_eq!(round_trip(&noise), noise);
    }

    #[test]
    fn mixed_structure_round_trips_across_seeds() {
        for seed in 1..=20u64 {
            let mut state = seed;
            let mut input = Vec::new();
            while input.len() < 10_000 {
                match xorshift(&mut state) % 3 {
                    0 => {
                        let byte = xorshift(&mut state) as u8;
                        let run = (xorshift(&mut state) % 200) as usize;
                        input.extend(std::iter::repeat_n(byte, run));
                    }
                    1 => {
                        let n = (xorshift(&mut state) % 100) as usize;
                        input.extend((0..n).map(|_| xorshift(&mut state) as u8));
                    }
                    _ => {
                        // Repeat an earlier slice: long-range matches.
                        if !input.is_empty() {
                            let start = (xorshift(&mut state) as usize) % input.len();
                            let len =
                                ((xorshift(&mut state) % 300) as usize).min(input.len() - start);
                            let slice = input[start..start + len].to_vec();
                            input.extend_from_slice(&slice);
                        }
                    }
                }
            }
            assert_eq!(round_trip(&input), input, "seed {seed}");
        }
    }

    #[test]
    fn matches_beyond_the_window_are_not_used() {
        // A repeated 16-byte motif separated by > WINDOW bytes of noise: the
        // second occurrence is out of copy range and must ship as literals
        // (correctness is what matters; this pins that the encoder respects
        // the bound the decoder enforces).
        let motif = b"window-boundary!";
        let mut state = 7u64;
        let mut input = motif.to_vec();
        input.extend((0..WINDOW + 100).map(|_| xorshift(&mut state) as u8));
        input.extend_from_slice(motif);
        assert_eq!(round_trip(&input), input);
    }

    #[test]
    fn truncated_streams_error_loudly() {
        let input: Vec<u8> = b"compressible compressible compressible data"
            .iter()
            .copied()
            .cycle()
            .take(2_000)
            .collect();
        let packed = lz_compress(&input);
        for cut in 0..packed.len() {
            assert!(
                lz_decompress(&packed[..cut], input.len()).is_err(),
                "truncation at {cut} must not decode"
            );
        }
    }

    #[test]
    fn adversarial_streams_never_panic_and_error_on_bad_offsets() {
        // An op copying from before the output start.
        let bad_offset = [0x04u8, 0xFF, 0x00]; // 0 literals, offset 256, copy 8
        assert!(lz_decompress(&bad_offset, 64).is_err());

        // Random bytes: must error or produce wrong-length output, never
        // panic or read out of bounds.
        let mut state = 0xFEED_u64;
        for _ in 0..500 {
            let len = (xorshift(&mut state) % 64) as usize;
            let junk: Vec<u8> = (0..len).map(|_| xorshift(&mut state) as u8).collect();
            let _ = lz_decompress(&junk, 128);
        }
    }

    #[test]
    fn declared_length_mismatches_are_rejected_both_ways() {
        let input = vec![0x55u8; 4_096];
        let packed = lz_compress(&input);
        assert!(lz_decompress(&packed, input.len() - 1).is_err(), "short");
        assert!(lz_decompress(&packed, input.len() + 1).is_err(), "long");
    }
}

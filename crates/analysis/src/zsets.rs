//! The `Z^k_0 / Z^k_1` set recursion of Section 4.2, computed exactly on an
//! abstract finite model.
//!
//! The paper's proof builds, for a fixed algorithm, two sequences of
//! configuration sets: `Z^0_v` contains the reachable configurations in which
//! some processor has decided `v`, and `Z^k_v` contains the reachable
//! configurations from which *every* legal uniform window `R, S, ..., S` leads
//! into `Z^{k-1}_v` with probability greater than `τ = e^{-t²/8n}`
//! (Definition 12). Lemma 13 then shows `∆(Z^k_0, Z^k_1) > t` for every `k`.
//!
//! Computing these sets for the real protocol state space is impossible (it is
//! infinite), so — as recorded in DESIGN.md — we instantiate the recursion on
//! an **abstract model**: each processor's state is summarized by its estimate
//! bit and whether it has decided ([`AbstractState`]), and a pluggable
//! [`TransitionKernel`] gives the per-processor (product) distribution of the
//! next state under a uniform window. [`MiniResetTolerantKernel`] abstracts
//! the Section 3 protocol in this way. The recursion, reachability and the
//! Hamming separation are then computed exactly by enumeration for small `n`,
//! which is what experiment E4 reports.

use agreement_model::Bit;

use crate::hamming::distance_between_sets;

/// The abstract per-processor state: current estimate, decided or not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AbstractState {
    /// Undecided with the given estimate.
    Undecided(Bit),
    /// Decided on the given value (absorbing: the output bit is write-once).
    Decided(Bit),
}

impl AbstractState {
    /// All four abstract states.
    pub const ALL: [AbstractState; 4] = [
        AbstractState::Undecided(Bit::Zero),
        AbstractState::Undecided(Bit::One),
        AbstractState::Decided(Bit::Zero),
        AbstractState::Decided(Bit::One),
    ];

    /// The estimate the processor would report in the next sending step.
    pub fn estimate(self) -> Bit {
        match self {
            AbstractState::Undecided(b) | AbstractState::Decided(b) => b,
        }
    }

    /// The decided value, if any.
    pub fn decision(self) -> Option<Bit> {
        match self {
            AbstractState::Decided(b) => Some(b),
            AbstractState::Undecided(_) => None,
        }
    }
}

/// An abstract configuration: one [`AbstractState`] per processor.
pub type AbstractConfig = Vec<AbstractState>;

/// A uniform window `R, S, ..., S` in the abstract model, identified by its
/// reset set and sender set (indices into `0..n`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniformWindow {
    /// The processors reset at the end of the window (`|R| <= t`).
    pub resets: Vec<usize>,
    /// The senders every processor hears from (`|S| >= n - t`).
    pub senders: Vec<usize>,
}

/// The per-processor next-state distribution induced by one uniform window.
pub type ProductKernel = Vec<Vec<(AbstractState, f64)>>;

/// An abstract one-window transition kernel.
pub trait TransitionKernel {
    /// Number of processors.
    fn n(&self) -> usize;
    /// Fault budget per window.
    fn t(&self) -> usize;
    /// The product distribution of the next configuration when `window` is
    /// applied to `config`. Each inner vector must be a probability
    /// distribution over [`AbstractState`].
    fn transition(&self, config: &AbstractConfig, window: &UniformWindow) -> ProductKernel;
}

/// An abstraction of the Section 3 reset-tolerant protocol: every sender in
/// `S` reports its current estimate; a processor that sees at least
/// `decide_threshold` matching values decides them, at least `adopt_threshold`
/// matching values adopts them, and otherwise re-randomizes its estimate.
/// Reset processors deterministically adopt the majority of what they heard
/// (the resynchronization step), keeping any prior decision (the output bit is
/// durable).
#[derive(Debug, Clone, Copy)]
pub struct MiniResetTolerantKernel {
    n: usize,
    t: usize,
    decide_threshold: usize,
    adopt_threshold: usize,
}

impl MiniResetTolerantKernel {
    /// Creates the kernel. Mirroring Theorem 4's constraints at small scale,
    /// `decide_threshold >= adopt_threshold` and `2 * adopt_threshold > n`
    /// are required.
    ///
    /// # Panics
    ///
    /// Panics if the threshold constraints are violated.
    pub fn new(n: usize, t: usize, decide_threshold: usize, adopt_threshold: usize) -> Self {
        assert!(
            decide_threshold >= adopt_threshold,
            "decide threshold below adopt threshold"
        );
        assert!(2 * adopt_threshold > n, "2 * adopt_threshold must exceed n");
        assert!(t < n, "fault budget must be below n");
        MiniResetTolerantKernel {
            n,
            t,
            decide_threshold,
            adopt_threshold,
        }
    }

    /// The natural scaled-down thresholds for a given `(n, t)`:
    /// decide at `n - t` matching values, adopt at `n - 2t` (requires
    /// `2(n - 2t) > n`, i.e. `t < n/4`).
    pub fn scaled(n: usize, t: usize) -> Self {
        MiniResetTolerantKernel::new(n, t, n - t, n - 2 * t)
    }
}

impl TransitionKernel for MiniResetTolerantKernel {
    fn n(&self) -> usize {
        self.n
    }

    fn t(&self) -> usize {
        self.t
    }

    fn transition(&self, config: &AbstractConfig, window: &UniformWindow) -> ProductKernel {
        let zeros = window
            .senders
            .iter()
            .filter(|&&s| config[s].estimate() == Bit::Zero)
            .count();
        let ones = window.senders.len() - zeros;
        let majority = if ones >= zeros { Bit::One } else { Bit::Zero };
        let top = zeros.max(ones);

        (0..self.n)
            .map(|i| {
                let current = config[i];
                let was_reset = window.resets.contains(&i);
                // The durable output bit: once decided, always decided.
                if let Some(v) = current.decision() {
                    return vec![(AbstractState::Decided(v), 1.0)];
                }
                if was_reset {
                    // Resynchronization: adopt the majority of what was heard.
                    return vec![(AbstractState::Undecided(majority), 1.0)];
                }
                if top >= self.decide_threshold {
                    vec![(AbstractState::Decided(majority), 1.0)]
                } else if top >= self.adopt_threshold {
                    vec![(AbstractState::Undecided(majority), 1.0)]
                } else {
                    vec![
                        (AbstractState::Undecided(Bit::Zero), 0.5),
                        (AbstractState::Undecided(Bit::One), 0.5),
                    ]
                }
            })
            .collect()
    }
}

/// The exact `Z^k` analysis on an abstract model.
#[derive(Debug)]
pub struct ZSetAnalysis {
    n: usize,
    t: usize,
    tau: f64,
    reachable: Vec<AbstractConfig>,
    windows: Vec<UniformWindow>,
}

impl ZSetAnalysis {
    /// Builds the analysis: enumerates the legal uniform windows and the set
    /// of configurations reachable (with positive probability) from the
    /// all-undecided initial configurations.
    ///
    /// Enumeration is exponential in `n`; keep `n <= 6` for exact analysis.
    pub fn new(kernel: &dyn TransitionKernel, tau: f64) -> Self {
        let n = kernel.n();
        let t = kernel.t();
        let windows = Self::enumerate_windows(n, t);
        let reachable = Self::compute_reachable(kernel, &windows);
        ZSetAnalysis {
            n,
            t,
            tau,
            reachable,
            windows,
        }
    }

    /// Number of processors.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The per-window fault budget.
    pub fn t(&self) -> usize {
        self.t
    }

    /// The probability threshold `τ` used by the recursion.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// The reachable configurations.
    pub fn reachable(&self) -> &[AbstractConfig] {
        &self.reachable
    }

    /// The legal uniform windows.
    pub fn windows(&self) -> &[UniformWindow] {
        &self.windows
    }

    fn subsets_of_size_at_least(n: usize, min: usize) -> Vec<Vec<usize>> {
        (0u32..(1 << n))
            .filter(|mask| mask.count_ones() as usize >= min)
            .map(|mask| (0..n).filter(|i| mask & (1 << i) != 0).collect())
            .collect()
    }

    fn enumerate_windows(n: usize, t: usize) -> Vec<UniformWindow> {
        let sender_sets = Self::subsets_of_size_at_least(n, n - t);
        let reset_sets: Vec<Vec<usize>> = (0u32..(1 << n))
            .filter(|mask| mask.count_ones() as usize <= t)
            .map(|mask| (0..n).filter(|i| mask & (1 << i) != 0).collect())
            .collect();
        let mut windows = Vec::new();
        for senders in &sender_sets {
            for resets in &reset_sets {
                windows.push(UniformWindow {
                    resets: resets.clone(),
                    senders: senders.clone(),
                });
            }
        }
        windows
    }

    fn all_initial(n: usize) -> Vec<AbstractConfig> {
        (0u32..(1 << n))
            .map(|mask| {
                (0..n)
                    .map(|i| {
                        AbstractState::Undecided(if mask & (1 << i) != 0 {
                            Bit::One
                        } else {
                            Bit::Zero
                        })
                    })
                    .collect()
            })
            .collect()
    }

    fn successors_with_positive_probability(kernel: &ProductKernel) -> Vec<AbstractConfig> {
        let mut configs: Vec<AbstractConfig> = vec![Vec::new()];
        for coordinate in kernel {
            let mut next = Vec::with_capacity(configs.len() * coordinate.len());
            for config in &configs {
                for (state, probability) in coordinate {
                    if *probability > 0.0 {
                        let mut extended = config.clone();
                        extended.push(*state);
                        next.push(extended);
                    }
                }
            }
            configs = next;
        }
        configs
    }

    fn compute_reachable(
        kernel: &dyn TransitionKernel,
        windows: &[UniformWindow],
    ) -> Vec<AbstractConfig> {
        use std::collections::BTreeSet;
        let mut reachable: BTreeSet<AbstractConfig> =
            Self::all_initial(kernel.n()).into_iter().collect();
        let mut frontier: Vec<AbstractConfig> = reachable.iter().cloned().collect();
        while let Some(config) = frontier.pop() {
            for window in windows {
                let product = kernel.transition(&config, window);
                for successor in Self::successors_with_positive_probability(&product) {
                    if reachable.insert(successor.clone()) {
                        frontier.push(successor);
                    }
                }
            }
        }
        reachable.into_iter().collect()
    }

    /// Probability that one application of `window` to `config` lands in `target`.
    fn transition_probability_into(
        kernel: &dyn TransitionKernel,
        config: &AbstractConfig,
        window: &UniformWindow,
        target: &[AbstractConfig],
    ) -> f64 {
        let product = kernel.transition(config, window);
        target
            .iter()
            .map(|successor| {
                successor
                    .iter()
                    .enumerate()
                    .map(|(i, state)| {
                        product[i]
                            .iter()
                            .find(|(s, _)| s == state)
                            .map_or(0.0, |(_, p)| *p)
                    })
                    .product::<f64>()
            })
            .sum()
    }

    /// The base sets `Z^0_0` and `Z^0_1`: reachable configurations containing a
    /// decision for 0 (respectively 1).
    pub fn base_sets(&self) -> (Vec<AbstractConfig>, Vec<AbstractConfig>) {
        let z0: Vec<AbstractConfig> = self
            .reachable
            .iter()
            .filter(|c| c.iter().any(|s| s.decision() == Some(Bit::Zero)))
            .cloned()
            .collect();
        let z1: Vec<AbstractConfig> = self
            .reachable
            .iter()
            .filter(|c| c.iter().any(|s| s.decision() == Some(Bit::One)))
            .cloned()
            .collect();
        (z0, z1)
    }

    /// One recursion step: `Z^k_v` from `Z^{k-1}_v` per Definition 12.
    pub fn next_level(
        &self,
        kernel: &dyn TransitionKernel,
        previous: &[AbstractConfig],
    ) -> Vec<AbstractConfig> {
        self.reachable
            .iter()
            .filter(|config| {
                self.windows.iter().all(|window| {
                    Self::transition_probability_into(kernel, config, window, previous) > self.tau
                })
            })
            .cloned()
            .collect()
    }

    /// Computes `(Z^k_0, Z^k_1)` for `k = 0..=k_max` and returns, for each
    /// level, the pair of set sizes and their Hamming separation
    /// (`None` when either set is empty — an empty set is vacuously separated).
    pub fn separation_profile(
        &self,
        kernel: &dyn TransitionKernel,
        k_max: usize,
    ) -> Vec<LevelSeparation> {
        let (mut z0, mut z1) = self.base_sets();
        let mut profile = Vec::with_capacity(k_max + 1);
        for level in 0..=k_max {
            profile.push(LevelSeparation {
                level,
                size_zero: z0.len(),
                size_one: z1.len(),
                separation: distance_between_sets(&z0, &z1),
            });
            if level < k_max {
                z0 = self.next_level(kernel, &z0);
                z1 = self.next_level(kernel, &z1);
            }
        }
        profile
    }
}

/// The size and Hamming separation of one level of the `Z^k` recursion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelSeparation {
    /// The recursion depth `k`.
    pub level: usize,
    /// `|Z^k_0|`.
    pub size_zero: usize,
    /// `|Z^k_1|`.
    pub size_one: usize,
    /// `∆(Z^k_0, Z^k_1)`, or `None` if either set is empty.
    pub separation: Option<usize>,
}

impl LevelSeparation {
    /// Lemma 13's claim at this level: the separation exceeds `t` (vacuously
    /// true when either set is empty).
    pub fn exceeds(&self, t: usize) -> bool {
        self.separation.is_none_or(|d| d > t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::talagrand::tau;

    fn kernel4() -> MiniResetTolerantKernel {
        MiniResetTolerantKernel::scaled(4, 0)
    }

    #[test]
    fn abstract_state_accessors() {
        assert_eq!(AbstractState::Undecided(Bit::One).estimate(), Bit::One);
        assert_eq!(
            AbstractState::Decided(Bit::Zero).decision(),
            Some(Bit::Zero)
        );
        assert_eq!(AbstractState::Undecided(Bit::Zero).decision(), None);
        assert_eq!(AbstractState::ALL.len(), 4);
    }

    #[test]
    fn scaled_kernel_enforces_threshold_constraints() {
        let k = MiniResetTolerantKernel::scaled(8, 1);
        assert_eq!(k.n(), 8);
        assert_eq!(k.t(), 1);
    }

    #[test]
    #[should_panic(expected = "2 * adopt_threshold must exceed n")]
    fn invalid_kernel_thresholds_rejected() {
        let _ = MiniResetTolerantKernel::new(8, 2, 6, 4);
    }

    #[test]
    fn unanimous_configuration_decides_in_one_window() {
        let kernel = kernel4();
        let config: AbstractConfig = vec![AbstractState::Undecided(Bit::One); 4];
        let window = UniformWindow {
            resets: vec![],
            senders: vec![0, 1, 2, 3],
        };
        let product = kernel.transition(&config, &window);
        for coordinate in product {
            assert_eq!(coordinate, vec![(AbstractState::Decided(Bit::One), 1.0)]);
        }
    }

    #[test]
    fn split_configuration_randomizes_everyone() {
        let kernel = kernel4();
        let config: AbstractConfig = vec![
            AbstractState::Undecided(Bit::Zero),
            AbstractState::Undecided(Bit::Zero),
            AbstractState::Undecided(Bit::One),
            AbstractState::Undecided(Bit::One),
        ];
        let window = UniformWindow {
            resets: vec![],
            senders: vec![0, 1, 2, 3],
        };
        let product = kernel.transition(&config, &window);
        for coordinate in product {
            assert_eq!(coordinate.len(), 2, "a 2-2 split must re-randomize");
        }
    }

    #[test]
    fn decided_state_is_absorbing() {
        let kernel = MiniResetTolerantKernel::new(4, 1, 4, 3);
        let config: AbstractConfig = vec![
            AbstractState::Decided(Bit::Zero),
            AbstractState::Undecided(Bit::Zero),
            AbstractState::Undecided(Bit::Zero),
            AbstractState::Undecided(Bit::One),
        ];
        let window = UniformWindow {
            resets: vec![0],
            senders: vec![0, 1, 2],
        };
        let product = kernel.transition(&config, &window);
        assert_eq!(product[0], vec![(AbstractState::Decided(Bit::Zero), 1.0)]);
    }

    #[test]
    fn window_enumeration_counts_match_combinatorics() {
        let kernel = MiniResetTolerantKernel::new(4, 1, 4, 3);
        let analysis = ZSetAnalysis::new(&kernel, tau(4, 1));
        // Sender sets: C(4,3) + C(4,4) = 5; reset sets: C(4,0) + C(4,1) = 5.
        assert_eq!(analysis.windows().len(), 25);
        assert_eq!(analysis.n(), 4);
    }

    #[test]
    fn base_sets_are_disjoint_and_separated_beyond_t() {
        let kernel = MiniResetTolerantKernel::new(4, 1, 4, 3);
        let analysis = ZSetAnalysis::new(&kernel, tau(4, 1));
        let (z0, z1) = analysis.base_sets();
        assert!(!z0.is_empty() && !z1.is_empty());
        let separation = distance_between_sets(&z0, &z1).unwrap();
        assert!(
            separation > kernel.t(),
            "Lemma 11 (abstract model): separation {separation} must exceed t {}",
            kernel.t()
        );
    }

    #[test]
    fn separation_profile_satisfies_lemma_13_on_the_abstract_model() {
        let kernel = MiniResetTolerantKernel::new(4, 1, 4, 3);
        let analysis = ZSetAnalysis::new(&kernel, tau(4, 1));
        let profile = analysis.separation_profile(&kernel, 3);
        assert_eq!(profile.len(), 4);
        for level in &profile {
            assert!(
                level.exceeds(kernel.t()),
                "level {} separation {:?} must exceed t",
                level.level,
                level.separation
            );
        }
        // Z-set sizes shrink (or stay equal) as k grows: the condition quantifies
        // over more windows each level.
        for pair in profile.windows(2) {
            assert!(pair[1].size_zero <= pair[0].size_zero);
            assert!(pair[1].size_one <= pair[0].size_one);
        }
    }
}

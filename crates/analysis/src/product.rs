//! Product distributions over configuration space.
//!
//! The heart of the paper's technique is that the configuration reached at the
//! end of an acceptable window is distributed according to a **product**
//! distribution `Ω_1 × ... × Ω_n` (each processor samples its local randomness
//! independently), which is exactly the setting of Talagrand's inequality.
//! [`ProductDistribution`] represents such a distribution over a finite
//! per-coordinate alphabet, supports sampling, exact set probabilities (by
//! enumeration, for small `n`), and the coordinate-wise *interpolation*
//! `π_j` between two product distributions used in Lemmas 14 and 21.

use agreement_model::ProcessorRng;

/// A product distribution over `{0, .., alphabet-1}^n` with independent,
/// per-coordinate probability vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct ProductDistribution {
    coordinates: Vec<Vec<f64>>,
}

impl ProductDistribution {
    /// Creates a product distribution from per-coordinate probability vectors.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate's probabilities do not sum to 1 (within 1e-9)
    /// or contain negative entries, or if coordinates use different alphabet
    /// sizes.
    pub fn new(coordinates: Vec<Vec<f64>>) -> Self {
        assert!(!coordinates.is_empty(), "need at least one coordinate");
        let alphabet = coordinates[0].len();
        for (i, probs) in coordinates.iter().enumerate() {
            assert_eq!(
                probs.len(),
                alphabet,
                "coordinate {i} uses a different alphabet size"
            );
            assert!(
                probs.iter().all(|&p| p >= 0.0),
                "coordinate {i} has a negative probability"
            );
            let sum: f64 = probs.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-9,
                "coordinate {i} probabilities sum to {sum}, not 1"
            );
        }
        ProductDistribution { coordinates }
    }

    /// The uniform distribution over `{0, 1}^n` (independent fair coins).
    pub fn uniform_bits(n: usize) -> Self {
        ProductDistribution::new(vec![vec![0.5, 0.5]; n])
    }

    /// A biased-coin product distribution over `{0, 1}^n`: coordinate `i`
    /// equals `1` with probability `ones[i]`.
    pub fn biased_bits(ones: &[f64]) -> Self {
        ProductDistribution::new(ones.iter().map(|&p| vec![1.0 - p, p]).collect())
    }

    /// Number of coordinates `n`.
    pub fn dimension(&self) -> usize {
        self.coordinates.len()
    }

    /// Alphabet size of each coordinate.
    pub fn alphabet(&self) -> usize {
        self.coordinates[0].len()
    }

    /// The probability of a single configuration `point`.
    ///
    /// # Panics
    ///
    /// Panics if `point` has the wrong dimension or an out-of-alphabet symbol.
    pub fn point_probability(&self, point: &[usize]) -> f64 {
        assert_eq!(
            point.len(),
            self.dimension(),
            "point has the wrong dimension"
        );
        point
            .iter()
            .zip(&self.coordinates)
            .map(|(&symbol, probs)| probs[symbol])
            .product()
    }

    /// The exact probability of an arbitrary set given by its membership
    /// predicate, computed by enumerating the whole space — use only for small
    /// `alphabet^n` (the experiments keep `n <= 16` with bits).
    pub fn set_probability<F: Fn(&[usize]) -> bool>(&self, member: F) -> f64 {
        let mut total = 0.0;
        let mut point = vec![0usize; self.dimension()];
        loop {
            if member(&point) {
                total += self.point_probability(&point);
            }
            // Odometer increment.
            let mut i = 0;
            loop {
                if i == point.len() {
                    return total;
                }
                point[i] += 1;
                if point[i] < self.alphabet() {
                    break;
                }
                point[i] = 0;
                i += 1;
            }
        }
    }

    /// Estimates the probability of a set by Monte Carlo sampling.
    pub fn estimate_probability<F: Fn(&[usize]) -> bool>(
        &self,
        member: F,
        samples: usize,
        rng: &mut ProcessorRng,
    ) -> f64 {
        if samples == 0 {
            return 0.0;
        }
        let hits = (0..samples).filter(|_| member(&self.sample(rng))).count();
        hits as f64 / samples as f64
    }

    /// Draws one configuration.
    pub fn sample(&self, rng: &mut ProcessorRng) -> Vec<usize> {
        self.coordinates
            .iter()
            .map(|probs| {
                let mut u = rng.range(1 << 24) as f64 / (1u64 << 24) as f64;
                for (symbol, &p) in probs.iter().enumerate() {
                    if u < p {
                        return symbol;
                    }
                    u -= p;
                }
                probs.len() - 1
            })
            .collect()
    }

    /// The interpolated distribution `π_j` of Lemmas 14 and 21: the first `j`
    /// coordinates come from `target`, the remaining ones from `self`.
    ///
    /// # Panics
    ///
    /// Panics if the two distributions have different dimensions or alphabets,
    /// or if `j` exceeds the dimension.
    pub fn interpolate(&self, target: &ProductDistribution, j: usize) -> ProductDistribution {
        assert_eq!(self.dimension(), target.dimension(), "dimension mismatch");
        assert_eq!(self.alphabet(), target.alphabet(), "alphabet mismatch");
        assert!(j <= self.dimension(), "interpolation index out of range");
        let coordinates = (0..self.dimension())
            .map(|i| {
                if i < j {
                    target.coordinates[i].clone()
                } else {
                    self.coordinates[i].clone()
                }
            })
            .collect();
        ProductDistribution { coordinates }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_bits_assign_equal_mass_to_every_point() {
        let d = ProductDistribution::uniform_bits(3);
        assert_eq!(d.dimension(), 3);
        assert_eq!(d.alphabet(), 2);
        assert!((d.point_probability(&[0, 1, 0]) - 0.125).abs() < 1e-12);
        let total = d.set_probability(|_| true);
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn biased_bits_probability_matches_construction() {
        let d = ProductDistribution::biased_bits(&[0.25, 0.75]);
        assert!((d.point_probability(&[1, 1]) - 0.25 * 0.75).abs() < 1e-12);
        assert!((d.point_probability(&[0, 0]) - 0.75 * 0.25).abs() < 1e-12);
    }

    #[test]
    fn set_probability_of_hamming_weight_sets() {
        let d = ProductDistribution::uniform_bits(4);
        // Exactly one `1` among four fair bits: 4/16.
        let p = d.set_probability(|x| x.iter().sum::<usize>() == 1);
        assert!((p - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_exact_probabilities_roughly() {
        let d = ProductDistribution::biased_bits(&[0.9, 0.1, 0.5]);
        let mut rng = ProcessorRng::from_seed(7);
        let estimate = d.estimate_probability(|x| x[0] == 1, 20_000, &mut rng);
        assert!((estimate - 0.9).abs() < 0.02, "estimate {estimate}");
    }

    #[test]
    fn interpolation_mixes_coordinates_as_in_the_lemma() {
        let from = ProductDistribution::biased_bits(&[0.0, 0.0, 0.0]);
        let to = ProductDistribution::biased_bits(&[1.0, 1.0, 1.0]);
        let mid = from.interpolate(&to, 2);
        // First two coordinates always 1, third always 0.
        assert!((mid.point_probability(&[1, 1, 0]) - 1.0).abs() < 1e-12);
        assert_eq!(from.interpolate(&to, 0), from);
        assert_eq!(from.interpolate(&to, 3), to);
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn invalid_probabilities_rejected() {
        let _ = ProductDistribution::new(vec![vec![0.5, 0.6]]);
    }

    #[test]
    #[should_panic(expected = "interpolation index out of range")]
    fn interpolation_index_out_of_range_panics() {
        let a = ProductDistribution::uniform_bits(2);
        let b = ProductDistribution::uniform_bits(2);
        let _ = a.interpolate(&b, 3);
    }

    #[test]
    fn monte_carlo_with_zero_samples_is_zero() {
        let d = ProductDistribution::uniform_bits(2);
        let mut rng = ProcessorRng::from_seed(1);
        assert_eq!(d.estimate_probability(|_| true, 0, &mut rng), 0.0);
    }
}

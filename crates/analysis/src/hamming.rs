//! Hamming geometry on configuration space (Section 4.1 of the paper).
//!
//! The lower-bound proof works with the Hamming distance on `Σ^n`: the number
//! of coordinates (processors) in which two configurations differ, the induced
//! point-to-set and set-to-set distances (Definitions 6 and 7), and the balls
//! `B(A, d)` (Definition 8).

/// Hamming distance between two equal-length configurations.
///
/// # Panics
///
/// Panics if the configurations have different lengths.
///
/// # Examples
///
/// ```
/// use agreement_analysis::hamming_distance;
///
/// assert_eq!(hamming_distance(&[0, 1, 1], &[0, 0, 1]), 1);
/// assert_eq!(hamming_distance(&[1u8, 1, 1], &[0, 0, 0]), 3);
/// ```
pub fn hamming_distance<T: PartialEq>(x: &[T], y: &[T]) -> usize {
    assert_eq!(x.len(), y.len(), "configurations must have equal length");
    x.iter().zip(y).filter(|(a, b)| a != b).count()
}

/// Distance from a point to a set (Definition 6): the minimum distance to any
/// member, or `None` if the set is empty.
pub fn distance_to_set<T: PartialEq>(x: &[T], set: &[Vec<T>]) -> Option<usize> {
    set.iter().map(|a| hamming_distance(x, a)).min()
}

/// Distance between two sets (Definition 7): the minimum pairwise distance, or
/// `None` if either set is empty.
pub fn distance_between_sets<T: PartialEq>(a: &[Vec<T>], b: &[Vec<T>]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for x in a {
        for y in b {
            let d = hamming_distance(x, y);
            best = Some(best.map_or(d, |m| m.min(d)));
            if best == Some(0) {
                return best;
            }
        }
    }
    best
}

/// Membership in the ball `B(A, d)` (Definition 8): `true` when `x` is within
/// Hamming distance `d` of the set `A`. An empty `A` has an empty ball.
pub fn in_ball<T: PartialEq>(x: &[T], set: &[Vec<T>], d: usize) -> bool {
    distance_to_set(x, set).is_some_and(|dist| dist <= d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_a_metric_on_small_examples() {
        let a = vec![0u8, 1, 0, 1];
        let b = vec![1u8, 1, 0, 0];
        let c = vec![1u8, 0, 0, 0];
        assert_eq!(hamming_distance(&a, &a), 0);
        assert_eq!(hamming_distance(&a, &b), hamming_distance(&b, &a));
        assert!(hamming_distance(&a, &c) <= hamming_distance(&a, &b) + hamming_distance(&b, &c));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let _ = hamming_distance(&[0u8, 1], &[0u8]);
    }

    #[test]
    fn point_to_set_distance_is_minimum_over_members() {
        let set = vec![vec![0u8, 0, 0], vec![1, 1, 1]];
        assert_eq!(distance_to_set(&[0, 0, 1], &set), Some(1));
        assert_eq!(distance_to_set(&[1, 1, 0], &set), Some(1));
        assert_eq!(distance_to_set(&[0, 1, 1], &set), Some(1));
        assert_eq!(distance_to_set::<u8>(&[0, 1, 1], &[]), None);
    }

    #[test]
    fn set_to_set_distance_and_short_circuit() {
        let a = vec![vec![0u8, 0, 0, 0]];
        let b = vec![vec![1u8, 1, 1, 1], vec![0, 0, 1, 1]];
        assert_eq!(distance_between_sets(&a, &b), Some(2));
        let overlapping = vec![vec![0u8, 0, 0, 0], vec![9, 9, 9, 9]];
        assert_eq!(distance_between_sets(&a, &overlapping), Some(0));
        assert_eq!(distance_between_sets::<u8>(&a, &[]), None);
    }

    #[test]
    fn ball_membership_matches_definition() {
        let set = vec![vec![0u8, 0, 0, 0]];
        assert!(in_ball(&[0, 0, 0, 0], &set, 0));
        assert!(in_ball(&[0, 0, 0, 1], &set, 1));
        assert!(!in_ball(&[0, 0, 1, 1], &set, 1));
        assert!(in_ball(&[1, 1, 1, 1], &set, 4));
        assert!(!in_ball::<u8>(&[1, 1, 1, 1], &[], 4));
    }
}

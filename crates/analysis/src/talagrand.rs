//! Talagrand's inequality in the Hamming-distance form used by the paper
//! (Lemma 9): for any product distribution over an `n`-coordinate space, any
//! set `A` and any `d >= 0`,
//!
//! ```text
//! P[A] * (1 - P[B(A, d)]) <= exp(-d^2 / 4n).
//! ```
//!
//! This module provides the numeric bound, the quantities on the left-hand
//! side for explicitly given sets and distributions, and a randomized checker
//! that the experiments use to confirm the inequality empirically (experiment
//! E3).

use agreement_model::ProcessorRng;

use crate::hamming::{distance_to_set, in_ball};
use crate::product::ProductDistribution;

/// The right-hand side of Lemma 9: `exp(-d^2 / 4n)`.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn talagrand_bound(d: usize, n: usize) -> f64 {
    assert!(n > 0, "dimension must be positive");
    (-((d as f64).powi(2)) / (4.0 * n as f64)).exp()
}

/// The threshold `τ = exp(-t^2 / 8n)` used to define the `Z^k` sets
/// (Lemma 13 / Definition 12).
pub fn tau(n: usize, t: usize) -> f64 {
    assert!(n > 0, "dimension must be positive");
    (-((t as f64).powi(2)) / (8.0 * n as f64)).exp()
}

/// The degraded threshold `η = exp(-(t-1)^2 / 8n)` of Lemmas 14 and 21.
pub fn eta(n: usize, t: usize) -> f64 {
    assert!(n > 0, "dimension must be positive");
    let tm1 = t.saturating_sub(1) as f64;
    (-(tm1 * tm1) / (8.0 * n as f64)).exp()
}

/// Both sides of Lemma 9 for an explicit set `A` (given as a list of points)
/// under `distribution`, computed exactly by enumeration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TalagrandCheck {
    /// `P[A]`.
    pub p_a: f64,
    /// `P[B(A, d)]`.
    pub p_ball: f64,
    /// The left-hand side `P[A] * (1 - P[B(A, d)])`.
    pub lhs: f64,
    /// The right-hand side `exp(-d^2/4n)`.
    pub bound: f64,
}

impl TalagrandCheck {
    /// `true` when the inequality holds (up to floating-point slack).
    pub fn holds(&self) -> bool {
        self.lhs <= self.bound + 1e-12
    }
}

/// Evaluates Lemma 9 exactly for the set `a` and distance `d` under
/// `distribution` (enumerates the space; use small `n`).
pub fn check_talagrand(
    distribution: &ProductDistribution,
    a: &[Vec<usize>],
    d: usize,
) -> TalagrandCheck {
    let p_a = distribution.set_probability(|x| distance_to_set(x, a) == Some(0));
    let p_ball = distribution.set_probability(|x| in_ball(x, a, d));
    let lhs = p_a * (1.0 - p_ball);
    TalagrandCheck {
        p_a,
        p_ball,
        lhs,
        bound: talagrand_bound(d, distribution.dimension()),
    }
}

/// Draws `sets` random sets (each of `set_size` points sampled from a second,
/// independent product distribution) and checks Lemma 9 for every `d` in
/// `0..=n`, returning the worst (largest) ratio `lhs / bound` observed.
///
/// A return value `<= 1.0` means the inequality held in every trial.
pub fn worst_case_ratio(
    distribution: &ProductDistribution,
    sets: usize,
    set_size: usize,
    seed: u64,
) -> f64 {
    let n = distribution.dimension();
    let mut rng = ProcessorRng::labelled(seed, 0x7A1A);
    let mut worst: f64 = 0.0;
    for _ in 0..sets {
        let a: Vec<Vec<usize>> = (0..set_size)
            .map(|_| distribution.sample(&mut rng))
            .collect();
        for d in 0..=n {
            let check = check_talagrand(distribution, &a, d);
            if check.bound > 0.0 {
                worst = worst.max(check.lhs / check.bound);
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_decreases_in_d_and_increases_in_n() {
        assert!(talagrand_bound(0, 10) == 1.0);
        assert!(talagrand_bound(5, 10) > talagrand_bound(6, 10));
        assert!(talagrand_bound(5, 10) < talagrand_bound(5, 20));
    }

    #[test]
    fn tau_and_eta_relationship() {
        // η uses (t-1)^2, so η >= τ always.
        for n in [4usize, 8, 16, 64] {
            for t in [1usize, 2, 3, n / 6 + 1] {
                assert!(eta(n, t) >= tau(n, t));
                assert!(tau(n, t) > 0.0 && tau(n, t) <= 1.0);
            }
        }
        // τ^2 = e^{-t²/4n} which is exactly the Talagrand bound at d = t.
        let n = 12;
        let t = 3;
        assert!((tau(n, t).powi(2) - talagrand_bound(t, n)).abs() < 1e-12);
    }

    #[test]
    fn exact_check_on_a_singleton_set() {
        let d = ProductDistribution::uniform_bits(6);
        let a = vec![vec![0usize; 6]];
        let check = check_talagrand(&d, &a, 2);
        assert!(check.holds(), "lhs {} bound {}", check.lhs, check.bound);
        // P[A] = 2^-6, ball of radius 2 has 1 + 6 + 15 = 22 points.
        assert!((check.p_a - 1.0 / 64.0).abs() < 1e-12);
        assert!((check.p_ball - 22.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn inequality_holds_for_random_sets_under_uniform_and_biased_distributions() {
        let uniform = ProductDistribution::uniform_bits(8);
        assert!(worst_case_ratio(&uniform, 10, 4, 1) <= 1.0);
        let biased = ProductDistribution::biased_bits(&[0.9, 0.1, 0.3, 0.7, 0.5, 0.2, 0.8, 0.6]);
        assert!(worst_case_ratio(&biased, 10, 4, 2) <= 1.0);
    }

    #[test]
    fn far_apart_sets_cannot_both_be_heavy() {
        // The interpolation corollary the proofs rely on: if A and B are at
        // Hamming distance > t, then min(P[A], P[B])^2 <= e^{-t²/4n}, i.e. one
        // of them has probability <= τ.
        let n = 8;
        let t = 4;
        let d = ProductDistribution::uniform_bits(n);
        // A = strings starting with four zeros, B = strings starting with four ones.
        let a: Vec<Vec<usize>> = (0..16u32)
            .map(|suffix| {
                let mut v = vec![0usize; 4];
                v.extend((0..4).map(|b| ((suffix >> b) & 1) as usize));
                v
            })
            .collect();
        let b: Vec<Vec<usize>> = a
            .iter()
            .map(|v| {
                let mut w = vec![1usize; 4];
                w.extend_from_slice(&v[4..]);
                w
            })
            .collect();
        let p_a = d.set_probability(|x| crate::hamming::distance_to_set(x, &a) == Some(0));
        let p_b = d.set_probability(|x| crate::hamming::distance_to_set(x, &b) == Some(0));
        let min = p_a.min(p_b);
        assert!(min * min <= talagrand_bound(t, n) + 1e-12);
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dimension_rejected() {
        let _ = talagrand_bound(1, 0);
    }
}

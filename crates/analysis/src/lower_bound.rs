//! The quantitative constants of Theorem 5 (and Theorem 17).
//!
//! Theorem 5 states: for `t = cn` there are constants `C, α > 0` (depending
//! only on `c`) such that any algorithm with measure one correctness and
//! termination admits a strongly adaptive adversary and an input setting under
//! which, with probability at least `1/2`, the running time is at least
//! `C·e^{αn}` acceptable windows. The proof sets `α = c²/9` and requires `C`
//! small enough that
//!
//! ```text
//! C·e^{αn} <= (1/4)·e^{(cn-1)²/8n}      for all n >= 1.      (inequality 3)
//! ```
//!
//! This module computes a valid `C`, the window bound `E = C·e^{αn}`, and the
//! success-probability lower bound `1 - 2E·e^{-(cn-1)²/8n}`, and exposes them
//! to the experiments so that measured runs can be compared against the
//! theorem's envelope.

/// The exponent `α = c²/9` of Theorem 5.
///
/// # Panics
///
/// Panics unless `0 < c < 1`.
pub fn alpha(c: f64) -> f64 {
    assert!(
        c > 0.0 && c < 1.0,
        "the fault fraction c must lie in (0, 1)"
    );
    c * c / 9.0
}

/// A concrete constant `C` satisfying inequality (3) for every `n >= 1`.
///
/// The exponent gap `(cn-1)²/8n - αn = c²n/72 - c/4 + 1/(8n)` is minimized (by
/// AM–GM over the `n`-dependent terms) at `c/12 - c/4 = -c/6`, so
/// `C = (1/4)·e^{-c/6}` works for all `n`.
pub fn paper_constant(c: f64) -> f64 {
    assert!(
        c > 0.0 && c < 1.0,
        "the fault fraction c must lie in (0, 1)"
    );
    0.25 * (-c / 6.0).exp()
}

/// The window bound `E = C·e^{αn}`: the number of acceptable windows the
/// Theorem 5 adversary forces with probability at least 1/2.
pub fn window_bound(n: usize, c: f64) -> f64 {
    paper_constant(c) * (alpha(c) * n as f64).exp()
}

/// The right-hand side of inequality (3): `(1/4)·e^{(cn-1)²/8n}`.
pub fn inequality_three_rhs(n: usize, c: f64) -> f64 {
    assert!(n >= 1, "n must be positive");
    let cn1 = c * n as f64 - 1.0;
    0.25 * (cn1 * cn1 / (8.0 * n as f64)).exp()
}

/// The probability lower bound `1 - 2E·e^{-(cn-1)²/8n}` with which the
/// Theorem 5 adversary keeps the execution undecided for `E` windows. The
/// theorem's choice of constants makes this at least `1/2` for every `n`.
pub fn success_probability(n: usize, c: f64) -> f64 {
    let cn1 = c * n as f64 - 1.0;
    1.0 - 2.0 * window_bound(n, c) * (-(cn1 * cn1) / (8.0 * n as f64)).exp()
}

/// The per-window failure envelope `2·e^{-(t-1)²/8n}` from Lemma 14: the
/// probability that one application of the interpolated window lands in
/// `Z^{k-1}_0 ∪ Z^{k-1}_1` despite the adversary's choice.
pub fn per_window_failure(n: usize, t: usize) -> f64 {
    2.0 * crate::talagrand::eta(n, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_matches_the_paper() {
        assert!((alpha(1.0 / 6.0) - (1.0 / 36.0) / 9.0).abs() < 1e-12);
        assert!(alpha(0.5) > alpha(0.1));
    }

    #[test]
    fn inequality_three_holds_for_all_small_n_and_many_c() {
        for &c in &[0.05, 1.0 / 6.0, 0.25, 0.5, 0.9] {
            for n in 1..=2_000 {
                let lhs = window_bound(n, c);
                let rhs = inequality_three_rhs(n, c);
                assert!(
                    lhs <= rhs * (1.0 + 1e-12),
                    "inequality (3) violated at n={n}, c={c}: {lhs} > {rhs}"
                );
            }
        }
    }

    #[test]
    fn success_probability_is_at_least_one_half() {
        for &c in &[0.05, 1.0 / 6.0, 0.25, 0.5, 0.9] {
            for n in 1..=2_000 {
                let p = success_probability(n, c);
                assert!(
                    p >= 0.5 - 1e-12,
                    "success probability below 1/2 at n={n}, c={c}: {p}"
                );
            }
        }
    }

    #[test]
    fn window_bound_grows_exponentially_in_n() {
        let c = 1.0 / 6.0;
        let e10 = window_bound(10, c);
        let e100 = window_bound(100, c);
        let e1000 = window_bound(1_000, c);
        // Ratios of the bound across equal increments of n are constant for an
        // exponential, and greater than 1.
        let r1 = e100 / e10;
        let r2 = e1000 / window_bound(910, c);
        assert!(r1 > 1.0);
        assert!((r1 - r2).abs() / r1 < 1e-9);
    }

    #[test]
    fn per_window_failure_shrinks_with_t() {
        assert!(per_window_failure(100, 20) < per_window_failure(100, 10));
        assert!(per_window_failure(100, 10) <= 2.0);
    }

    #[test]
    #[should_panic(expected = "must lie in (0, 1)")]
    fn alpha_rejects_degenerate_fractions() {
        let _ = alpha(1.5);
    }
}

//! Small statistics toolbox for the experiment harness: summaries with
//! confidence intervals and exponential-growth fitting (used to verify that
//! measured running times grow exponentially in `n`, experiments E2 and E6).

/// A summary of a sample of real-valued measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (unbiased).
    pub std_dev: f64,
    /// Minimum observed value.
    pub min: f64,
    /// Maximum observed value.
    pub max: f64,
}

impl Summary {
    /// Summarizes `samples`. Returns a zeroed summary for an empty slice.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let variance = if count > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count as f64 - 1.0)
        } else {
            0.0
        };
        Summary {
            count,
            mean,
            std_dev: variance.sqrt(),
            min: samples.iter().copied().fold(f64::INFINITY, f64::min),
            max: samples.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev / (self.count as f64).sqrt()
        }
    }

    /// A (approximately 95%) confidence interval for the mean, `mean ± 1.96 SE`.
    pub fn confidence_interval(&self) -> (f64, f64) {
        let half = 1.96 * self.std_error();
        (self.mean - half, self.mean + half)
    }
}

/// Least-squares fit of a straight line `y = slope * x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// The fitted slope.
    pub slope: f64,
    /// The fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination `R^2` (1 = perfect fit).
    pub r_squared: f64,
}

/// Fits a straight line to `(x, y)` points by least squares.
///
/// # Panics
///
/// Panics if fewer than two points are given or all `x` are identical.
pub fn linear_fit(points: &[(f64, f64)]) -> LinearFit {
    assert!(points.len() >= 2, "need at least two points to fit a line");
    let n = points.len() as f64;
    let mean_x = points.iter().map(|(x, _)| x).sum::<f64>() / n;
    let mean_y = points.iter().map(|(_, y)| y).sum::<f64>() / n;
    let sxx: f64 = points.iter().map(|(x, _)| (x - mean_x).powi(2)).sum();
    assert!(sxx > 0.0, "all x values are identical");
    let sxy: f64 = points
        .iter()
        .map(|(x, y)| (x - mean_x) * (y - mean_y))
        .sum();
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let ss_res: f64 = points
        .iter()
        .map(|(x, y)| (y - (slope * x + intercept)).powi(2))
        .sum();
    let ss_tot: f64 = points.iter().map(|(_, y)| (y - mean_y).powi(2)).sum();
    let r_squared = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    LinearFit {
        slope,
        intercept,
        r_squared,
    }
}

/// An exponential fit `y = a * exp(rate * x)`, obtained by a linear fit of
/// `ln y` against `x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialFit {
    /// Growth rate per unit of `x` (the `α` in `C · e^{αn}`).
    pub rate: f64,
    /// The prefactor `a` (the `C`).
    pub prefactor: f64,
    /// `R^2` of the underlying log-linear fit.
    pub r_squared: f64,
}

/// Fits `y = a * exp(rate * x)` to points with strictly positive `y`.
///
/// # Panics
///
/// Panics if fewer than two points are given or any `y` is not positive.
pub fn exponential_fit(points: &[(f64, f64)]) -> ExponentialFit {
    assert!(
        points.iter().all(|(_, y)| *y > 0.0),
        "exponential fit requires positive y values"
    );
    let logged: Vec<(f64, f64)> = points.iter().map(|(x, y)| (*x, y.ln())).collect();
    let fit = linear_fit(&logged);
    ExponentialFit {
        rate: fit.slope,
        prefactor: fit.intercept.exp(),
        r_squared: fit.r_squared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.138089935299395).abs() < 1e-9);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        let (lo, hi) = s.confidence_interval();
        assert!(lo < 5.0 && 5.0 < hi);
    }

    #[test]
    fn summary_of_empty_and_singleton_samples() {
        let empty = Summary::from_samples(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.std_error(), 0.0);
        let single = Summary::from_samples(&[3.5]);
        assert_eq!(single.count, 1);
        assert_eq!(single.mean, 3.5);
        assert_eq!(single.std_dev, 0.0);
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let points: Vec<(f64, f64)> = (0..10).map(|x| (x as f64, 3.0 * x as f64 - 2.0)).collect();
        let fit = linear_fit(&points);
        assert!((fit.slope - 3.0).abs() < 1e-9);
        assert!((fit.intercept + 2.0).abs() < 1e-9);
        assert!((fit.r_squared - 1.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_on_noisy_data_has_reasonable_r_squared() {
        let points: Vec<(f64, f64)> = (0..20)
            .map(|x| {
                let noise = if x % 2 == 0 { 0.5 } else { -0.5 };
                (x as f64, 2.0 * x as f64 + noise)
            })
            .collect();
        let fit = linear_fit(&points);
        assert!((fit.slope - 2.0).abs() < 0.05);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn exponential_fit_recovers_growth_rate() {
        let points: Vec<(f64, f64)> = (1..12)
            .map(|x| (x as f64, 0.5 * (0.7 * x as f64).exp()))
            .collect();
        let fit = exponential_fit(&points);
        assert!((fit.rate - 0.7).abs() < 1e-9);
        assert!((fit.prefactor - 0.5).abs() < 1e-9);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    #[should_panic(expected = "positive y values")]
    fn exponential_fit_rejects_non_positive_values() {
        let _ = exponential_fit(&[(1.0, 1.0), (2.0, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "need at least two points")]
    fn linear_fit_needs_two_points() {
        let _ = linear_fit(&[(1.0, 1.0)]);
    }
}

//! Small statistics toolbox for the experiment harness: summaries with
//! confidence intervals, sample distributions with percentiles
//! ([`Histogram`]), and exponential-growth fitting (used to verify that
//! measured running times grow exponentially in `n`, experiments E2 and E6).

/// A summary of a sample of real-valued measurements.
///
/// # Degenerate inputs
///
/// Every constructor and accessor is total and never produces `NaN` or an
/// infinity — a requirement of the machine-readable report pipeline, whose
/// JSON writer has no representation for non-finite numbers. The conventions:
///
/// * **Empty sample**: `count = 0` and every statistic (`mean`, `std_dev`,
///   `min`, `max`, [`Summary::std_error`]) is `0.0`; the confidence interval
///   collapses to `(0.0, 0.0)`.
/// * **Single sample**: `std_dev` is `0.0` (the unbiased estimator is
///   undefined at `n = 1`; we report zero spread rather than `0/0 = NaN`),
///   so `std_error` is `0.0` and the confidence interval collapses onto the
///   mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (unbiased).
    pub std_dev: f64,
    /// Minimum observed value.
    pub min: f64,
    /// Maximum observed value.
    pub max: f64,
}

impl Summary {
    /// Summarizes `samples`. Returns a zeroed summary for an empty slice and
    /// a zero-spread summary for a single sample (see the type-level
    /// documentation for the degenerate-input conventions).
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let variance = if count > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count as f64 - 1.0)
        } else {
            0.0
        };
        Summary {
            count,
            mean,
            std_dev: variance.sqrt(),
            min: samples.iter().copied().fold(f64::INFINITY, f64::min),
            max: samples.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev / (self.count as f64).sqrt()
        }
    }

    /// A (approximately 95%) confidence interval for the mean, `mean ± 1.96 SE`.
    pub fn confidence_interval(&self) -> (f64, f64) {
        let half = 1.96 * self.std_error();
        (self.mean - half, self.mean + half)
    }
}

/// A sample distribution supporting percentile queries and equal-width
/// bucketing.
///
/// Stores the sorted sample (experiment batches are small — tens to hundreds
/// of trials — so exact percentiles are cheaper than maintaining an
/// approximate sketch). Like [`Summary`], every query is total: an empty
/// histogram answers `0.0` everywhere and has no buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    sorted: Vec<f64>,
}

/// One equal-width bucket of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramBucket {
    /// Inclusive lower edge.
    pub lo: f64,
    /// Upper edge (inclusive for the last bucket).
    pub hi: f64,
    /// Number of samples in `[lo, hi)` (last bucket: `[lo, hi]`).
    pub count: usize,
}

impl Histogram {
    /// Builds a histogram from `samples`. Non-finite samples are discarded
    /// (the simulation layer never produces them; dropping keeps every query
    /// total).
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
        sorted.sort_by(f64::total_cmp);
        Histogram { sorted }
    }

    /// Number of (finite) samples.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// Smallest sample (`0.0` when empty).
    pub fn min(&self) -> f64 {
        self.sorted.first().copied().unwrap_or(0.0)
    }

    /// Largest sample (`0.0` when empty).
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(0.0)
    }

    /// The `q`-quantile for `q` in `[0, 1]`, linearly interpolated between
    /// order statistics (`q` outside the range is clamped; `0.0` when empty).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let position = q * (self.sorted.len() - 1) as f64;
        let below = position.floor() as usize;
        let above = position.ceil() as usize;
        if below == above {
            self.sorted[below]
        } else {
            let fraction = position - below as f64;
            self.sorted[below] * (1.0 - fraction) + self.sorted[above] * fraction
        }
    }

    /// The `p`-th percentile for `p` in `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        self.quantile(p / 100.0)
    }

    /// The median.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// The [`Summary`] of the underlying sample.
    pub fn summary(&self) -> Summary {
        Summary::from_samples(&self.sorted)
    }

    /// Splits the sample range into `buckets` equal-width bins and counts the
    /// samples per bin. Returns an empty vector when the histogram is empty
    /// or `buckets` is zero; a zero-width range puts everything in one bin.
    pub fn buckets(&self, buckets: usize) -> Vec<HistogramBucket> {
        if self.sorted.is_empty() || buckets == 0 {
            return Vec::new();
        }
        let (min, max) = (self.min(), self.max());
        if min == max {
            return vec![HistogramBucket {
                lo: min,
                hi: max,
                count: self.sorted.len(),
            }];
        }
        let width = (max - min) / buckets as f64;
        let mut out: Vec<HistogramBucket> = (0..buckets)
            .map(|i| HistogramBucket {
                lo: min + width * i as f64,
                hi: if i + 1 == buckets {
                    max
                } else {
                    min + width * (i + 1) as f64
                },
                count: 0,
            })
            .collect();
        for &x in &self.sorted {
            let index = (((x - min) / width) as usize).min(buckets - 1);
            out[index].count += 1;
        }
        out
    }
}

/// Least-squares fit of a straight line `y = slope * x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// The fitted slope.
    pub slope: f64,
    /// The fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination `R^2` (1 = perfect fit).
    pub r_squared: f64,
}

/// Fits a straight line to `(x, y)` points by least squares.
///
/// # Panics
///
/// Panics if fewer than two points are given or all `x` are identical.
pub fn linear_fit(points: &[(f64, f64)]) -> LinearFit {
    assert!(points.len() >= 2, "need at least two points to fit a line");
    let n = points.len() as f64;
    let mean_x = points.iter().map(|(x, _)| x).sum::<f64>() / n;
    let mean_y = points.iter().map(|(_, y)| y).sum::<f64>() / n;
    let sxx: f64 = points.iter().map(|(x, _)| (x - mean_x).powi(2)).sum();
    assert!(sxx > 0.0, "all x values are identical");
    let sxy: f64 = points
        .iter()
        .map(|(x, y)| (x - mean_x) * (y - mean_y))
        .sum();
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let ss_res: f64 = points
        .iter()
        .map(|(x, y)| (y - (slope * x + intercept)).powi(2))
        .sum();
    let ss_tot: f64 = points.iter().map(|(_, y)| (y - mean_y).powi(2)).sum();
    let r_squared = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    LinearFit {
        slope,
        intercept,
        r_squared,
    }
}

/// An exponential fit `y = a * exp(rate * x)`, obtained by a linear fit of
/// `ln y` against `x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialFit {
    /// Growth rate per unit of `x` (the `α` in `C · e^{αn}`).
    pub rate: f64,
    /// The prefactor `a` (the `C`).
    pub prefactor: f64,
    /// `R^2` of the underlying log-linear fit.
    pub r_squared: f64,
}

/// Fits `y = a * exp(rate * x)` to points with strictly positive `y`.
///
/// # Panics
///
/// Panics if fewer than two points are given or any `y` is not positive.
pub fn exponential_fit(points: &[(f64, f64)]) -> ExponentialFit {
    assert!(
        points.iter().all(|(_, y)| *y > 0.0),
        "exponential fit requires positive y values"
    );
    let logged: Vec<(f64, f64)> = points.iter().map(|(x, y)| (*x, y.ln())).collect();
    let fit = linear_fit(&logged);
    ExponentialFit {
        rate: fit.slope,
        prefactor: fit.intercept.exp(),
        r_squared: fit.r_squared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.138089935299395).abs() < 1e-9);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        let (lo, hi) = s.confidence_interval();
        assert!(lo < 5.0 && 5.0 < hi);
    }

    #[test]
    fn summary_of_empty_and_singleton_samples() {
        // The documented degenerate-input convention: all-zero for empty
        // samples, zero spread for singletons — and never NaN anywhere.
        let empty = Summary::from_samples(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.mean, 0.0);
        assert_eq!(empty.std_dev, 0.0);
        assert_eq!(empty.min, 0.0);
        assert_eq!(empty.max, 0.0);
        assert_eq!(empty.std_error(), 0.0);
        assert_eq!(empty.confidence_interval(), (0.0, 0.0));

        let single = Summary::from_samples(&[3.5]);
        assert_eq!(single.count, 1);
        assert_eq!(single.mean, 3.5);
        assert_eq!(single.std_dev, 0.0);
        assert_eq!(single.std_error(), 0.0);
        assert_eq!(single.confidence_interval(), (3.5, 3.5));

        for summary in [empty, single] {
            for stat in [
                summary.mean,
                summary.std_dev,
                summary.min,
                summary.max,
                summary.std_error(),
            ] {
                assert!(stat.is_finite(), "degenerate summaries must stay finite");
            }
        }
    }

    #[test]
    fn histogram_percentiles_interpolate() {
        let h = Histogram::from_samples(&[4.0, 1.0, 3.0, 2.0, 5.0]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 5.0);
        assert_eq!(h.median(), 3.0);
        assert_eq!(h.percentile(0.0), 1.0);
        assert_eq!(h.percentile(100.0), 5.0);
        assert_eq!(h.percentile(25.0), 2.0);
        // Between order statistics: linear interpolation.
        assert!((h.percentile(90.0) - 4.6).abs() < 1e-12);
        // Out-of-range percentiles clamp.
        assert_eq!(h.percentile(250.0), 5.0);
        assert_eq!(h.quantile(-1.0), 1.0);
    }

    #[test]
    fn histogram_degenerate_inputs_are_total() {
        let empty = Histogram::from_samples(&[]);
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.median(), 0.0);
        assert_eq!(empty.min(), 0.0);
        assert!(empty.buckets(4).is_empty());
        assert_eq!(empty.summary(), Summary::from_samples(&[]));

        let constant = Histogram::from_samples(&[7.0, 7.0, 7.0]);
        let buckets = constant.buckets(5);
        assert_eq!(buckets.len(), 1, "zero-width range collapses to one bin");
        assert_eq!(buckets[0].count, 3);

        let with_nan = Histogram::from_samples(&[1.0, f64::NAN, 2.0]);
        assert_eq!(with_nan.count(), 2, "non-finite samples are discarded");
    }

    #[test]
    fn histogram_buckets_cover_the_range() {
        let h = Histogram::from_samples(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        let buckets = h.buckets(4);
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets.iter().map(|b| b.count).sum::<usize>(), 8);
        assert_eq!(buckets[0].lo, 0.0);
        assert_eq!(buckets[3].hi, 7.0);
        // The max lands in the last bucket, not one past the end.
        assert_eq!(buckets[3].count, 2);
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let points: Vec<(f64, f64)> = (0..10).map(|x| (x as f64, 3.0 * x as f64 - 2.0)).collect();
        let fit = linear_fit(&points);
        assert!((fit.slope - 3.0).abs() < 1e-9);
        assert!((fit.intercept + 2.0).abs() < 1e-9);
        assert!((fit.r_squared - 1.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_on_noisy_data_has_reasonable_r_squared() {
        let points: Vec<(f64, f64)> = (0..20)
            .map(|x| {
                let noise = if x % 2 == 0 { 0.5 } else { -0.5 };
                (x as f64, 2.0 * x as f64 + noise)
            })
            .collect();
        let fit = linear_fit(&points);
        assert!((fit.slope - 2.0).abs() < 0.05);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn exponential_fit_recovers_growth_rate() {
        let points: Vec<(f64, f64)> = (1..12)
            .map(|x| (x as f64, 0.5 * (0.7 * x as f64).exp()))
            .collect();
        let fit = exponential_fit(&points);
        assert!((fit.rate - 0.7).abs() < 1e-9);
        assert!((fit.prefactor - 0.5).abs() < 1e-9);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    #[should_panic(expected = "positive y values")]
    fn exponential_fit_rejects_non_positive_values() {
        let _ = exponential_fit(&[(1.0, 1.0), (2.0, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "need at least two points")]
    fn linear_fit_needs_two_points() {
        let _ = linear_fit(&[(1.0, 1.0)]);
    }
}

//! Lower-bound machinery for the reproduction of Lewko & Lewko (PODC 2013).
//!
//! The paper's main contribution is a technique for proving exponential lower
//! bounds on the running time of randomized agreement against powerful
//! adversaries, built from four ingredients — all implemented and numerically
//! exercised here:
//!
//! * **Hamming geometry** on configuration space ([`hamming_distance`],
//!   [`distance_between_sets`], [`in_ball`]; Definitions 6–8).
//! * **Product distributions** over configurations, with the coordinate-wise
//!   interpolation of Lemmas 14/21 ([`ProductDistribution`]).
//! * **Talagrand's inequality** in its Hamming form (Lemma 9):
//!   [`talagrand_bound`], [`check_talagrand`], [`worst_case_ratio`], and the
//!   thresholds [`tau`] / [`eta`] derived from it.
//! * **The `Z^k` recursion** (Definitions 10–12, Lemmas 11/13), computed
//!   exactly on an abstract model of the Section 3 protocol
//!   ([`ZSetAnalysis`], [`MiniResetTolerantKernel`]).
//!
//! [`window_bound`], [`success_probability`] and friends expose the concrete
//! constants of Theorem 5, and [`Summary`] / [`exponential_fit`] are the
//! statistics used to compare measured running times against that envelope.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod crc;
mod fnv;
mod hamming;
mod json;
mod lower_bound;
mod lz;
mod product;
mod stats;
mod talagrand;
mod varint;
mod zsets;

pub use crc::{crc32, Crc32, CRC32_TABLE};
pub use fnv::{fnv1a_64, Fnv64, FNV64_OFFSET, FNV64_PRIME};
pub use hamming::{distance_between_sets, distance_to_set, hamming_distance, in_ball};
pub use json::JsonValue;
pub use lower_bound::{
    alpha, inequality_three_rhs, paper_constant, per_window_failure, success_probability,
    window_bound,
};
pub use lz::{lz_compress, lz_decompress, MIN_MATCH, WINDOW};
pub use product::ProductDistribution;
pub use stats::{
    exponential_fit, linear_fit, ExponentialFit, Histogram, HistogramBucket, LinearFit, Summary,
};
pub use talagrand::{check_talagrand, eta, talagrand_bound, tau, worst_case_ratio, TalagrandCheck};
pub use varint::{read_varint, write_varint, zigzag_decode, zigzag_encode, MAX_VARINT_LEN};
pub use zsets::{
    AbstractConfig, AbstractState, LevelSeparation, MiniResetTolerantKernel, ProductKernel,
    TransitionKernel, UniformWindow, ZSetAnalysis,
};

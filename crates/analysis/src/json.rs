//! A small, std-only JSON value type: writer and parser.
//!
//! The build environment is offline, so the workspace cannot depend on
//! `serde`; the machine-readable result pipeline (per-trial records, scenario
//! reports, `--json` output of the binaries) is built on this module instead.
//! It supports exactly standard JSON with two deliberate choices:
//!
//! * **Integers are exact.** Numbers without a fraction or exponent are kept
//!   as [`JsonValue::Int`] (`i128`, covering every `u64` seed bit-exactly);
//!   everything else is an [`JsonValue::Float`] written with Rust's
//!   shortest-round-trip formatting, so `emit → parse` reproduces every
//!   finite `f64` exactly.
//! * **Objects preserve insertion order** (a `Vec` of pairs, not a map), so
//!   emitted documents are deterministic and diffs stay readable.
//!
//! Non-finite floats have no JSON representation; the writer emits `null` for
//! them (the statistics layer never produces NaN — see
//! [`Summary`](crate::Summary)).

use std::fmt;

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fraction or exponent, kept bit-exact.
    Int(i128),
    /// Any other number.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object as insertion-ordered `(key, value)` pairs.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object.
    pub fn object() -> JsonValue {
        JsonValue::Object(Vec::new())
    }

    /// Appends `key: value` to an object. Convenience for building documents.
    ///
    /// # Panics
    ///
    /// Panics when `self` is not an object.
    pub fn push(&mut self, key: impl Into<String>, value: impl Into<JsonValue>) -> &mut Self {
        match self {
            JsonValue::Object(pairs) => pairs.push((key.into(), value.into())),
            other => panic!("push on non-object JSON value {other:?}"),
        }
        self
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// Parses a complete JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax error with its byte offset.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Int(v as i128)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Int(v as i128)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Float(v)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::String(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::String(v)
    }
}

impl From<Option<u64>> for JsonValue {
    fn from(v: Option<u64>) -> Self {
        v.map_or(JsonValue::Null, JsonValue::from)
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => write!(f, "null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Int(i) => write!(f, "{i}"),
            JsonValue::Float(v) if !v.is_finite() => write!(f, "null"),
            // `{}` on f64 is Rust's shortest representation that parses back
            // to the same bits, but it omits the decimal point for integral
            // values; force one so the round trip stays a Float.
            JsonValue::Float(v) if v.fract() == 0.0 && v.abs() < 1e15 => write!(f, "{v:.1}"),
            // Huge integral floats: exponent notation keeps them floats on
            // re-parse (a bare digit string would come back as an Int).
            JsonValue::Float(v) if v.fract() == 0.0 => write!(f, "{v:e}"),
            JsonValue::Float(v) => write!(f, "{v}"),
            JsonValue::String(s) => write_escaped(f, s),
            JsonValue::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            JsonValue::Object(pairs) => {
                write!(f, "{{")?;
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, key)?;
                    write!(f, ":{value}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", char::from(byte), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::String),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(other) => Err(format!(
            "unexpected byte '{}' at {}",
            char::from(*other),
            *pos
        )),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("expected '{literal}' at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    let mut is_float = false;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII digits");
    if !is_float {
        if let Ok(i) = text.parse::<i128>() {
            return Ok(JsonValue::Int(i));
        }
    }
    text.parse::<f64>()
        .map(JsonValue::Float)
        .map_err(|_| format!("malformed number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| "non-ASCII \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("malformed \\u escape {hex:?}"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("invalid code point \\u{hex}"))?,
                        );
                        *pos += 4;
                    }
                    other => return Err(format!("invalid escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences included).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?;
                let c = rest.chars().next().expect("non-empty by the match above");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(value: &JsonValue) {
        let text = value.to_string();
        let parsed = JsonValue::parse(&text)
            .unwrap_or_else(|err| panic!("emitted JSON failed to parse: {err}\n{text}"));
        assert_eq!(&parsed, value, "round trip changed the document: {text}");
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(&JsonValue::Null);
        round_trip(&JsonValue::Bool(true));
        round_trip(&JsonValue::Bool(false));
        round_trip(&JsonValue::Int(0));
        round_trip(&JsonValue::Int(-42));
        round_trip(&JsonValue::Int(u64::MAX as i128));
        round_trip(&JsonValue::Float(1.5));
        round_trip(&JsonValue::Float(0.1 + 0.2));
        round_trip(&JsonValue::Float(3.0));
        round_trip(&JsonValue::Float(1e-300));
        round_trip(&JsonValue::Float(1e20));
        round_trip(&JsonValue::String("hello".to_string()));
        round_trip(&JsonValue::String(
            "quote \" slash \\ tab \t nl \n".to_string(),
        ));
        round_trip(&JsonValue::String("unicode: ∆ ≥ é".to_string()));
    }

    #[test]
    fn containers_round_trip_preserving_order() {
        let mut obj = JsonValue::object();
        obj.push("zebra", 1u64).push("alpha", 2u64).push(
            "list",
            JsonValue::Array(vec![JsonValue::Int(1), JsonValue::Null]),
        );
        round_trip(&obj);
        assert!(obj.to_string().find("zebra").unwrap() < obj.to_string().find("alpha").unwrap());
    }

    #[test]
    fn u64_seeds_are_bit_exact() {
        let seed = u64::MAX - 12345;
        let value = JsonValue::from(seed);
        let parsed = JsonValue::parse(&value.to_string()).unwrap();
        assert_eq!(parsed.as_u64(), Some(seed));
    }

    #[test]
    fn accessors_navigate_documents() {
        let doc = JsonValue::parse(
            r#"{"id": "e1/x", "trials": 10, "rate": 0.95, "ok": true, "none": null,
                "items": [1, 2]}"#,
        )
        .unwrap();
        assert_eq!(doc.get("id").and_then(JsonValue::as_str), Some("e1/x"));
        assert_eq!(doc.get("trials").and_then(JsonValue::as_u64), Some(10));
        assert_eq!(doc.get("rate").and_then(JsonValue::as_f64), Some(0.95));
        assert_eq!(doc.get("ok").and_then(JsonValue::as_bool), Some(true));
        assert!(doc.get("none").unwrap().is_null());
        assert_eq!(
            doc.get("items")
                .and_then(JsonValue::as_array)
                .unwrap()
                .len(),
            2
        );
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":}",
            "[1 2]",
            "nulla",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted malformed {bad:?}");
        }
    }

    #[test]
    fn parser_accepts_whitespace_and_escapes() {
        let doc = JsonValue::parse(" { \"a\" : [ 1 , \"\\u0041\\n\" ] } ").unwrap();
        let items = doc.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(items[1].as_str(), Some("A\n"));
    }

    #[test]
    fn non_finite_floats_emit_null() {
        assert_eq!(JsonValue::Float(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::Float(f64::INFINITY).to_string(), "null");
    }
}

//! Layout-equivalence property tests: the message-buffer channel layout
//! (dense grid vs lazily materialized sparse fabric) must never change
//! results — only the memory/time profile. The whole legacy scenario
//! registry is rendered through the machine-readable sinks under both forced
//! layouts and across thread counts, and the reports must be byte-identical.

use agreement_core::experiments::Scale;
use agreement_core::{
    scenario_registry, Campaign, JsonReportSink, JsonlSink, ReportSink, ScenarioSpec,
};
use agreement_sim::BufferChoice;

/// The pre-sparse-fabric registry (every scenario the repo shipped before the
/// `subquad/` family), with trials and limits cut down so the full sweep
/// stays test-sized. Cutting limits is safe: both layouts run under the same
/// caps, and the equality below is on the complete rendered reports.
fn legacy_specs() -> Vec<ScenarioSpec> {
    let specs: Vec<ScenarioSpec> = scenario_registry(Scale::Quick)
        .into_iter()
        .filter(|spec| !spec.id().contains("subquad/"))
        .map(|mut spec| {
            spec.trials = 2;
            spec.limits.max_windows = spec.limits.max_windows.min(300);
            spec.limits.max_steps = spec.limits.max_steps.min(50_000);
            spec
        })
        .collect();
    assert!(specs.len() >= 30, "legacy registry unexpectedly small");
    specs
}

/// Renders every spec through the JSON report and per-trial JSONL sinks under
/// a forced buffer layout, returning both documents.
fn render(specs: &[ScenarioSpec], choice: BufferChoice, campaign: &Campaign) -> (String, String) {
    let mut json = JsonReportSink::with_scale("quick");
    let mut jsonl = JsonlSink::new();
    for spec in specs {
        let mut spec = spec.clone();
        spec.buffer = choice;
        let mut sinks: Vec<&mut dyn ReportSink> = vec![&mut json, &mut jsonl];
        spec.run_with_sinks(campaign, &mut sinks)
            .unwrap_or_else(|err| panic!("{} failed to run: {err}", spec.id()));
    }
    (json.into_json().to_string(), jsonl.as_str().to_string())
}

#[test]
fn legacy_registry_reports_are_byte_identical_across_layouts_and_threads() {
    let specs = legacy_specs();
    let serial = Campaign::serial();
    let threaded = Campaign::with_threads(3);

    let (dense_json, dense_jsonl) = render(&specs, BufferChoice::Dense, &serial);
    let (sparse_json, sparse_jsonl) = render(&specs, BufferChoice::Sparse, &serial);
    assert_eq!(
        dense_json, sparse_json,
        "JSON reports diverge across layouts"
    );
    assert_eq!(
        dense_jsonl, sparse_jsonl,
        "per-trial JSONL diverges across layouts"
    );

    let (threaded_json, threaded_jsonl) = render(&specs, BufferChoice::Sparse, &threaded);
    assert_eq!(
        dense_json, threaded_json,
        "JSON reports diverge across thread counts"
    );
    assert_eq!(
        dense_jsonl, threaded_jsonl,
        "per-trial JSONL diverges across thread counts"
    );
}

/// A small cross-section of the registry for the traced single-run check:
/// one windowed, one async, one partial-synchrony, one committee scenario.
fn cross_section() -> Vec<ScenarioSpec> {
    let picks = ["e1/", "e6/", "psync/", "e7/"];
    let mut section = Vec::new();
    for prefix in picks {
        let spec = scenario_registry(Scale::Quick)
            .into_iter()
            .find(|spec| spec.id().starts_with(prefix))
            .unwrap_or_else(|| panic!("no scenario with prefix {prefix}"));
        section.push(spec);
    }
    section
}

#[test]
fn traced_single_runs_are_structurally_identical_across_layouts() {
    for spec in cross_section() {
        for seed in [spec.base_seed, spec.base_seed + 1] {
            let mut dense = spec.clone();
            dense.buffer = BufferChoice::Dense;
            let mut sparse = spec.clone();
            sparse.buffer = BufferChoice::Sparse;
            let dense_outcome = dense.run_single(seed).expect("dense run");
            let sparse_outcome = sparse.run_single(seed).expect("sparse run");
            // Full structural equality: decisions, metrics, AND the bounded
            // event trace — delivery order must match event for event.
            assert_eq!(
                dense_outcome,
                sparse_outcome,
                "traced outcome diverges for {} seed {seed}",
                spec.id()
            );
        }
    }
}

#[test]
fn untraced_campaign_records_match_the_fully_traced_run() {
    for base in cross_section() {
        for choice in [BufferChoice::Dense, BufferChoice::Sparse] {
            let mut spec = base.clone();
            spec.buffer = choice;
            spec.trials = 1;
            // The campaign path runs trace-free (NoTrace recorder); the
            // single-run path records a full trace. Gating must not change
            // what the execution does.
            let report = spec.run().expect("campaign run");
            let outcome = spec.run_single(spec.base_seed).expect("traced run");
            let aggregate = &report.aggregate;
            let cap = spec.limits.max_steps.max(spec.limits.max_windows);
            let expected_time = outcome.all_decided_at.unwrap_or(cap.min(outcome.duration));
            assert_eq!(
                aggregate.termination_rate == 1.0,
                outcome.all_correct_decided(),
                "termination mismatch for {} ({choice:?})",
                spec.id()
            );
            assert_eq!(
                aggregate.messages.mean,
                outcome.messages_sent as f64,
                "message count mismatch for {} ({choice:?})",
                spec.id()
            );
            assert_eq!(
                aggregate.resets.mean,
                outcome.resets_performed as f64,
                "reset count mismatch for {} ({choice:?})",
                spec.id()
            );
            if outcome.all_decided_at.is_some() {
                assert_eq!(
                    aggregate.decision_time.mean,
                    expected_time as f64,
                    "decision time mismatch for {} ({choice:?})",
                    spec.id()
                );
            }
        }
    }
}

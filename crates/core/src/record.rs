//! Structured per-trial results and the composable report-sink pipeline.
//!
//! A [`Campaign`](crate::Campaign) no longer collapses its trials straight
//! into one aggregate: every trial produces a [`TrialRecord`] — seed, outcome
//! flags and the full [`Metrics`] of the run — and records stream, in trial
//! order, into any number of [`ReportSink`]s. Sinks are where presentation
//! and aggregation happen:
//!
//! * [`TableSink`] reproduces today's plain-text aggregate table (one row per
//!   scenario, the `scenarios` binary's output),
//! * [`JsonlSink`] writes one JSON object per trial (machine-readable stream),
//! * [`CsvSink`] writes one summary row per scenario,
//! * [`JsonReportSink`] collects full [`ScenarioReport`]s as a JSON document
//!   suitable for committing as a `BENCH_*.json` trajectory point.
//!
//! Record streams are **bit-identical across thread counts** (the campaign
//! fans trials out but always hands them to sinks in trial order), so every
//! sink output is deterministic for a given spec and seed — a property pinned
//! by the workspace tests.

use agreement_analysis::JsonValue;
use agreement_model::{Bit, InputAssignment};
use agreement_sim::{Metrics, RunOutcome};

use crate::report::{fmt_f64, fmt_rate, Table};
use crate::scenario::ScenarioReport;

/// Identity of the scenario whose trial records are being streamed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioMeta {
    /// The scenario's stable id (`[tag/]protocol/adversary/inputs/n<n>t<t>`).
    pub id: String,
    /// Execution model label (`windowed` / `async`).
    pub model: String,
    /// Number of processors.
    pub n: usize,
    /// Fault budget.
    pub t: usize,
    /// Number of trials.
    pub trials: u64,
    /// Base seed; trial `i` used `base_seed + i`.
    pub base_seed: u64,
    /// The scheduler's time cap (windows or steps, per the model): undecided
    /// trials contribute this value to decision-time aggregation.
    pub time_cap: u64,
}

/// The structured result of one seeded trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialRecord {
    /// Trial index within the plan (`0..trials`).
    pub trial: u64,
    /// The seed this trial ran with.
    pub seed: u64,
    /// Agreement held (no two processors decided differently).
    pub agreement: bool,
    /// Validity held (every decided value was some processor's input).
    pub validity: bool,
    /// Every correct processor decided within the limit.
    pub terminated: bool,
    /// Number of recorded violations.
    pub violations: u64,
    /// The adversary halted the execution before the limit.
    pub halted: bool,
    /// The commonly decided value, when agreement held and someone decided.
    pub decided: Option<Bit>,
    /// Time of the first decision, if any.
    pub first_decision_at: Option<u64>,
    /// Time at which the last correct processor decided, if all did.
    pub all_decided_at: Option<u64>,
    /// Windows/steps elapsed.
    pub duration: u64,
    /// The scheduler's running-time chain metric.
    pub longest_chain: u64,
    /// Structured counters of the run.
    pub metrics: Metrics,
}

impl TrialRecord {
    /// Distills a [`RunOutcome`] (plus the inputs needed for the validity
    /// check) into its record. The heavyweight trace is dropped here, which
    /// is what lets campaigns keep thousands of trials in flight.
    pub fn from_outcome(
        trial: u64,
        seed: u64,
        outcome: &RunOutcome,
        inputs: &InputAssignment,
    ) -> Self {
        TrialRecord {
            trial,
            seed,
            agreement: outcome.agreement_holds(),
            validity: outcome.validity_holds(inputs),
            terminated: outcome.all_correct_decided(),
            violations: outcome.violations.len() as u64,
            halted: outcome.halted_by_adversary,
            decided: outcome.decided_value(),
            first_decision_at: outcome.first_decision_at,
            all_decided_at: outcome.all_decided_at,
            duration: outcome.duration,
            longest_chain: outcome.longest_chain,
            metrics: outcome.metrics,
        }
    }

    /// The record as a JSON object (field order is stable).
    pub fn to_json(&self) -> JsonValue {
        let mut metrics = JsonValue::object();
        metrics
            .push("messages_sent", self.metrics.messages_sent)
            .push("messages_delivered", self.metrics.messages_delivered)
            .push("messages_dropped", self.metrics.messages_dropped)
            .push("rounds", self.metrics.rounds)
            .push("windows", self.metrics.windows)
            .push("steps", self.metrics.steps)
            .push("resets_consumed", self.metrics.resets_consumed)
            .push("crashes", self.metrics.crashes)
            .push("coin_flips", self.metrics.coin_flips)
            .push("max_chain", self.metrics.max_chain);
        let mut record = JsonValue::object();
        record
            .push("trial", self.trial)
            .push("seed", self.seed)
            .push("agreement", self.agreement)
            .push("validity", self.validity)
            .push("terminated", self.terminated)
            .push("violations", self.violations)
            .push("halted", self.halted)
            .push("decided", self.decided.map(|bit| bit.as_index() as u64))
            .push("first_decision_at", self.first_decision_at)
            .push("all_decided_at", self.all_decided_at)
            .push("duration", self.duration)
            .push("longest_chain", self.longest_chain)
            .push("metrics", metrics);
        record
    }

    /// Rebuilds a record from the JSON shape [`TrialRecord::to_json`] emits.
    ///
    /// # Errors
    ///
    /// Returns the first missing or mistyped field.
    pub fn from_json(value: &JsonValue) -> Result<Self, String> {
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| format!("missing field '{name}'"))
        };
        let int = |name: &str| {
            field(name)?
                .as_u64()
                .ok_or_else(|| format!("field '{name}' must be an integer"))
        };
        let boolean = |name: &str| {
            field(name)?
                .as_bool()
                .ok_or_else(|| format!("field '{name}' must be a bool"))
        };
        let optional = |name: &str| -> Result<Option<u64>, String> {
            let v = field(name)?;
            if v.is_null() {
                Ok(None)
            } else {
                v.as_u64()
                    .map(Some)
                    .ok_or_else(|| format!("field '{name}' must be an integer or null"))
            }
        };
        let metrics_value = field("metrics")?;
        let metric = |name: &str| {
            metrics_value
                .get(name)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("missing metric '{name}'"))
        };
        Ok(TrialRecord {
            trial: int("trial")?,
            seed: int("seed")?,
            agreement: boolean("agreement")?,
            validity: boolean("validity")?,
            terminated: boolean("terminated")?,
            violations: int("violations")?,
            halted: boolean("halted")?,
            decided: match optional("decided")? {
                None => None,
                Some(0) => Some(Bit::Zero),
                Some(1) => Some(Bit::One),
                Some(other) => {
                    return Err(format!("field 'decided' must be 0, 1 or null, got {other}"))
                }
            },
            first_decision_at: optional("first_decision_at")?,
            all_decided_at: optional("all_decided_at")?,
            duration: int("duration")?,
            longest_chain: int("longest_chain")?,
            metrics: Metrics {
                messages_sent: metric("messages_sent")?,
                messages_delivered: metric("messages_delivered")?,
                messages_dropped: metric("messages_dropped")?,
                rounds: metric("rounds")?,
                windows: metric("windows")?,
                steps: metric("steps")?,
                resets_consumed: metric("resets_consumed")?,
                crashes: metric("crashes")?,
                coin_flips: metric("coin_flips")?,
                max_chain: metric("max_chain")?,
            },
        })
    }
}

/// Receives one scenario's trial records in trial order.
///
/// Sinks compose: the runner calls every sink for every event, so table
/// output, JSONL streams and aggregation can all be produced from one pass.
pub trait ReportSink {
    /// A new scenario's trials are about to stream.
    fn begin_scenario(&mut self, meta: &ScenarioMeta) {
        let _ = meta;
    }

    /// One trial's record (called in trial order).
    fn record_trial(&mut self, meta: &ScenarioMeta, record: &TrialRecord) {
        let _ = (meta, record);
    }

    /// The scenario's trials are complete; `report` holds the aggregate and
    /// distributions computed from the full record stream.
    fn end_scenario(&mut self, meta: &ScenarioMeta, report: &ScenarioReport) {
        let _ = (meta, report);
    }
}

/// Streams `records` (already in trial order) through `sinks` and returns the
/// finished [`ScenarioReport`].
pub fn stream_records(
    meta: &ScenarioMeta,
    records: &[TrialRecord],
    sinks: &mut [&mut dyn ReportSink],
) -> ScenarioReport {
    for sink in sinks.iter_mut() {
        sink.begin_scenario(meta);
    }
    for record in records {
        for sink in sinks.iter_mut() {
            sink.record_trial(meta, record);
        }
    }
    let report = ScenarioReport::from_records(meta.clone(), records);
    for sink in sinks.iter_mut() {
        sink.end_scenario(meta, &report);
    }
    report
}

/// Renders one aggregate row per scenario into a plain-text [`Table`] — the
/// `scenarios` binary's historical output, now just another sink.
#[derive(Debug)]
pub struct TableSink {
    table: Table,
}

impl TableSink {
    /// The column headers of the scenario table.
    pub const COLUMNS: [&'static str; 8] = [
        "scenario",
        "model",
        "trials",
        "termination",
        "agreement",
        "validity",
        "mean time",
        "mean chain",
    ];

    /// Creates the sink with the table's title and caption.
    pub fn new(title: impl Into<String>, caption: impl Into<String>) -> Self {
        TableSink {
            table: Table::new(title, caption, Self::COLUMNS.to_vec()),
        }
    }

    /// Pushes a non-result row (e.g. an infeasible scenario marker).
    pub fn push_failure(&mut self, id: String, reason: String) {
        self.table.push_row(vec![
            id,
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            reason,
            "-".to_string(),
        ]);
    }

    /// The finished table.
    pub fn into_table(self) -> Table {
        self.table
    }
}

impl ReportSink for TableSink {
    fn end_scenario(&mut self, meta: &ScenarioMeta, report: &ScenarioReport) {
        let aggregate = &report.aggregate;
        self.table.push_row(vec![
            meta.id.clone(),
            meta.model.clone(),
            aggregate.trials.to_string(),
            fmt_rate(aggregate.termination_rate),
            fmt_rate(aggregate.agreement_rate),
            fmt_rate(aggregate.validity_rate),
            fmt_f64(aggregate.decision_time.mean),
            fmt_f64(aggregate.chain_length.mean),
        ]);
    }
}

/// Writes one JSON object per trial, newline-delimited (JSONL), each tagged
/// with its scenario id.
#[derive(Debug, Default)]
pub struct JsonlSink {
    out: String,
}

impl JsonlSink {
    /// An empty sink.
    pub fn new() -> Self {
        JsonlSink::default()
    }

    /// The JSONL document accumulated so far.
    pub fn as_str(&self) -> &str {
        &self.out
    }

    /// Consumes the sink, returning the JSONL document.
    pub fn into_string(self) -> String {
        self.out
    }
}

impl ReportSink for JsonlSink {
    fn record_trial(&mut self, meta: &ScenarioMeta, record: &TrialRecord) {
        let mut line = JsonValue::object();
        line.push("scenario", meta.id.as_str());
        if let JsonValue::Object(pairs) = record.to_json() {
            if let JsonValue::Object(own) = &mut line {
                own.extend(pairs);
            }
        }
        self.out.push_str(&line.to_string());
        self.out.push('\n');
    }
}

/// Writes one comma-separated summary row per scenario (header included).
#[derive(Debug)]
pub struct CsvSink {
    out: String,
}

impl CsvSink {
    /// The header row.
    pub const HEADER: &'static str = "id,model,n,t,trials,base_seed,termination_rate,\
        agreement_rate,validity_rate,violation_rate,decision_time_mean,decision_time_p50,\
        decision_time_p90,decision_time_max,chain_mean,chain_max,messages_mean,resets_mean";

    /// A sink holding only the header row.
    pub fn new() -> Self {
        CsvSink {
            out: format!("{}\n", Self::HEADER),
        }
    }

    /// The CSV document accumulated so far.
    pub fn as_str(&self) -> &str {
        &self.out
    }

    /// Consumes the sink, returning the CSV document.
    pub fn into_string(self) -> String {
        self.out
    }
}

impl Default for CsvSink {
    fn default() -> Self {
        CsvSink::new()
    }
}

impl ReportSink for CsvSink {
    fn end_scenario(&mut self, meta: &ScenarioMeta, report: &ScenarioReport) {
        // Scenario ids contain no commas or quotes by construction, so no
        // field quoting is needed; floats use shortest-round-trip format.
        let aggregate = &report.aggregate;
        let row = [
            meta.id.clone(),
            meta.model.clone(),
            meta.n.to_string(),
            meta.t.to_string(),
            meta.trials.to_string(),
            meta.base_seed.to_string(),
            aggregate.termination_rate.to_string(),
            aggregate.agreement_rate.to_string(),
            aggregate.validity_rate.to_string(),
            aggregate.violation_rate.to_string(),
            aggregate.decision_time.mean.to_string(),
            report.decision_times.percentile(50.0).to_string(),
            report.decision_times.percentile(90.0).to_string(),
            aggregate.decision_time.max.to_string(),
            aggregate.chain_length.mean.to_string(),
            aggregate.chain_length.max.to_string(),
            aggregate.messages.mean.to_string(),
            aggregate.resets.mean.to_string(),
        ];
        self.out.push_str(&row.join(","));
        self.out.push('\n');
    }
}

/// Collects every scenario's [`ScenarioReport`] as one JSON document:
/// `{"scale": ..., "scenarios": [...]}` (the `scale` header only when set).
/// This is the `--json` output of the binaries and the shape committed as
/// `BENCH_*.json` trajectory points — defined here, in one place, so the
/// emitting binaries and the `--check` validator cannot drift apart.
#[derive(Debug, Default)]
pub struct JsonReportSink {
    scale: Option<String>,
    reports: Vec<JsonValue>,
}

impl JsonReportSink {
    /// An empty sink with no document header.
    pub fn new() -> Self {
        JsonReportSink::default()
    }

    /// An empty sink whose document leads with a `"scale"` header (the run
    /// parameters deliberately exclude timestamps: emitted documents must be
    /// reproducible).
    pub fn with_scale(scale: impl Into<String>) -> Self {
        JsonReportSink {
            scale: Some(scale.into()),
            reports: Vec::new(),
        }
    }

    /// The collected document.
    pub fn into_json(self) -> JsonValue {
        let mut doc = JsonValue::object();
        if let Some(scale) = self.scale {
            doc.push("scale", scale);
        }
        doc.push("scenarios", JsonValue::Array(self.reports));
        doc
    }
}

impl ReportSink for JsonReportSink {
    fn end_scenario(&mut self, _meta: &ScenarioMeta, report: &ScenarioReport) {
        self.reports.push(report.to_json());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agreement_analysis::Histogram;
    use agreement_sim::Metrics;

    fn record(trial: u64) -> TrialRecord {
        TrialRecord {
            trial,
            seed: 0x5EED + trial,
            agreement: true,
            validity: true,
            terminated: trial.is_multiple_of(2),
            violations: 0,
            halted: false,
            decided: if trial.is_multiple_of(2) {
                Some(Bit::One)
            } else {
                None
            },
            first_decision_at: Some(trial + 1),
            all_decided_at: if trial.is_multiple_of(2) {
                Some(trial + 3)
            } else {
                None
            },
            duration: trial + 3,
            longest_chain: 2 * trial,
            metrics: Metrics {
                messages_sent: 10 * trial,
                messages_delivered: 9 * trial,
                messages_dropped: trial,
                rounds: 2,
                windows: trial + 3,
                steps: 0,
                resets_consumed: trial,
                crashes: 0,
                coin_flips: 5 * trial,
                max_chain: 2 * trial,
            },
        }
    }

    fn meta(trials: u64) -> ScenarioMeta {
        ScenarioMeta {
            id: "test/proto/adv/split/n7t1".to_string(),
            model: "windowed".to_string(),
            n: 7,
            t: 1,
            trials,
            base_seed: 0x5EED,
            time_cap: 100,
        }
    }

    #[test]
    fn trial_record_json_round_trips() {
        for trial in 0..4 {
            let original = record(trial);
            let json = original.to_json();
            let text = json.to_string();
            let parsed = JsonValue::parse(&text).expect("record emits valid JSON");
            let rebuilt = TrialRecord::from_json(&parsed).expect("record parses back");
            assert_eq!(rebuilt, original, "round trip changed the record: {text}");
        }
    }

    #[test]
    fn trial_record_from_json_reports_missing_fields() {
        let mut json = record(0).to_json();
        if let JsonValue::Object(pairs) = &mut json {
            pairs.retain(|(k, _)| k != "seed");
        }
        let err = TrialRecord::from_json(&json).unwrap_err();
        assert!(err.contains("seed"), "unexpected error: {err}");
    }

    #[test]
    fn jsonl_sink_emits_one_parseable_line_per_trial() {
        let meta = meta(3);
        let records: Vec<TrialRecord> = (0..3).map(record).collect();
        let mut sink = JsonlSink::new();
        stream_records(&meta, &records, &mut [&mut sink]);
        let lines: Vec<&str> = sink.as_str().lines().collect();
        assert_eq!(lines.len(), 3);
        for (i, line) in lines.iter().enumerate() {
            let value = JsonValue::parse(line).expect("every JSONL line parses");
            assert_eq!(
                value.get("scenario").and_then(JsonValue::as_str),
                Some(meta.id.as_str())
            );
            assert_eq!(
                value.get("trial").and_then(JsonValue::as_u64),
                Some(i as u64)
            );
            let rebuilt = TrialRecord::from_json(&value).expect("line carries a full record");
            assert_eq!(rebuilt, records[i]);
        }
    }

    #[test]
    fn table_sink_row_matches_the_aggregate() {
        let meta = meta(4);
        let records: Vec<TrialRecord> = (0..4).map(record).collect();
        let mut sink = TableSink::new("t", "c");
        let report = stream_records(&meta, &records, &mut [&mut sink]);
        let table = sink.into_table();
        assert_eq!(table.rows().len(), 1);
        assert_eq!(table.cell(0, 0), Some(meta.id.as_str()));
        assert_eq!(table.cell(0, 2), Some("4"));
        assert_eq!(
            table.cell(0, 3),
            Some(fmt_rate(report.aggregate.termination_rate).as_str())
        );
        assert_eq!(
            table.cell(0, 6),
            Some(fmt_f64(report.aggregate.decision_time.mean).as_str())
        );
    }

    #[test]
    fn csv_sink_emits_header_and_scenario_rows() {
        let meta = meta(2);
        let records: Vec<TrialRecord> = (0..2).map(record).collect();
        let mut sink = CsvSink::new();
        stream_records(&meta, &records, &mut [&mut sink]);
        let lines: Vec<&str> = sink.as_str().lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("id,model,n,t,trials"));
        let fields: Vec<&str> = lines[1].split(',').collect();
        assert_eq!(fields.len(), CsvSink::HEADER.split(',').count());
        assert_eq!(fields[0], meta.id);
        assert_eq!(fields[4], "2");
        // Every numeric field parses back as f64.
        for field in &fields[6..] {
            field.parse::<f64>().expect("numeric CSV field");
        }
    }

    #[test]
    fn multiple_sinks_compose_in_one_pass() {
        let meta = meta(3);
        let records: Vec<TrialRecord> = (0..3).map(record).collect();
        let mut table = TableSink::new("t", "c");
        let mut jsonl = JsonlSink::new();
        let mut csv = CsvSink::new();
        let mut json = JsonReportSink::new();
        stream_records(
            &meta,
            &records,
            &mut [&mut table, &mut jsonl, &mut csv, &mut json],
        );
        assert_eq!(table.into_table().rows().len(), 1);
        assert_eq!(jsonl.as_str().lines().count(), 3);
        assert_eq!(csv.as_str().lines().count(), 2);
        let doc = json.into_json();
        assert_eq!(
            doc.get("scenarios")
                .and_then(JsonValue::as_array)
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn report_percentiles_come_from_the_record_stream() {
        let meta = meta(5);
        let records: Vec<TrialRecord> = (0..5).map(record).collect();
        let report = stream_records(&meta, &records, &mut []);
        let expected: Vec<f64> = records
            .iter()
            .map(|r| r.all_decided_at.unwrap_or(meta.time_cap) as f64)
            .collect();
        assert_eq!(report.decision_times, Histogram::from_samples(&expected));
    }
}

//! High-level experiment harness for the reproduction of Lewko & Lewko,
//! *"On the Complexity of Asynchronous Agreement Against Powerful
//! Adversaries"* (PODC 2013).
//!
//! This crate ties the workspace together:
//!
//! * [`TrialPlan`], [`Campaign`], [`run_window_trials`], [`run_async_trials`]
//!   and [`Aggregate`] — run a protocol against an adversary over many seeded
//!   trials, fanned out across all cores with deterministic (thread-count
//!   independent) aggregation.
//! * [`experiments`] — the per-claim experiments E1–E9 indexed in DESIGN.md
//!   and recorded in EXPERIMENTS.md, each returning a [`Table`].
//! * [`Table`] — plain-text result tables (what the `agreement-bench`
//!   binaries print).
//!
//! # Example
//!
//! ```no_run
//! use agreement_core::experiments::{exp3_talagrand, Scale};
//!
//! // Regenerate the Talagrand-inequality table at reduced scale.
//! let table = exp3_talagrand(Scale::Quick);
//! println!("{table}");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
mod report;
mod runner;

pub use report::{fmt_f64, fmt_rate, Table};
pub use runner::{run_async_trials, run_window_trials, Aggregate, Campaign, TrialPlan};

//! High-level experiment harness for the reproduction of Lewko & Lewko,
//! *"On the Complexity of Asynchronous Agreement Against Powerful
//! Adversaries"* (PODC 2013).
//!
//! This crate ties the workspace together:
//!
//! * [`TrialPlan`], [`Campaign`], [`run_window_trials`], [`run_async_trials`]
//!   and [`Aggregate`] — run a protocol against an adversary over many seeded
//!   trials, fanned out across all cores with deterministic (thread-count
//!   independent) results.
//! * [`record`] — the structured results pipeline: every trial yields a
//!   [`TrialRecord`] (seed, outcome flags, full
//!   [`Metrics`](agreement_sim::Metrics)), streamed in trial order into
//!   composable [`ReportSink`]s ([`TableSink`], [`JsonlSink`], [`CsvSink`],
//!   [`JsonReportSink`]); [`Aggregate`] is a derived view kept for the
//!   experiment tables.
//! * [`scenario`] — the data-driven scenario layer: [`ScenarioSpec`] describes
//!   a protocol × adversary × inputs × size combination as plain data,
//!   [`ScenarioMatrix`] expands cross-products of them,
//!   [`scenario_registry`] lists every registered combination (the `scenarios`
//!   binary runs them from the command line), and running a spec returns a
//!   [`ScenarioReport`] (aggregate plus distributions, JSON-serializable).
//! * [`experiments`] — the per-claim experiments E1–E9 indexed in DESIGN.md
//!   and recorded in EXPERIMENTS.md, each a declarative [`ScenarioSpec`] table
//!   returning a [`Table`].
//! * [`Table`] — plain-text result tables (what the `agreement-bench`
//!   binaries print).
//!
//! # Example
//!
//! ```no_run
//! use agreement_core::experiments::{exp3_talagrand, Scale};
//!
//! // Regenerate the Talagrand-inequality table at reduced scale.
//! let table = exp3_talagrand(Scale::Quick);
//! println!("{table}");
//! ```
//!
//! Run an arbitrary combination nothing in E1–E9 exercises:
//!
//! ```no_run
//! use agreement_core::{InputPattern, ProtocolSpec, ScenarioSpec};
//! use agreement_model::Bit;
//!
//! let spec = ScenarioSpec::new(
//!     ProtocolSpec::Bracha,
//!     "equivocating-byzantine",
//!     InputPattern::Unanimous(Bit::One),
//!     7,
//!     2,
//! );
//! let report = spec.run().expect("spec resolves");
//! println!(
//!     "{}: agreement {}, p90 decision time {}",
//!     spec.id(),
//!     report.aggregate.agreement_rate,
//!     report.decision_times.percentile(90.0),
//! );
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod block;
pub mod experiments;
pub mod orchestrate;
pub mod record;
mod report;
mod runner;
pub mod scenario;

pub use record::{
    stream_records, CsvSink, JsonReportSink, JsonlSink, ReportSink, ScenarioMeta, TableSink,
    TrialRecord,
};
pub use report::{fmt_f64, fmt_rate, Table};
pub use runner::{run_async_trials, run_window_trials, Aggregate, Campaign, TrialPlan};
pub use scenario::{
    extra_scenarios, partial_sync_scenarios, scenario_registry, subquad_scenarios, InputPattern,
    ProtocolInstance, ProtocolSpec, ScenarioError, ScenarioMatrix, ScenarioReport, ScenarioSpec,
};

//! Multi-trial campaign runner: protocol × adversary × configuration,
//! repeated over seeds, distilled into per-trial records.
//!
//! A [`TrialPlan`] describes *what* to run; a [`Campaign`] decides *how* —
//! serially or fanned out across worker threads, one trial per seed. The
//! environment this workspace builds in is offline, so the fan-out is a
//! self-contained `std::thread` work-stealing pool rather than rayon; the
//! scheduling discipline is the same (a shared atomic trial counter), and
//! results are written into per-trial slots so the record stream is always
//! in trial order. That makes every record stream — and everything derived
//! from one, aggregates included — **bit-identical** across thread counts,
//! including the serial path: parallelism changes only wall-clock time,
//! never results.
//!
//! Each worker owns a reusable
//! [`TrialWorkspace`](agreement_sim::TrialWorkspace): trials run with trace
//! emission compiled out (`NoTrace` — a campaign drops every trace unread)
//! inside an execution core whose allocations persist from seed to seed. The
//! trial's [`RunOutcome`] is distilled into a
//! [`TrialRecord`](crate::TrialRecord) *inside* the worker; aggregation into
//! an [`Aggregate`] is one consumer of the record stream
//! ([`Aggregate::from_records`]), the report sinks of [`crate::record`] are
//! the others. The workspace path is bit-identical to running every trial on
//! a fresh, trace-keeping engine — pinned by the equivalence tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use agreement_analysis::Summary;
use agreement_model::{InputAssignment, ProtocolBuilder, SystemConfig};
use agreement_sim::{
    AsyncAdversary, BufferChoice, BuiltAdversary, RunLimits, TrialWorkspace, WindowAdversary,
};

use crate::record::TrialRecord;

/// The static description of a batch of trials.
#[derive(Debug, Clone)]
pub struct TrialPlan {
    /// System configuration.
    pub cfg: SystemConfig,
    /// Input assignment used in every trial.
    pub inputs: InputAssignment,
    /// Engine limits per trial.
    pub limits: RunLimits,
    /// Number of trials.
    pub trials: u64,
    /// Base seed; trial `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Message-buffer channel layout every trial runs under.
    /// [`BufferChoice::Auto`] (the default) picks dense channels for small
    /// systems and the lazily materialized sparse fabric for large ones.
    pub buffer: BufferChoice,
}

impl TrialPlan {
    /// A plan with the given configuration and inputs, default limits and 20
    /// trials.
    pub fn new(cfg: SystemConfig, inputs: InputAssignment) -> Self {
        TrialPlan {
            cfg,
            inputs,
            limits: RunLimits::standard(),
            trials: 20,
            base_seed: 0x5EED,
            buffer: BufferChoice::Auto,
        }
    }

    /// Sets the number of trials.
    pub fn trials(mut self, trials: u64) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the per-trial limits.
    pub fn limits(mut self, limits: RunLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Sets the base seed.
    pub fn base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Sets the message-buffer channel layout.
    pub fn buffer(mut self, buffer: BufferChoice) -> Self {
        self.buffer = buffer;
        self
    }
}

/// How a campaign schedules its trials across worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Campaign {
    /// Worker count; `0` means one worker per available core.
    threads: usize,
}

impl Default for Campaign {
    /// The default campaign uses every available core.
    fn default() -> Self {
        Campaign::parallel()
    }
}

impl Campaign {
    /// Runs trials one after another on the calling thread.
    pub const fn serial() -> Self {
        Campaign { threads: 1 }
    }

    /// Fans trials out over one worker per available core.
    pub const fn parallel() -> Self {
        Campaign { threads: 0 }
    }

    /// Fans trials out over exactly `threads` workers (`0` = per-core).
    pub const fn with_threads(threads: usize) -> Self {
        Campaign { threads }
    }

    fn worker_count(&self, trials: u64) -> usize {
        let auto = std::thread::available_parallelism().map_or(1, usize::from);
        let requested = if self.threads == 0 {
            auto
        } else {
            self.threads
        };
        requested.clamp(1, trials.max(1) as usize)
    }

    /// Executes `trials` seeded tasks and returns their results **in trial
    /// order**, regardless of which worker ran which trial.
    ///
    /// Every worker (the calling thread included, on the serial path) owns
    /// one [`TrialWorkspace`] for its whole run: `run_one` executes each
    /// claimed trial inside it, so core allocations are reused from seed to
    /// seed instead of rebuilt per trial. Which worker ran a trial never
    /// affects its result (executions are seed-deterministic and the
    /// workspace leaks no state between trials), so the stream stays
    /// bit-identical across thread counts.
    fn run_trials<T: Send>(
        &self,
        trials: u64,
        run_one: impl Fn(&mut TrialWorkspace, u64) -> T + Sync,
    ) -> Vec<T> {
        self.run_trials_range(0, trials, run_one)
    }

    /// Executes the trials `lo..hi` and returns their results in trial
    /// order. The contiguous-range form of [`Campaign::run_trials`]: trial
    /// `t` runs identically whether it is reached as part of `0..trials` or
    /// as part of a shard `lo..hi` (its seed and workspace semantics depend
    /// only on `t`), which is what lets a multi-process orchestrator split a
    /// campaign into ranges and merge the streams bit-identically.
    fn run_trials_range<T: Send>(
        &self,
        lo: u64,
        hi: u64,
        run_one: impl Fn(&mut TrialWorkspace, u64) -> T + Sync,
    ) -> Vec<T> {
        let count = hi.saturating_sub(lo);
        let workers = self.worker_count(count);
        if workers <= 1 {
            let mut workspace = TrialWorkspace::new();
            return (lo..hi).map(|t| run_one(&mut workspace, t)).collect();
        }
        let next = AtomicU64::new(lo);
        let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut workspace = TrialWorkspace::new();
                    loop {
                        let trial = next.fetch_add(1, Ordering::Relaxed);
                        if trial >= hi {
                            break;
                        }
                        let outcome = run_one(&mut workspace, trial);
                        *slots[(trial - lo) as usize]
                            .lock()
                            .expect("trial slot poisoned") = Some(outcome);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("trial slot poisoned")
                    .expect("every trial index below the counter was executed")
            })
            .collect()
    }

    /// Runs `plan.trials` executions of *any* execution model and returns one
    /// [`TrialRecord`] per trial, **in trial order** regardless of thread
    /// count. `make_adversary` receives each trial's seed and returns a
    /// model-erased [`BuiltAdversary`] (typically from an
    /// `AdversaryFactory`); the campaign never inspects the model — this is
    /// the open-axis entry point the scenario layer uses.
    pub fn run_records<F>(
        &self,
        plan: &TrialPlan,
        builder: &dyn ProtocolBuilder,
        make_adversary: F,
    ) -> Vec<TrialRecord>
    where
        F: Fn(u64) -> BuiltAdversary + Sync,
    {
        self.run_records_range(plan, builder, make_adversary, 0, plan.trials)
    }

    /// Runs only the trials `lo..hi` of `plan` and returns their records in
    /// trial order — the shard a multi-process orchestrator hands one worker.
    /// Record `t` of a range run is bit-identical to record `t` of a full
    /// [`Campaign::run_records`] run (trial seeds are `base_seed + t`
    /// regardless of the range), so concatenating the ranges `0..a`, `a..b`,
    /// …, `z..trials` reproduces the single-process stream exactly.
    pub fn run_records_range<F>(
        &self,
        plan: &TrialPlan,
        builder: &dyn ProtocolBuilder,
        make_adversary: F,
        lo: u64,
        hi: u64,
    ) -> Vec<TrialRecord>
    where
        F: Fn(u64) -> BuiltAdversary + Sync,
    {
        self.run_trials_range(lo, hi.min(plan.trials), |workspace, trial| {
            let seed = plan.base_seed + trial;
            workspace.set_buffer_choice(plan.buffer);
            let mut adversary = make_adversary(seed);
            let outcome = workspace.run_built(
                plan.cfg,
                &plan.inputs,
                builder,
                &mut adversary,
                seed,
                plan.limits,
            );
            TrialRecord::from_outcome(trial, seed, &outcome, &plan.inputs)
        })
    }

    /// Runs `plan.trials` window-model executions and returns one
    /// [`TrialRecord`] per trial, **in trial order** regardless of thread
    /// count. `make_adversary` receives each trial's seed.
    pub fn run_windowed_records<A, F>(
        &self,
        plan: &TrialPlan,
        builder: &dyn ProtocolBuilder,
        make_adversary: F,
    ) -> Vec<TrialRecord>
    where
        A: WindowAdversary,
        F: Fn(u64) -> A + Sync,
    {
        self.run_trials(plan.trials, |workspace, trial| {
            let seed = plan.base_seed + trial;
            workspace.set_buffer_choice(plan.buffer);
            let mut adversary = make_adversary(seed);
            let outcome = workspace.run_windowed(
                plan.cfg,
                &plan.inputs,
                builder,
                &mut adversary,
                seed,
                plan.limits,
            );
            TrialRecord::from_outcome(trial, seed, &outcome, &plan.inputs)
        })
    }

    /// Runs `plan.trials` asynchronous-model executions and returns one
    /// [`TrialRecord`] per trial, **in trial order** regardless of thread
    /// count. `make_adversary` receives each trial's seed.
    pub fn run_async_records<A, F>(
        &self,
        plan: &TrialPlan,
        builder: &dyn ProtocolBuilder,
        make_adversary: F,
    ) -> Vec<TrialRecord>
    where
        A: AsyncAdversary,
        F: Fn(u64) -> A + Sync,
    {
        self.run_trials(plan.trials, |workspace, trial| {
            let seed = plan.base_seed + trial;
            workspace.set_buffer_choice(plan.buffer);
            let mut adversary = make_adversary(seed);
            let outcome = workspace.run_async(
                plan.cfg,
                &plan.inputs,
                builder,
                &mut adversary,
                seed,
                plan.limits,
            );
            TrialRecord::from_outcome(trial, seed, &outcome, &plan.inputs)
        })
    }

    /// Runs `plan.trials` window-model executions, constructing a fresh
    /// adversary per trial with `make_adversary`, and aggregates the records
    /// deterministically.
    pub fn run_windowed<A, F>(
        &self,
        plan: &TrialPlan,
        builder: &dyn ProtocolBuilder,
        make_adversary: F,
    ) -> Aggregate
    where
        A: WindowAdversary,
        F: Fn() -> A + Sync,
    {
        self.run_windowed_seeded(plan, builder, |_seed| make_adversary())
    }

    /// Like [`Campaign::run_windowed`], but hands each trial's seed to
    /// `make_adversary` so seeded window adversaries (e.g. factory-built ones)
    /// can derive private randomness from it.
    pub fn run_windowed_seeded<A, F>(
        &self,
        plan: &TrialPlan,
        builder: &dyn ProtocolBuilder,
        make_adversary: F,
    ) -> Aggregate
    where
        A: WindowAdversary,
        F: Fn(u64) -> A + Sync,
    {
        let records = self.run_windowed_records(plan, builder, make_adversary);
        Aggregate::from_records(&records, plan.limits.max_windows)
    }

    /// Runs `plan.trials` asynchronous-model executions, constructing a fresh
    /// adversary per trial with `make_adversary` (which receives the trial's
    /// seed), and aggregates the records deterministically.
    pub fn run_async<A, F>(
        &self,
        plan: &TrialPlan,
        builder: &dyn ProtocolBuilder,
        make_adversary: F,
    ) -> Aggregate
    where
        A: AsyncAdversary,
        F: Fn(u64) -> A + Sync,
    {
        let records = self.run_async_records(plan, builder, make_adversary);
        Aggregate::from_records(&records, plan.limits.max_steps)
    }
}

/// Aggregated results over a batch of trials.
///
/// Since the structured-record redesign this is a *derived view*: it is
/// computed from a [`TrialRecord`] stream by [`Aggregate::from_records`]
/// (today also available packaged as a
/// [`ScenarioReport`](crate::ScenarioReport) with distributions), and kept
/// in this exact shape so the E1–E9 tables stay byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    /// Number of trials run.
    pub trials: u64,
    /// Fraction of trials in which agreement held.
    pub agreement_rate: f64,
    /// Fraction of trials in which validity held.
    pub validity_rate: f64,
    /// Fraction of trials in which every correct processor decided within the limit.
    pub termination_rate: f64,
    /// Fraction of trials with at least one recorded violation.
    pub violation_rate: f64,
    /// Summary of the window/step count at which the last correct processor
    /// decided (undecided trials contribute the limit).
    pub decision_time: Summary,
    /// Summary of the longest message chain before the first decision
    /// (asynchronous runs only; zero for window runs).
    pub chain_length: Summary,
    /// Summary of the number of resetting steps per trial.
    pub resets: Summary,
    /// Summary of messages sent per trial.
    pub messages: Summary,
}

impl Aggregate {
    /// Folds a record stream (in trial order) into the aggregate. `cap` is
    /// the scheduler's time limit: undecided trials contribute it to the
    /// decision-time summary, exactly as the pre-record implementation did.
    pub fn from_records(records: &[TrialRecord], cap: u64) -> Aggregate {
        let trials = records.len() as u64;
        let rate = |pred: &dyn Fn(&TrialRecord) -> bool| {
            if records.is_empty() {
                0.0
            } else {
                records.iter().filter(|r| pred(r)).count() as f64 / records.len() as f64
            }
        };
        Aggregate {
            trials,
            agreement_rate: rate(&|r| r.agreement),
            validity_rate: rate(&|r| r.validity),
            termination_rate: rate(&|r| r.terminated),
            violation_rate: rate(&|r| r.violations > 0),
            decision_time: Summary::from_samples(
                &records
                    .iter()
                    .map(|r| r.all_decided_at.unwrap_or(cap) as f64)
                    .collect::<Vec<_>>(),
            ),
            chain_length: Summary::from_samples(
                &records
                    .iter()
                    .map(|r| r.longest_chain as f64)
                    .collect::<Vec<_>>(),
            ),
            resets: Summary::from_samples(
                &records
                    .iter()
                    .map(|r| r.metrics.resets_consumed as f64)
                    .collect::<Vec<_>>(),
            ),
            messages: Summary::from_samples(
                &records
                    .iter()
                    .map(|r| r.metrics.messages_sent as f64)
                    .collect::<Vec<_>>(),
            ),
        }
    }
}

/// Runs `plan.trials` window-model executions on all cores, constructing a
/// fresh adversary per trial with `make_adversary`.
pub fn run_window_trials<A, F>(
    plan: &TrialPlan,
    builder: &dyn ProtocolBuilder,
    make_adversary: F,
) -> Aggregate
where
    A: WindowAdversary,
    F: Fn() -> A + Sync,
{
    Campaign::default().run_windowed(plan, builder, make_adversary)
}

/// Runs `plan.trials` asynchronous-model executions on all cores,
/// constructing a fresh adversary per trial with `make_adversary`.
pub fn run_async_trials<A, F>(
    plan: &TrialPlan,
    builder: &dyn ProtocolBuilder,
    make_adversary: F,
) -> Aggregate
where
    A: AsyncAdversary,
    F: Fn(u64) -> A + Sync,
{
    Campaign::default().run_async(plan, builder, make_adversary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use agreement_adversary::SplitVoteAdversary;
    use agreement_model::Bit;
    use agreement_protocols::{BenOrBuilder, ResetTolerantBuilder};
    use agreement_sim::{FairAsyncAdversary, FullDeliveryAdversary};

    #[test]
    fn window_trials_aggregate_perfect_rates_for_unanimous_inputs() {
        let cfg = SystemConfig::with_sixth_resilience(7).unwrap();
        let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
        let plan = TrialPlan::new(cfg, InputAssignment::unanimous(7, Bit::One))
            .trials(5)
            .limits(RunLimits::small());
        let aggregate = run_window_trials(&plan, &builder, || FullDeliveryAdversary);
        assert_eq!(aggregate.trials, 5);
        assert_eq!(aggregate.agreement_rate, 1.0);
        assert_eq!(aggregate.validity_rate, 1.0);
        assert_eq!(aggregate.termination_rate, 1.0);
        assert_eq!(aggregate.violation_rate, 0.0);
        assert!(aggregate.decision_time.mean >= 1.0);
        assert!(aggregate.messages.mean > 0.0);
    }

    #[test]
    fn window_trials_with_split_vote_adversary_still_agree() {
        let cfg = SystemConfig::with_sixth_resilience(13).unwrap();
        let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
        let plan = TrialPlan::new(cfg, InputAssignment::evenly_split(13))
            .trials(3)
            .limits(RunLimits::windows(5_000));
        let aggregate = run_window_trials(&plan, &builder, SplitVoteAdversary::new);
        assert_eq!(aggregate.agreement_rate, 1.0);
        assert_eq!(aggregate.validity_rate, 1.0);
        assert!(aggregate.decision_time.mean > 1.0);
    }

    #[test]
    fn async_trials_aggregate_ben_or_under_fair_scheduling() {
        let cfg = SystemConfig::new(5, 1).unwrap();
        let plan = TrialPlan::new(cfg, InputAssignment::unanimous(5, Bit::Zero))
            .trials(4)
            .limits(RunLimits::small())
            .base_seed(99);
        let aggregate = run_async_trials(&plan, &BenOrBuilder::new(), |_seed| {
            FairAsyncAdversary::default()
        });
        assert_eq!(aggregate.trials, 4);
        assert_eq!(aggregate.termination_rate, 1.0);
        assert_eq!(aggregate.agreement_rate, 1.0);
        assert!(aggregate.chain_length.mean >= 1.0);
    }

    #[test]
    fn campaign_aggregates_are_identical_across_thread_counts() {
        let cfg = SystemConfig::with_sixth_resilience(7).unwrap();
        let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
        let plan = TrialPlan::new(cfg, InputAssignment::evenly_split(7))
            .trials(8)
            .limits(RunLimits::windows(2_000));
        let serial = Campaign::serial().run_windowed(&plan, &builder, SplitVoteAdversary::new);
        for threads in [2usize, 3, 8, 0] {
            let parallel = Campaign::with_threads(threads).run_windowed(
                &plan,
                &builder,
                SplitVoteAdversary::new,
            );
            assert_eq!(
                serial, parallel,
                "thread count {threads} changed the aggregate"
            );
        }

        let async_plan = TrialPlan::new(
            SystemConfig::new(5, 1).unwrap(),
            InputAssignment::evenly_split(5),
        )
        .trials(8)
        .limits(RunLimits::small());
        let serial = Campaign::serial().run_async(&async_plan, &BenOrBuilder::new(), |_| {
            FairAsyncAdversary::default()
        });
        let parallel = Campaign::parallel().run_async(&async_plan, &BenOrBuilder::new(), |_| {
            FairAsyncAdversary::default()
        });
        assert_eq!(serial, parallel);
    }

    #[test]
    fn trial_record_streams_are_bit_identical_across_thread_counts() {
        let cfg = SystemConfig::with_sixth_resilience(13).unwrap();
        let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
        let plan = TrialPlan::new(cfg, InputAssignment::evenly_split(13))
            .trials(9)
            .limits(RunLimits::windows(2_000));
        let serial =
            Campaign::serial().run_windowed_records(&plan, &builder, |_| SplitVoteAdversary::new());
        assert_eq!(serial.len(), 9);
        for (i, record) in serial.iter().enumerate() {
            assert_eq!(record.trial, i as u64, "records arrive in trial order");
            assert_eq!(record.seed, plan.base_seed + i as u64);
        }
        for threads in [2usize, 3, 8, 0] {
            let parallel =
                Campaign::with_threads(threads)
                    .run_windowed_records(&plan, &builder, |_| SplitVoteAdversary::new());
            assert_eq!(
                serial, parallel,
                "thread count {threads} changed the record stream"
            );
        }
    }

    #[test]
    fn aggregate_from_records_matches_the_run_aggregate() {
        let cfg = SystemConfig::new(5, 1).unwrap();
        let plan = TrialPlan::new(cfg, InputAssignment::evenly_split(5))
            .trials(6)
            .limits(RunLimits::small());
        let records = Campaign::serial().run_async_records(&plan, &BenOrBuilder::new(), |_| {
            FairAsyncAdversary::default()
        });
        let direct = Campaign::serial().run_async(&plan, &BenOrBuilder::new(), |_| {
            FairAsyncAdversary::default()
        });
        assert_eq!(
            Aggregate::from_records(&records, plan.limits.max_steps),
            direct
        );
        // Records carry the async metrics: steps elapsed, no windows.
        assert!(records.iter().all(|r| r.metrics.windows == 0));
        assert!(records.iter().all(|r| r.metrics.steps == r.duration));
        assert!(records.iter().all(|r| r.metrics.messages_sent > 0));
    }

    #[test]
    fn range_record_shards_concatenate_to_the_full_stream() {
        use agreement_adversary::{find_adversary, AdversaryBuildCtx};
        let cfg = SystemConfig::new(5, 1).unwrap();
        let plan = TrialPlan::new(cfg, InputAssignment::evenly_split(5))
            .trials(9)
            .limits(RunLimits::small());
        let factory = find_adversary("fair-round-robin").unwrap();
        let make = |seed: u64| factory.build(&AdversaryBuildCtx::new(cfg, seed));
        let full = Campaign::serial().run_records(&plan, &BenOrBuilder::new(), make);
        // Uneven contiguous shards, executed on different campaign shapes,
        // must concatenate to the exact single-process stream.
        let mut merged = Vec::new();
        for (lo, hi) in [(0u64, 3u64), (3, 7), (7, 9)] {
            merged.extend(Campaign::parallel().run_records_range(
                &plan,
                &BenOrBuilder::new(),
                make,
                lo,
                hi,
            ));
        }
        assert_eq!(full, merged);
        // A hi past the plan's trial count clamps instead of running
        // phantom trials.
        let tail = Campaign::serial().run_records_range(&plan, &BenOrBuilder::new(), make, 7, 100);
        assert_eq!(tail, full[7..]);
    }

    #[test]
    fn campaign_worker_count_clamps_to_trials() {
        assert_eq!(Campaign::with_threads(16).worker_count(3), 3);
        assert_eq!(Campaign::with_threads(2).worker_count(100), 2);
        assert_eq!(Campaign::serial().worker_count(100), 1);
        assert!(Campaign::parallel().worker_count(1_000) >= 1);
        // Zero trials still yields a worker so the pool logic stays total.
        assert_eq!(Campaign::with_threads(4).worker_count(0), 1);
    }
}

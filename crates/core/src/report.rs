//! Plain-text tables for experiment output.
//!
//! The paper has no numeric tables of its own (it is a theory paper), so every
//! experiment in this reproduction reports its results as a [`Table`] in the
//! same shape EXPERIMENTS.md records: a title, a caption tying the numbers to
//! the paper claim, column headers and rows.

use std::fmt;

/// A plain-text results table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    caption: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title, caption and column headers.
    pub fn new(title: impl Into<String>, caption: impl Into<String>, columns: Vec<&str>) -> Self {
        Table {
            title: title.into(),
            caption: caption.into(),
            columns: columns.into_iter().map(str::to_owned).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's arity does not match the column headers.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row arity must match the number of columns"
        );
        self.rows.push(row);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The caption linking the table to a paper claim.
    pub fn caption(&self) -> &str {
        &self.caption
    }

    /// The column headers.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Looks up a cell as text.
    pub fn cell(&self, row: usize, column: usize) -> Option<&str> {
        self.rows
            .get(row)
            .and_then(|r| r.get(column))
            .map(String::as_str)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {}", self.title)?;
        writeln!(f, "{}", self.caption)?;
        // Column widths.
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<width$}", width = widths[i]))
            .collect();
        writeln!(f, "| {} |", header.join(" | "))?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "|-{}-|", rule.join("-|-"))?;
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:<width$}", width = widths[i]))
                .collect();
            writeln!(f, "| {} |", cells.join(" | "))?;
        }
        Ok(())
    }
}

/// Formats a float with three decimal places for table cells.
pub fn fmt_f64(value: f64) -> String {
    format!("{value:.3}")
}

/// Formats a rate (0..=1) as a percentage for table cells.
pub fn fmt_rate(value: f64) -> String {
    format!("{:.1}%", value * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_round_trip_and_lookup() {
        let mut table = Table::new("E0", "sanity", vec!["n", "value"]);
        table.push_row(vec!["4".to_string(), "1.000".to_string()]);
        table.push_row(vec!["8".to_string(), "2.000".to_string()]);
        assert_eq!(table.title(), "E0");
        assert_eq!(table.columns().len(), 2);
        assert_eq!(table.rows().len(), 2);
        assert_eq!(table.cell(1, 1), Some("2.000"));
        assert_eq!(table.cell(2, 0), None);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn mismatched_row_rejected() {
        let mut table = Table::new("E0", "sanity", vec!["n", "value"]);
        table.push_row(vec!["4".to_string()]);
    }

    #[test]
    fn display_renders_markdown_like_table() {
        let mut table = Table::new("E0", "sanity check", vec!["n", "mean windows"]);
        table.push_row(vec!["4".to_string(), "1.5".to_string()]);
        let text = table.to_string();
        assert!(text.contains("## E0"));
        assert!(text.contains("| n | mean windows |"));
        assert!(text.contains("| 4 | 1.5"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f64(1.23456), "1.235");
        assert_eq!(fmt_rate(0.5), "50.0%");
        assert_eq!(fmt_rate(1.0), "100.0%");
    }
}

//! Multi-process campaign orchestration: sharded seed ranges over the net
//! transport, a bit-identical slot-ordered merge, and resumable seed-range
//! checkpoints.
//!
//! The [`Campaign`](crate::Campaign) fans a scenario's trials across one
//! machine's cores; this module fans them across **processes**. A
//! coordinator ([`Orchestrator`] → [`Session`]) shards the trial range
//! `0..trials` into contiguous slot ranges, dispatches them to worker
//! processes over the framed TCP transport of `agreement_net::transport`,
//! and workers stream one [`TrialRecord`] frame per trial back for a
//! slot-ordered merge. Because trial `t` runs identically wherever it is
//! executed (its seed is `base_seed + t`, its workspace leaks no state), the
//! merged record stream — and therefore every report sink's output — is
//! **byte-identical to a single-process run** of the same spec. That is the
//! invariant the whole workspace has preserved across thread counts since
//! PR 1, extended across process boundaries.
//!
//! # Protocol
//!
//! One JSON object per length-prefixed frame, coordinator-initiated:
//!
//! ```text
//! worker → coordinator   {"type":"hello","pid":P}
//! coordinator → worker   {"type":"run","job":J,"scenario":ID,"scale":S,
//!                         "trials":T,"base_seed":B,"max_windows":W,
//!                         "max_steps":X,"lo":L,"hi":H}
//! worker → coordinator   {"type":"record","job":J,"record":{...}}   × (H-L)
//! worker → coordinator   {"type":"range_done","job":J,"lo":L,"hi":H,
//!                         "count":H-L}
//! worker → coordinator   {"type":"error","job":J,"message":M}
//! coordinator → worker   {"type":"shutdown"}
//! ```
//!
//! Workers resolve the scenario **by registry id** at the given scale and
//! apply the trials/seed/limits carried on the wire, so both sides agree on
//! the exact workload without serializing protocol objects. Frames on one
//! connection are FIFO, so a range's records always precede its
//! `range_done`.
//!
//! # Fault tolerance and resumption
//!
//! A worker that disconnects mid-range loses the whole range: its partial
//! records are discarded and the range is re-queued for a surviving worker
//! (a half-range would have to be stitched; a re-run is deterministic, so
//! re-running is both simpler and provably identical). A worker silent past
//! the receive timeout is treated the same way: dropped, socket closed,
//! range re-queued. When every worker is gone with work outstanding, the
//! session reports [`OrchestrateError::WorkersExhausted`].
//!
//! With a checkpoint path configured, every completed range is appended to a
//! JSONL file *with its records embedded*. A restarted coordinator loads the
//! file, dispatches only the missing sub-ranges, and merges checkpointed and
//! fresh ranges into the same byte-identical stream.

use std::collections::VecDeque;
use std::fmt;
use std::io::{self, BufRead, Write as _};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use agreement_analysis::JsonValue;
use agreement_net::transport::{bounded, BoundedReceiver, Connection, Listener, RecvError};
use agreement_sim::RunLimits;

use crate::experiments::Scale;
use crate::record::TrialRecord;
use crate::runner::Campaign;
use crate::scenario::{scenario_registry, ScenarioError, ScenarioSpec};

/// How long the coordinator waits for workers to dial in and say hello.
const SPAWN_DEADLINE: Duration = Duration::from_secs(30);

/// Safety net on every coordinator receive: a worker that neither answers
/// nor disconnects within this window is treated as hung — its range is
/// re-queued on the survivors, exactly like a disconnect. Only a session
/// with no live workers left fails the run.
const RECV_TIMEOUT: Duration = Duration::from_secs(600);

/// How long shutdown waits for workers to exit gracefully before forcing
/// their sockets shut and killing the processes.
const SHUTDOWN_DEADLINE: Duration = Duration::from_secs(30);

/// Why an orchestrated campaign failed.
#[derive(Debug)]
pub enum OrchestrateError {
    /// Spawning, connecting, or checkpoint file I/O failed.
    Io(io::Error),
    /// The spec itself does not resolve (same errors as a local run).
    Scenario(ScenarioError),
    /// Every worker process was lost with ranges still outstanding.
    WorkersExhausted(String),
    /// A worker violated the wire protocol (bad frame, wrong job, bad
    /// record) or reported an execution error.
    Protocol(String),
    /// The completed ranges do not tile `0..trials` exactly (a checkpoint
    /// from a different run, or an internal dispatch bug).
    Coverage(String),
}

impl fmt::Display for OrchestrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrchestrateError::Io(err) => write!(f, "orchestration I/O error: {err}"),
            OrchestrateError::Scenario(err) => write!(f, "{err}"),
            OrchestrateError::WorkersExhausted(msg) => write!(f, "workers exhausted: {msg}"),
            OrchestrateError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            OrchestrateError::Coverage(msg) => write!(f, "coverage error: {msg}"),
        }
    }
}

impl std::error::Error for OrchestrateError {}

impl From<io::Error> for OrchestrateError {
    fn from(err: io::Error) -> Self {
        OrchestrateError::Io(err)
    }
}

impl From<ScenarioError> for OrchestrateError {
    fn from(err: ScenarioError) -> Self {
        OrchestrateError::Scenario(err)
    }
}

/// The label a [`Scale`] travels under on the wire.
fn scale_label(scale: Scale) -> &'static str {
    match scale {
        Scale::Quick => "quick",
        Scale::Full => "full",
    }
}

fn parse_scale(label: &str) -> Option<Scale> {
    match label {
        "quick" => Some(Scale::Quick),
        "full" => Some(Scale::Full),
        _ => None,
    }
}

fn str_field<'a>(msg: &'a JsonValue, name: &str) -> Result<&'a str, String> {
    msg.get(name)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("missing string field '{name}'"))
}

fn int_field(msg: &JsonValue, name: &str) -> Result<u64, String> {
    msg.get(name)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing integer field '{name}'"))
}

/// One completed, persisted seed range of a scenario: the unit of resumption.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointEntry {
    /// The scenario's registry id.
    pub scenario: String,
    /// The base seed the range ran under (a changed seed invalidates it).
    pub base_seed: u64,
    /// The campaign's total trial count (a changed count invalidates it).
    pub trials: u64,
    /// Range start (inclusive).
    pub lo: u64,
    /// Range end (exclusive).
    pub hi: u64,
    /// The range's records, in trial order.
    pub records: Vec<TrialRecord>,
}

impl CheckpointEntry {
    fn to_json(&self) -> JsonValue {
        let mut obj = JsonValue::object();
        obj.push("scenario", self.scenario.as_str())
            .push("base_seed", self.base_seed)
            .push("trials", self.trials)
            .push("lo", self.lo)
            .push("hi", self.hi)
            .push(
                "records",
                JsonValue::Array(self.records.iter().map(TrialRecord::to_json).collect()),
            );
        obj
    }

    fn from_json(value: &JsonValue) -> Result<Self, String> {
        let records = value
            .get("records")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| "missing 'records' array".to_string())?
            .iter()
            .map(TrialRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CheckpointEntry {
            scenario: str_field(value, "scenario")?.to_string(),
            base_seed: int_field(value, "base_seed")?,
            trials: int_field(value, "trials")?,
            lo: int_field(value, "lo")?,
            hi: int_field(value, "hi")?,
            records,
        })
    }
}

/// Reads a checkpoint file: one [`CheckpointEntry`] JSON object per line.
/// A torn final line (the coordinator died mid-append) is skipped, not an
/// error — everything before it is still usable.
///
/// # Errors
///
/// Propagates file I/O errors and malformed *complete* lines.
pub fn read_checkpoint(path: &Path) -> Result<Vec<CheckpointEntry>, OrchestrateError> {
    let file = std::fs::File::open(path)?;
    let mut entries = Vec::new();
    let mut lines = io::BufReader::new(file).lines().peekable();
    while let Some(line) = lines.next() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let last = lines.peek().is_none();
        match JsonValue::parse(&line).and_then(|v| CheckpointEntry::from_json(&v)) {
            Ok(entry) => entries.push(entry),
            // Only the final line may be torn; corruption earlier in the
            // file means the checkpoint cannot be trusted.
            Err(_) if last => break,
            Err(err) => {
                return Err(OrchestrateError::Protocol(format!(
                    "corrupt checkpoint line in {}: {err}",
                    path.display()
                )))
            }
        }
    }
    Ok(entries)
}

/// Appends one entry to a checkpoint file (creating it if needed), flushed
/// before returning so a subsequent crash cannot lose the range.
///
/// # Errors
///
/// Propagates file I/O errors.
pub fn append_checkpoint(path: &Path, entry: &CheckpointEntry) -> Result<(), OrchestrateError> {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(file, "{}", entry.to_json())?;
    file.flush()?;
    Ok(())
}

/// The sub-ranges of `0..total` not covered by `done` ranges — the work a
/// resumed coordinator still has to dispatch.
fn missing_ranges(total: u64, done: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut sorted: Vec<(u64, u64)> = done.to_vec();
    sorted.sort_unstable();
    let mut missing = Vec::new();
    let mut cursor = 0u64;
    for (lo, hi) in sorted {
        if lo > cursor {
            missing.push((cursor, lo.min(total)));
        }
        cursor = cursor.max(hi);
        if cursor >= total {
            break;
        }
    }
    if cursor < total {
        missing.push((cursor, total));
    }
    missing
}

/// Splits ranges into dispatch chunks of at most `chunk` trials.
fn chunk_ranges(ranges: &[(u64, u64)], chunk: u64) -> VecDeque<(u64, u64)> {
    let chunk = chunk.max(1);
    let mut out = VecDeque::new();
    for &(lo, hi) in ranges {
        let mut start = lo;
        while start < hi {
            let end = (start + chunk).min(hi);
            out.push_back((start, end));
            start = end;
        }
    }
    out
}

/// Merges completed ranges into the full `0..total` record stream,
/// validating that the ranges tile the interval exactly and that every
/// record sits in its own slot. The result is the stream a single-process
/// campaign would have produced.
fn merge_ranges(
    total: u64,
    mut done: Vec<(u64, u64, Vec<TrialRecord>)>,
) -> Result<Vec<TrialRecord>, OrchestrateError> {
    done.sort_by_key(|&(lo, _, _)| lo);
    let mut merged: Vec<TrialRecord> = Vec::with_capacity(total as usize);
    let mut cursor = 0u64;
    for (lo, hi, records) in done {
        if lo != cursor {
            return Err(OrchestrateError::Coverage(format!(
                "ranges do not tile 0..{total}: expected a range starting at {cursor}, got {lo}..{hi}"
            )));
        }
        if records.len() as u64 != hi - lo {
            return Err(OrchestrateError::Coverage(format!(
                "range {lo}..{hi} carries {} record(s)",
                records.len()
            )));
        }
        merged.extend(records);
        cursor = hi;
    }
    if cursor != total {
        return Err(OrchestrateError::Coverage(format!(
            "ranges cover 0..{cursor} of 0..{total}"
        )));
    }
    for (slot, record) in merged.iter().enumerate() {
        if record.trial != slot as u64 {
            return Err(OrchestrateError::Coverage(format!(
                "slot {slot} holds trial {}",
                record.trial
            )));
        }
    }
    Ok(merged)
}

/// Progress notifications from a dispatch loop — how tests observe (and
/// interfere with) an in-flight orchestration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrchestrationEvent {
    /// A range was handed to a worker.
    RangeAssigned {
        /// Worker index within the session.
        worker: usize,
        /// Range start (inclusive).
        lo: u64,
        /// Range end (exclusive).
        hi: u64,
    },
    /// A worker delivered a complete, validated range.
    RangeCompleted {
        /// Worker index within the session.
        worker: usize,
        /// Range start (inclusive).
        lo: u64,
        /// Range end (exclusive).
        hi: u64,
    },
    /// A range was skipped because the checkpoint already covers it.
    RangeRestored {
        /// Range start (inclusive).
        lo: u64,
        /// Range end (exclusive).
        hi: u64,
    },
    /// A worker disconnected or broke protocol; its in-flight range (if
    /// any) has been re-queued.
    WorkerLost {
        /// Worker index within the session.
        worker: usize,
    },
}

/// What a worker forwarder delivers into the coordinator's shared inbox.
enum Delivery {
    /// A parsed frame.
    Frame(JsonValue),
    /// A frame that was not valid JSON.
    Malformed(String),
    /// The connection closed.
    Gone,
}

struct WorkerHandle {
    conn: Arc<Connection>,
    pid: u64,
    alive: bool,
    forwarder: Option<JoinHandle<()>>,
}

struct Inflight {
    job: u64,
    lo: u64,
    hi: u64,
    records: Vec<TrialRecord>,
}

/// Coordinator configuration: how many workers to spawn, with what command,
/// at what scale, with what chunking and checkpointing.
#[derive(Debug, Clone)]
pub struct Orchestrator {
    scale: Scale,
    workers: usize,
    command: Vec<String>,
    chunk: Option<u64>,
    checkpoint: Option<PathBuf>,
}

impl Orchestrator {
    /// A coordinator that will spawn workers with `command` (executable plus
    /// fixed arguments; `--connect <addr>` is appended) resolving scenarios
    /// at `scale`.
    pub fn new(scale: Scale, command: Vec<String>) -> Self {
        assert!(
            !command.is_empty(),
            "worker command must name an executable"
        );
        Orchestrator {
            scale,
            workers: 2,
            command,
            chunk: None,
            checkpoint: None,
        }
    }

    /// Sets the worker-process count (default 2; clamped to at least 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Overrides the dispatch chunk size in trials. The default is
    /// `ceil(trials / (workers · 4))` per spec: enough chunks that a lost
    /// worker forfeits little and stragglers rebalance, few enough that
    /// framing overhead stays negligible.
    pub fn chunk(mut self, chunk: u64) -> Self {
        self.chunk = Some(chunk.max(1));
        self
    }

    /// Persists completed ranges to `path` and resumes from it when it
    /// already exists.
    pub fn checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// Spawns the workers, waits for each to connect and say hello, and
    /// returns the live [`Session`].
    ///
    /// # Errors
    ///
    /// [`OrchestrateError::Io`] when spawning or accepting fails, and
    /// [`OrchestrateError::Protocol`] when a worker's first frame is not a
    /// well-formed hello within the spawn deadline.
    pub fn start(self) -> Result<Session, OrchestrateError> {
        let listener = Listener::bind_local()?;
        let addr = listener.local_addr()?.to_string();
        let mut children = Vec::with_capacity(self.workers);
        for _ in 0..self.workers {
            let mut cmd = Command::new(&self.command[0]);
            cmd.args(&self.command[1..])
                .arg("--connect")
                .arg(&addr)
                // Workers write records to the socket, never to stdout; a
                // stray print must not corrupt the coordinator's own output.
                .stdout(Stdio::null());
            children.push(cmd.spawn()?);
        }

        let deadline = Instant::now() + SPAWN_DEADLINE;
        let (inbox_tx, inbox) = bounded::<(usize, Delivery)>(1024);
        let mut workers = Vec::with_capacity(children.len());
        for index in 0..children.len() {
            let conn = listener.accept_deadline(deadline)?;
            let hello = conn.recv_deadline(deadline).map_err(|err| {
                OrchestrateError::Protocol(format!("worker {index} sent no hello: {err:?}"))
            })?;
            let hello = parse_frame(&hello).map_err(OrchestrateError::Protocol)?;
            if str_field(&hello, "type") != Ok("hello") {
                return Err(OrchestrateError::Protocol(format!(
                    "worker {index}'s first frame was not a hello"
                )));
            }
            let pid = int_field(&hello, "pid").map_err(OrchestrateError::Protocol)?;
            let conn = Arc::new(conn);
            let forwarder_conn = Arc::clone(&conn);
            let tx = inbox_tx.clone();
            let forwarder = std::thread::spawn(move || loop {
                match forwarder_conn.recv() {
                    Some(frame) => {
                        let delivery = match parse_frame(&frame) {
                            Ok(msg) => Delivery::Frame(msg),
                            Err(err) => Delivery::Malformed(err),
                        };
                        if tx.send((index, delivery)).is_err() {
                            return;
                        }
                    }
                    None => {
                        let _ = tx.send((index, Delivery::Gone));
                        return;
                    }
                }
            });
            workers.push(WorkerHandle {
                conn,
                pid,
                alive: true,
                forwarder: Some(forwarder),
            });
        }

        Ok(Session {
            scale: self.scale,
            chunk: self.chunk,
            checkpoint: self.checkpoint,
            workers,
            children,
            inbox,
            next_job: 0,
        })
    }
}

fn parse_frame(frame: &[u8]) -> Result<JsonValue, String> {
    let text = std::str::from_utf8(frame).map_err(|err| format!("non-UTF-8 frame: {err}"))?;
    JsonValue::parse(text)
}

/// A live orchestration session: connected worker processes, reusable across
/// many specs (the `scenarios` bin runs its whole matrix through one
/// session).
pub struct Session {
    scale: Scale,
    chunk: Option<u64>,
    checkpoint: Option<PathBuf>,
    workers: Vec<WorkerHandle>,
    children: Vec<Child>,
    inbox: BoundedReceiver<(usize, Delivery)>,
    next_job: u64,
}

impl Session {
    /// OS process ids of the worker processes, in session order — what a
    /// fault-injection test needs to kill one mid-range.
    pub fn worker_pids(&self) -> Vec<u64> {
        self.workers.iter().map(|w| w.pid).collect()
    }

    /// How many workers are still connected.
    pub fn live_workers(&self) -> usize {
        self.workers.iter().filter(|w| w.alive).count()
    }

    /// Removes and returns the OS process handle of session worker `index` —
    /// fault injection for tests: `kill()` it and watch the dispatch loop
    /// reroute its range. Children are matched by the pid the worker reported
    /// in its hello (spawn order and connection-accept order can differ), so
    /// the handle always belongs to the worker the coordinator calls `index`.
    /// The session stops reaping a taken child; the caller owns the `wait`.
    ///
    /// # Panics
    ///
    /// Panics if worker `index`'s process was already taken.
    pub fn take_worker_process(&mut self, index: usize) -> Child {
        let pid = self.workers[index].pid;
        let position = self
            .children
            .iter()
            .position(|child| u64::from(child.id()) == pid)
            .unwrap_or_else(|| panic!("worker {index}'s process (pid {pid}) already taken"));
        self.children.remove(position)
    }

    /// Runs one spec's full trial range across the workers and returns the
    /// merged record stream, bit-identical to a single-process
    /// [`ScenarioSpec::run_range_records`] over `0..trials`.
    ///
    /// # Errors
    ///
    /// See [`OrchestrateError`]; spec-resolution failures surface as
    /// [`OrchestrateError::Scenario`], exactly as a local run would report
    /// them.
    pub fn run_spec_records(
        &mut self,
        spec: &ScenarioSpec,
    ) -> Result<Vec<TrialRecord>, OrchestrateError> {
        self.run_spec_records_with(spec, |_| {})
    }

    /// Like [`Session::run_spec_records`], with a progress callback invoked
    /// from the dispatch loop on every assignment, completion, restoration
    /// and worker loss.
    ///
    /// # Errors
    ///
    /// See [`Session::run_spec_records`].
    pub fn run_spec_records_with(
        &mut self,
        spec: &ScenarioSpec,
        mut on_event: impl FnMut(OrchestrationEvent),
    ) -> Result<Vec<TrialRecord>, OrchestrateError> {
        // Fail exactly like a local run before involving any worker.
        spec.feasibility()?;
        let total = spec.trials;
        let id = spec.id();

        // Restore checkpointed ranges for this exact workload.
        let mut done: Vec<(u64, u64, Vec<TrialRecord>)> = Vec::new();
        if let Some(path) = self.checkpoint.clone() {
            if path.exists() {
                for entry in read_checkpoint(&path)? {
                    if entry.scenario == id
                        && entry.base_seed == spec.base_seed
                        && entry.trials == total
                        && entry.hi <= total
                    {
                        on_event(OrchestrationEvent::RangeRestored {
                            lo: entry.lo,
                            hi: entry.hi,
                        });
                        done.push((entry.lo, entry.hi, entry.records));
                    }
                }
            }
        }

        let covered: Vec<(u64, u64)> = done.iter().map(|&(lo, hi, _)| (lo, hi)).collect();
        let chunk = self.chunk.unwrap_or_else(|| {
            let shards = (self.workers.len() as u64) * 4;
            total.div_ceil(shards.max(1)).max(1)
        });
        let mut pending = chunk_ranges(&missing_ranges(total, &covered), chunk);
        let mut inflight: Vec<Option<Inflight>> = (0..self.workers.len()).map(|_| None).collect();

        loop {
            // Hand pending chunks to every idle live worker.
            for (index, slot) in inflight.iter_mut().enumerate() {
                if slot.is_some() || !self.workers[index].alive {
                    continue;
                }
                let Some((lo, hi)) = pending.pop_front() else {
                    break;
                };
                let job = self.next_job;
                self.next_job += 1;
                let mut run = JsonValue::object();
                run.push("type", "run")
                    .push("job", job)
                    .push("scenario", id.as_str())
                    .push("scale", scale_label(self.scale))
                    .push("trials", total)
                    .push("base_seed", spec.base_seed)
                    .push("max_windows", spec.limits.max_windows)
                    .push("max_steps", spec.limits.max_steps)
                    .push("lo", lo)
                    .push("hi", hi);
                if self.workers[index]
                    .conn
                    .send(run.to_string().into_bytes())
                    .is_err()
                {
                    // The forwarder will deliver the Gone event; just skip.
                    pending.push_front((lo, hi));
                    continue;
                }
                *slot = Some(Inflight {
                    job,
                    lo,
                    hi,
                    records: Vec::with_capacity((hi - lo) as usize),
                });
                on_event(OrchestrationEvent::RangeAssigned {
                    worker: index,
                    lo,
                    hi,
                });
            }

            if pending.is_empty() && inflight.iter().all(Option::is_none) {
                break;
            }
            if self.live_workers() == 0 {
                return Err(OrchestrateError::WorkersExhausted(format!(
                    "all {} worker(s) lost with {} range(s) of '{id}' unfinished",
                    self.workers.len(),
                    pending.len() + inflight.iter().flatten().count(),
                )));
            }

            let (index, delivery) = match self.inbox.recv_timeout(RECV_TIMEOUT) {
                Ok(pair) => pair,
                Err(RecvError::Timeout) => {
                    // Total silence this long means every worker holding a
                    // range is hung — the same fault as a disconnect, handled
                    // the same way: drop them, re-queue their ranges on the
                    // survivors, and let the exhaustion check above decide
                    // whether the run is still viable.
                    let hung: Vec<usize> = inflight
                        .iter()
                        .enumerate()
                        .filter_map(|(i, slot)| slot.is_some().then_some(i))
                        .collect();
                    if hung.is_empty() {
                        return Err(OrchestrateError::Protocol(
                            "receive timeout with no range in flight".into(),
                        ));
                    }
                    for i in hung {
                        eprintln!(
                            "orchestrate: worker {i} silent past the receive timeout; dropping it"
                        );
                        self.lose_worker(i, &mut inflight, &mut pending, &mut on_event);
                    }
                    continue;
                }
                Err(RecvError::Disconnected) => {
                    return Err(OrchestrateError::Protocol(
                        "every worker forwarder exited".into(),
                    ))
                }
            };
            match delivery {
                Delivery::Frame(msg) => {
                    if let Err(reason) = handle_frame(
                        &msg,
                        index,
                        &mut inflight,
                        &mut done,
                        self.checkpoint.as_deref(),
                        &id,
                        spec.base_seed,
                        total,
                        &mut on_event,
                    )? {
                        self.lose_worker(index, &mut inflight, &mut pending, &mut on_event);
                        eprintln!("orchestrate: worker {index} dropped: {reason}");
                    }
                }
                Delivery::Malformed(err) => {
                    self.lose_worker(index, &mut inflight, &mut pending, &mut on_event);
                    eprintln!("orchestrate: worker {index} sent a malformed frame: {err}");
                }
                Delivery::Gone => {
                    self.lose_worker(index, &mut inflight, &mut pending, &mut on_event);
                }
            }
        }

        merge_ranges(total, done)
    }

    /// Marks a worker dead and re-queues its in-flight range (partial
    /// records are discarded: a deterministic re-run is identical).
    fn lose_worker(
        &mut self,
        index: usize,
        inflight: &mut [Option<Inflight>],
        pending: &mut VecDeque<(u64, u64)>,
        on_event: &mut impl FnMut(OrchestrationEvent),
    ) {
        if !self.workers[index].alive {
            return;
        }
        self.workers[index].alive = false;
        // Force the socket shut: the worker process observes the hangup and
        // exits, and the forwarder unblocks — a dropped worker must never
        // leave a thread or process for shutdown to hang on.
        self.workers[index].conn.shutdown();
        if let Some(lost) = inflight[index].take() {
            pending.push_front((lost.lo, lost.hi));
        }
        on_event(OrchestrationEvent::WorkerLost { worker: index });
    }

    /// Sends every live worker a shutdown frame and reaps the worker
    /// processes. Called automatically on drop; explicit calls get the exit
    /// error reporting.
    ///
    /// # Errors
    ///
    /// [`OrchestrateError::Io`] when reaping a child fails.
    pub fn shutdown(mut self) -> Result<(), OrchestrateError> {
        self.shutdown_inner()?;
        Ok(())
    }

    fn shutdown_inner(&mut self) -> Result<(), OrchestrateError> {
        let mut bye = JsonValue::object();
        bye.push("type", "shutdown");
        let frame = bye.to_string().into_bytes();
        for worker in &self.workers {
            if worker.alive {
                let _ = worker.conn.send(frame.clone());
            } else {
                // A worker dropped for a violation may still hold an open
                // socket (lose_worker closes it too, but a worker never
                // lost through that path — e.g. a failed hello — may not);
                // force it shut so its forwarder and process can exit.
                worker.conn.shutdown();
            }
        }
        let deadline = Instant::now() + SHUTDOWN_DEADLINE;
        for worker in &mut self.workers {
            worker.alive = false;
            if let Some(forwarder) = worker.forwarder.take() {
                // A live worker exits on the shutdown frame and the
                // forwarder observes the hangup; one that ignores the frame
                // gets its socket forced shut at the deadline instead of
                // hanging the join forever.
                while !forwarder.is_finished() && Instant::now() < deadline {
                    std::thread::sleep(Duration::from_millis(5));
                }
                if !forwarder.is_finished() {
                    worker.conn.shutdown();
                }
                let _ = forwarder.join();
            }
        }
        for child in &mut self.children {
            loop {
                match child.try_wait()? {
                    Some(_) => break,
                    None if Instant::now() >= deadline => {
                        // Ignored both the shutdown frame and a dead socket:
                        // reap it forcibly rather than hang the coordinator.
                        let _ = child.kill();
                        child.wait()?;
                        break;
                    }
                    None => std::thread::sleep(Duration::from_millis(5)),
                }
            }
        }
        self.children.clear();
        Ok(())
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        let _ = self.shutdown_inner();
        // A worker that ignored the shutdown frame must not outlive the
        // session: reap whatever is left forcibly.
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Handles one worker frame inside the dispatch loop. Returns `Ok(Ok(()))`
/// on success, `Ok(Err(reason))` when the worker must be dropped, and `Err`
/// for coordinator-side failures (checkpoint I/O).
#[allow(clippy::too_many_arguments)]
fn handle_frame(
    msg: &JsonValue,
    index: usize,
    inflight: &mut [Option<Inflight>],
    done: &mut Vec<(u64, u64, Vec<TrialRecord>)>,
    checkpoint: Option<&Path>,
    scenario: &str,
    base_seed: u64,
    trials: u64,
    on_event: &mut impl FnMut(OrchestrationEvent),
) -> Result<Result<(), String>, OrchestrateError> {
    let kind = match str_field(msg, "type") {
        Ok(kind) => kind,
        Err(err) => return Ok(Err(err)),
    };
    match kind {
        "record" => {
            let Some(current) = inflight[index].as_mut() else {
                return Ok(Err("record frame outside any assigned range".into()));
            };
            match int_field(msg, "job") {
                Ok(job) if job == current.job => {}
                _ => return Ok(Err("record frame for a stale job".into())),
            }
            let Some(payload) = msg.get("record") else {
                return Ok(Err("record frame without a 'record' object".into()));
            };
            let record = match TrialRecord::from_json(payload) {
                Ok(record) => record,
                Err(err) => return Ok(Err(format!("unparseable record: {err}"))),
            };
            let expected = current.lo + current.records.len() as u64;
            if record.trial != expected {
                return Ok(Err(format!(
                    "out-of-order record: expected trial {expected}, got {}",
                    record.trial
                )));
            }
            current.records.push(record);
            Ok(Ok(()))
        }
        "range_done" => {
            let Some(current) = inflight[index].take() else {
                return Ok(Err("range_done outside any assigned range".into()));
            };
            let job = int_field(msg, "job");
            let lo = int_field(msg, "lo");
            let hi = int_field(msg, "hi");
            if job != Ok(current.job) || lo != Ok(current.lo) || hi != Ok(current.hi) {
                return Ok(Err("range_done does not match the assigned range".into()));
            }
            if current.records.len() as u64 != current.hi - current.lo {
                return Ok(Err(format!(
                    "range {}..{} completed with {} record(s)",
                    current.lo,
                    current.hi,
                    current.records.len()
                )));
            }
            if let Some(path) = checkpoint {
                append_checkpoint(
                    path,
                    &CheckpointEntry {
                        scenario: scenario.to_string(),
                        base_seed,
                        trials,
                        lo: current.lo,
                        hi: current.hi,
                        records: current.records.clone(),
                    },
                )?;
            }
            on_event(OrchestrationEvent::RangeCompleted {
                worker: index,
                lo: current.lo,
                hi: current.hi,
            });
            done.push((current.lo, current.hi, current.records));
            Ok(Ok(()))
        }
        "error" => {
            let message = str_field(msg, "message").unwrap_or("unspecified worker error");
            Ok(Err(format!("worker reported: {message}")))
        }
        other => Ok(Err(format!("unexpected frame type '{other}'"))),
    }
}

/// The worker half: connects back to the coordinator, executes the ranges it
/// is handed, and streams the records. This is what `scenarios --worker` and
/// the `orchestrate_worker` binary run; it returns when the coordinator says
/// shutdown or hangs up.
pub mod worker {
    use super::*;

    /// Serves one coordinator at `addr` until shutdown or disconnect.
    ///
    /// # Errors
    ///
    /// Propagates connection errors; execution errors are reported to the
    /// coordinator in-protocol, not returned here.
    pub fn serve(addr: &str) -> io::Result<()> {
        let mut conn = Connection::connect(addr)?;
        let mut hello = JsonValue::object();
        hello
            .push("type", "hello")
            .push("pid", std::process::id() as u64);
        if conn.send(hello.to_string().into_bytes()).is_err() {
            return Ok(());
        }
        // Range trials fan out across this process's cores exactly like a
        // local campaign; determinism is per-trial, so the process/thread
        // split never shows in the records.
        let campaign = Campaign::parallel();
        while let Some(frame) = conn.recv() {
            let msg = match parse_frame(&frame) {
                Ok(msg) => msg,
                Err(_) => break,
            };
            match str_field(&msg, "type") {
                Ok("run") => {
                    let job = int_field(&msg, "job").unwrap_or(0);
                    match execute(&msg, &campaign) {
                        Ok((lo, hi, records)) => {
                            for record in &records {
                                let mut out = JsonValue::object();
                                out.push("type", "record")
                                    .push("job", job)
                                    .push("record", record.to_json());
                                if conn.send(out.to_string().into_bytes()).is_err() {
                                    return Ok(());
                                }
                            }
                            let mut out = JsonValue::object();
                            out.push("type", "range_done")
                                .push("job", job)
                                .push("lo", lo)
                                .push("hi", hi)
                                .push("count", records.len() as u64);
                            if conn.send(out.to_string().into_bytes()).is_err() {
                                return Ok(());
                            }
                        }
                        Err(message) => {
                            let mut out = JsonValue::object();
                            out.push("type", "error")
                                .push("job", job)
                                .push("message", message.as_str());
                            if conn.send(out.to_string().into_bytes()).is_err() {
                                return Ok(());
                            }
                        }
                    }
                }
                Ok("shutdown") => break,
                _ => break,
            }
        }
        conn.finish();
        Ok(())
    }

    /// Resolves a run frame into a spec (registry id + wire overrides) and
    /// executes its range.
    fn execute(
        msg: &JsonValue,
        campaign: &Campaign,
    ) -> Result<(u64, u64, Vec<TrialRecord>), String> {
        let id = str_field(msg, "scenario")?;
        let scale = parse_scale(str_field(msg, "scale")?)
            .ok_or_else(|| "unknown scale label".to_string())?;
        let lo = int_field(msg, "lo")?;
        let hi = int_field(msg, "hi")?;
        let mut spec = scenario_registry(scale)
            .into_iter()
            .find(|spec| spec.id() == id)
            .ok_or_else(|| format!("no scenario '{id}' in the {} registry", scale_label(scale)))?;
        spec.trials = int_field(msg, "trials")?;
        spec.base_seed = int_field(msg, "base_seed")?;
        spec.limits = RunLimits {
            max_windows: int_field(msg, "max_windows")?,
            max_steps: int_field(msg, "max_steps")?,
        };
        let records = spec
            .run_range_records(campaign, lo, hi)
            .map_err(|err| err.to_string())?;
        Ok((lo, hi, records))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn record(trial: u64) -> TrialRecord {
        use agreement_sim::Metrics;
        TrialRecord {
            trial,
            seed: 100 + trial,
            agreement: true,
            validity: true,
            terminated: true,
            violations: 0,
            halted: false,
            decided: None,
            first_decision_at: Some(trial),
            all_decided_at: Some(trial),
            duration: trial,
            longest_chain: 0,
            metrics: Metrics::default(),
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "agreement-orchestrate-{tag}-{}-{unique}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn missing_ranges_complements_arbitrary_coverage() {
        assert_eq!(missing_ranges(10, &[]), vec![(0, 10)]);
        assert_eq!(missing_ranges(10, &[(0, 10)]), Vec::<(u64, u64)>::new());
        assert_eq!(
            missing_ranges(10, &[(2, 5), (7, 9)]),
            vec![(0, 2), (5, 7), (9, 10)]
        );
        assert_eq!(missing_ranges(10, &[(5, 10), (0, 2)]), vec![(2, 5)]);
        assert_eq!(missing_ranges(0, &[]), Vec::<(u64, u64)>::new());
    }

    #[test]
    fn chunk_ranges_splits_without_gaps() {
        let chunks = chunk_ranges(&[(0, 7), (10, 12)], 3);
        assert_eq!(Vec::from(chunks), vec![(0, 3), (3, 6), (6, 7), (10, 12)]);
        // A zero chunk is clamped, not an infinite loop.
        assert_eq!(chunk_ranges(&[(0, 2)], 0).len(), 2);
    }

    #[test]
    fn merge_validates_tiling_and_slots() {
        let done = vec![
            (3u64, 5u64, vec![record(3), record(4)]),
            (0, 3, vec![record(0), record(1), record(2)]),
        ];
        let merged = merge_ranges(5, done).unwrap();
        assert_eq!(merged.len(), 5);
        assert!(merged.iter().enumerate().all(|(i, r)| r.trial == i as u64));

        let gap = vec![(0u64, 2u64, vec![record(0), record(1)])];
        assert!(matches!(
            merge_ranges(5, gap),
            Err(OrchestrateError::Coverage(_))
        ));
        let overlap = vec![
            (0u64, 3u64, vec![record(0), record(1), record(2)]),
            (2, 5, vec![record(2), record(3), record(4)]),
        ];
        assert!(matches!(
            merge_ranges(5, overlap),
            Err(OrchestrateError::Coverage(_))
        ));
        let short = vec![(0u64, 3u64, vec![record(0)])];
        assert!(matches!(
            merge_ranges(3, short),
            Err(OrchestrateError::Coverage(_))
        ));
    }

    #[test]
    fn checkpoint_round_trips_and_survives_a_torn_tail() {
        let path = temp_path("roundtrip");
        let entries = [
            CheckpointEntry {
                scenario: "a/b/c/n5t1".to_string(),
                base_seed: 7,
                trials: 10,
                lo: 0,
                hi: 3,
                records: (0..3).map(record).collect(),
            },
            CheckpointEntry {
                scenario: "a/b/c/n5t1".to_string(),
                base_seed: 7,
                trials: 10,
                lo: 3,
                hi: 5,
                records: (3..5).map(record).collect(),
            },
        ];
        for entry in &entries {
            append_checkpoint(&path, entry).unwrap();
        }
        assert_eq!(read_checkpoint(&path).unwrap(), entries);

        // A torn final line (coordinator died mid-append) is skipped.
        let mut contents = std::fs::read_to_string(&path).unwrap();
        contents.push_str("{\"scenario\":\"a/b/c/n5t1\",\"base_se");
        std::fs::write(&path, contents).unwrap();
        assert_eq!(read_checkpoint(&path).unwrap(), entries);

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_interior_checkpoint_lines_are_errors() {
        let path = temp_path("corrupt");
        let entry = CheckpointEntry {
            scenario: "x".to_string(),
            base_seed: 0,
            trials: 1,
            lo: 0,
            hi: 1,
            records: vec![record(0)],
        };
        std::fs::write(&path, "not json at all\n").unwrap();
        append_checkpoint(&path, &entry).unwrap();
        assert!(matches!(
            read_checkpoint(&path),
            Err(OrchestrateError::Protocol(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }
}

//! Multi-process campaign orchestration: sharded seed ranges over the net
//! transport, a bit-identical slot-ordered merge, and resumable seed-range
//! checkpoints.
//!
//! The [`Campaign`](crate::Campaign) fans a scenario's trials across one
//! machine's cores; this module fans them across **processes**. A
//! coordinator ([`Orchestrator`] → [`Session`]) shards the trial range
//! `0..trials` into contiguous slot ranges, dispatches them to worker
//! processes over the framed TCP transport of `agreement_net::transport`,
//! and workers stream the [`TrialRecord`]s back — batched into columnar
//! block frames (see [`crate::block`]) by default, one JSON frame per trial
//! on the legacy path — for a slot-ordered merge. Because trial `t` runs
//! identically wherever it is executed (its seed is `base_seed + t`, its
//! workspace leaks no state), the merged record stream — and therefore every
//! report sink's output — is **byte-identical to a single-process run** of
//! the same spec, across worker counts, batch sizes, and compression
//! settings. That is the invariant the whole workspace has preserved across
//! thread counts since PR 1, extended across process boundaries.
//!
//! # Protocol
//!
//! Length-prefixed frames, coordinator-initiated. A frame whose first byte
//! is `{` is one JSON object; one whose first byte is
//! [`BLOCK_MAGIC`](crate::block::BLOCK_MAGIC) is a binary record block:
//!
//! ```text
//! worker → coordinator   {"type":"hello","pid":P,"proto":2}
//! coordinator → worker   {"type":"run","job":J,"scenario":ID,"scale":S,
//!                         "trials":T,"base_seed":B,"max_windows":W,
//!                         "max_steps":X,"lo":L,"hi":H,
//!                         "batch":N,"compress":C}
//! worker → coordinator   <block: J, ≤N records>        × ceil((H-L)/N)
//! worker → coordinator   {"type":"range_done","job":J,"lo":L,"hi":H,
//!                         "count":H-L}
//! worker → coordinator   {"type":"error","job":J,"message":M}
//! coordinator → worker   {"type":"shutdown"}
//! ```
//!
//! **Version negotiation** rides on the hello: a worker advertising
//! `"proto":2` (or higher) understands `batch`/`compress` and ships blocks;
//! a legacy hello without the field pins that worker to protocol 1 — the
//! coordinator omits the new `run` fields (a v1 worker would choke on
//! nothing, but nor would it batch) and accepts its one-JSON-frame-per-trial
//! `{"type":"record",...}` stream exactly as before. Both frame kinds may
//! mix freely across workers of one session; `batch` of 0 (or
//! [`Orchestrator::batch_records`]`(0)`) forces the legacy stream even from
//! v2 workers.
//!
//! Workers resolve the scenario **by registry id** at the given scale and
//! apply the trials/seed/limits carried on the wire, so both sides agree on
//! the exact workload without serializing protocol objects. Frames on one
//! connection are FIFO, so a range's records always precede its
//! `range_done`.
//!
//! # Fault tolerance and recovery
//!
//! Every failure funnels into one recovery path: **drop the worker, re-queue
//! its range, re-run deterministically** (a half-range would have to be
//! stitched; a re-run of trial `t` is provably identical, so re-running is
//! both simpler and correct). What differs is only the detector:
//!
//! * **Disconnect / crash (SIGKILL)** — the forwarder observes the hangup
//!   and delivers a gone notice.
//! * **Damaged bytes** — every frame carries a CRC32 trailer (see
//!   `agreement_net::transport`); a bit-flip or a torn frame kills the
//!   reader with a recorded reason and surfaces as a corrupt delivery, not
//!   as garbage JSON.
//! * **Silence** — a worker holding a range but silent past the liveness
//!   policy's receive timeout gets its range *speculatively re-dispatched*
//!   to an idle worker (first completion wins, duplicates are discarded by
//!   exact-range dedupe, so the merge stays byte-identical); one silent past
//!   **twice** the timeout is dropped outright.
//!
//! Lost capacity comes back: the session respawns dead workers up to a
//! bounded budget, with seeded exponential backoff and jitter, and only
//! reports [`OrchestrateError::WorkersExhausted`] when no live worker
//! remains and the budget is spent. The fault schedule of a chaos run is
//! seeded (`agreement_net::fault::FaultPlan`), so the same seed reproduces
//! the same failures and the same recovery sequence.
//!
//! # Checkpoints
//!
//! With a checkpoint path configured, every completed range is appended to a
//! JSONL file *with its records embedded*, each line wrapped with a CRC32 of
//! its body. Appends are coalesced: the session holds one open
//! [`CheckpointWriter`] and each completed range costs a single preformatted
//! `write` — not an open/format/flush cycle per line. A restarted
//! coordinator loads the file, skips (and logs) damaged lines instead of
//! trusting or dying on them, compacts the file via an atomic tmp+rename
//! when damage was found, dispatches only the missing sub-ranges, and merges
//! checkpointed and fresh ranges into the same byte-identical stream.

use std::collections::{BTreeSet, VecDeque};
use std::fmt;
use std::io::{self, BufRead, Write as _};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use agreement_analysis::{crc32, JsonValue};
use agreement_model::{derive_seed, ProcessorRng};
pub use agreement_net::fault::FaultPlan;
use agreement_net::fault::FAULT_ENV;
use agreement_net::transport::{
    bounded, BoundedReceiver, BoundedSender, Connection, Listener, RecvError,
};
use agreement_sim::RunLimits;

use crate::block::{decode_block, encode_block, is_block_frame};
use crate::experiments::Scale;
use crate::record::TrialRecord;
use crate::runner::Campaign;
use crate::scenario::{scenario_registry, ScenarioError, ScenarioSpec};

/// How long the coordinator waits for workers to dial in and say hello.
const SPAWN_DEADLINE: Duration = Duration::from_secs(30);

/// Default receive timeout of the liveness policy (override with
/// [`Orchestrator::recv_timeout`]): a worker holding a range but silent this
/// long gets the range speculatively re-dispatched; silent twice this long,
/// it is dropped and the range re-queued on the survivors.
const DEFAULT_RECV_TIMEOUT: Duration = Duration::from_secs(600);

/// How long shutdown waits for workers to exit gracefully before forcing
/// their sockets shut and killing the processes.
const SHUTDOWN_DEADLINE: Duration = Duration::from_secs(30);

/// Default number of worker respawns a session may perform (override with
/// [`Orchestrator::respawn_budget`]).
const DEFAULT_RESPAWN_BUDGET: u32 = 2;

/// The protocol version this coordinator (and its bundled worker) speaks.
/// Version 2 added columnar block frames and the `batch`/`compress` run
/// fields; version 1 peers are still served with per-trial JSON records.
const PROTO_VERSION: u64 = 2;

/// Default records per block frame (override with
/// [`Orchestrator::batch_records`]). Big enough that framing and wakeups
/// amortize away, small enough that the coordinator sees steady liveness
/// signals from a working worker.
pub const DEFAULT_BATCH_RECORDS: u64 = 256;

/// Worker-side clamp on the batch size: a block of this many worst-case
/// records still fits the transport's 64 MiB frame cap.
const MAX_BATCH_RECORDS: u64 = 65_536;

/// Base of the respawn exponential backoff: attempt `k` waits
/// `RESPAWN_BACKOFF_BASE · 2^k` (capped) plus seeded jitter.
const RESPAWN_BACKOFF_BASE: Duration = Duration::from_millis(50);

/// Cap on the exponential part of the respawn backoff.
const RESPAWN_BACKOFF_CAP: Duration = Duration::from_secs(2);

/// Upper bound (exclusive) on the seeded respawn jitter, in milliseconds.
const RESPAWN_JITTER_MS: u64 = 25;

/// How long a respawned worker gets to dial in and say hello before the
/// attempt is counted as failed (shorter than [`SPAWN_DEADLINE`]: a respawn
/// blocks the dispatch loop, and localhost dials are fast).
const RESPAWN_ACCEPT_DEADLINE: Duration = Duration::from_secs(10);

/// Why an orchestrated campaign failed.
#[derive(Debug)]
pub enum OrchestrateError {
    /// Spawning, connecting, or checkpoint file I/O failed.
    Io(io::Error),
    /// The spec itself does not resolve (same errors as a local run).
    Scenario(ScenarioError),
    /// Every worker process was lost with ranges still outstanding.
    WorkersExhausted(String),
    /// A worker violated the wire protocol (bad frame, wrong job, bad
    /// record) or reported an execution error.
    Protocol(String),
    /// The completed ranges do not tile `0..trials` exactly (a checkpoint
    /// from a different run, or an internal dispatch bug).
    Coverage(String),
}

impl fmt::Display for OrchestrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrchestrateError::Io(err) => write!(f, "orchestration I/O error: {err}"),
            OrchestrateError::Scenario(err) => write!(f, "{err}"),
            OrchestrateError::WorkersExhausted(msg) => write!(f, "workers exhausted: {msg}"),
            OrchestrateError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            OrchestrateError::Coverage(msg) => write!(f, "coverage error: {msg}"),
        }
    }
}

impl std::error::Error for OrchestrateError {}

impl From<io::Error> for OrchestrateError {
    fn from(err: io::Error) -> Self {
        OrchestrateError::Io(err)
    }
}

impl From<ScenarioError> for OrchestrateError {
    fn from(err: ScenarioError) -> Self {
        OrchestrateError::Scenario(err)
    }
}

/// The label a [`Scale`] travels under on the wire.
fn scale_label(scale: Scale) -> &'static str {
    match scale {
        Scale::Quick => "quick",
        Scale::Full => "full",
    }
}

fn parse_scale(label: &str) -> Option<Scale> {
    match label {
        "quick" => Some(Scale::Quick),
        "full" => Some(Scale::Full),
        _ => None,
    }
}

fn str_field<'a>(msg: &'a JsonValue, name: &str) -> Result<&'a str, String> {
    msg.get(name)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("missing string field '{name}'"))
}

fn int_field(msg: &JsonValue, name: &str) -> Result<u64, String> {
    msg.get(name)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing integer field '{name}'"))
}

/// One completed, persisted seed range of a scenario: the unit of resumption.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointEntry {
    /// The scenario's registry id.
    pub scenario: String,
    /// The base seed the range ran under (a changed seed invalidates it).
    pub base_seed: u64,
    /// The campaign's total trial count (a changed count invalidates it).
    pub trials: u64,
    /// Range start (inclusive).
    pub lo: u64,
    /// Range end (exclusive).
    pub hi: u64,
    /// The range's records, in trial order.
    pub records: Vec<TrialRecord>,
}

impl CheckpointEntry {
    fn to_json(&self) -> JsonValue {
        let mut obj = JsonValue::object();
        obj.push("scenario", self.scenario.as_str())
            .push("base_seed", self.base_seed)
            .push("trials", self.trials)
            .push("lo", self.lo)
            .push("hi", self.hi)
            .push(
                "records",
                JsonValue::Array(self.records.iter().map(TrialRecord::to_json).collect()),
            );
        obj
    }

    fn from_json(value: &JsonValue) -> Result<Self, String> {
        let records = value
            .get("records")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| "missing 'records' array".to_string())?
            .iter()
            .map(TrialRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CheckpointEntry {
            scenario: str_field(value, "scenario")?.to_string(),
            base_seed: int_field(value, "base_seed")?,
            trials: int_field(value, "trials")?,
            lo: int_field(value, "lo")?,
            hi: int_field(value, "hi")?,
            records,
        })
    }
}

/// Formats one checkpoint line: the entry's JSON wrapped with a CRC32 of
/// exactly the bytes between `"entry":` and the closing brace. The wrapper
/// is parsed textually on read, so verification never depends on JSON
/// re-serialization being stable.
fn checkpoint_line(entry: &CheckpointEntry) -> String {
    let body = entry.to_json().to_string();
    format!("{{\"crc\":{},\"entry\":{body}}}", crc32(body.as_bytes()))
}

/// Parses one complete checkpoint line: either the CRC-wrapped form written
/// by [`append_checkpoint`] or a legacy bare-entry line from a pre-CRC file.
fn parse_checkpoint_line(line: &str) -> Result<CheckpointEntry, String> {
    let entry_body = if let Some(rest) = line.strip_prefix("{\"crc\":") {
        let (crc_text, tail) = rest
            .split_once(",\"entry\":")
            .ok_or_else(|| "CRC wrapper without an 'entry' field".to_string())?;
        let expected: u32 = crc_text
            .trim()
            .parse()
            .map_err(|_| format!("unparseable checkpoint CRC '{crc_text}'"))?;
        let body = tail
            .strip_suffix('}')
            .ok_or_else(|| "CRC wrapper is not brace-terminated".to_string())?;
        let actual = crc32(body.as_bytes());
        if actual != expected {
            return Err(format!(
                "checkpoint line CRC mismatch: recorded {expected}, body checksums to {actual}"
            ));
        }
        body
    } else {
        // Legacy line: no CRC to verify, the JSON parse is the only check.
        line
    };
    JsonValue::parse(entry_body).and_then(|v| CheckpointEntry::from_json(&v))
}

/// Reads a checkpoint file: one CRC-wrapped [`CheckpointEntry`] per line
/// (legacy bare-entry lines are still accepted). A torn final line (the
/// coordinator died mid-append) is skipped silently; a damaged *interior*
/// line — CRC mismatch, truncated middle, unparseable JSON — is **skipped
/// and logged to stderr**, never trusted and never fatal: the ranges it held
/// are simply re-run. Returns the surviving entries and how many lines were
/// skipped as damaged (callers use a nonzero count to trigger
/// [`compact_checkpoint`]).
///
/// # Errors
///
/// Propagates file I/O errors only.
pub fn read_checkpoint_lossy(
    path: &Path,
) -> Result<(Vec<CheckpointEntry>, usize), OrchestrateError> {
    let file = std::fs::File::open(path)?;
    let mut entries = Vec::new();
    let mut skipped = 0usize;
    let mut lines = io::BufReader::new(file).lines().peekable();
    let mut number = 0u64;
    while let Some(line) = lines.next() {
        let line = line?;
        number += 1;
        if line.trim().is_empty() {
            continue;
        }
        let last = lines.peek().is_none();
        match parse_checkpoint_line(&line) {
            Ok(entry) => entries.push(entry),
            // A torn tail is the expected shape of a crash mid-append; skip
            // it without ceremony.
            Err(_) if last => break,
            Err(err) => {
                eprintln!(
                    "orchestrate: skipping damaged checkpoint line {number} in {}: {err}",
                    path.display()
                );
                skipped += 1;
            }
        }
    }
    Ok((entries, skipped))
}

/// Reads a checkpoint file, returning the surviving entries. See
/// [`read_checkpoint_lossy`] for the damage-tolerance contract.
///
/// # Errors
///
/// Propagates file I/O errors only.
pub fn read_checkpoint(path: &Path) -> Result<Vec<CheckpointEntry>, OrchestrateError> {
    Ok(read_checkpoint_lossy(path)?.0)
}

/// An open checkpoint file accepting coalesced appends: one CRC'd line per
/// completed range, written with a **single** `write` syscall each. The
/// one-shot [`append_checkpoint`] pays an open + format + write per call;
/// a [`Session`] instead keeps one of these for the whole run, which is what
/// makes per-range checkpointing cheap on large campaigns.
#[derive(Debug)]
pub struct CheckpointWriter {
    file: std::fs::File,
}

impl CheckpointWriter {
    /// Opens `path` for appending, creating it if needed.
    ///
    /// # Errors
    ///
    /// Propagates file I/O errors.
    pub fn open(path: &Path) -> Result<Self, OrchestrateError> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(CheckpointWriter { file })
    }

    /// Appends one entry as a single newline-terminated write, so a crash
    /// between calls can tear at most the final line — the shape
    /// [`read_checkpoint_lossy`] already tolerates. `File::write_all` on an
    /// append-mode descriptor needs no explicit flush: the data is in the
    /// kernel when this returns.
    ///
    /// # Errors
    ///
    /// Propagates file I/O errors.
    pub fn append(&mut self, entry: &CheckpointEntry) -> Result<(), OrchestrateError> {
        let mut line = checkpoint_line(entry);
        line.push('\n');
        self.file.write_all(line.as_bytes())?;
        Ok(())
    }
}

/// Appends one entry to a checkpoint file (creating it if needed) — the
/// one-shot form of [`CheckpointWriter`] for callers (and tests) seeding a
/// file outside a session. Each line carries a CRC32 of its body, so later
/// damage is detected on read.
///
/// # Errors
///
/// Propagates file I/O errors.
pub fn append_checkpoint(path: &Path, entry: &CheckpointEntry) -> Result<(), OrchestrateError> {
    CheckpointWriter::open(path)?.append(entry)
}

/// Rewrites a checkpoint file to hold exactly `entries`, atomically: the new
/// contents are written to a sibling temporary file, synced, and renamed
/// over the original, so a crash at any point leaves either the old file or
/// the new one — never a half-written hybrid. Called on resume when
/// [`read_checkpoint_lossy`] found damaged lines, so the damage is shed once
/// instead of being re-skipped (and re-logged) on every later resume.
///
/// # Errors
///
/// Propagates file I/O errors.
pub fn compact_checkpoint(
    path: &Path,
    entries: &[CheckpointEntry],
) -> Result<(), OrchestrateError> {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut file = std::fs::File::create(&tmp)?;
        for entry in entries {
            writeln!(file, "{}", checkpoint_line(entry))?;
        }
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// The sub-ranges of `0..total` not covered by `done` ranges — the work a
/// resumed coordinator still has to dispatch.
fn missing_ranges(total: u64, done: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut sorted: Vec<(u64, u64)> = done.to_vec();
    sorted.sort_unstable();
    let mut missing = Vec::new();
    let mut cursor = 0u64;
    for (lo, hi) in sorted {
        if lo > cursor {
            missing.push((cursor, lo.min(total)));
        }
        cursor = cursor.max(hi);
        if cursor >= total {
            break;
        }
    }
    if cursor < total {
        missing.push((cursor, total));
    }
    missing
}

/// Splits ranges into dispatch chunks of at most `chunk` trials.
fn chunk_ranges(ranges: &[(u64, u64)], chunk: u64) -> VecDeque<(u64, u64)> {
    let chunk = chunk.max(1);
    let mut out = VecDeque::new();
    for &(lo, hi) in ranges {
        let mut start = lo;
        while start < hi {
            let end = (start + chunk).min(hi);
            out.push_back((start, end));
            start = end;
        }
    }
    out
}

/// Merges completed ranges into the full `0..total` record stream,
/// validating that the ranges tile the interval exactly and that every
/// record sits in its own slot. The result is the stream a single-process
/// campaign would have produced.
fn merge_ranges(
    total: u64,
    mut done: Vec<(u64, u64, Vec<TrialRecord>)>,
) -> Result<Vec<TrialRecord>, OrchestrateError> {
    done.sort_by_key(|&(lo, _, _)| lo);
    let mut merged: Vec<TrialRecord> = Vec::with_capacity(total as usize);
    let mut cursor = 0u64;
    for (lo, hi, records) in done {
        if lo != cursor {
            return Err(OrchestrateError::Coverage(format!(
                "ranges do not tile 0..{total}: expected a range starting at {cursor}, got {lo}..{hi}"
            )));
        }
        if records.len() as u64 != hi - lo {
            return Err(OrchestrateError::Coverage(format!(
                "range {lo}..{hi} carries {} record(s)",
                records.len()
            )));
        }
        merged.extend(records);
        cursor = hi;
    }
    if cursor != total {
        return Err(OrchestrateError::Coverage(format!(
            "ranges cover 0..{cursor} of 0..{total}"
        )));
    }
    for (slot, record) in merged.iter().enumerate() {
        if record.trial != slot as u64 {
            return Err(OrchestrateError::Coverage(format!(
                "slot {slot} holds trial {}",
                record.trial
            )));
        }
    }
    Ok(merged)
}

/// Progress notifications from a dispatch loop — how tests observe (and
/// interfere with) an in-flight orchestration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrchestrationEvent {
    /// A range was handed to a worker.
    RangeAssigned {
        /// Worker index within the session.
        worker: usize,
        /// Range start (inclusive).
        lo: u64,
        /// Range end (exclusive).
        hi: u64,
    },
    /// A worker delivered a complete, validated range.
    RangeCompleted {
        /// Worker index within the session.
        worker: usize,
        /// Range start (inclusive).
        lo: u64,
        /// Range end (exclusive).
        hi: u64,
    },
    /// A range was skipped because the checkpoint already covers it.
    RangeRestored {
        /// Range start (inclusive).
        lo: u64,
        /// Range end (exclusive).
        hi: u64,
    },
    /// A worker disconnected, broke protocol, or delivered damaged bytes;
    /// its in-flight range (if any) has been re-queued.
    WorkerLost {
        /// Worker index within the session.
        worker: usize,
    },
    /// A worker held a range past the receive timeout; the range was
    /// re-dispatched speculatively to an idle worker. Whichever copy
    /// finishes first wins; the other completion is discarded.
    RangeSpeculated {
        /// The straggling worker still holding the original assignment.
        worker: usize,
        /// Range start (inclusive).
        lo: u64,
        /// Range end (exclusive).
        hi: u64,
    },
    /// A replacement worker process was spawned, connected, and joined the
    /// pool after earlier losses.
    WorkerRespawned {
        /// The new worker's index within the session.
        worker: usize,
    },
}

/// What a worker forwarder delivers into the coordinator's shared inbox.
enum Delivery {
    /// A parsed JSON frame.
    Frame(JsonValue),
    /// A decoded record block: the job id and its batch of records.
    Block(u64, Vec<TrialRecord>),
    /// A frame that was not valid JSON / not a decodable block.
    Malformed(String),
    /// The connection died on damaged bytes (CRC mismatch, torn frame) —
    /// the reason recorded by the transport's reader.
    Corrupt(String),
    /// The connection closed cleanly.
    Gone,
}

struct WorkerHandle {
    conn: Arc<Connection>,
    pid: u64,
    /// Protocol version from the worker's hello (1 when unstated): gates
    /// whether run frames carry `batch`/`compress`.
    proto: u64,
    alive: bool,
    forwarder: Option<JoinHandle<()>>,
}

struct Inflight {
    job: u64,
    lo: u64,
    hi: u64,
    records: Vec<TrialRecord>,
    /// Whether this range has already been speculatively re-dispatched —
    /// one speculation per straggler, then the 2× deadline drops it.
    speculated: bool,
}

/// Spawns the thread that pumps one worker connection into the shared inbox,
/// translating the close reason: recorded read damage becomes
/// [`Delivery::Corrupt`], a clean hangup becomes [`Delivery::Gone`]. Frames
/// are decoded here — JSON parsing and block decompression both — so the
/// dispatch thread only ever handles ready deliveries.
fn spawn_forwarder(
    conn: &Arc<Connection>,
    index: usize,
    tx: BoundedSender<(usize, Delivery)>,
) -> JoinHandle<()> {
    let conn = Arc::clone(conn);
    std::thread::spawn(move || loop {
        match conn.recv() {
            Some(frame) => {
                let delivery = if is_block_frame(&frame) {
                    // The frame CRC already vouched for these bytes, so a
                    // decode failure here is a protocol bug, not line noise —
                    // but it still only costs this one worker.
                    match decode_block(&frame) {
                        Ok((job, records)) => Delivery::Block(job, records),
                        Err(err) => Delivery::Malformed(format!("undecodable block: {err}")),
                    }
                } else {
                    match parse_frame(&frame) {
                        Ok(msg) => Delivery::Frame(msg),
                        Err(err) => Delivery::Malformed(err),
                    }
                };
                if tx.send((index, delivery)).is_err() {
                    return;
                }
            }
            None => {
                let delivery = match conn.read_fault() {
                    Some(fault) => Delivery::Corrupt(fault),
                    None => Delivery::Gone,
                };
                let _ = tx.send((index, delivery));
                return;
            }
        }
    })
}

/// Coordinator configuration: how many workers to spawn, with what command,
/// at what scale, with what chunking, checkpointing, liveness policy,
/// respawn budget, and (for chaos runs) fault plan.
#[derive(Debug, Clone)]
pub struct Orchestrator {
    scale: Scale,
    workers: usize,
    command: Vec<String>,
    chunk: Option<u64>,
    checkpoint: Option<PathBuf>,
    recv_timeout: Duration,
    respawn_budget: u32,
    worker_faults: Option<FaultPlan>,
    batch: u64,
    compress: bool,
}

impl Orchestrator {
    /// A coordinator that will spawn workers with `command` (executable plus
    /// fixed arguments; `--connect <addr>` is appended) resolving scenarios
    /// at `scale`.
    pub fn new(scale: Scale, command: Vec<String>) -> Self {
        assert!(
            !command.is_empty(),
            "worker command must name an executable"
        );
        Orchestrator {
            scale,
            workers: 2,
            command,
            chunk: None,
            checkpoint: None,
            recv_timeout: DEFAULT_RECV_TIMEOUT,
            respawn_budget: DEFAULT_RESPAWN_BUDGET,
            worker_faults: None,
            batch: DEFAULT_BATCH_RECORDS,
            compress: false,
        }
    }

    /// Sets how many records workers pack per block frame (default
    /// [`DEFAULT_BATCH_RECORDS`]). `0` disables batching entirely and falls
    /// back to the protocol-1 one-JSON-frame-per-trial stream; `1` ships
    /// degenerate single-record blocks (useful to isolate framing cost).
    /// Only protocol-2 workers batch either way.
    pub fn batch_records(mut self, batch: u64) -> Self {
        self.batch = batch;
        self
    }

    /// Passes each block's columnar body through the std-only LZ codec
    /// (default off: on a localhost wire the bytes are cheaper than the
    /// cycles, see DESIGN.md; turn it on when workers cross a real network).
    /// No effect on the legacy per-trial stream.
    pub fn compress(mut self, compress: bool) -> Self {
        self.compress = compress;
        self
    }

    /// Sets the worker-process count (default 2; clamped to at least 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Overrides the dispatch chunk size in trials. The default is
    /// `ceil(trials / (workers · 4))` per spec: enough chunks that a lost
    /// worker forfeits little and stragglers rebalance, few enough that
    /// framing overhead stays negligible.
    pub fn chunk(mut self, chunk: u64) -> Self {
        self.chunk = Some(chunk.max(1));
        self
    }

    /// Persists completed ranges to `path` and resumes from it when it
    /// already exists.
    pub fn checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// Sets the liveness policy's receive timeout (default 600 s, clamped to
    /// at least one second). A worker holding a range but silent this long
    /// gets the range speculatively re-dispatched; silent twice this long,
    /// it is dropped and its range re-queued.
    pub fn recv_timeout(mut self, timeout: Duration) -> Self {
        self.recv_timeout = timeout.max(Duration::from_secs(1));
        self
    }

    /// Sets how many replacement workers the session may spawn over its
    /// lifetime (default 2; zero disables respawning). Each respawn waits
    /// out an exponential backoff with seeded jitter first.
    pub fn respawn_budget(mut self, budget: u32) -> Self {
        self.respawn_budget = budget;
        self
    }

    /// Injects deterministic faults on every worker's outgoing connection:
    /// each spawned worker (respawns included) receives `plan` reseeded with
    /// a distinct derived seed through the `AGREEMENT_FAULTS` environment
    /// hook, so one plan seed reproduces the entire multi-process fault
    /// schedule. Production runs never set this and pay nothing.
    pub fn worker_faults(mut self, plan: FaultPlan) -> Self {
        self.worker_faults = Some(plan);
        self
    }

    /// Spawns the workers, waits for each to connect and say hello, and
    /// returns the live [`Session`].
    ///
    /// # Errors
    ///
    /// [`OrchestrateError::Io`] when spawning or accepting fails, and
    /// [`OrchestrateError::Protocol`] when a worker's first frame is not a
    /// well-formed hello within the spawn deadline.
    pub fn start(self) -> Result<Session, OrchestrateError> {
        let listener = Listener::bind_local()?;
        let addr = listener.local_addr()?.to_string();
        let mut children = Vec::with_capacity(self.workers);
        for spawn in 0..self.workers {
            children.push(spawn_worker(
                &self.command,
                &addr,
                self.worker_faults.as_ref(),
                spawn as u64,
            )?);
        }

        let deadline = Instant::now() + SPAWN_DEADLINE;
        let (inbox_tx, inbox) = bounded::<(usize, Delivery)>(1024);
        let mut workers = Vec::with_capacity(children.len());
        for index in 0..children.len() {
            let conn = listener.accept_deadline(deadline)?;
            let (pid, proto) = read_hello(&conn, deadline, index)?;
            let conn = Arc::new(conn);
            let forwarder = spawn_forwarder(&conn, index, inbox_tx.clone());
            workers.push(WorkerHandle {
                conn,
                pid,
                proto,
                alive: true,
                forwarder: Some(forwarder),
            });
        }

        // The jitter stream is seeded from the fault plan when there is one
        // (so a chaos run's whole recovery timeline replays from one seed)
        // and from a fixed constant otherwise.
        let jitter_seed = self.worker_faults.as_ref().map_or(0x7E5_7A77, |p| p.seed);
        Ok(Session {
            scale: self.scale,
            chunk: self.chunk,
            checkpoint: self.checkpoint,
            recv_timeout: self.recv_timeout,
            respawn_budget: self.respawn_budget,
            respawns_used: 0,
            respawn_due: None,
            respawn_rng: ProcessorRng::from_seed(derive_seed(jitter_seed, 0xBAC0FF)),
            worker_faults: self.worker_faults,
            target_workers: self.workers,
            spawn_counter: self.workers as u64,
            command: self.command,
            addr,
            listener,
            workers,
            children,
            inbox,
            inbox_tx,
            next_job: 0,
            retired_jobs: BTreeSet::new(),
            batch: self.batch,
            compress: self.compress,
            checkpoint_writer: None,
        })
    }
}

/// Spawns one worker process dialing back to `addr`. With a fault plan
/// configured, the worker inherits it through the environment hook,
/// reseeded per spawn index so every worker (and every respawn) injures its
/// frames on its own deterministic substream.
fn spawn_worker(
    command: &[String],
    addr: &str,
    faults: Option<&FaultPlan>,
    spawn_index: u64,
) -> io::Result<Child> {
    let mut cmd = Command::new(&command[0]);
    cmd.args(&command[1..])
        .arg("--connect")
        .arg(addr)
        // Workers write records to the socket, never to stdout; a stray
        // print must not corrupt the coordinator's own output.
        .stdout(Stdio::null());
    if let Some(plan) = faults {
        let reseeded = plan.reseeded(derive_seed(plan.seed, spawn_index));
        cmd.env(FAULT_ENV, reseeded.to_string());
    }
    cmd.spawn()
}

/// Receives and validates a worker's hello frame, returning its pid and
/// protocol version. A hello without a `proto` field is a protocol-1 worker
/// — the shape every worker sent before block frames existed — and keeps the
/// per-trial record stream.
fn read_hello(
    conn: &Connection,
    deadline: Instant,
    index: usize,
) -> Result<(u64, u64), OrchestrateError> {
    let hello = conn.recv_deadline(deadline).map_err(|err| {
        OrchestrateError::Protocol(format!("worker {index} sent no hello: {err:?}"))
    })?;
    let hello = parse_frame(&hello).map_err(OrchestrateError::Protocol)?;
    if str_field(&hello, "type") != Ok("hello") {
        return Err(OrchestrateError::Protocol(format!(
            "worker {index}'s first frame was not a hello"
        )));
    }
    let pid = int_field(&hello, "pid").map_err(OrchestrateError::Protocol)?;
    let proto = int_field(&hello, "proto").unwrap_or(1);
    Ok((pid, proto))
}

fn parse_frame(frame: &[u8]) -> Result<JsonValue, String> {
    let text = std::str::from_utf8(frame).map_err(|err| format!("non-UTF-8 frame: {err}"))?;
    JsonValue::parse(text)
}

/// A live orchestration session: connected worker processes, reusable across
/// many specs (the `scenarios` bin runs its whole matrix through one
/// session). The session keeps its listener open so replacement workers can
/// dial in after losses.
pub struct Session {
    scale: Scale,
    chunk: Option<u64>,
    checkpoint: Option<PathBuf>,
    recv_timeout: Duration,
    respawn_budget: u32,
    respawns_used: u32,
    respawn_due: Option<Instant>,
    respawn_rng: ProcessorRng,
    worker_faults: Option<FaultPlan>,
    target_workers: usize,
    spawn_counter: u64,
    command: Vec<String>,
    addr: String,
    listener: Listener,
    workers: Vec<WorkerHandle>,
    children: Vec<Child>,
    inbox: BoundedReceiver<(usize, Delivery)>,
    // Kept so the inbox stays connected for forwarders spawned later
    // (respawns) — and so a momentarily empty pool reads as a timeout, not
    // a disconnect.
    inbox_tx: BoundedSender<(usize, Delivery)>,
    next_job: u64,
    // Jobs whose range has been settled (merged, or superseded by a twin).
    // Job ids are session-unique, so a frame naming a retired job can only
    // be a duplicated late copy — benign — while a frame naming an unknown
    // job is a protocol violation. Without this, a duplicated final
    // `range_done` of one spec poisons the next spec's run on the same
    // session.
    retired_jobs: BTreeSet<u64>,
    batch: u64,
    compress: bool,
    // One open handle for coalesced checkpoint appends, (re)opened per spec
    // run *after* any resume compaction (a rename would orphan the handle's
    // inode and lose every subsequent append).
    checkpoint_writer: Option<CheckpointWriter>,
}

impl Session {
    /// OS process ids of the worker processes, in session order — what a
    /// fault-injection test needs to kill one mid-range.
    pub fn worker_pids(&self) -> Vec<u64> {
        self.workers.iter().map(|w| w.pid).collect()
    }

    /// How many workers are still connected.
    pub fn live_workers(&self) -> usize {
        self.workers.iter().filter(|w| w.alive).count()
    }

    /// Removes and returns the OS process handle of session worker `index` —
    /// fault injection for tests: `kill()` it and watch the dispatch loop
    /// reroute its range. Children are matched by the pid the worker reported
    /// in its hello (spawn order and connection-accept order can differ), so
    /// the handle always belongs to the worker the coordinator calls `index`.
    /// The session stops reaping a taken child; the caller owns the `wait`.
    ///
    /// # Panics
    ///
    /// Panics if worker `index`'s process was already taken.
    pub fn take_worker_process(&mut self, index: usize) -> Child {
        let pid = self.workers[index].pid;
        let position = self
            .children
            .iter()
            .position(|child| u64::from(child.id()) == pid)
            .unwrap_or_else(|| panic!("worker {index}'s process (pid {pid}) already taken"));
        self.children.remove(position)
    }

    /// Runs one spec's full trial range across the workers and returns the
    /// merged record stream, bit-identical to a single-process
    /// [`ScenarioSpec::run_range_records`] over `0..trials`.
    ///
    /// # Errors
    ///
    /// See [`OrchestrateError`]; spec-resolution failures surface as
    /// [`OrchestrateError::Scenario`], exactly as a local run would report
    /// them.
    pub fn run_spec_records(
        &mut self,
        spec: &ScenarioSpec,
    ) -> Result<Vec<TrialRecord>, OrchestrateError> {
        self.run_spec_records_with(spec, |_| {})
    }

    /// Like [`Session::run_spec_records`], with a progress callback invoked
    /// from the dispatch loop on every assignment, completion, restoration
    /// and worker loss.
    ///
    /// # Errors
    ///
    /// See [`Session::run_spec_records`].
    pub fn run_spec_records_with(
        &mut self,
        spec: &ScenarioSpec,
        mut on_event: impl FnMut(OrchestrationEvent),
    ) -> Result<Vec<TrialRecord>, OrchestrateError> {
        // Fail exactly like a local run before involving any worker.
        spec.feasibility()?;
        let total = spec.trials;
        let id = spec.id();

        // Restore checkpointed ranges for this exact workload; damage found
        // in the file is shed once via an atomic compaction. The coalescing
        // writer from any previous spec run is closed first: compaction
        // renames a fresh file over the path, which would silently orphan an
        // open append handle.
        self.checkpoint_writer = None;
        let mut done: Vec<(u64, u64, Vec<TrialRecord>)> = Vec::new();
        let mut completed: BTreeSet<(u64, u64)> = BTreeSet::new();
        if let Some(path) = self.checkpoint.clone() {
            if path.exists() {
                let (entries, skipped) = read_checkpoint_lossy(&path)?;
                if skipped > 0 {
                    eprintln!(
                        "orchestrate: checkpoint {} held {skipped} damaged line(s); compacting",
                        path.display()
                    );
                    compact_checkpoint(&path, &entries)?;
                }
                for entry in entries {
                    if entry.scenario == id
                        && entry.base_seed == spec.base_seed
                        && entry.trials == total
                        && entry.hi <= total
                        && completed.insert((entry.lo, entry.hi))
                    {
                        on_event(OrchestrationEvent::RangeRestored {
                            lo: entry.lo,
                            hi: entry.hi,
                        });
                        done.push((entry.lo, entry.hi, entry.records));
                    }
                }
            }
            self.checkpoint_writer = Some(CheckpointWriter::open(&path)?);
        }

        let restored: Vec<(u64, u64)> = done.iter().map(|&(lo, hi, _)| (lo, hi)).collect();
        let mut covered: u64 = restored.iter().map(|&(lo, hi)| hi - lo).sum();
        let chunk = self.chunk.unwrap_or_else(|| {
            let shards = (self.target_workers as u64) * 4;
            total.div_ceil(shards.max(1)).max(1)
        });
        let mut pending = chunk_ranges(&missing_ranges(total, &restored), chunk);
        let mut inflight: Vec<Option<Inflight>> = (0..self.workers.len()).map(|_| None).collect();
        let mut last_heard: Vec<Instant> = vec![Instant::now(); self.workers.len()];
        // Reused drain buffer: one wakeup consumes every queued delivery.
        let mut drained: Vec<(usize, Delivery)> = Vec::new();

        let outcome = loop {
            // Replace lost capacity when the budget allows: schedule (or
            // keep) a pending respawn whenever the pool is short, and
            // perform one whose backoff has elapsed. Doing this at the loop
            // top — not only on a receive timeout — keeps respawns timely
            // even while the surviving workers stream frames continuously.
            self.maybe_schedule_respawn();
            if self.respawn_due.is_some_and(|due| Instant::now() >= due) {
                self.respawn_due = None;
                match self.respawn() {
                    Ok(index) => {
                        inflight.push(None);
                        last_heard.push(Instant::now());
                        on_event(OrchestrationEvent::WorkerRespawned { worker: index });
                    }
                    Err(err) => {
                        // The attempt is spent; the next iteration schedules
                        // another (with a longer backoff) if the budget
                        // allows.
                        eprintln!("orchestrate: respawn attempt failed: {err}");
                    }
                }
            }

            // Hand pending chunks to every idle live worker, skipping
            // ranges a speculative twin already completed.
            for (index, slot) in inflight.iter_mut().enumerate() {
                if slot.is_some() || !self.workers[index].alive {
                    continue;
                }
                let assignment = loop {
                    match pending.pop_front() {
                        Some(range) if completed.contains(&range) => continue,
                        other => break other,
                    }
                };
                let Some((lo, hi)) = assignment else {
                    break;
                };
                let job = self.next_job;
                self.next_job += 1;
                let mut run = JsonValue::object();
                run.push("type", "run")
                    .push("job", job)
                    .push("scenario", id.as_str())
                    .push("scale", scale_label(self.scale))
                    .push("trials", total)
                    .push("base_seed", spec.base_seed)
                    .push("max_windows", spec.limits.max_windows)
                    .push("max_steps", spec.limits.max_steps)
                    .push("lo", lo)
                    .push("hi", hi);
                // Only a protocol-2 worker understands block streaming; a
                // legacy worker gets the bare v1 frame and answers with
                // per-trial records, which the dispatch loop still accepts.
                if self.workers[index].proto >= 2 && self.batch > 0 {
                    run.push("batch", self.batch.min(MAX_BATCH_RECORDS))
                        .push("compress", self.compress);
                }
                if self.workers[index]
                    .conn
                    .send(run.to_string().into_bytes())
                    .is_err()
                {
                    // The forwarder will deliver the Gone event; just skip.
                    pending.push_front((lo, hi));
                    continue;
                }
                *slot = Some(Inflight {
                    job,
                    lo,
                    hi,
                    records: Vec::with_capacity((hi - lo) as usize),
                    speculated: false,
                });
                last_heard[index] = Instant::now();
                on_event(OrchestrationEvent::RangeAssigned {
                    worker: index,
                    lo,
                    hi,
                });
            }

            if covered >= total {
                break Ok(());
            }
            if self.live_workers() == 0 && !self.respawn_possible() {
                break Err(OrchestrateError::WorkersExhausted(format!(
                    "all {} worker(s) lost (respawn budget {} spent) with {} range(s) of '{id}' unfinished",
                    self.workers.len(),
                    self.respawn_budget,
                    pending.len() + inflight.iter().flatten().count(),
                )));
            }

            // Wake at the earliest of: a straggler crossing its speculation
            // (1×) or drop (2×) deadline, a due respawn, or a liveness tick.
            let mut deadline = Instant::now() + self.recv_timeout;
            for (i, slot) in inflight.iter().enumerate() {
                if let Some(range) = slot {
                    if self.workers[i].alive {
                        let factor = if range.speculated { 2 } else { 1 };
                        deadline = deadline.min(last_heard[i] + self.recv_timeout * factor);
                    }
                }
            }
            if let Some(due) = self.respawn_due {
                deadline = deadline.min(due);
            }

            match self.inbox.recv_many_deadline(&mut drained, deadline) {
                Ok(_) => {
                    // One wakeup, every queued delivery: the drain processes
                    // a burst of frames (typical with block-streaming
                    // workers) in a single pass instead of a lock/wake cycle
                    // per frame.
                    for (index, delivery) in drained.drain(..) {
                        last_heard[index] = Instant::now();
                        if !self.workers[index].alive {
                            // Residue from a worker already written off —
                            // possibly earlier in this same batch.
                            continue;
                        }
                        match delivery {
                            Delivery::Frame(msg) => {
                                if let Err(reason) = handle_frame(
                                    &msg,
                                    FrameContext {
                                        index,
                                        inflight: &mut inflight,
                                        done: &mut done,
                                        completed: &mut completed,
                                        covered: &mut covered,
                                        retired: &mut self.retired_jobs,
                                        checkpoint: self.checkpoint_writer.as_mut(),
                                        scenario: &id,
                                        base_seed: spec.base_seed,
                                        trials: total,
                                        on_event: &mut on_event,
                                    },
                                )? {
                                    self.lose_worker(
                                        index,
                                        &mut inflight,
                                        &mut pending,
                                        &completed,
                                        &mut on_event,
                                    );
                                    eprintln!("orchestrate: worker {index} dropped: {reason}");
                                }
                            }
                            Delivery::Block(job, records) => {
                                if let Err(reason) = handle_block(
                                    job,
                                    records,
                                    FrameContext {
                                        index,
                                        inflight: &mut inflight,
                                        done: &mut done,
                                        completed: &mut completed,
                                        covered: &mut covered,
                                        retired: &mut self.retired_jobs,
                                        checkpoint: self.checkpoint_writer.as_mut(),
                                        scenario: &id,
                                        base_seed: spec.base_seed,
                                        trials: total,
                                        on_event: &mut on_event,
                                    },
                                ) {
                                    self.lose_worker(
                                        index,
                                        &mut inflight,
                                        &mut pending,
                                        &completed,
                                        &mut on_event,
                                    );
                                    eprintln!("orchestrate: worker {index} dropped: {reason}");
                                }
                            }
                            Delivery::Malformed(err) => {
                                self.lose_worker(
                                    index,
                                    &mut inflight,
                                    &mut pending,
                                    &completed,
                                    &mut on_event,
                                );
                                eprintln!(
                                    "orchestrate: worker {index} sent a malformed frame: {err}"
                                );
                            }
                            Delivery::Corrupt(fault) => {
                                self.lose_worker(
                                    index,
                                    &mut inflight,
                                    &mut pending,
                                    &completed,
                                    &mut on_event,
                                );
                                eprintln!(
                                    "orchestrate: worker {index} dropped on frame damage: {fault}"
                                );
                            }
                            Delivery::Gone => {
                                self.lose_worker(
                                    index,
                                    &mut inflight,
                                    &mut pending,
                                    &completed,
                                    &mut on_event,
                                );
                            }
                        }
                    }
                }
                Err(RecvError::Timeout) => {
                    // A due respawn is handled at the loop top; here, apply
                    // the liveness policy: speculate at 1× the timeout, drop
                    // at 2×.
                    let now = Instant::now();
                    for i in 0..inflight.len() {
                        if !self.workers[i].alive {
                            continue;
                        }
                        let Some(range) = inflight[i].as_ref() else {
                            continue;
                        };
                        let (lo, hi, speculated) = (range.lo, range.hi, range.speculated);
                        if now >= last_heard[i] + self.recv_timeout * 2 {
                            eprintln!(
                                "orchestrate: worker {i} silent past twice the receive \
                                 timeout; dropping it"
                            );
                            self.lose_worker(
                                i,
                                &mut inflight,
                                &mut pending,
                                &completed,
                                &mut on_event,
                            );
                        } else if !speculated && now >= last_heard[i] + self.recv_timeout {
                            inflight[i].as_mut().expect("checked above").speculated = true;
                            if !completed.contains(&(lo, hi)) {
                                eprintln!(
                                    "orchestrate: worker {i} silent past the receive timeout; \
                                     speculatively re-dispatching {lo}..{hi}"
                                );
                                pending.push_back((lo, hi));
                                on_event(OrchestrationEvent::RangeSpeculated { worker: i, lo, hi });
                            }
                        }
                    }
                }
                Err(RecvError::Disconnected) => {
                    break Err(OrchestrateError::Protocol(
                        "every worker forwarder exited".into(),
                    ))
                }
            }
        };

        // A worker still holding an assignment here is a straggler whose
        // range a twin already completed. Drop it now: left alone, its
        // eventual frames for this spec's job would poison the next spec run
        // on this session. The respawn budget can replace the capacity.
        for i in 0..inflight.len() {
            if inflight[i].is_some() && self.workers[i].alive {
                eprintln!(
                    "orchestrate: dropping worker {i} still holding an already-completed range"
                );
                self.lose_worker(i, &mut inflight, &mut pending, &completed, &mut on_event);
            }
        }

        outcome?;
        merge_ranges(total, done)
    }

    /// Whether lost capacity can still come back: a respawn is already
    /// scheduled, or the budget has room for another.
    fn respawn_possible(&self) -> bool {
        self.respawn_due.is_some() || self.respawns_used < self.respawn_budget
    }

    /// Schedules a respawn (exponential backoff plus seeded jitter) when the
    /// pool is below target, the budget has room, and none is pending.
    fn maybe_schedule_respawn(&mut self) {
        if self.respawn_due.is_none()
            && self.respawns_used < self.respawn_budget
            && self.live_workers() < self.target_workers
        {
            let attempt = self.respawns_used.min(5);
            let backoff = RESPAWN_BACKOFF_BASE
                .saturating_mul(1 << attempt)
                .min(RESPAWN_BACKOFF_CAP);
            let jitter = Duration::from_millis(self.respawn_rng.range(RESPAWN_JITTER_MS));
            self.respawn_due = Some(Instant::now() + backoff + jitter);
        }
    }

    /// Spawns one replacement worker, waits for its hello, and appends it to
    /// the pool. Consumes one unit of respawn budget whether or not the
    /// attempt succeeds.
    fn respawn(&mut self) -> Result<usize, OrchestrateError> {
        self.respawns_used += 1;
        let spawn_index = self.spawn_counter;
        self.spawn_counter += 1;
        let child = spawn_worker(
            &self.command,
            &self.addr,
            self.worker_faults.as_ref(),
            spawn_index,
        )?;
        self.children.push(child);
        let deadline = Instant::now() + RESPAWN_ACCEPT_DEADLINE;
        let index = self.workers.len();
        let conn = self.listener.accept_deadline(deadline)?;
        let (pid, proto) = read_hello(&conn, deadline, index)?;
        let conn = Arc::new(conn);
        let forwarder = spawn_forwarder(&conn, index, self.inbox_tx.clone());
        self.workers.push(WorkerHandle {
            conn,
            pid,
            proto,
            alive: true,
            forwarder: Some(forwarder),
        });
        eprintln!(
            "orchestrate: respawned worker {index} (pid {pid}, {} of {} budget used)",
            self.respawns_used, self.respawn_budget
        );
        Ok(index)
    }

    /// Marks a worker dead and re-queues its in-flight range (partial
    /// records are discarded: a deterministic re-run is identical). A range
    /// already completed by a speculative twin — or still in flight on one —
    /// is not re-queued.
    fn lose_worker(
        &mut self,
        index: usize,
        inflight: &mut [Option<Inflight>],
        pending: &mut VecDeque<(u64, u64)>,
        completed: &BTreeSet<(u64, u64)>,
        on_event: &mut impl FnMut(OrchestrationEvent),
    ) {
        if !self.workers[index].alive {
            return;
        }
        self.workers[index].alive = false;
        // Force the socket shut: the worker process observes the hangup and
        // exits, and the forwarder unblocks — a dropped worker must never
        // leave a thread or process for shutdown to hang on.
        self.workers[index].conn.shutdown();
        if let Some(lost) = inflight[index].take() {
            let range = (lost.lo, lost.hi);
            let twin_running = inflight
                .iter()
                .flatten()
                .any(|other| (other.lo, other.hi) == range);
            if !completed.contains(&range) && !twin_running {
                pending.push_front(range);
            }
        }
        on_event(OrchestrationEvent::WorkerLost { worker: index });
    }

    /// Sends every live worker a shutdown frame and reaps the worker
    /// processes. Called automatically on drop; explicit calls get the exit
    /// error reporting.
    ///
    /// # Errors
    ///
    /// [`OrchestrateError::Io`] when reaping a child fails.
    pub fn shutdown(mut self) -> Result<(), OrchestrateError> {
        self.shutdown_inner()?;
        Ok(())
    }

    fn shutdown_inner(&mut self) -> Result<(), OrchestrateError> {
        let mut bye = JsonValue::object();
        bye.push("type", "shutdown");
        let frame = bye.to_string().into_bytes();
        for worker in &self.workers {
            if worker.alive {
                let _ = worker.conn.send(frame.clone());
            } else {
                // A worker dropped for a violation may still hold an open
                // socket (lose_worker closes it too, but a worker never
                // lost through that path — e.g. a failed hello — may not);
                // force it shut so its forwarder and process can exit.
                worker.conn.shutdown();
            }
        }
        let deadline = Instant::now() + SHUTDOWN_DEADLINE;
        for worker in &mut self.workers {
            worker.alive = false;
            if let Some(forwarder) = worker.forwarder.take() {
                // A live worker exits on the shutdown frame and the
                // forwarder observes the hangup; one that ignores the frame
                // gets its socket forced shut at the deadline instead of
                // hanging the join forever.
                while !forwarder.is_finished() && Instant::now() < deadline {
                    std::thread::sleep(Duration::from_millis(5));
                }
                if !forwarder.is_finished() {
                    worker.conn.shutdown();
                }
                let _ = forwarder.join();
            }
        }
        for child in &mut self.children {
            loop {
                match child.try_wait()? {
                    Some(_) => break,
                    None if Instant::now() >= deadline => {
                        // Ignored both the shutdown frame and a dead socket:
                        // reap it forcibly rather than hang the coordinator.
                        let _ = child.kill();
                        child.wait()?;
                        break;
                    }
                    None => std::thread::sleep(Duration::from_millis(5)),
                }
            }
        }
        self.children.clear();
        Ok(())
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        let _ = self.shutdown_inner();
        // A worker that ignored the shutdown frame must not outlive the
        // session: reap whatever is left forcibly.
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Everything one worker frame is handled against — bundled so the dispatch
/// loop hands over one coherent view of the run.
struct FrameContext<'a, F: FnMut(OrchestrationEvent)> {
    index: usize,
    inflight: &'a mut [Option<Inflight>],
    done: &'a mut Vec<(u64, u64, Vec<TrialRecord>)>,
    /// Exact ranges already merged — the dedupe set that makes duplicated
    /// frames and speculative twin completions idempotent.
    completed: &'a mut BTreeSet<(u64, u64)>,
    /// Trials covered so far (restored + completed); drives loop exit.
    covered: &'a mut u64,
    /// Session-wide set of settled job ids; late duplicates of their frames
    /// are discarded instead of read as protocol violations.
    retired: &'a mut BTreeSet<u64>,
    checkpoint: Option<&'a mut CheckpointWriter>,
    scenario: &'a str,
    base_seed: u64,
    trials: u64,
    on_event: &'a mut F,
}

/// Handles one worker frame inside the dispatch loop. Returns `Ok(Ok(()))`
/// on success, `Ok(Err(reason))` when the worker must be dropped, and `Err`
/// for coordinator-side failures (checkpoint I/O).
///
/// Duplicate deliveries are idempotent by design: a record for a trial the
/// range already holds is discarded, and a `range_done` for a range already
/// completed (a duplicated frame, or the slower copy of a speculative
/// re-dispatch) is discarded without touching the merge. Everything else —
/// gaps, mismatches, unparseable records — drops the worker.
fn handle_frame<F: FnMut(OrchestrationEvent)>(
    msg: &JsonValue,
    ctx: FrameContext<'_, F>,
) -> Result<Result<(), String>, OrchestrateError> {
    let FrameContext {
        index,
        inflight,
        done,
        completed,
        covered,
        retired,
        checkpoint,
        scenario,
        base_seed,
        trials,
        on_event,
    } = ctx;
    let kind = match str_field(msg, "type") {
        Ok(kind) => kind,
        Err(err) => return Ok(Err(err)),
    };
    match kind {
        "record" => {
            let job = match int_field(msg, "job") {
                Ok(job) => job,
                Err(err) => return Ok(Err(err)),
            };
            let Some(current) = inflight[index].as_mut() else {
                if retired.contains(&job) {
                    // A duplicated late copy of a settled job's record.
                    return Ok(Ok(()));
                }
                return Ok(Err("record frame outside any assigned range".into()));
            };
            if job != current.job {
                if retired.contains(&job) {
                    return Ok(Ok(()));
                }
                return Ok(Err("record frame for a stale job".into()));
            }
            let Some(payload) = msg.get("record") else {
                return Ok(Err("record frame without a 'record' object".into()));
            };
            let record = match TrialRecord::from_json(payload) {
                Ok(record) => record,
                Err(err) => return Ok(Err(format!("unparseable record: {err}"))),
            };
            let expected = current.lo + current.records.len() as u64;
            if record.trial < expected {
                // A duplicated frame re-delivering a trial already held:
                // discard, don't punish. (A deterministic re-run is
                // identical, so there is nothing to compare.)
                return Ok(Ok(()));
            }
            if record.trial > expected {
                // A gap means a record frame was lost in flight — the range
                // can never complete; re-run it elsewhere.
                return Ok(Err(format!(
                    "record gap: expected trial {expected}, got {}",
                    record.trial
                )));
            }
            current.records.push(record);
            Ok(Ok(()))
        }
        "range_done" => {
            let job = int_field(msg, "job");
            let lo = int_field(msg, "lo");
            let hi = int_field(msg, "hi");
            let matches_current = inflight[index].as_ref().is_some_and(|current| {
                job == Ok(current.job) && lo == Ok(current.lo) && hi == Ok(current.hi)
            });
            if !matches_current {
                // A duplicated range_done arriving after its original was
                // already merged is benign — its job is retired (possibly by
                // an earlier spec on this session) or its range is in this
                // run's completed set. Any other mismatch is a violation.
                if let Ok(job) = job {
                    if retired.contains(&job) {
                        return Ok(Ok(()));
                    }
                }
                if let (Ok(lo), Ok(hi)) = (lo, hi) {
                    if completed.contains(&(lo, hi)) {
                        return Ok(Ok(()));
                    }
                }
                return Ok(Err("range_done does not match the assigned range".into()));
            }
            {
                // Validate before taking the slot: on failure the range must
                // stay in flight so losing the worker re-queues it (a taken
                // slot would leak the range and stall the run forever).
                let current = inflight[index].as_ref().expect("matched above");
                if current.records.len() as u64 != current.hi - current.lo {
                    return Ok(Err(format!(
                        "range {}..{} completed with {} record(s)",
                        current.lo,
                        current.hi,
                        current.records.len()
                    )));
                }
            }
            let current = inflight[index].take().expect("matched above");
            retired.insert(current.job);
            if completed.contains(&(current.lo, current.hi)) {
                // The straggler finished after its speculative twin: the
                // range is already merged; free the worker and move on.
                return Ok(Ok(()));
            }
            if let Some(writer) = checkpoint {
                // Coalesced: the whole completed range lands as one write on
                // the session's open handle.
                writer.append(&CheckpointEntry {
                    scenario: scenario.to_string(),
                    base_seed,
                    trials,
                    lo: current.lo,
                    hi: current.hi,
                    records: current.records.clone(),
                })?;
            }
            completed.insert((current.lo, current.hi));
            *covered += current.hi - current.lo;
            on_event(OrchestrationEvent::RangeCompleted {
                worker: index,
                lo: current.lo,
                hi: current.hi,
            });
            done.push((current.lo, current.hi, current.records));
            Ok(Ok(()))
        }
        "error" => {
            let message = str_field(msg, "message").unwrap_or("unspecified worker error");
            Ok(Err(format!("worker reported: {message}")))
        }
        other => Ok(Err(format!("unexpected frame type '{other}'"))),
    }
}

/// Handles one decoded record block inside the dispatch loop: the batched
/// equivalent of the `"record"` arm of [`handle_frame`], with the same
/// idempotence rules applied per record. Returns `Err(reason)` when the
/// worker must be dropped.
///
/// A block re-delivering trials the range already holds (a duplicated frame)
/// skips them record by record — a deterministic re-run is identical, so
/// there is nothing to compare — while a gap or an overrun past the assigned
/// range is unrecoverable for this worker and re-runs the range elsewhere.
fn handle_block<F: FnMut(OrchestrationEvent)>(
    job: u64,
    records: Vec<TrialRecord>,
    ctx: FrameContext<'_, F>,
) -> Result<(), String> {
    let FrameContext {
        index,
        inflight,
        retired,
        ..
    } = ctx;
    let Some(current) = inflight[index].as_mut() else {
        if retired.contains(&job) {
            // A duplicated late copy of a settled job's block.
            return Ok(());
        }
        return Err("block frame outside any assigned range".into());
    };
    if job != current.job {
        if retired.contains(&job) {
            return Ok(());
        }
        return Err("block frame for a stale job".into());
    }
    for record in records {
        let expected = current.lo + current.records.len() as u64;
        if record.trial < expected {
            continue;
        }
        if record.trial > expected {
            return Err(format!(
                "record gap: expected trial {expected}, got {}",
                record.trial
            ));
        }
        if expected >= current.hi {
            return Err(format!(
                "block overflows the assigned range {}..{}",
                current.lo, current.hi
            ));
        }
        current.records.push(record);
    }
    Ok(())
}

/// The worker half: connects back to the coordinator, executes the ranges it
/// is handed, and streams the records. This is what `scenarios --worker` and
/// the `orchestrate_worker` binary run; it returns when the coordinator says
/// shutdown or hangs up.
pub mod worker {
    use super::*;

    /// Serves one coordinator at `addr` until shutdown or disconnect.
    ///
    /// When the `AGREEMENT_FAULTS` environment variable carries a
    /// [`FaultPlan`] spec, the worker's outgoing connection runs through the
    /// deterministic fault injector — this is the env-gated hook the
    /// orchestrator's [`Orchestrator::worker_faults`] uses, and chaos tests
    /// can set directly. An unset variable costs nothing; a malformed one is
    /// a loud error, never a silently fault-free run.
    ///
    /// # Errors
    ///
    /// Propagates connection errors and a malformed fault spec; execution
    /// errors are reported to the coordinator in-protocol, not returned
    /// here.
    pub fn serve(addr: &str) -> io::Result<()> {
        let faults = FaultPlan::from_env()
            .map_err(|err| io::Error::new(io::ErrorKind::InvalidInput, err))?;
        let mut conn = match &faults {
            Some(plan) => Connection::connect_with_faults(addr, plan)?,
            None => Connection::connect(addr)?,
        };
        let mut hello = JsonValue::object();
        hello
            .push("type", "hello")
            .push("pid", std::process::id() as u64)
            .push("proto", PROTO_VERSION);
        if conn.send(hello.to_string().into_bytes()).is_err() {
            return Ok(());
        }
        // Range trials fan out across this process's cores exactly like a
        // local campaign; determinism is per-trial, so the process/thread
        // split never shows in the records.
        let campaign = Campaign::parallel();
        // Guard against duplicated run frames (a faulted coordinator→worker
        // leg can re-deliver one): re-executing would re-stream records the
        // coordinator has already consumed.
        let mut last_job: Option<u64> = None;
        while let Some(frame) = conn.recv() {
            let msg = match parse_frame(&frame) {
                Ok(msg) => msg,
                Err(_) => break,
            };
            match str_field(&msg, "type") {
                Ok("run") => {
                    let job = int_field(&msg, "job").unwrap_or(0);
                    if last_job == Some(job) {
                        continue;
                    }
                    last_job = Some(job);
                    // Batch size and compression arrive on the run frame (a
                    // coordinator only sends them after our proto-2 hello);
                    // their absence — a protocol-1 coordinator — selects the
                    // legacy one-JSON-frame-per-trial stream.
                    let batch =
                        int_field(&msg, "batch").unwrap_or(0).min(MAX_BATCH_RECORDS) as usize;
                    let compress = msg
                        .get("compress")
                        .and_then(JsonValue::as_bool)
                        .unwrap_or(false);
                    match execute(&msg, &campaign) {
                        Ok((lo, hi, records)) => {
                            if batch > 0 {
                                for block in records.chunks(batch) {
                                    if conn.send(encode_block(job, block, compress)).is_err() {
                                        return Ok(());
                                    }
                                }
                            } else {
                                for record in &records {
                                    let mut out = JsonValue::object();
                                    out.push("type", "record")
                                        .push("job", job)
                                        .push("record", record.to_json());
                                    if conn.send(out.to_string().into_bytes()).is_err() {
                                        return Ok(());
                                    }
                                }
                            }
                            let mut out = JsonValue::object();
                            out.push("type", "range_done")
                                .push("job", job)
                                .push("lo", lo)
                                .push("hi", hi)
                                .push("count", records.len() as u64);
                            if conn.send(out.to_string().into_bytes()).is_err() {
                                return Ok(());
                            }
                        }
                        Err(message) => {
                            let mut out = JsonValue::object();
                            out.push("type", "error")
                                .push("job", job)
                                .push("message", message.as_str());
                            if conn.send(out.to_string().into_bytes()).is_err() {
                                return Ok(());
                            }
                        }
                    }
                }
                Ok("shutdown") => break,
                _ => break,
            }
        }
        conn.finish();
        Ok(())
    }

    /// Resolves a run frame into a spec (registry id + wire overrides) and
    /// executes its range.
    fn execute(
        msg: &JsonValue,
        campaign: &Campaign,
    ) -> Result<(u64, u64, Vec<TrialRecord>), String> {
        let id = str_field(msg, "scenario")?;
        let scale = parse_scale(str_field(msg, "scale")?)
            .ok_or_else(|| "unknown scale label".to_string())?;
        let lo = int_field(msg, "lo")?;
        let hi = int_field(msg, "hi")?;
        let mut spec = scenario_registry(scale)
            .into_iter()
            .find(|spec| spec.id() == id)
            .ok_or_else(|| format!("no scenario '{id}' in the {} registry", scale_label(scale)))?;
        spec.trials = int_field(msg, "trials")?;
        spec.base_seed = int_field(msg, "base_seed")?;
        spec.limits = RunLimits {
            max_windows: int_field(msg, "max_windows")?,
            max_steps: int_field(msg, "max_steps")?,
        };
        let records = spec
            .run_range_records(campaign, lo, hi)
            .map_err(|err| err.to_string())?;
        Ok((lo, hi, records))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn record(trial: u64) -> TrialRecord {
        use agreement_sim::Metrics;
        TrialRecord {
            trial,
            seed: 100 + trial,
            agreement: true,
            validity: true,
            terminated: true,
            violations: 0,
            halted: false,
            decided: None,
            first_decision_at: Some(trial),
            all_decided_at: Some(trial),
            duration: trial,
            longest_chain: 0,
            metrics: Metrics::default(),
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "agreement-orchestrate-{tag}-{}-{unique}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn missing_ranges_complements_arbitrary_coverage() {
        assert_eq!(missing_ranges(10, &[]), vec![(0, 10)]);
        assert_eq!(missing_ranges(10, &[(0, 10)]), Vec::<(u64, u64)>::new());
        assert_eq!(
            missing_ranges(10, &[(2, 5), (7, 9)]),
            vec![(0, 2), (5, 7), (9, 10)]
        );
        assert_eq!(missing_ranges(10, &[(5, 10), (0, 2)]), vec![(2, 5)]);
        assert_eq!(missing_ranges(0, &[]), Vec::<(u64, u64)>::new());
    }

    #[test]
    fn chunk_ranges_splits_without_gaps() {
        let chunks = chunk_ranges(&[(0, 7), (10, 12)], 3);
        assert_eq!(Vec::from(chunks), vec![(0, 3), (3, 6), (6, 7), (10, 12)]);
        // A zero chunk is clamped, not an infinite loop.
        assert_eq!(chunk_ranges(&[(0, 2)], 0).len(), 2);
    }

    #[test]
    fn merge_validates_tiling_and_slots() {
        let done = vec![
            (3u64, 5u64, vec![record(3), record(4)]),
            (0, 3, vec![record(0), record(1), record(2)]),
        ];
        let merged = merge_ranges(5, done).unwrap();
        assert_eq!(merged.len(), 5);
        assert!(merged.iter().enumerate().all(|(i, r)| r.trial == i as u64));

        let gap = vec![(0u64, 2u64, vec![record(0), record(1)])];
        assert!(matches!(
            merge_ranges(5, gap),
            Err(OrchestrateError::Coverage(_))
        ));
        let overlap = vec![
            (0u64, 3u64, vec![record(0), record(1), record(2)]),
            (2, 5, vec![record(2), record(3), record(4)]),
        ];
        assert!(matches!(
            merge_ranges(5, overlap),
            Err(OrchestrateError::Coverage(_))
        ));
        let short = vec![(0u64, 3u64, vec![record(0)])];
        assert!(matches!(
            merge_ranges(3, short),
            Err(OrchestrateError::Coverage(_))
        ));
    }

    #[test]
    fn checkpoint_round_trips_and_survives_a_torn_tail() {
        let path = temp_path("roundtrip");
        let entries = [
            CheckpointEntry {
                scenario: "a/b/c/n5t1".to_string(),
                base_seed: 7,
                trials: 10,
                lo: 0,
                hi: 3,
                records: (0..3).map(record).collect(),
            },
            CheckpointEntry {
                scenario: "a/b/c/n5t1".to_string(),
                base_seed: 7,
                trials: 10,
                lo: 3,
                hi: 5,
                records: (3..5).map(record).collect(),
            },
        ];
        for entry in &entries {
            append_checkpoint(&path, entry).unwrap();
        }
        assert_eq!(read_checkpoint(&path).unwrap(), entries);

        // A torn final line (coordinator died mid-append) is skipped.
        let mut contents = std::fs::read_to_string(&path).unwrap();
        contents.push_str("{\"scenario\":\"a/b/c/n5t1\",\"base_se");
        std::fs::write(&path, contents).unwrap();
        assert_eq!(read_checkpoint(&path).unwrap(), entries);

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_interior_checkpoint_lines_are_skipped_not_fatal() {
        let path = temp_path("corrupt");
        let entry = |lo: u64| CheckpointEntry {
            scenario: "x".to_string(),
            base_seed: 0,
            trials: 2,
            lo,
            hi: lo + 1,
            records: vec![record(lo)],
        };
        append_checkpoint(&path, &entry(0)).unwrap();
        // Damage sandwiched between two good lines: the good ones survive.
        let mut contents = std::fs::read_to_string(&path).unwrap();
        contents.push_str("not json at all\n");
        std::fs::write(&path, contents).unwrap();
        append_checkpoint(&path, &entry(1)).unwrap();
        let (entries, skipped) = read_checkpoint_lossy(&path).unwrap();
        assert_eq!(entries, vec![entry(0), entry(1)]);
        assert_eq!(skipped, 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bit_flipped_checkpoint_line_fails_its_crc_and_is_skipped() {
        let path = temp_path("bitflip");
        let entry = |lo: u64| CheckpointEntry {
            scenario: "x".to_string(),
            base_seed: 9,
            trials: 3,
            lo,
            hi: lo + 1,
            records: vec![record(lo)],
        };
        for lo in 0..3 {
            append_checkpoint(&path, &entry(lo)).unwrap();
        }
        // Flip one byte inside the middle line's entry body. The damaged
        // JSON may still parse (a digit changed in place stays valid JSON) —
        // only the CRC catches it.
        let contents = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = contents.lines().collect();
        let mut middle = lines[1].to_string().into_bytes();
        let target = middle.len() - 10;
        middle[target] ^= 0x01;
        let damaged = format!(
            "{}\n{}\n{}\n",
            lines[0],
            String::from_utf8(middle).unwrap(),
            lines[2]
        );
        std::fs::write(&path, damaged).unwrap();

        let (entries, skipped) = read_checkpoint_lossy(&path).unwrap();
        assert_eq!(entries, vec![entry(0), entry(2)]);
        assert_eq!(skipped, 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn legacy_bare_checkpoint_lines_still_load() {
        let path = temp_path("legacy");
        let entry = CheckpointEntry {
            scenario: "legacy/scenario".to_string(),
            base_seed: 4,
            trials: 2,
            lo: 0,
            hi: 2,
            records: vec![record(0), record(1)],
        };
        // The pre-CRC format: the bare entry JSON, no wrapper.
        std::fs::write(&path, format!("{}\n", entry.to_json())).unwrap();
        let (entries, skipped) = read_checkpoint_lossy(&path).unwrap();
        assert_eq!(entries, vec![entry]);
        assert_eq!(skipped, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compact_checkpoint_rewrites_atomically_and_round_trips() {
        let path = temp_path("compact");
        let entry = |lo: u64| CheckpointEntry {
            scenario: "c".to_string(),
            base_seed: 1,
            trials: 4,
            lo,
            hi: lo + 2,
            records: (lo..lo + 2).map(record).collect(),
        };
        // A file with damage in the middle...
        append_checkpoint(&path, &entry(0)).unwrap();
        let mut contents = std::fs::read_to_string(&path).unwrap();
        contents.push_str("garbage line\n");
        std::fs::write(&path, contents).unwrap();
        append_checkpoint(&path, &entry(2)).unwrap();
        let (entries, skipped) = read_checkpoint_lossy(&path).unwrap();
        assert_eq!(skipped, 1);
        // ...compacts to a clean file holding exactly the survivors.
        compact_checkpoint(&path, &entries).unwrap();
        let (clean, skipped_after) = read_checkpoint_lossy(&path).unwrap();
        assert_eq!(clean, entries);
        assert_eq!(skipped_after, 0);
        // No temporary residue.
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        assert!(!PathBuf::from(tmp).exists());
        std::fs::remove_file(&path).unwrap();
    }
}

//! The data-driven scenario layer: workloads as values, executed by one
//! matrix engine.
//!
//! The paper's claims are statements about *combinations* — a protocol
//! crossed with an adversary, an input pattern, an execution model and a
//! system size. A [`ScenarioSpec`] captures one such combination as plain
//! data; a [`ScenarioMatrix`] expands cross-products of them; and both run
//! through the existing parallel [`Campaign`] with the same bit-identical,
//! slot-ordered aggregation the experiments use. Adversaries are resolved by
//! name through the [`AdversaryFactory`](agreement_adversary::AdversaryFactory)
//! registry of `agreement-adversary`, protocols through [`ProtocolSpec`], so
//! new workloads — Ben-Or under the equivocating Byzantine adversary,
//! committee protocols under split inputs — are new table rows, not new code.
//!
//! The experiments E1–E9 in [`crate::experiments`] are declarative tables
//! over this engine, and [`scenario_registry`] collects every registered
//! combination (experiment workloads plus extra combinations no experiment
//! exercises) for the `scenarios` CLI and the smoke tests.

use std::fmt;

use agreement_adversary::{find_adversary, AdversaryBuildCtx, AdversaryFactory};
use agreement_analysis::{Histogram, JsonValue, Summary};
use agreement_model::{
    Bit, ConfigError, InputAssignment, ProcessorId, ProtocolBuilder, SystemConfig, Thresholds,
};
use agreement_protocols::{
    BenOrBuilder, BrachaBuilder, CommitteeBuilder, ResetTolerantBuilder, SampledCommitteeBuilder,
};
use agreement_sim::{
    BufferChoice, BuiltAdversary, ExecutionCore, ModelDescriptor, RunLimits, RunOutcome,
};

use crate::experiments::Scale;
use crate::record::{stream_records, ReportSink, ScenarioMeta, TrialRecord};
use crate::runner::{Aggregate, Campaign, TrialPlan};

/// Why a scenario could not be resolved into a runnable execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// The system configuration or protocol parameters are infeasible
    /// (e.g. `t >= n/6` for the reset-tolerant protocol).
    Config(ConfigError),
    /// The protocol spec is malformed for the configuration (e.g. a committee
    /// larger than `n`).
    InvalidProtocol(String),
    /// The adversary name is not in the registry.
    UnknownAdversary(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Config(err) => write!(f, "infeasible configuration: {err}"),
            ScenarioError::InvalidProtocol(reason) => {
                write!(f, "invalid protocol spec: {reason}")
            }
            ScenarioError::UnknownAdversary(name) => {
                write!(f, "no adversary named '{name}' in the registry")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<ConfigError> for ScenarioError {
    fn from(err: ConfigError) -> Self {
        ScenarioError::Config(err)
    }
}

/// An input assignment described as data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputPattern {
    /// Every processor holds `value`.
    Unanimous(Bit),
    /// The adversarial even split: the first `⌈n/2⌉` processors hold `0`.
    EvenlySplit,
    /// The first `zeros` processors hold `0`, the rest `1`.
    SplitAt(usize),
}

impl InputPattern {
    /// The label experiments print for this pattern.
    pub fn label(&self) -> String {
        match self {
            InputPattern::Unanimous(Bit::Zero) => "unanimous-0".to_string(),
            InputPattern::Unanimous(Bit::One) => "unanimous-1".to_string(),
            InputPattern::EvenlySplit => "split".to_string(),
            InputPattern::SplitAt(zeros) => format!("split@{zeros}"),
        }
    }

    /// Materializes the pattern for a system of `n` processors.
    pub fn materialize(&self, n: usize) -> InputAssignment {
        match self {
            InputPattern::Unanimous(value) => InputAssignment::unanimous(n, *value),
            InputPattern::EvenlySplit => InputAssignment::evenly_split(n),
            InputPattern::SplitAt(zeros) => InputAssignment::split_at(n, (*zeros).min(n)),
        }
    }
}

/// A protocol described as data, instantiable for any feasible configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolSpec {
    /// The Section 3 reset-tolerant protocol with the Theorem 4 recommended
    /// thresholds (requires `t < n/6`).
    ResetTolerant,
    /// The reset-tolerant protocol with explicit (possibly invalid)
    /// thresholds — the E8 sensitivity probe.
    ResetTolerantWith(Thresholds),
    /// Ben-Or's classical crash-model protocol.
    BenOr,
    /// Bracha's optimally resilient Byzantine protocol.
    Bracha,
    /// The Kapron-et-al.-style committee baseline with a public random
    /// committee of `size` members drawn from `seed`.
    Committee {
        /// Committee size.
        size: usize,
        /// Public randomness the committee is drawn from.
        seed: u64,
    },
    /// The sub-quadratic committee-sampled protocol: proposals are multicast
    /// within the sampled committee only, so a decision costs `O(k² + k·n)`
    /// messages instead of `Θ(n²)`.
    SampledCommittee {
        /// Committee size `k`.
        size: usize,
        /// Public sortition seed the committee is drawn from.
        seed: u64,
    },
}

/// A protocol instantiated for a concrete configuration: the builder plus the
/// publicly known structure (committee) adversaries may target.
pub struct ProtocolInstance {
    /// Builds the per-processor state machines.
    pub builder: Box<dyn ProtocolBuilder>,
    /// The protocol's publicly known committee (empty for quorum protocols).
    pub committee: Vec<ProcessorId>,
}

impl ProtocolSpec {
    /// A short label used in scenario ids and tables.
    pub fn label(&self) -> String {
        match self {
            ProtocolSpec::ResetTolerant => "reset-tolerant".to_string(),
            ProtocolSpec::ResetTolerantWith(th) => {
                format!("reset-tolerant[{},{},{}]", th.t1(), th.t2(), th.t3())
            }
            ProtocolSpec::BenOr => "ben-or".to_string(),
            ProtocolSpec::Bracha => "bracha".to_string(),
            ProtocolSpec::Committee { size, .. } => format!("committee{size}"),
            ProtocolSpec::SampledCommittee { size, .. } => format!("sampled-committee{size}"),
        }
    }

    /// Instantiates the protocol for `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Config`] when no valid parameters exist for
    /// `cfg` (e.g. recommended thresholds at `t >= n/6`), and
    /// [`ScenarioError::InvalidProtocol`] for malformed specs (e.g. a
    /// committee larger than `n`) — specs are data, so a bad one is reported,
    /// never a panic.
    pub fn instantiate(&self, cfg: &SystemConfig) -> Result<ProtocolInstance, ScenarioError> {
        Ok(match self {
            ProtocolSpec::ResetTolerant => ProtocolInstance {
                builder: Box::new(ResetTolerantBuilder::recommended(cfg)?),
                committee: Vec::new(),
            },
            ProtocolSpec::ResetTolerantWith(thresholds) => ProtocolInstance {
                builder: Box::new(ResetTolerantBuilder::with_thresholds(*thresholds)),
                committee: Vec::new(),
            },
            ProtocolSpec::BenOr => ProtocolInstance {
                builder: Box::new(BenOrBuilder::new()),
                committee: Vec::new(),
            },
            ProtocolSpec::Bracha => ProtocolInstance {
                builder: Box::new(BrachaBuilder::new()),
                committee: Vec::new(),
            },
            ProtocolSpec::Committee { size, seed } => {
                if *size == 0 || *size > cfg.n() {
                    return Err(ScenarioError::InvalidProtocol(format!(
                        "committee size {size} must be between 1 and n = {}",
                        cfg.n()
                    )));
                }
                let builder = CommitteeBuilder::random(cfg, *size, *seed);
                let committee = builder.committee().to_vec();
                ProtocolInstance {
                    builder: Box::new(builder),
                    committee,
                }
            }
            ProtocolSpec::SampledCommittee { size, seed } => {
                if *size == 0 || *size > cfg.n() {
                    return Err(ScenarioError::InvalidProtocol(format!(
                        "committee size {size} must be between 1 and n = {}",
                        cfg.n()
                    )));
                }
                let builder = SampledCommitteeBuilder::random(cfg, *size, *seed);
                let committee = builder.committee().to_vec();
                ProtocolInstance {
                    builder: Box::new(builder),
                    committee,
                }
            }
        })
    }
}

/// One workload as data: protocol × adversary × inputs × size × limits.
///
/// The execution model (windowed vs. asynchronous) is carried by the
/// adversary's registry entry, so a spec is fully determined by these fields.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Grouping tag (e.g. the experiment the spec belongs to); prefixes the id.
    pub tag: String,
    /// The protocol to run.
    pub protocol: ProtocolSpec,
    /// The adversary's name in the `agreement-adversary` registry.
    pub adversary: String,
    /// The input pattern.
    pub inputs: InputPattern,
    /// Number of processors.
    pub n: usize,
    /// Fault budget.
    pub t: usize,
    /// Number of seeded trials.
    pub trials: u64,
    /// Per-trial run limits.
    pub limits: RunLimits,
    /// Base seed; trial `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Explicit adversary targets. `None` means "the protocol's committee"
    /// (empty for quorum protocols), which is what targeting adversaries
    /// default to.
    pub targets: Option<Vec<ProcessorId>>,
    /// Message-buffer channel layout the trials run under.
    /// [`BufferChoice::Auto`] (the default) picks dense channels for small
    /// systems and the sparse fabric for large ones; the layout never changes
    /// results (the equivalence tests pin byte-identical reports), only the
    /// memory/time profile, so it is deliberately **not** part of the id.
    pub buffer: BufferChoice,
}

impl ScenarioSpec {
    /// A spec with the default campaign parameters (20 trials, standard
    /// limits, base seed `0x5EED`) — the same defaults as [`TrialPlan`].
    pub fn new(
        protocol: ProtocolSpec,
        adversary: impl Into<String>,
        inputs: InputPattern,
        n: usize,
        t: usize,
    ) -> Self {
        ScenarioSpec {
            tag: String::new(),
            protocol,
            adversary: adversary.into(),
            inputs,
            n,
            t,
            trials: 20,
            limits: RunLimits::standard(),
            base_seed: 0x5EED,
            targets: None,
            buffer: BufferChoice::Auto,
        }
    }

    /// Sets the grouping tag.
    pub fn tag(mut self, tag: impl Into<String>) -> Self {
        self.tag = tag.into();
        self
    }

    /// Sets the number of trials.
    pub fn trials(mut self, trials: u64) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the per-trial limits.
    pub fn limits(mut self, limits: RunLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Sets the base seed.
    pub fn base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Sets explicit adversary targets (overriding the protocol's committee).
    pub fn targets(mut self, targets: Vec<ProcessorId>) -> Self {
        self.targets = Some(targets);
        self
    }

    /// Sets the message-buffer channel layout.
    pub fn buffer(mut self, buffer: BufferChoice) -> Self {
        self.buffer = buffer;
        self
    }

    /// A stable human-readable identifier:
    /// `[tag/]protocol/adversary/inputs/n<n>t<t>`.
    pub fn id(&self) -> String {
        let base = format!(
            "{}/{}/{}/n{}t{}",
            self.protocol.label(),
            self.adversary,
            self.inputs.label(),
            self.n,
            self.t
        );
        if self.tag.is_empty() {
            base
        } else {
            format!("{}/{base}", self.tag)
        }
    }

    /// The system configuration this spec describes.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Config`] for degenerate `n`/`t`.
    pub fn config(&self) -> Result<SystemConfig, ScenarioError> {
        Ok(SystemConfig::new(self.n, self.t)?)
    }

    /// The adversary factory this spec names.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::UnknownAdversary`] when the name is not
    /// registered.
    pub fn factory(&self) -> Result<&'static dyn AdversaryFactory, ScenarioError> {
        find_adversary(&self.adversary)
            .ok_or_else(|| ScenarioError::UnknownAdversary(self.adversary.clone()))
    }

    /// The execution model this spec runs under, as its open-registry
    /// descriptor (id, display name, time cap).
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::UnknownAdversary`] when the adversary is not
    /// registered.
    pub fn model(&self) -> Result<&'static ModelDescriptor, ScenarioError> {
        Ok(self.factory()?.model())
    }

    /// Checks that the spec resolves into a runnable execution without
    /// running it.
    ///
    /// # Errors
    ///
    /// Returns the error [`ScenarioSpec::run`] would return.
    pub fn feasibility(&self) -> Result<(), ScenarioError> {
        let cfg = self.config()?;
        self.factory()?;
        self.protocol.instantiate(&cfg)?;
        Ok(())
    }

    fn resolved(
        &self,
    ) -> Result<
        (
            SystemConfig,
            ProtocolInstance,
            &'static dyn AdversaryFactory,
        ),
        ScenarioError,
    > {
        let cfg = self.config()?;
        let factory = self.factory()?;
        let instance = self.protocol.instantiate(&cfg)?;
        Ok((cfg, instance, factory))
    }

    fn build_ctx(
        &self,
        cfg: SystemConfig,
        instance: &ProtocolInstance,
        seed: u64,
    ) -> AdversaryBuildCtx {
        let targets = self
            .targets
            .clone()
            .unwrap_or_else(|| instance.committee.clone());
        AdversaryBuildCtx::new(cfg, seed).with_targets(targets)
    }

    /// The [`ScenarioMeta`] identity of this spec (requires the adversary to
    /// resolve, for the model label and time cap).
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::UnknownAdversary`] when the adversary is not
    /// registered.
    pub fn meta(&self) -> Result<ScenarioMeta, ScenarioError> {
        let model = self.model()?;
        Ok(ScenarioMeta {
            id: self.id(),
            model: model.to_string(),
            n: self.n,
            t: self.t,
            trials: self.trials,
            base_seed: self.base_seed,
            time_cap: model.time_cap(&self.limits),
        })
    }

    /// Runs the spec's trials on the default (all-cores) campaign.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] when the spec does not resolve.
    pub fn run(&self) -> Result<ScenarioReport, ScenarioError> {
        self.run_on(&Campaign::default())
    }

    /// Runs the spec's trials on an explicit campaign. Reports are
    /// bit-identical across thread counts (the campaign's guarantee).
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] when the spec does not resolve.
    pub fn run_on(&self, campaign: &Campaign) -> Result<ScenarioReport, ScenarioError> {
        self.run_with_sinks(campaign, &mut [])
    }

    /// Runs the spec's trials, streaming every [`TrialRecord`] (in trial
    /// order) through `sinks` before returning the finished report.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] when the spec does not resolve.
    pub fn run_with_sinks(
        &self,
        campaign: &Campaign,
        sinks: &mut [&mut dyn ReportSink],
    ) -> Result<ScenarioReport, ScenarioError> {
        let (cfg, instance, factory) = self.resolved()?;
        let meta = self.meta()?;
        let plan = TrialPlan::new(cfg, self.inputs.materialize(self.n))
            .trials(self.trials)
            .limits(self.limits)
            .base_seed(self.base_seed)
            .buffer(self.buffer);
        let builder = instance.builder.as_ref();
        // Model-agnostic dispatch: the factory's BuiltAdversary carries its
        // own scheduler glue, so a new execution model is a new registry
        // entry, not a new match arm here.
        let records = campaign.run_records(&plan, builder, |seed| {
            factory.build(&self.build_ctx(cfg, &instance, seed))
        });
        Ok(stream_records(&meta, &records, sinks))
    }

    /// Runs only the trials `lo..hi` of this spec and returns their records
    /// in trial order — the shard one orchestration worker executes. Record
    /// `t` is bit-identical to record `t` of a full run, so a coordinator
    /// that concatenates contiguous ranges covering `0..trials` reproduces
    /// the single-process record stream (and therefore every sink's output)
    /// exactly.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] when the spec does not resolve.
    pub fn run_range_records(
        &self,
        campaign: &Campaign,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<TrialRecord>, ScenarioError> {
        let (cfg, instance, factory) = self.resolved()?;
        let plan = TrialPlan::new(cfg, self.inputs.materialize(self.n))
            .trials(self.trials)
            .limits(self.limits)
            .base_seed(self.base_seed)
            .buffer(self.buffer);
        let builder = instance.builder.as_ref();
        Ok(campaign.run_records_range(
            &plan,
            builder,
            |seed| factory.build(&self.build_ctx(cfg, &instance, seed)),
            lo,
            hi,
        ))
    }

    /// Runs a single execution with an explicit seed and returns its raw
    /// outcome (used by determinism tests and for inspecting one trace).
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] when the spec does not resolve.
    pub fn run_single(&self, seed: u64) -> Result<RunOutcome, ScenarioError> {
        let (cfg, instance, factory) = self.resolved()?;
        let ctx = self.build_ctx(cfg, &instance, seed);
        let mut adversary = factory.build(&ctx);
        self.run_single_with(seed, &mut adversary)
    }

    /// Runs `trials` trials of this spec's harness — protocol, inputs,
    /// limits, buffer choice — with a **caller-supplied adversary** per seed,
    /// overriding the registered adversary name. This is the budgeted
    /// campaign entry point of the schedule-space search
    /// (`agreement-search`): the driver evaluates one genome batch per call,
    /// with `base_seed` advancing by the batch size so every trial of the
    /// budget has a unique seed. Records come back slot-ordered and
    /// bit-identical across campaign thread counts, which is what makes the
    /// search itself reproducible under `--threads`.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] when the configuration or protocol does
    /// not resolve (the adversary name is deliberately not consulted).
    pub fn run_batch_records_with<F>(
        &self,
        campaign: &Campaign,
        trials: u64,
        base_seed: u64,
        make_adversary: F,
    ) -> Result<Vec<TrialRecord>, ScenarioError>
    where
        F: Fn(u64) -> BuiltAdversary + Sync,
    {
        let cfg = self.config()?;
        let instance = self.protocol.instantiate(&cfg)?;
        let plan = TrialPlan::new(cfg, self.inputs.materialize(self.n))
            .trials(trials)
            .limits(self.limits)
            .base_seed(base_seed)
            .buffer(self.buffer);
        Ok(campaign.run_records(&plan, instance.builder.as_ref(), make_adversary))
    }

    /// Runs one traced execution of this spec's harness under a
    /// caller-supplied adversary — the replay path for stored schedule
    /// artifacts (`search --replay`, `scenarios --replay`).
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] when the configuration or protocol does
    /// not resolve (the adversary name is deliberately not consulted).
    pub fn run_single_with(
        &self,
        seed: u64,
        adversary: &mut BuiltAdversary,
    ) -> Result<RunOutcome, ScenarioError> {
        let cfg = self.config()?;
        let instance = self.protocol.instantiate(&cfg)?;
        let inputs = self.inputs.materialize(self.n);
        let mut core = ExecutionCore::new(cfg, inputs, instance.builder.as_ref(), seed);
        core.set_buffer_choice(self.buffer);
        Ok(adversary.run_traced(&mut core, self.limits))
    }
}

/// The finished result of running one scenario: its identity, the
/// backwards-compatible [`Aggregate`], and the per-trial distributions the
/// aggregate's summaries flatten away.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// The scenario's identity (id, model, size, trials, seed, time cap).
    pub meta: ScenarioMeta,
    /// The classic rate/summary aggregate (what the E1–E9 tables print).
    pub aggregate: Aggregate,
    /// Distribution of the window/step count at which the last correct
    /// processor decided (undecided trials contribute the time cap).
    pub decision_times: Histogram,
    /// Distribution of the per-trial chain metric.
    pub chain_lengths: Histogram,
    /// Distribution of messages sent per trial.
    pub message_counts: Histogram,
    /// Distribution of resetting steps per trial.
    pub reset_counts: Histogram,
}

impl ScenarioReport {
    /// Builds the report from a scenario's full record stream.
    pub fn from_records(meta: ScenarioMeta, records: &[TrialRecord]) -> Self {
        let cap = meta.time_cap;
        let samples =
            |f: &dyn Fn(&TrialRecord) -> f64| -> Vec<f64> { records.iter().map(f).collect() };
        ScenarioReport {
            aggregate: Aggregate::from_records(records, cap),
            decision_times: Histogram::from_samples(&samples(&|r| {
                r.all_decided_at.unwrap_or(cap) as f64
            })),
            chain_lengths: Histogram::from_samples(&samples(&|r| r.longest_chain as f64)),
            message_counts: Histogram::from_samples(&samples(&|r| r.metrics.messages_sent as f64)),
            reset_counts: Histogram::from_samples(&samples(&|r| r.metrics.resets_consumed as f64)),
            meta,
        }
    }

    /// The report as one JSON object — the per-scenario record the binaries
    /// emit under `--json`, suitable for committing as a `BENCH_*.json`
    /// trajectory point. Field order is stable and the document contains no
    /// timestamps, so re-running an unchanged scenario produces an identical
    /// record.
    pub fn to_json(&self) -> JsonValue {
        fn summary(s: &Summary) -> JsonValue {
            let mut obj = JsonValue::object();
            obj.push("mean", s.mean)
                .push("std_dev", s.std_dev)
                .push("min", s.min)
                .push("max", s.max);
            obj
        }
        fn distribution(h: &Histogram) -> JsonValue {
            let mut obj = JsonValue::object();
            obj.push("p50", h.percentile(50.0))
                .push("p90", h.percentile(90.0))
                .push("p99", h.percentile(99.0))
                .push("min", h.min())
                .push("max", h.max());
            obj
        }
        let mut doc = JsonValue::object();
        doc.push("id", self.meta.id.as_str())
            .push("model", self.meta.model.as_str())
            .push("n", self.meta.n)
            .push("t", self.meta.t)
            .push("trials", self.meta.trials)
            .push("base_seed", self.meta.base_seed)
            .push("time_cap", self.meta.time_cap)
            .push("termination_rate", self.aggregate.termination_rate)
            .push("agreement_rate", self.aggregate.agreement_rate)
            .push("validity_rate", self.aggregate.validity_rate)
            .push("violation_rate", self.aggregate.violation_rate)
            .push("decision_time", summary(&self.aggregate.decision_time))
            .push("decision_time_dist", distribution(&self.decision_times))
            .push("chain_length", summary(&self.aggregate.chain_length))
            .push("chain_length_dist", distribution(&self.chain_lengths))
            .push("messages", summary(&self.aggregate.messages))
            .push("messages_dist", distribution(&self.message_counts))
            .push("resets", summary(&self.aggregate.resets))
            .push("resets_dist", distribution(&self.reset_counts));
        doc
    }
}

/// A cross-product of scenario dimensions, expanded into concrete specs.
///
/// Expansion order is sizes → protocols → inputs → adversaries (outermost to
/// innermost), matching the row order of the tabular experiments.
#[derive(Debug, Clone)]
pub struct ScenarioMatrix {
    /// Grouping tag applied to every expanded spec.
    pub tag: String,
    /// Protocol dimension.
    pub protocols: Vec<ProtocolSpec>,
    /// Adversary dimension (registry names).
    pub adversaries: Vec<String>,
    /// Input dimension.
    pub inputs: Vec<InputPattern>,
    /// Size dimension as `(n, t)` pairs.
    pub sizes: Vec<(usize, usize)>,
    /// Trials per expanded spec.
    pub trials: u64,
    /// Limits per expanded spec.
    pub limits: RunLimits,
    /// Base seed per expanded spec.
    pub base_seed: u64,
}

impl Default for ScenarioMatrix {
    fn default() -> Self {
        ScenarioMatrix::new()
    }
}

impl ScenarioMatrix {
    /// An empty matrix with the default campaign parameters.
    pub fn new() -> Self {
        ScenarioMatrix {
            tag: String::new(),
            protocols: Vec::new(),
            adversaries: Vec::new(),
            inputs: Vec::new(),
            sizes: Vec::new(),
            trials: 20,
            limits: RunLimits::standard(),
            base_seed: 0x5EED,
        }
    }

    /// Sets the grouping tag.
    pub fn tag(mut self, tag: impl Into<String>) -> Self {
        self.tag = tag.into();
        self
    }

    /// Sets the protocol dimension.
    pub fn protocols(mut self, protocols: Vec<ProtocolSpec>) -> Self {
        self.protocols = protocols;
        self
    }

    /// Sets the adversary dimension from registry names.
    pub fn adversaries(mut self, adversaries: &[&str]) -> Self {
        self.adversaries = adversaries.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Sets the input dimension.
    pub fn inputs(mut self, inputs: Vec<InputPattern>) -> Self {
        self.inputs = inputs;
        self
    }

    /// Sets the size dimension as `(n, t)` pairs.
    pub fn sizes(mut self, sizes: Vec<(usize, usize)>) -> Self {
        self.sizes = sizes;
        self
    }

    /// Sets the trials per expanded spec.
    pub fn trials(mut self, trials: u64) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the limits per expanded spec.
    pub fn limits(mut self, limits: RunLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Sets the base seed per expanded spec.
    pub fn base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Expands the full cross-product into concrete specs.
    pub fn expand(&self) -> Vec<ScenarioSpec> {
        let mut specs = Vec::with_capacity(
            self.sizes.len() * self.protocols.len() * self.inputs.len() * self.adversaries.len(),
        );
        for &(n, t) in &self.sizes {
            for protocol in &self.protocols {
                for inputs in &self.inputs {
                    for adversary in &self.adversaries {
                        specs.push(
                            ScenarioSpec::new(protocol.clone(), adversary.clone(), *inputs, n, t)
                                .tag(self.tag.clone())
                                .trials(self.trials)
                                .limits(self.limits)
                                .base_seed(self.base_seed),
                        );
                    }
                }
            }
        }
        specs
    }
}

/// Extra combinations no experiment exercises: the registry's proof that
/// arbitrary protocol × adversary pairings run from data alone.
pub fn extra_scenarios(scale: Scale) -> Vec<ScenarioSpec> {
    let trials = match scale {
        Scale::Quick => 3,
        Scale::Full => 25,
    };
    let mut specs = vec![
        // Ben-Or facing the Byzantine equivocator (crash-model thresholds
        // mask a single liar on unanimous inputs).
        ScenarioSpec::new(
            ProtocolSpec::BenOr,
            "equivocating-byzantine",
            InputPattern::Unanimous(Bit::One),
            9,
            1,
        )
        .limits(RunLimits::steps(500_000)),
        // Bracha under full-power equivocation at optimal resilience.
        ScenarioSpec::new(
            ProtocolSpec::Bracha,
            "equivocating-byzantine",
            InputPattern::Unanimous(Bit::One),
            7,
            2,
        )
        .limits(RunLimits::steps(60_000)),
        // Bracha under benign fair scheduling.
        ScenarioSpec::new(
            ProtocolSpec::Bracha,
            "fair-round-robin",
            InputPattern::Unanimous(Bit::Zero),
            7,
            2,
        )
        .limits(RunLimits::steps(100_000)),
        // The targeted (most-advanced-first) resetter, unused by E1-E9.
        ScenarioSpec::new(
            ProtocolSpec::ResetTolerant,
            "targeted-reset",
            InputPattern::EvenlySplit,
            13,
            2,
        )
        .limits(RunLimits::windows(5_000)),
        // The reset-tolerant protocol's benign best case.
        ScenarioSpec::new(
            ProtocolSpec::ResetTolerant,
            "full-delivery",
            InputPattern::EvenlySplit,
            13,
            2,
        )
        .limits(RunLimits::windows(2_000)),
        // Ben-Or with its victims silenced entirely.
        ScenarioSpec::new(
            ProtocolSpec::BenOr,
            "withholding-crash",
            InputPattern::Unanimous(Bit::Zero),
            7,
            2,
        )
        .limits(RunLimits::steps(200_000)),
        // The committee baseline under split inputs and scheduled crashes.
        ScenarioSpec::new(
            ProtocolSpec::Committee {
                size: 5,
                seed: 0xC0FFEE,
            },
            "scheduled-crash",
            InputPattern::EvenlySplit,
            18,
            2,
        )
        .limits(RunLimits::steps(200_000)),
    ];
    for spec in &mut specs {
        spec.tag = "extra".to_string();
        spec.trials = trials;
    }
    specs
}

/// The partial-synchrony scenario family: the paper's protocols under the
/// *curtailed* adversaries of the eventual-synchrony model, so experiments
/// can contrast expected decision times against the strongly adaptive and
/// fully asynchronous results on the same protocols.
///
/// Three adversary strengths are crossed with ben-or, bracha and the
/// reset-tolerant protocol: the benign baseline (`benign-eventual`), the
/// maximal delay attack the model admits (`gst-procrastinator` — every
/// delivery is the model's Δ-paced enforcement after a late GST), and
/// send-omission of `t` senders (`post-gst-omission`). Where the strong
/// adversaries force exponential expected time (split-vote, lockstep), these
/// runs terminate in `O(gst + Δ · rounds)` steps — the dichotomy the related
/// work (Kowalski–Mirek; Dufoulon–Pandurangan) predicts for constrained
/// adversaries.
pub fn partial_sync_scenarios(scale: Scale) -> Vec<ScenarioSpec> {
    let trials = match scale {
        Scale::Quick => 3,
        Scale::Full => 25,
    };
    let mut specs = vec![
        // Ben-Or under the benign eventual baseline: the fast case.
        ScenarioSpec::new(
            ProtocolSpec::BenOr,
            "benign-eventual",
            InputPattern::Unanimous(Bit::One),
            7,
            1,
        )
        .limits(RunLimits::steps(100_000)),
        // Ben-Or against maximal procrastination: decision delayed by an
        // additive GST, never prevented.
        ScenarioSpec::new(
            ProtocolSpec::BenOr,
            "gst-procrastinator",
            InputPattern::Unanimous(Bit::One),
            7,
            1,
        )
        .limits(RunLimits::steps(100_000)),
        // Ben-Or with t senders omitted: quorums of n - t still decide.
        ScenarioSpec::new(
            ProtocolSpec::BenOr,
            "post-gst-omission",
            InputPattern::Unanimous(Bit::Zero),
            7,
            2,
        )
        .limits(RunLimits::steps(100_000)),
        // Bracha under the benign eventual baseline at optimal resilience.
        ScenarioSpec::new(
            ProtocolSpec::Bracha,
            "benign-eventual",
            InputPattern::Unanimous(Bit::Zero),
            7,
            2,
        )
        .limits(RunLimits::steps(200_000)),
        // Bracha against the procrastinator.
        ScenarioSpec::new(
            ProtocolSpec::Bracha,
            "gst-procrastinator",
            InputPattern::Unanimous(Bit::One),
            7,
            2,
        )
        .limits(RunLimits::steps(200_000)),
        // Bracha with t omitted senders: reliable broadcast from n - t voices.
        ScenarioSpec::new(
            ProtocolSpec::Bracha,
            "post-gst-omission",
            InputPattern::Unanimous(Bit::One),
            7,
            2,
        )
        .limits(RunLimits::steps(200_000)),
        // The reset-tolerant protocol on adversarial split inputs — the
        // workload the split-vote adversary stalls exponentially — decides
        // promptly once the adversary is curtailed.
        ScenarioSpec::new(
            ProtocolSpec::ResetTolerant,
            "benign-eventual",
            InputPattern::EvenlySplit,
            13,
            2,
        )
        .limits(RunLimits::steps(200_000)),
        ScenarioSpec::new(
            ProtocolSpec::ResetTolerant,
            "gst-procrastinator",
            InputPattern::EvenlySplit,
            13,
            2,
        )
        .limits(RunLimits::steps(200_000)),
        // Reset tolerance also covers omission: n - t voices are enough.
        ScenarioSpec::new(
            ProtocolSpec::ResetTolerant,
            "post-gst-omission",
            InputPattern::Unanimous(Bit::One),
            13,
            2,
        )
        .limits(RunLimits::steps(200_000)),
    ];
    for spec in &mut specs {
        spec.tag = "psync".to_string();
        spec.trials = trials;
    }
    specs
}

/// Public sortition seed shared by every `subquad/` scenario.
const SUBQUAD_SORTITION_SEED: u64 = 0x5AB5EED;

/// The sub-quadratic scaling family: committee-sampled agreement at
/// `n ∈ {100, 1000, 10000}`, with quadratic comparators where they are still
/// feasible to run.
///
/// Every spec here uses [`BufferChoice::Auto`], so the execution core picks
/// the lazily materialized sparse channel fabric at these sizes — a dense
/// `n²` channel grid at `n = 10000` would be 100 million queues. Committee
/// sizes grow like `~4·log₂ n` (13, 20, 27) and the fault budget is always
/// `f + 1` where `f = ⌊(k-1)/3⌋`: just enough for the adaptive committee
/// killer to destroy the announce quorum, while the *non-adaptive* crash
/// adversary (which picks victims blind) almost surely misses the committee —
/// the two sides of the paper's adaptive/non-adaptive dichotomy at scale.
pub fn subquad_scenarios(scale: Scale) -> Vec<ScenarioSpec> {
    // (n, committee size k, fault budget t = f + 1)
    const SIZES: [(usize, usize, usize); 3] = [(100, 13, 5), (1_000, 20, 7), (10_000, 27, 9)];
    let trials = |n: usize| match (scale, n) {
        (Scale::Quick, 100) => 2,
        (Scale::Quick, _) => 1,
        (Scale::Full, 100) => 10,
        (Scale::Full, 1_000) => 5,
        (Scale::Full, _) => 2,
    };
    let steps = |n: usize| match n {
        100 => RunLimits::steps(500_000),
        1_000 => RunLimits::steps(2_000_000),
        _ => RunLimits::steps(4_000_000),
    };
    let mut specs = Vec::new();
    for (n, size, t) in SIZES {
        let sampled = ProtocolSpec::SampledCommittee {
            size,
            seed: SUBQUAD_SORTITION_SEED,
        };
        // The sub-quadratic protocol under benign scheduling, blind crashes,
        // and the adaptive killer (expected termination: 1, ~1, 0).
        for adversary in ["fair-round-robin", "non-adaptive-crash"] {
            specs.push(
                ScenarioSpec::new(
                    sampled.clone(),
                    adversary,
                    InputPattern::Unanimous(Bit::One),
                    n,
                    t,
                )
                .limits(steps(n))
                .trials(trials(n)),
            );
        }
        specs.push(
            ScenarioSpec::new(
                sampled,
                "adaptive-committee-killer",
                InputPattern::Unanimous(Bit::One),
                n,
                t,
            )
            .limits(steps(n))
            .trials(trials(n)),
        );
    }
    // Quadratic comparators, where Θ(n²) messages per decision is still
    // runnable: both classics at n = 100, Ben-Or alone at n = 1000 (one
    // round is already a million messages). At n = 10000 only the
    // sub-quadratic protocol appears — that is the point.
    specs.push(
        ScenarioSpec::new(
            ProtocolSpec::BenOr,
            "fair-round-robin",
            InputPattern::Unanimous(Bit::One),
            100,
            5,
        )
        .limits(RunLimits::steps(1_000_000))
        .trials(trials(100)),
    );
    // Bracha re-broadcasts every round while the fair scheduler drip-feeds
    // deliveries, so one n = 100 decision takes ~6M steps — give it headroom
    // and a single trial.
    specs.push(
        ScenarioSpec::new(
            ProtocolSpec::Bracha,
            "fair-round-robin",
            InputPattern::Unanimous(Bit::One),
            100,
            5,
        )
        .limits(RunLimits::steps(8_000_000))
        .trials(1),
    );
    specs.push(
        ScenarioSpec::new(
            ProtocolSpec::BenOr,
            "fair-round-robin",
            InputPattern::Unanimous(Bit::One),
            1_000,
            7,
        )
        .limits(RunLimits::steps(4_000_000))
        .trials(1),
    );
    for spec in &mut specs {
        spec.tag = "subquad".to_string();
    }
    specs
}

/// Every registered scenario: the declarative E1–E9 workloads plus the extra
/// combinations, the partial-synchrony family and the sub-quadratic scaling
/// family, at the given scale.
///
/// Newer families are appended **after** every pre-existing scenario (extra,
/// then psync, then subquad) so machine-readable output for the historical
/// registry is a stable prefix.
pub fn scenario_registry(scale: Scale) -> Vec<ScenarioSpec> {
    let mut specs = Vec::new();
    specs.extend(crate::experiments::exp1_specs(scale));
    specs.extend(crate::experiments::exp2_specs(scale));
    specs.extend(crate::experiments::exp5_specs(scale));
    specs.extend(crate::experiments::exp6_specs(scale));
    specs.extend(crate::experiments::exp7_specs(scale));
    specs.extend(crate::experiments::exp8_specs(scale));
    specs.extend(crate::experiments::exp9_specs(scale));
    specs.extend(extra_scenarios(scale));
    specs.extend(partial_sync_scenarios(scale));
    specs.extend(subquad_scenarios(scale));
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_patterns_materialize_and_label() {
        assert_eq!(InputPattern::Unanimous(Bit::One).label(), "unanimous-1");
        assert_eq!(InputPattern::EvenlySplit.label(), "split");
        assert_eq!(InputPattern::SplitAt(2).label(), "split@2");
        assert_eq!(
            InputPattern::EvenlySplit.materialize(5),
            InputAssignment::evenly_split(5)
        );
        assert_eq!(
            InputPattern::SplitAt(9).materialize(4),
            InputAssignment::split_at(4, 4),
            "oversized zero counts clamp to n"
        );
    }

    #[test]
    fn spec_ids_are_stable_and_tagged() {
        let spec = ScenarioSpec::new(
            ProtocolSpec::ResetTolerant,
            "split-vote",
            InputPattern::EvenlySplit,
            13,
            2,
        );
        assert_eq!(spec.id(), "reset-tolerant/split-vote/split/n13t2");
        assert_eq!(
            spec.tag("e2").id(),
            "e2/reset-tolerant/split-vote/split/n13t2"
        );
    }

    #[test]
    fn unknown_adversaries_and_infeasible_configs_are_reported() {
        let spec = ScenarioSpec::new(
            ProtocolSpec::ResetTolerant,
            "no-such-adversary",
            InputPattern::EvenlySplit,
            7,
            1,
        );
        assert_eq!(
            spec.feasibility(),
            Err(ScenarioError::UnknownAdversary(
                "no-such-adversary".to_string()
            ))
        );
        // t = 3 >= 13/6: recommended thresholds do not exist.
        let infeasible = ScenarioSpec::new(
            ProtocolSpec::ResetTolerant,
            "split-vote",
            InputPattern::EvenlySplit,
            13,
            3,
        );
        assert!(matches!(
            infeasible.feasibility(),
            Err(ScenarioError::Config(_))
        ));
        // A committee larger than n is a data error, reported — not a panic.
        let oversized = ScenarioSpec::new(
            ProtocolSpec::Committee { size: 10, seed: 1 },
            "fair-round-robin",
            InputPattern::EvenlySplit,
            5,
            1,
        );
        assert!(matches!(
            oversized.feasibility(),
            Err(ScenarioError::InvalidProtocol(_))
        ));
    }

    #[test]
    fn matrix_expansion_orders_sizes_protocols_inputs_adversaries() {
        let matrix = ScenarioMatrix::new()
            .tag("m")
            .protocols(vec![ProtocolSpec::ResetTolerant])
            .inputs(vec![
                InputPattern::Unanimous(Bit::One),
                InputPattern::EvenlySplit,
            ])
            .adversaries(&["rotating-reset", "split-vote"])
            .sizes(vec![(7, 1), (13, 2)])
            .trials(4)
            .limits(RunLimits::small());
        let specs = matrix.expand();
        assert_eq!(specs.len(), 8);
        assert_eq!(
            specs[0].id(),
            "m/reset-tolerant/rotating-reset/unanimous-1/n7t1"
        );
        assert_eq!(
            specs[1].id(),
            "m/reset-tolerant/split-vote/unanimous-1/n7t1"
        );
        assert_eq!(specs[2].id(), "m/reset-tolerant/rotating-reset/split/n7t1");
        assert_eq!(specs[7].id(), "m/reset-tolerant/split-vote/split/n13t2");
        assert!(specs.iter().all(|s| s.trials == 4));
    }

    #[test]
    fn matrix_expansion_ids_are_unique_across_the_full_cross_product() {
        use std::collections::BTreeSet;
        let matrix = ScenarioMatrix::new()
            .tag("uniq")
            .protocols(vec![
                ProtocolSpec::ResetTolerant,
                ProtocolSpec::BenOr,
                ProtocolSpec::Bracha,
                ProtocolSpec::Committee { size: 3, seed: 1 },
            ])
            .inputs(vec![
                InputPattern::Unanimous(Bit::Zero),
                InputPattern::Unanimous(Bit::One),
                InputPattern::EvenlySplit,
                InputPattern::SplitAt(3),
            ])
            .adversaries(&["rotating-reset", "split-vote", "fair-round-robin"])
            .sizes(vec![(7, 1), (13, 2), (19, 3)]);
        let specs = matrix.expand();
        assert_eq!(specs.len(), 4 * 4 * 3 * 3);
        let ids: BTreeSet<String> = specs.iter().map(ScenarioSpec::id).collect();
        assert_eq!(
            ids.len(),
            specs.len(),
            "every dimension must be reflected in the id, or expansion collides"
        );
        assert!(ids.iter().all(|id| id.starts_with("uniq/")));
    }

    #[test]
    fn materialize_handles_single_processor_systems() {
        assert_eq!(
            InputPattern::Unanimous(Bit::Zero).materialize(1),
            InputAssignment::unanimous(1, Bit::Zero)
        );
        // ⌈1/2⌉ = 1: the lone processor lands on the zero side of the split.
        assert_eq!(
            InputPattern::EvenlySplit.materialize(1),
            InputAssignment::split_at(1, 1)
        );
        assert_eq!(
            InputPattern::SplitAt(0).materialize(1),
            InputAssignment::unanimous(1, Bit::One)
        );
    }

    #[test]
    fn materialize_split_extremes_collapse_to_unanimous() {
        assert_eq!(
            InputPattern::SplitAt(0).materialize(5),
            InputAssignment::unanimous(5, Bit::One)
        );
        assert_eq!(
            InputPattern::SplitAt(5).materialize(5),
            InputAssignment::unanimous(5, Bit::Zero)
        );
    }

    #[test]
    fn materialize_even_split_rounds_zeros_up_on_odd_n() {
        for n in [2usize, 3, 7, 8, 13] {
            let inputs = InputPattern::EvenlySplit.materialize(n);
            let zeros = inputs.iter().filter(|bit| bit.is_zero()).count();
            assert_eq!(zeros, n.div_ceil(2), "⌈n/2⌉ zeros at n = {n}");
            assert_eq!(inputs.len(), n);
        }
    }

    #[test]
    fn scenario_run_matches_direct_campaign_invocation() {
        use agreement_adversary::SplitVoteAdversary;

        let spec = ScenarioSpec::new(
            ProtocolSpec::ResetTolerant,
            "split-vote",
            InputPattern::EvenlySplit,
            13,
            2,
        )
        .trials(3)
        .limits(RunLimits::windows(5_000));
        let via_scenario = spec.run().unwrap();
        assert_eq!(via_scenario.meta.id, spec.id());
        assert_eq!(via_scenario.meta.time_cap, 5_000);

        let cfg = SystemConfig::new(13, 2).unwrap();
        let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
        let plan = TrialPlan::new(cfg, InputAssignment::evenly_split(13))
            .trials(3)
            .limits(RunLimits::windows(5_000));
        let direct = Campaign::default().run_windowed(&plan, &builder, SplitVoteAdversary::new);
        assert_eq!(via_scenario.aggregate, direct);
    }

    #[test]
    fn async_scenario_runs_and_reports_the_async_model() {
        let spec = ScenarioSpec::new(
            ProtocolSpec::BenOr,
            "fair-round-robin",
            InputPattern::Unanimous(Bit::Zero),
            5,
            1,
        )
        .trials(3)
        .limits(RunLimits::small());
        assert_eq!(spec.model().unwrap().id(), "async");
        let report = spec.run().unwrap();
        assert_eq!(report.meta.model, "async");
        assert_eq!(report.aggregate.termination_rate, 1.0);
        assert_eq!(report.aggregate.agreement_rate, 1.0);
    }

    #[test]
    fn committee_killer_scenario_defaults_targets_to_the_committee() {
        let spec = ScenarioSpec::new(
            ProtocolSpec::Committee {
                size: 5,
                seed: 12345,
            },
            "adaptive-committee-killer",
            InputPattern::Unanimous(Bit::Zero),
            30,
            3,
        )
        .trials(2)
        .limits(RunLimits::small());
        let report = spec.run().unwrap();
        // The killer silences the committee's quorum: nobody ever decides.
        assert_eq!(report.aggregate.termination_rate, 0.0);
    }

    #[test]
    fn registry_ids_are_unique_and_feasible() {
        use std::collections::BTreeSet;
        let specs = scenario_registry(Scale::Quick);
        assert!(
            specs.len() >= 30,
            "expected a rich registry, got {}",
            specs.len()
        );
        let mut ids = BTreeSet::new();
        for spec in &specs {
            assert!(ids.insert(spec.id()), "duplicate scenario id {}", spec.id());
            spec.feasibility()
                .unwrap_or_else(|err| panic!("{} infeasible: {err}", spec.id()));
        }
        // The registry exercises combinations beyond the experiments.
        let combos: BTreeSet<(String, String)> = specs
            .iter()
            .map(|s| (s.protocol.label(), s.adversary.clone()))
            .collect();
        for needed in [
            ("ben-or", "equivocating-byzantine"),
            ("bracha", "equivocating-byzantine"),
            ("bracha", "fair-round-robin"),
            ("reset-tolerant", "targeted-reset"),
            ("ben-or", "withholding-crash"),
        ] {
            assert!(
                combos.contains(&(needed.0.to_string(), needed.1.to_string())),
                "registry must include {needed:?}"
            );
        }
    }
}

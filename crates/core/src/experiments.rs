//! The per-claim experiments E1–E9 (see DESIGN.md §3 and EXPERIMENTS.md).
//!
//! The paper is a theory paper without numeric tables or figures; each
//! experiment here regenerates one of its *claims* as a table. Every
//! experiment accepts a [`Scale`] so that unit tests and examples can run a
//! reduced version quickly, while the `agreement-bench` binaries run the full
//! versions reported in EXPERIMENTS.md.

use agreement_adversary::{
    AdaptiveCommitteeKiller, LockstepBalancingAdversary, NonAdaptiveCrashAdversary,
    RotatingResetAdversary, SplitVoteAdversary,
};
use agreement_analysis::{
    exponential_fit, success_probability, tau, window_bound, worst_case_ratio,
    MiniResetTolerantKernel, ProductDistribution, ZSetAnalysis,
};
use agreement_model::{Bit, InputAssignment, Payload, ProcessorId, SystemConfig, Thresholds};
use agreement_protocols::{BenOrBuilder, CommitteeBuilder, ResetTolerantBuilder};
use agreement_sim::{RunLimits, SystemView, Window, WindowAdversary};

use crate::report::{fmt_f64, fmt_rate, Table};
use crate::runner::{run_async_trials, run_window_trials, TrialPlan};

/// How big an experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small parameters, suitable for tests and examples (seconds).
    Quick,
    /// The full parameters recorded in EXPERIMENTS.md (minutes).
    Full,
}

impl Scale {
    fn pick<T: Copy>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// E1 — Theorem 4: measure-one correctness and termination of the
/// reset-tolerant protocol against strongly adaptive adversaries (`t < n/6`).
pub fn exp1_correctness(scale: Scale) -> Table {
    let sizes: &[usize] = scale.pick(&[7, 13][..], &[7, 13, 19, 25, 31][..]);
    let trials = scale.pick(10, 200);
    let mut table = Table::new(
        "E1: Theorem 4 — correctness and termination under the strongly adaptive adversary",
        "Reset-tolerant protocol, recommended thresholds; rotating-reset and split-vote \
         adversaries; agreement/validity must be 100% and termination must be reached within \
         the window cap.",
        vec![
            "n",
            "t",
            "inputs",
            "adversary",
            "agreement",
            "validity",
            "termination",
            "mean windows",
            "mean resets",
        ],
    );
    for &n in sizes {
        let cfg = SystemConfig::with_sixth_resilience(n).expect("n >= 1");
        let builder = ResetTolerantBuilder::recommended(&cfg).expect("t < n/6");
        for (label, inputs) in [
            ("unanimous-1", InputAssignment::unanimous(n, Bit::One)),
            ("split", InputAssignment::evenly_split(n)),
        ] {
            for adversary in ["rotating-reset", "split-vote"] {
                let plan = TrialPlan::new(cfg, inputs.clone())
                    .trials(trials)
                    .limits(RunLimits::windows(scale.pick(5_000, 50_000)));
                let aggregate = match adversary {
                    "rotating-reset" => {
                        run_window_trials(&plan, &builder, RotatingResetAdversary::new)
                    }
                    _ => run_window_trials(&plan, &builder, SplitVoteAdversary::new),
                };
                table.push_row(vec![
                    n.to_string(),
                    cfg.t().to_string(),
                    label.to_string(),
                    adversary.to_string(),
                    fmt_rate(aggregate.agreement_rate),
                    fmt_rate(aggregate.validity_rate),
                    fmt_rate(aggregate.termination_rate),
                    fmt_f64(aggregate.decision_time.mean),
                    fmt_f64(aggregate.resets.mean),
                ]);
            }
        }
    }
    table
}

/// E2 — Section 3 discussion: the split-vote adversary forces running time
/// that grows exponentially in `n` on evenly split inputs.
pub fn exp2_exponential_runtime(scale: Scale) -> Table {
    let sizes: &[usize] = scale.pick(&[7, 9, 11, 13][..], &[7, 9, 11, 13, 15, 17, 19, 21][..]);
    let trials = scale.pick(10, 100);
    let mut points = Vec::new();
    let mut rows = Vec::new();
    for &n in sizes {
        let cfg = SystemConfig::with_sixth_resilience(n).expect("n >= 1");
        let builder = ResetTolerantBuilder::recommended(&cfg).expect("t < n/6");
        let plan = TrialPlan::new(cfg, InputAssignment::evenly_split(n))
            .trials(trials)
            .limits(RunLimits::windows(scale.pick(20_000, 200_000)));
        let aggregate = run_window_trials(&plan, &builder, SplitVoteAdversary::new);
        points.push((n as f64, aggregate.decision_time.mean.max(1.0)));
        rows.push(vec![
            n.to_string(),
            cfg.t().to_string(),
            trials.to_string(),
            fmt_f64(aggregate.decision_time.mean),
            fmt_f64(aggregate.decision_time.max),
            fmt_rate(aggregate.termination_rate),
        ]);
    }
    let fit = exponential_fit(&points);
    let mut table = Table::new(
        "E2: exponential expected running time on split inputs (split-vote adversary)",
        format!(
            "Reset-tolerant protocol, evenly split inputs; mean windows to decision vs n. \
             Fitted growth: windows ≈ {:.3}·exp({:.3}·n), R² = {:.3} (the paper predicts \
             exponential growth; Theorem 5's envelope uses α = c²/9 ≈ {:.4}).",
            fit.prefactor,
            fit.rate,
            fit.r_squared,
            (1.0f64 / 6.0).powi(2) / 9.0
        ),
        vec![
            "n",
            "t",
            "trials",
            "mean windows",
            "max windows",
            "termination",
        ],
    );
    for row in rows {
        table.push_row(row);
    }
    table
}

/// E3 — Lemma 9 (Talagrand): the product-measure inequality holds empirically.
pub fn exp3_talagrand(scale: Scale) -> Table {
    let dims: &[usize] = scale.pick(&[6, 8][..], &[6, 8, 10, 12, 14][..]);
    let sets = scale.pick(20, 200);
    let mut table = Table::new(
        "E3: Lemma 9 — Talagrand's inequality on product distributions",
        "Worst observed ratio of P[A](1-P[B(A,d)]) to exp(-d²/4n) over random sets A and all \
         d; a ratio ≤ 1 means the inequality held in every trial.",
        vec!["n", "distribution", "random sets", "worst ratio", "holds"],
    );
    for &n in dims {
        let uniform = ProductDistribution::uniform_bits(n);
        let biased = ProductDistribution::biased_bits(
            &(0..n)
                .map(|i| 0.2 + 0.6 * (i % 2) as f64)
                .collect::<Vec<_>>(),
        );
        for (label, distribution) in [("uniform", uniform), ("biased", biased)] {
            let worst = worst_case_ratio(&distribution, sets, 4, 7 + n as u64);
            table.push_row(vec![
                n.to_string(),
                label.to_string(),
                sets.to_string(),
                fmt_f64(worst),
                (worst <= 1.0).to_string(),
            ]);
        }
    }
    table
}

/// E4 — Lemmas 11 and 13: the `Z^k` sets stay Hamming-separated beyond `t` on
/// the abstract model.
pub fn exp4_zset_separation(scale: Scale) -> Table {
    let configs: &[(usize, usize, usize, usize)] = scale.pick(
        &[(4, 1, 4, 3)][..],
        &[(4, 1, 4, 3), (5, 1, 4, 3), (6, 1, 5, 4)][..],
    );
    let levels = scale.pick(3, 5);
    let mut table = Table::new(
        "E4: Lemmas 11/13 — Hamming separation of the Z^k sets (abstract model)",
        "Exact Z^k recursion on the abstract reset-tolerant kernel; Lemma 13 predicts \
         ∆(Z^k_0, Z^k_1) > t at every level (empty sets are vacuously separated).",
        vec!["n", "t", "k", "|Z^k_0|", "|Z^k_1|", "separation", "> t"],
    );
    for &(n, t, decide, adopt) in configs {
        let kernel = MiniResetTolerantKernel::new(n, t, decide, adopt);
        let analysis = ZSetAnalysis::new(&kernel, tau(n, t));
        for level in analysis.separation_profile(&kernel, levels) {
            table.push_row(vec![
                n.to_string(),
                t.to_string(),
                level.level.to_string(),
                level.size_zero.to_string(),
                level.size_one.to_string(),
                level.separation.map_or("-".to_string(), |d| d.to_string()),
                level.exceeds(t).to_string(),
            ]);
        }
    }
    table
}

/// E5 — Theorem 5: the quantitative envelope (window bound `E = C·e^{αn}` and
/// success probability ≥ 1/2) against measured split-vote running times.
pub fn exp5_lower_bound(scale: Scale) -> Table {
    let sizes: &[usize] = scale.pick(&[7, 13][..], &[7, 13, 19, 25, 31, 61, 121][..]);
    let trials = scale.pick(5, 50);
    let c = 1.0 / 6.0;
    let mut table = Table::new(
        "E5: Theorem 5 — lower-bound envelope vs measured running time",
        "E = C·e^{αn} with α = c²/9 and C = (1/4)e^{-c/6} (inequality (3)); the theorem says \
         some adversary forces ≥ E windows with probability ≥ 1/2. Measured: windows forced by \
         the split-vote adversary (a concrete strongly adaptive strategy) on split inputs — it \
         must dominate the envelope, and does by a wide margin at these sizes.",
        vec![
            "n",
            "t",
            "E (bound)",
            "P bound",
            "measured mean windows",
            "measured ≥ E",
        ],
    );
    for &n in sizes {
        let cfg = SystemConfig::with_sixth_resilience(n).expect("n >= 1");
        let bound = window_bound(n, c);
        let p_bound = success_probability(n, c);
        let (measured, frac_above) = if n <= 31 {
            let builder = ResetTolerantBuilder::recommended(&cfg).expect("t < n/6");
            let plan = TrialPlan::new(cfg, InputAssignment::evenly_split(n))
                .trials(trials)
                .limits(RunLimits::windows(scale.pick(20_000, 200_000)));
            let aggregate = run_window_trials(&plan, &builder, SplitVoteAdversary::new);
            (
                fmt_f64(aggregate.decision_time.mean),
                fmt_rate(if aggregate.decision_time.min >= bound {
                    1.0
                } else {
                    0.0
                }),
            )
        } else {
            ("(not simulated)".to_string(), "-".to_string())
        };
        table.push_row(vec![
            n.to_string(),
            cfg.t().to_string(),
            format!("{bound:.4}"),
            fmt_f64(p_bound),
            measured,
            frac_above,
        ]);
    }
    table
}

/// E6 — Theorem 17: exponential message chains for forgetful, fully
/// communicative algorithms (Ben-Or) under crash-model balancing scheduling.
pub fn exp6_crash_chains(scale: Scale) -> Table {
    let sizes: &[usize] = scale.pick(&[4, 6, 8][..], &[4, 6, 8, 10, 12, 14][..]);
    let trials = scale.pick(5, 50);
    let mut points = Vec::new();
    let mut rows = Vec::new();
    for &n in sizes {
        let t = (n / 4).max(1);
        let cfg = SystemConfig::new(n, t).expect("t < n");
        let plan = TrialPlan::new(cfg, InputAssignment::evenly_split(n))
            .trials(trials)
            .limits(RunLimits::steps(scale.pick(2_000_000, 20_000_000)));
        let aggregate = run_async_trials(&plan, &BenOrBuilder::new(), |_| {
            LockstepBalancingAdversary::new()
        });
        points.push((n as f64, aggregate.chain_length.mean.max(1.0)));
        rows.push(vec![
            n.to_string(),
            t.to_string(),
            fmt_f64(aggregate.chain_length.mean),
            fmt_f64(aggregate.chain_length.max),
            fmt_rate(aggregate.termination_rate),
            fmt_rate(aggregate.agreement_rate),
        ]);
    }
    let fit = exponential_fit(&points);
    let mut table = Table::new(
        "E6: Theorem 17 — message-chain growth for Ben-Or under crash-model balancing",
        format!(
            "Ben-Or (forgetful, fully communicative), evenly split inputs, zero crashes, \
             balancing scheduler; longest message chain before the first decision vs n. \
             Fitted growth: chain ≈ {:.3}·exp({:.3}·n), R² = {:.3}.",
            fit.prefactor, fit.rate, fit.r_squared
        ),
        vec![
            "n",
            "t",
            "mean chain",
            "max chain",
            "termination",
            "agreement",
        ],
    );
    for row in rows {
        table.push_row(row);
    }
    table
}

/// E7 — the contrast with Kapron et al.: committee protocols are fast against
/// non-adaptive faults and fail against an adaptive committee killer, while
/// quorum-based protocols shrug the same adversary off.
pub fn exp7_committee_vs_adaptive(scale: Scale) -> Table {
    let n = scale.pick(18, 30);
    // The killer needs to be able to silence at least f + 1 = 2 committee
    // members to stall the committee's internal quorum.
    let t = (n / 10).max(2);
    let committee_size = 5;
    let trials = scale.pick(10, 100);
    let cfg = SystemConfig::new(n, t).expect("t < n");
    let committee = CommitteeBuilder::random(&cfg, committee_size, 0xC0FFEE);
    let inputs = InputAssignment::unanimous(n, Bit::One);
    let mut table = Table::new(
        "E7: committee baseline vs adaptive adversary (Kapron et al. contrast)",
        "Unanimous inputs. The committee protocol terminates against a non-adaptive crash \
         adversary but stalls when the adversary adaptively silences the (public) committee; \
         quorum-based Ben-Or survives the same adaptive budget.",
        vec![
            "protocol",
            "adversary",
            "termination",
            "agreement",
            "validity",
            "mean chain",
        ],
    );
    let plan = TrialPlan::new(cfg, inputs.clone())
        .trials(trials)
        .limits(RunLimits::steps(500_000));

    let non_adaptive = run_async_trials(&plan, &committee, |seed| {
        NonAdaptiveCrashAdversary::random(n, t, seed)
    });
    table.push_row(vec![
        "committee".to_string(),
        "non-adaptive crash".to_string(),
        fmt_rate(non_adaptive.termination_rate),
        fmt_rate(non_adaptive.agreement_rate),
        fmt_rate(non_adaptive.validity_rate),
        fmt_f64(non_adaptive.chain_length.mean),
    ]);

    let killer_targets = committee.committee().to_vec();
    let adaptive = run_async_trials(&plan, &committee, |_| {
        AdaptiveCommitteeKiller::new(killer_targets.clone())
    });
    table.push_row(vec![
        "committee".to_string(),
        "adaptive committee-killer".to_string(),
        fmt_rate(adaptive.termination_rate),
        fmt_rate(adaptive.agreement_rate),
        fmt_rate(adaptive.validity_rate),
        fmt_f64(adaptive.chain_length.mean),
    ]);

    let ben_or_adaptive = run_async_trials(&plan, &BenOrBuilder::new(), |_| {
        AdaptiveCommitteeKiller::new(killer_targets.clone())
    });
    table.push_row(vec![
        "ben-or".to_string(),
        "adaptive committee-killer".to_string(),
        fmt_rate(ben_or_adaptive.termination_rate),
        fmt_rate(ben_or_adaptive.agreement_rate),
        fmt_rate(ben_or_adaptive.validity_rate),
        fmt_f64(ben_or_adaptive.chain_length.mean),
    ]);
    table
}

/// A deliberately unfair window adversary used by E8: it shows the first half
/// of the processors a zero-leaning view and the second half a one-leaning
/// view (all within the legal `|S_i| >= n - t` budget), which valid Theorem 4
/// thresholds withstand but broken thresholds do not.
#[derive(Debug, Clone, Copy, Default)]
pub struct PolarizingAdversary;

impl WindowAdversary for PolarizingAdversary {
    fn name(&self) -> &'static str {
        "polarizing"
    }

    fn next_window(&mut self, view: &SystemView<'_>) -> Window {
        let n = view.n();
        let t = view.t();
        let probe = ProcessorId::new(0);
        let value_of = |s: usize| {
            view.buffer
                .peek(ProcessorId::new(s), probe)
                .and_then(Payload::advocated_value)
        };
        let zeros: Vec<ProcessorId> = (0..n)
            .filter(|&s| value_of(s) == Some(Bit::Zero))
            .map(ProcessorId::new)
            .collect();
        let ones: Vec<ProcessorId> = (0..n)
            .filter(|&s| value_of(s) == Some(Bit::One))
            .map(ProcessorId::new)
            .collect();
        let rest: Vec<ProcessorId> = (0..n)
            .filter(|&s| value_of(s).is_none())
            .map(ProcessorId::new)
            .collect();
        // Zero-leaning view: drop up to t one-senders; one-leaning view: drop
        // up to t zero-senders.
        let mut zero_leaning: Vec<ProcessorId> = zeros.clone();
        zero_leaning.extend(ones.iter().skip(t.min(ones.len())));
        zero_leaning.extend(rest.iter().copied());
        let mut one_leaning: Vec<ProcessorId> = ones;
        one_leaning.extend(zeros.iter().skip(t.min(zeros.len())));
        one_leaning.extend(rest);
        let deliveries: Vec<Vec<ProcessorId>> = (0..n)
            .map(|i| {
                if i < n / 2 {
                    zero_leaning.clone()
                } else {
                    one_leaning.clone()
                }
            })
            .collect();
        Window::new(Vec::new(), deliveries)
    }
}

/// E8 — the Theorem 4 threshold constraints matter: valid thresholds keep
/// agreement at 100% under a polarizing adversary, while broken thresholds
/// admit disagreement.
pub fn exp8_threshold_sensitivity(scale: Scale) -> Table {
    let n = 13;
    let cfg = SystemConfig::with_sixth_resilience(n).expect("n >= 1");
    let trials = scale.pick(10, 100);
    let valid = Thresholds::recommended(&cfg).expect("t < n/6");
    let settings: Vec<(&str, Thresholds)> = vec![
        ("valid (T1=9,T2=9,T3=7)", valid),
        ("broken: T2 too small (T2=5)", Thresholds::new(9, 5, 7)),
        ("broken: 2*T3 <= n (T3=6)", Thresholds::new(9, 9, 6)),
        ("broken: T2 < T3 + t (T2=7)", Thresholds::new(9, 7, 7)),
    ];
    let mut table = Table::new(
        "E8: Theorem 4 threshold sensitivity",
        "Reset-tolerant protocol on split inputs under a polarizing window adversary. Valid \
         thresholds keep agreement and validity at 100%; each broken constraint opens the door \
         to disagreement (agreement < 100%).",
        vec![
            "thresholds",
            "satisfies Theorem 4",
            "agreement",
            "validity",
            "termination",
        ],
    );
    for (label, thresholds) in settings {
        let builder = ResetTolerantBuilder::with_thresholds(thresholds);
        let plan = TrialPlan::new(cfg, InputAssignment::evenly_split(n))
            .trials(trials)
            .limits(RunLimits::windows(2_000));
        let aggregate = run_window_trials(&plan, &builder, || PolarizingAdversary);
        table.push_row(vec![
            label.to_string(),
            thresholds.is_valid_for(&cfg).to_string(),
            fmt_rate(aggregate.agreement_rate),
            fmt_rate(aggregate.validity_rate),
            fmt_rate(aggregate.termination_rate),
        ]);
    }
    table
}

/// E9 — ablation: how the per-window reset budget affects the reset-tolerant
/// protocol (valid thresholds only exist below `n/6`).
pub fn exp9_reset_budget(scale: Scale) -> Table {
    let n = scale.pick(13, 25);
    let trials = scale.pick(5, 50);
    let budgets: Vec<usize> = (0..=(n / 4)).collect();
    let mut table = Table::new(
        "E9: ablation — per-window reset budget vs feasibility and speed",
        "Reset-tolerant protocol on split inputs under the split-vote+resets adversary. Valid \
         Theorem 4 thresholds exist only for t < n/6; beyond that the row is marked infeasible.",
        vec![
            "n",
            "t",
            "thresholds exist",
            "termination",
            "agreement",
            "mean windows",
        ],
    );
    for t in budgets {
        let Ok(cfg) = SystemConfig::new(n, t) else {
            continue;
        };
        match ResetTolerantBuilder::recommended(&cfg) {
            Ok(builder) => {
                let plan = TrialPlan::new(cfg, InputAssignment::evenly_split(n))
                    .trials(trials)
                    .limits(RunLimits::windows(scale.pick(20_000, 100_000)));
                let aggregate = run_window_trials(&plan, &builder, SplitVoteAdversary::with_resets);
                table.push_row(vec![
                    n.to_string(),
                    t.to_string(),
                    "yes".to_string(),
                    fmt_rate(aggregate.termination_rate),
                    fmt_rate(aggregate.agreement_rate),
                    fmt_f64(aggregate.decision_time.mean),
                ]);
            }
            Err(_) => {
                table.push_row(vec![
                    n.to_string(),
                    t.to_string(),
                    "no (t >= n/6)".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                ]);
            }
        }
    }
    table
}

/// Runs every experiment at the given scale, in order.
pub fn run_all(scale: Scale) -> Vec<Table> {
    vec![
        exp1_correctness(scale),
        exp2_exponential_runtime(scale),
        exp3_talagrand(scale),
        exp4_zset_separation(scale),
        exp5_lower_bound(scale),
        exp6_crash_chains(scale),
        exp7_committee_vs_adaptive(scale),
        exp8_threshold_sensitivity(scale),
        exp9_reset_budget(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rate(cell: &str) -> f64 {
        cell.trim_end_matches('%').parse::<f64>().unwrap() / 100.0
    }

    #[test]
    fn exp1_quick_reports_perfect_agreement_and_termination() {
        let table = exp1_correctness(Scale::Quick);
        assert!(!table.rows().is_empty());
        for row in table.rows() {
            assert_eq!(rate(&row[4]), 1.0, "agreement must be perfect: {row:?}");
            assert_eq!(rate(&row[5]), 1.0, "validity must be perfect: {row:?}");
            assert_eq!(rate(&row[6]), 1.0, "termination must be reached: {row:?}");
        }
    }

    #[test]
    fn exp3_quick_inequality_always_holds() {
        let table = exp3_talagrand(Scale::Quick);
        for row in table.rows() {
            assert_eq!(row[4], "true", "Talagrand violated: {row:?}");
        }
    }

    #[test]
    fn exp4_quick_separation_exceeds_t_at_every_level() {
        let table = exp4_zset_separation(Scale::Quick);
        assert!(!table.rows().is_empty());
        for row in table.rows() {
            assert_eq!(row[6], "true", "Lemma 13 separation failed: {row:?}");
        }
    }

    #[test]
    fn exp7_quick_shows_the_adaptive_separation() {
        let table = exp7_committee_vs_adaptive(Scale::Quick);
        // committee + non-adaptive terminates most of the time.
        assert!(rate(table.cell(0, 2).unwrap()) >= 0.7);
        // committee + adaptive killer never terminates.
        assert_eq!(rate(table.cell(1, 2).unwrap()), 0.0);
        // ben-or + same adaptive budget always terminates.
        assert_eq!(rate(table.cell(2, 2).unwrap()), 1.0);
    }

    #[test]
    fn exp8_quick_valid_thresholds_agree_broken_t2_disagrees() {
        let table = exp8_threshold_sensitivity(Scale::Quick);
        assert_eq!(table.cell(0, 1), Some("true"));
        assert_eq!(
            rate(table.cell(0, 2).unwrap()),
            1.0,
            "valid thresholds must agree"
        );
        assert_eq!(table.cell(1, 1), Some("false"));
        assert!(
            rate(table.cell(1, 2).unwrap()) < 1.0,
            "a T2 far below the valid region must admit disagreement under the polarizing adversary"
        );
    }

    #[test]
    fn exp9_quick_marks_infeasible_budgets() {
        let table = exp9_reset_budget(Scale::Quick);
        let feasible: Vec<&str> = table.rows().iter().map(|r| r[2].as_str()).collect();
        assert!(feasible.contains(&"yes"));
        assert!(feasible.iter().any(|s| s.starts_with("no")));
    }
}

//! The per-claim experiments E1–E10 (see DESIGN.md §3 and EXPERIMENTS.md).
//!
//! The paper is a theory paper without numeric tables or figures; each
//! experiment here regenerates one of its *claims* as a table. Every
//! experiment accepts a [`Scale`] so that unit tests and examples can run a
//! reduced version quickly, while the `agreement-bench` binaries run the full
//! versions reported in EXPERIMENTS.md.
//!
//! The simulation experiments are **declarative**: each one defines its
//! workloads as a list of [`ScenarioSpec`] values (`exp1_specs`,
//! `exp2_specs`, …) and runs them through the scenario engine of
//! [`crate::scenario`] — there are no bespoke trial loops here, and the same
//! spec lists feed the [`crate::scenario::scenario_registry`] behind the
//! `scenarios` CLI. E3 and E4 are pure analysis (no simulation) and have no
//! specs.

use agreement_analysis::{
    exponential_fit, success_probability, tau, window_bound, worst_case_ratio,
    MiniResetTolerantKernel, ProductDistribution, ZSetAnalysis,
};
use agreement_model::{Bit, SystemConfig, Thresholds};
use agreement_protocols::CommitteeBuilder;
use agreement_sim::RunLimits;

use crate::report::{fmt_f64, fmt_rate, Table};
use crate::runner::Aggregate;
use crate::scenario::{InputPattern, ProtocolSpec, ScenarioMatrix, ScenarioSpec};

/// How big an experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small parameters, suitable for tests and examples (seconds).
    Quick,
    /// The full parameters recorded in EXPERIMENTS.md (minutes).
    Full,
}

impl Scale {
    /// Picks the quick or full variant of a parameter.
    pub fn pick<T: Copy>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// Runs a spec, panicking with its id on an unresolvable spec — experiment
/// tables are built from statically known-feasible workloads. Tables only
/// need the rate/summary view, so the report's distributions are dropped
/// here.
fn run_spec(spec: &ScenarioSpec) -> Aggregate {
    spec.run()
        .map(|report| report.aggregate)
        .unwrap_or_else(|err| panic!("experiment scenario {} failed to run: {err}", spec.id()))
}

/// `(n, t)` pairs at the paper's `t < n/6` resilience.
fn sixth_sizes(sizes: &[usize]) -> Vec<(usize, usize)> {
    sizes
        .iter()
        .map(|&n| {
            let cfg = SystemConfig::with_sixth_resilience(n).expect("n >= 1");
            (cfg.n(), cfg.t())
        })
        .collect()
}

/// E1's workloads: reset-tolerant protocol × {rotating-reset, split-vote} ×
/// {unanimous-1, split} over the Theorem 4 sizes.
pub fn exp1_specs(scale: Scale) -> Vec<ScenarioSpec> {
    let sizes: &[usize] = scale.pick(&[7, 13][..], &[7, 13, 19, 25, 31][..]);
    ScenarioMatrix::new()
        .tag("e1")
        .protocols(vec![ProtocolSpec::ResetTolerant])
        .inputs(vec![
            InputPattern::Unanimous(Bit::One),
            InputPattern::EvenlySplit,
        ])
        .adversaries(&["rotating-reset", "split-vote"])
        .sizes(sixth_sizes(sizes))
        .trials(scale.pick(10, 200))
        .limits(RunLimits::windows(scale.pick(5_000, 50_000)))
        .expand()
}

/// E1 — Theorem 4: measure-one correctness and termination of the
/// reset-tolerant protocol against strongly adaptive adversaries (`t < n/6`).
pub fn exp1_correctness(scale: Scale) -> Table {
    let mut table = Table::new(
        "E1: Theorem 4 — correctness and termination under the strongly adaptive adversary",
        "Reset-tolerant protocol, recommended thresholds; rotating-reset and split-vote \
         adversaries; agreement/validity must be 100% and termination must be reached within \
         the window cap.",
        vec![
            "n",
            "t",
            "inputs",
            "adversary",
            "agreement",
            "validity",
            "termination",
            "mean windows",
            "mean resets",
        ],
    );
    for spec in exp1_specs(scale) {
        let aggregate = run_spec(&spec);
        table.push_row(vec![
            spec.n.to_string(),
            spec.t.to_string(),
            spec.inputs.label(),
            spec.adversary.clone(),
            fmt_rate(aggregate.agreement_rate),
            fmt_rate(aggregate.validity_rate),
            fmt_rate(aggregate.termination_rate),
            fmt_f64(aggregate.decision_time.mean),
            fmt_f64(aggregate.resets.mean),
        ]);
    }
    table
}

/// E2's workloads: the split-vote balancer on evenly split inputs across `n`.
pub fn exp2_specs(scale: Scale) -> Vec<ScenarioSpec> {
    let sizes: &[usize] = scale.pick(&[7, 9, 11, 13][..], &[7, 9, 11, 13, 15, 17, 19, 21][..]);
    ScenarioMatrix::new()
        .tag("e2")
        .protocols(vec![ProtocolSpec::ResetTolerant])
        .inputs(vec![InputPattern::EvenlySplit])
        .adversaries(&["split-vote"])
        .sizes(sixth_sizes(sizes))
        .trials(scale.pick(10, 100))
        .limits(RunLimits::windows(scale.pick(20_000, 200_000)))
        .expand()
}

/// E2 — Section 3 discussion: the split-vote adversary forces running time
/// that grows exponentially in `n` on evenly split inputs.
pub fn exp2_exponential_runtime(scale: Scale) -> Table {
    let mut points = Vec::new();
    let mut rows = Vec::new();
    for spec in exp2_specs(scale) {
        let aggregate = run_spec(&spec);
        points.push((spec.n as f64, aggregate.decision_time.mean.max(1.0)));
        rows.push(vec![
            spec.n.to_string(),
            spec.t.to_string(),
            spec.trials.to_string(),
            fmt_f64(aggregate.decision_time.mean),
            fmt_f64(aggregate.decision_time.max),
            fmt_rate(aggregate.termination_rate),
        ]);
    }
    let fit = exponential_fit(&points);
    let mut table = Table::new(
        "E2: exponential expected running time on split inputs (split-vote adversary)",
        format!(
            "Reset-tolerant protocol, evenly split inputs; mean windows to decision vs n. \
             Fitted growth: windows ≈ {:.3}·exp({:.3}·n), R² = {:.3} (the paper predicts \
             exponential growth; Theorem 5's envelope uses α = c²/9 ≈ {:.4}).",
            fit.prefactor,
            fit.rate,
            fit.r_squared,
            (1.0f64 / 6.0).powi(2) / 9.0
        ),
        vec![
            "n",
            "t",
            "trials",
            "mean windows",
            "max windows",
            "termination",
        ],
    );
    for row in rows {
        table.push_row(row);
    }
    table
}

/// E3 — Lemma 9 (Talagrand): the product-measure inequality holds empirically.
pub fn exp3_talagrand(scale: Scale) -> Table {
    let dims: &[usize] = scale.pick(&[6, 8][..], &[6, 8, 10, 12, 14][..]);
    let sets = scale.pick(20, 200);
    let mut table = Table::new(
        "E3: Lemma 9 — Talagrand's inequality on product distributions",
        "Worst observed ratio of P[A](1-P[B(A,d)]) to exp(-d²/4n) over random sets A and all \
         d; a ratio ≤ 1 means the inequality held in every trial.",
        vec!["n", "distribution", "random sets", "worst ratio", "holds"],
    );
    for &n in dims {
        let uniform = ProductDistribution::uniform_bits(n);
        let biased = ProductDistribution::biased_bits(
            &(0..n)
                .map(|i| 0.2 + 0.6 * (i % 2) as f64)
                .collect::<Vec<_>>(),
        );
        for (label, distribution) in [("uniform", uniform), ("biased", biased)] {
            let worst = worst_case_ratio(&distribution, sets, 4, 7 + n as u64);
            table.push_row(vec![
                n.to_string(),
                label.to_string(),
                sets.to_string(),
                fmt_f64(worst),
                (worst <= 1.0).to_string(),
            ]);
        }
    }
    table
}

/// E4 — Lemmas 11 and 13: the `Z^k` sets stay Hamming-separated beyond `t` on
/// the abstract model.
pub fn exp4_zset_separation(scale: Scale) -> Table {
    let configs: &[(usize, usize, usize, usize)] = scale.pick(
        &[(4, 1, 4, 3)][..],
        &[(4, 1, 4, 3), (5, 1, 4, 3), (6, 1, 5, 4)][..],
    );
    let levels = scale.pick(3, 5);
    let mut table = Table::new(
        "E4: Lemmas 11/13 — Hamming separation of the Z^k sets (abstract model)",
        "Exact Z^k recursion on the abstract reset-tolerant kernel; Lemma 13 predicts \
         ∆(Z^k_0, Z^k_1) > t at every level (empty sets are vacuously separated).",
        vec!["n", "t", "k", "|Z^k_0|", "|Z^k_1|", "separation", "> t"],
    );
    for &(n, t, decide, adopt) in configs {
        let kernel = MiniResetTolerantKernel::new(n, t, decide, adopt);
        let analysis = ZSetAnalysis::new(&kernel, tau(n, t));
        for level in analysis.separation_profile(&kernel, levels) {
            table.push_row(vec![
                n.to_string(),
                t.to_string(),
                level.level.to_string(),
                level.size_zero.to_string(),
                level.size_one.to_string(),
                level.separation.map_or("-".to_string(), |d| d.to_string()),
                level.exceeds(t).to_string(),
            ]);
        }
    }
    table
}

/// E5's full size axis; the table reports every size, the specs simulate the
/// small ones.
fn exp5_sizes(scale: Scale) -> &'static [usize] {
    scale.pick(&[7, 13][..], &[7, 13, 19, 25, 31, 61, 121][..])
}

/// E5's simulated workloads: split-vote runs at the sizes small enough to
/// simulate (`n <= 31`); larger sizes report only the analytic envelope.
pub fn exp5_specs(scale: Scale) -> Vec<ScenarioSpec> {
    let simulated: Vec<usize> = exp5_sizes(scale)
        .iter()
        .copied()
        .filter(|&n| n <= 31)
        .collect();
    ScenarioMatrix::new()
        .tag("e5")
        .protocols(vec![ProtocolSpec::ResetTolerant])
        .inputs(vec![InputPattern::EvenlySplit])
        .adversaries(&["split-vote"])
        .sizes(sixth_sizes(&simulated))
        .trials(scale.pick(5, 50))
        .limits(RunLimits::windows(scale.pick(20_000, 200_000)))
        .expand()
}

/// E5 — Theorem 5: the quantitative envelope (window bound `E = C·e^{αn}` and
/// success probability ≥ 1/2) against measured split-vote running times.
pub fn exp5_lower_bound(scale: Scale) -> Table {
    let sizes = exp5_sizes(scale);
    let specs = exp5_specs(scale);
    let c = 1.0 / 6.0;
    let mut table = Table::new(
        "E5: Theorem 5 — lower-bound envelope vs measured running time",
        "E = C·e^{αn} with α = c²/9 and C = (1/4)e^{-c/6} (inequality (3)); the theorem says \
         some adversary forces ≥ E windows with probability ≥ 1/2. Measured: windows forced by \
         the split-vote adversary (a concrete strongly adaptive strategy) on split inputs — it \
         must dominate the envelope, and does by a wide margin at these sizes.",
        vec![
            "n",
            "t",
            "E (bound)",
            "P bound",
            "measured mean windows",
            "measured ≥ E",
        ],
    );
    for &n in sizes {
        let cfg = SystemConfig::with_sixth_resilience(n).expect("n >= 1");
        let bound = window_bound(n, c);
        let p_bound = success_probability(n, c);
        let (measured, frac_above) = match specs.iter().find(|spec| spec.n == n) {
            Some(spec) => {
                let aggregate = run_spec(spec);
                (
                    fmt_f64(aggregate.decision_time.mean),
                    fmt_rate(if aggregate.decision_time.min >= bound {
                        1.0
                    } else {
                        0.0
                    }),
                )
            }
            None => ("(not simulated)".to_string(), "-".to_string()),
        };
        table.push_row(vec![
            n.to_string(),
            cfg.t().to_string(),
            format!("{bound:.4}"),
            fmt_f64(p_bound),
            measured,
            frac_above,
        ]);
    }
    table
}

/// E6's workloads: Ben-Or under the lockstep balancing scheduler across `n`.
pub fn exp6_specs(scale: Scale) -> Vec<ScenarioSpec> {
    let sizes: &[usize] = scale.pick(&[4, 6, 8][..], &[4, 6, 8, 10, 12, 14][..]);
    let pairs: Vec<(usize, usize)> = sizes.iter().map(|&n| (n, (n / 4).max(1))).collect();
    ScenarioMatrix::new()
        .tag("e6")
        .protocols(vec![ProtocolSpec::BenOr])
        .inputs(vec![InputPattern::EvenlySplit])
        .adversaries(&["lockstep-balancing"])
        .sizes(pairs)
        .trials(scale.pick(5, 50))
        .limits(RunLimits::steps(scale.pick(2_000_000, 20_000_000)))
        .expand()
}

/// E6 — Theorem 17: exponential message chains for forgetful, fully
/// communicative algorithms (Ben-Or) under crash-model balancing scheduling.
pub fn exp6_crash_chains(scale: Scale) -> Table {
    let mut points = Vec::new();
    let mut rows = Vec::new();
    for spec in exp6_specs(scale) {
        let aggregate = run_spec(&spec);
        points.push((spec.n as f64, aggregate.chain_length.mean.max(1.0)));
        rows.push(vec![
            spec.n.to_string(),
            spec.t.to_string(),
            fmt_f64(aggregate.chain_length.mean),
            fmt_f64(aggregate.chain_length.max),
            fmt_rate(aggregate.termination_rate),
            fmt_rate(aggregate.agreement_rate),
        ]);
    }
    let fit = exponential_fit(&points);
    let mut table = Table::new(
        "E6: Theorem 17 — message-chain growth for Ben-Or under crash-model balancing",
        format!(
            "Ben-Or (forgetful, fully communicative), evenly split inputs, zero crashes, \
             balancing scheduler; longest message chain before the first decision vs n. \
             Fitted growth: chain ≈ {:.3}·exp({:.3}·n), R² = {:.3}.",
            fit.prefactor, fit.rate, fit.r_squared
        ),
        vec![
            "n",
            "t",
            "mean chain",
            "max chain",
            "termination",
            "agreement",
        ],
    );
    for row in rows {
        table.push_row(row);
    }
    table
}

/// E7's workloads: the committee baseline against non-adaptive and adaptive
/// crash adversaries, and Ben-Or against the same adaptive killer.
pub fn exp7_specs(scale: Scale) -> Vec<ScenarioSpec> {
    let n = scale.pick(18, 30);
    // The killer needs to be able to silence at least f + 1 = 2 committee
    // members to stall the committee's internal quorum.
    let t = (n / 10).max(2);
    let committee_size = 5;
    let committee_seed = 0xC0FFEE;
    let trials = scale.pick(10, 100);
    let limits = RunLimits::steps(500_000);
    let committee = ProtocolSpec::Committee {
        size: committee_size,
        seed: committee_seed,
    };
    let cfg = SystemConfig::new(n, t).expect("t < n");
    let killer_targets = CommitteeBuilder::random(&cfg, committee_size, committee_seed)
        .committee()
        .to_vec();
    vec![
        ScenarioSpec::new(
            committee.clone(),
            "non-adaptive-crash",
            InputPattern::Unanimous(Bit::One),
            n,
            t,
        )
        .tag("e7")
        .trials(trials)
        .limits(limits),
        ScenarioSpec::new(
            committee,
            "adaptive-committee-killer",
            InputPattern::Unanimous(Bit::One),
            n,
            t,
        )
        .tag("e7")
        .trials(trials)
        .limits(limits),
        // Quorum-based Ben-Or facing the same killer aimed at the same
        // (now meaningless) committee.
        ScenarioSpec::new(
            ProtocolSpec::BenOr,
            "adaptive-committee-killer",
            InputPattern::Unanimous(Bit::One),
            n,
            t,
        )
        .tag("e7")
        .trials(trials)
        .limits(limits)
        .targets(killer_targets),
    ]
}

/// E7 — the contrast with Kapron et al.: committee protocols are fast against
/// non-adaptive faults and fail against an adaptive committee killer, while
/// quorum-based protocols shrug the same adversary off.
pub fn exp7_committee_vs_adaptive(scale: Scale) -> Table {
    let mut table = Table::new(
        "E7: committee baseline vs adaptive adversary (Kapron et al. contrast)",
        "Unanimous inputs. The committee protocol terminates against a non-adaptive crash \
         adversary but stalls when the adversary adaptively silences the (public) committee; \
         quorum-based Ben-Or survives the same adaptive budget.",
        vec![
            "protocol",
            "adversary",
            "termination",
            "agreement",
            "validity",
            "mean chain",
        ],
    );
    let row_labels = [
        ("committee", "non-adaptive crash"),
        ("committee", "adaptive committee-killer"),
        ("ben-or", "adaptive committee-killer"),
    ];
    for (spec, (protocol, adversary)) in exp7_specs(scale).iter().zip(row_labels) {
        let aggregate = run_spec(spec);
        table.push_row(vec![
            protocol.to_string(),
            adversary.to_string(),
            fmt_rate(aggregate.termination_rate),
            fmt_rate(aggregate.agreement_rate),
            fmt_rate(aggregate.validity_rate),
            fmt_f64(aggregate.chain_length.mean),
        ]);
    }
    table
}

/// The E8 threshold settings: the valid Theorem 4 triple plus one probe per
/// broken constraint.
fn exp8_settings() -> Vec<(&'static str, Thresholds)> {
    let cfg = SystemConfig::with_sixth_resilience(13).expect("n >= 1");
    let valid = Thresholds::recommended(&cfg).expect("t < n/6");
    vec![
        ("valid (T1=9,T2=9,T3=7)", valid),
        ("broken: T2 too small (T2=5)", Thresholds::new(9, 5, 7)),
        ("broken: 2*T3 <= n (T3=6)", Thresholds::new(9, 9, 6)),
        ("broken: T2 < T3 + t (T2=7)", Thresholds::new(9, 7, 7)),
    ]
}

/// E8's workloads: every threshold setting against the polarizing adversary.
pub fn exp8_specs(scale: Scale) -> Vec<ScenarioSpec> {
    let cfg = SystemConfig::with_sixth_resilience(13).expect("n >= 1");
    exp8_settings()
        .into_iter()
        .map(|(_, thresholds)| {
            ScenarioSpec::new(
                ProtocolSpec::ResetTolerantWith(thresholds),
                "polarizing",
                InputPattern::EvenlySplit,
                cfg.n(),
                cfg.t(),
            )
            .tag("e8")
            .trials(scale.pick(10, 100))
            .limits(RunLimits::windows(2_000))
        })
        .collect()
}

/// E8 — the Theorem 4 threshold constraints matter: valid thresholds keep
/// agreement at 100% under a polarizing adversary, while broken thresholds
/// admit disagreement.
pub fn exp8_threshold_sensitivity(scale: Scale) -> Table {
    let cfg = SystemConfig::with_sixth_resilience(13).expect("n >= 1");
    let mut table = Table::new(
        "E8: Theorem 4 threshold sensitivity",
        "Reset-tolerant protocol on split inputs under a polarizing window adversary. Valid \
         thresholds keep agreement and validity at 100%; each broken constraint opens the door \
         to disagreement (agreement < 100%).",
        vec![
            "thresholds",
            "satisfies Theorem 4",
            "agreement",
            "validity",
            "termination",
        ],
    );
    for (spec, (label, thresholds)) in exp8_specs(scale).iter().zip(exp8_settings()) {
        let aggregate = run_spec(spec);
        table.push_row(vec![
            label.to_string(),
            thresholds.is_valid_for(&cfg).to_string(),
            fmt_rate(aggregate.agreement_rate),
            fmt_rate(aggregate.validity_rate),
            fmt_rate(aggregate.termination_rate),
        ]);
    }
    table
}

/// One E9 spec: the reset-tolerant protocol under split-vote+resets at an
/// explicit per-window budget `t` (possibly infeasible — `run` then errors).
fn exp9_spec(scale: Scale, n: usize, t: usize) -> ScenarioSpec {
    ScenarioSpec::new(
        ProtocolSpec::ResetTolerant,
        "split-vote+resets",
        InputPattern::EvenlySplit,
        n,
        t,
    )
    .tag("e9")
    .trials(scale.pick(5, 50))
    .limits(RunLimits::windows(scale.pick(20_000, 100_000)))
}

/// E9's feasible workloads (the table additionally reports the infeasible
/// budgets as rows).
pub fn exp9_specs(scale: Scale) -> Vec<ScenarioSpec> {
    let n = scale.pick(13, 25);
    (0..=(n / 4))
        .map(|t| exp9_spec(scale, n, t))
        .filter(|spec| spec.feasibility().is_ok())
        .collect()
}

/// E9 — ablation: how the per-window reset budget affects the reset-tolerant
/// protocol (valid thresholds only exist below `n/6`).
pub fn exp9_reset_budget(scale: Scale) -> Table {
    let n = scale.pick(13, 25);
    let mut table = Table::new(
        "E9: ablation — per-window reset budget vs feasibility and speed",
        "Reset-tolerant protocol on split inputs under the split-vote+resets adversary. Valid \
         Theorem 4 thresholds exist only for t < n/6; beyond that the row is marked infeasible.",
        vec![
            "n",
            "t",
            "thresholds exist",
            "termination",
            "agreement",
            "mean windows",
        ],
    );
    for t in 0..=(n / 4) {
        let spec = exp9_spec(scale, n, t);
        match spec.run().map(|report| report.aggregate) {
            Ok(aggregate) => {
                table.push_row(vec![
                    n.to_string(),
                    t.to_string(),
                    "yes".to_string(),
                    fmt_rate(aggregate.termination_rate),
                    fmt_rate(aggregate.agreement_rate),
                    fmt_f64(aggregate.decision_time.mean),
                ]);
            }
            Err(_) => {
                table.push_row(vec![
                    n.to_string(),
                    t.to_string(),
                    "no (t >= n/6)".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                ]);
            }
        }
    }
    table
}

/// Least-squares slope of `ln(messages)` against `ln(n)` — the fitted
/// exponent `p` in `messages ≈ C·n^p`. Two points give the exact two-point
/// slope; fewer than two give 0.
fn power_law_exponent(points: &[(f64, f64)]) -> f64 {
    if points.len() < 2 {
        return 0.0;
    }
    let k = points.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(n, m) in points {
        let (x, y) = (n.ln(), m.max(1.0).ln());
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    (k * sxy - sx * sy) / (k * sxx - sx * sx)
}

/// E10's workloads: the quadratic baselines (Ben-Or, Bracha) at the sizes
/// where `Θ(n²)` messages are still simulable, and the sub-quadratic
/// sampled-committee protocol up to `n = 10000`, all under fair round-robin
/// asynchronous scheduling on unanimous inputs.
pub fn exp10_specs(scale: Scale) -> Vec<ScenarioSpec> {
    // The same public sortition seed as the `subquad/` scenario family, so
    // the committees charted here are the committees the registry runs.
    const SORTITION_SEED: u64 = 0x5AB5EED;
    let mut specs = Vec::new();
    for &n in &[25usize, 50, 100] {
        specs.push(
            ScenarioSpec::new(
                ProtocolSpec::BenOr,
                "fair-round-robin",
                InputPattern::Unanimous(Bit::One),
                n,
                (n / 10).max(1),
            )
            .tag("e10")
            .trials(scale.pick(1, 5))
            .limits(RunLimits::steps(1_000_000)),
        );
    }
    // Bracha re-broadcasts its echo/ready rounds while the fair scheduler
    // drip-feeds one delivery per step, so deciding takes ~600·n² steps —
    // the budget must cover ~6M steps at n = 100.
    let bracha_sizes: &[usize] = scale.pick(&[25, 50][..], &[25, 50, 100][..]);
    for &n in bracha_sizes {
        specs.push(
            ScenarioSpec::new(
                ProtocolSpec::Bracha,
                "fair-round-robin",
                InputPattern::Unanimous(Bit::One),
                n,
                (n / 10).max(1),
            )
            .tag("e10")
            .trials(1)
            .limits(RunLimits::steps(8_000_000)),
        );
    }
    // (n, committee size k, fault budget) as in the subquad scenario family.
    let sampled: &[(usize, usize, usize)] = scale.pick(
        &[(100, 13, 5), (1_000, 20, 7)][..],
        &[(100, 13, 5), (1_000, 20, 7), (10_000, 27, 9)][..],
    );
    for &(n, k, t) in sampled {
        specs.push(
            ScenarioSpec::new(
                ProtocolSpec::SampledCommittee {
                    size: k,
                    seed: SORTITION_SEED,
                },
                "fair-round-robin",
                InputPattern::Unanimous(Bit::One),
                n,
                t,
            )
            .tag("e10")
            .trials(scale.pick(1, 3))
            .limits(RunLimits::steps(n as u64 * 500)),
        );
    }
    specs
}

/// E10 — breaking the `n²` wall: messages per decision for the quadratic
/// baselines vs the sampled-committee protocol as `n` grows. The fitted
/// exponent `p` (messages ≈ C·n^p) should sit at (or above) 2 for
/// Ben-Or/Bracha and strictly below 2 for the sampled committee. Every
/// column is seed-deterministic — wall-clock throughput at these shapes is
/// guarded separately by the `campaign_throughput` bench
/// (`async/sampled_committee/fair/1000`).
pub fn exp10_subquadratic_scaling(scale: Scale) -> Table {
    let mut rows = Vec::new();
    let mut families: Vec<(&'static str, Vec<(f64, f64)>)> = Vec::new();
    for spec in exp10_specs(scale) {
        let aggregate = run_spec(&spec);
        let family = match &spec.protocol {
            ProtocolSpec::BenOr => "ben-or",
            ProtocolSpec::Bracha => "bracha",
            ProtocolSpec::SampledCommittee { .. } => "sampled-committee",
            other => panic!("unexpected E10 protocol {}", other.label()),
        };
        let messages = aggregate.messages.mean;
        match families.iter_mut().find(|(name, _)| *name == family) {
            Some((_, points)) => points.push((spec.n as f64, messages)),
            None => families.push((family, vec![(spec.n as f64, messages)])),
        }
        rows.push(vec![
            spec.protocol.label(),
            spec.n.to_string(),
            spec.t.to_string(),
            spec.trials.to_string(),
            fmt_rate(aggregate.termination_rate),
            fmt_f64(messages),
            fmt_f64(messages / (spec.n * spec.n) as f64),
            fmt_f64(aggregate.decision_time.mean),
        ]);
    }
    let fits: Vec<String> = families
        .iter()
        .map(|(name, points)| format!("{name} p = {:.2}", power_law_exponent(points)))
        .collect();
    let mut table = Table::new(
        "E10: breaking the n² wall — messages/decision vs n",
        format!(
            "Fair round-robin scheduling, unanimous inputs; mean messages sent per trial. \
             Quadratic protocols hold messages/n² roughly constant while the sampled \
             committee's ratio collapses. Fitted growth messages ≈ C·n^p: {}. Wall-clock \
             trials/sec at the n = 1000 shape is guarded by the campaign_throughput bench.",
            fits.join(", ")
        ),
        vec![
            "protocol",
            "n",
            "t",
            "trials",
            "termination",
            "mean msgs",
            "msgs/n²",
            "mean steps",
        ],
    );
    for row in rows {
        table.push_row(row);
    }
    table
}

/// Every spec behind the simulated experiments (E3/E4 are pure analysis and
/// have none), in experiment order — the workload list the experiment
/// runner's `--json`/`--csv` flags re-run for machine-readable records.
pub fn experiment_specs(scale: Scale) -> Vec<ScenarioSpec> {
    let mut specs = Vec::new();
    specs.extend(exp1_specs(scale));
    specs.extend(exp2_specs(scale));
    specs.extend(exp5_specs(scale));
    specs.extend(exp6_specs(scale));
    specs.extend(exp7_specs(scale));
    specs.extend(exp8_specs(scale));
    specs.extend(exp9_specs(scale));
    specs.extend(exp10_specs(scale));
    specs
}

/// Runs every experiment at the given scale, in order.
pub fn run_all(scale: Scale) -> Vec<Table> {
    vec![
        exp1_correctness(scale),
        exp2_exponential_runtime(scale),
        exp3_talagrand(scale),
        exp4_zset_separation(scale),
        exp5_lower_bound(scale),
        exp6_crash_chains(scale),
        exp7_committee_vs_adaptive(scale),
        exp8_threshold_sensitivity(scale),
        exp9_reset_budget(scale),
        exp10_subquadratic_scaling(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rate(cell: &str) -> f64 {
        cell.trim_end_matches('%').parse::<f64>().unwrap() / 100.0
    }

    #[test]
    fn exp1_quick_reports_perfect_agreement_and_termination() {
        let table = exp1_correctness(Scale::Quick);
        assert!(!table.rows().is_empty());
        for row in table.rows() {
            assert_eq!(rate(&row[4]), 1.0, "agreement must be perfect: {row:?}");
            assert_eq!(rate(&row[5]), 1.0, "validity must be perfect: {row:?}");
            assert_eq!(rate(&row[6]), 1.0, "termination must be reached: {row:?}");
        }
    }

    #[test]
    fn exp3_quick_inequality_always_holds() {
        let table = exp3_talagrand(Scale::Quick);
        for row in table.rows() {
            assert_eq!(row[4], "true", "Talagrand violated: {row:?}");
        }
    }

    #[test]
    fn exp4_quick_separation_exceeds_t_at_every_level() {
        let table = exp4_zset_separation(Scale::Quick);
        assert!(!table.rows().is_empty());
        for row in table.rows() {
            assert_eq!(row[6], "true", "Lemma 13 separation failed: {row:?}");
        }
    }

    #[test]
    fn exp7_quick_shows_the_adaptive_separation() {
        let table = exp7_committee_vs_adaptive(Scale::Quick);
        // committee + non-adaptive terminates most of the time.
        assert!(rate(table.cell(0, 2).unwrap()) >= 0.7);
        // committee + adaptive killer never terminates.
        assert_eq!(rate(table.cell(1, 2).unwrap()), 0.0);
        // ben-or + same adaptive budget always terminates.
        assert_eq!(rate(table.cell(2, 2).unwrap()), 1.0);
    }

    #[test]
    fn exp8_quick_valid_thresholds_agree_broken_t2_disagrees() {
        let table = exp8_threshold_sensitivity(Scale::Quick);
        assert_eq!(table.cell(0, 1), Some("true"));
        assert_eq!(
            rate(table.cell(0, 2).unwrap()),
            1.0,
            "valid thresholds must agree"
        );
        assert_eq!(table.cell(1, 1), Some("false"));
        assert!(
            rate(table.cell(1, 2).unwrap()) < 1.0,
            "a T2 far below the valid region must admit disagreement under the polarizing adversary"
        );
    }

    #[test]
    fn exp9_quick_marks_infeasible_budgets() {
        let table = exp9_reset_budget(Scale::Quick);
        let feasible: Vec<&str> = table.rows().iter().map(|r| r[2].as_str()).collect();
        assert!(feasible.contains(&"yes"));
        assert!(feasible.iter().any(|s| s.starts_with("no")));
    }

    #[test]
    fn spec_lists_cover_every_simulated_experiment() {
        assert_eq!(exp1_specs(Scale::Quick).len(), 8);
        assert_eq!(exp2_specs(Scale::Quick).len(), 4);
        assert_eq!(exp5_specs(Scale::Quick).len(), 2);
        assert_eq!(exp6_specs(Scale::Quick).len(), 3);
        assert_eq!(exp7_specs(Scale::Quick).len(), 3);
        assert_eq!(exp8_specs(Scale::Quick).len(), 4);
        assert_eq!(
            exp9_specs(Scale::Quick).len(),
            3,
            "t in {{0, 1, 2}} feasible at n=13"
        );
        assert_eq!(
            exp10_specs(Scale::Quick).len(),
            7,
            "3 ben-or + 2 bracha + 2 sampled-committee sizes at quick scale"
        );
    }

    #[test]
    fn exp10_power_law_fit_recovers_known_exponents() {
        let quadratic: Vec<(f64, f64)> = [25.0, 50.0, 100.0].map(|n| (n, 3.0 * n * n)).to_vec();
        assert!((power_law_exponent(&quadratic) - 2.0).abs() < 1e-9);
        let linear: Vec<(f64, f64)> = [100.0, 1_000.0].map(|n| (n, 40.0 * n)).to_vec();
        assert!((power_law_exponent(&linear) - 1.0).abs() < 1e-9);
        assert_eq!(power_law_exponent(&[(10.0, 5.0)]), 0.0);
    }
}

//! Columnar record-block encoding: the binary wire format that batches many
//! [`TrialRecord`]s into one orchestration frame.
//!
//! The per-trial JSON record frame spends most of its bytes on field names
//! and most of the coordinator's time on JSON parsing. A block frame instead
//! lays `N` records out **by column**: every field of [`TrialRecord`] becomes
//! one run of varints or one packed bitset, so the common shapes — contiguous
//! trial indices, seeds at a constant stride, boolean outcome flags that are
//! almost always `true`, metrics counters near zero — collapse to a byte or
//! a bit each. The body can optionally pass through the std-only LZ codec
//! ([`agreement_analysis::lz_compress`]); either way the transport's frame
//! CRC covers the final payload, so in-flight damage (including injected
//! `FaultPlan` bit-flips) surfaces as `FrameCorrupt` before this decoder
//! runs. This decoder's own checks guard against the *other* failure class:
//! truncated, malformed, or adversarial bytes decode to a loud error, never
//! to fabricated records.
//!
//! # Layout
//!
//! ```text
//! [0]      magic 0xB5          (never '{' — JSON frames stay recognizable)
//! [1]      version (currently 1)
//! [2]      flags (bit 0: body is LZ-compressed; other bits must be zero)
//! varint   job id
//! varint   record count
//! varint   raw body length in bytes (pre-compression)
//! bytes    body (raw, or LZ stream decompressing to exactly that length)
//! ```
//!
//! The body holds, in order: the `trial` column (first value, then zigzag
//! deltas), the `seed` column (same), packed bitsets for `agreement` /
//! `validity` / `terminated` / `halted`, a presence+value bitset pair for
//! `decided`, presence bitsets plus varint values for `first_decision_at`
//! and `all_decided_at`, varint columns for `violations` / `duration` /
//! `longest_chain`, and the ten `Metrics` counters as varint columns.

use agreement_analysis::{
    lz_compress, lz_decompress, read_varint, write_varint, zigzag_decode, zigzag_encode,
};
use agreement_model::Bit;
use agreement_sim::Metrics;

use crate::record::TrialRecord;

/// First byte of every block frame. Distinct from `{` (0x7B), the first byte
/// of every JSON frame, which is all the frame-kind discrimination the
/// protocol needs.
pub const BLOCK_MAGIC: u8 = 0xB5;

/// Current block-format version; bumped on any layout change.
pub const BLOCK_VERSION: u8 = 1;

/// Flag bit 0: the body is an LZ stream.
const FLAG_COMPRESSED: u8 = 0x01;

/// Whether a received frame is a record block (as opposed to a JSON frame).
#[must_use]
pub fn is_block_frame(frame: &[u8]) -> bool {
    frame.first() == Some(&BLOCK_MAGIC)
}

/// Encodes `records` into one block frame payload for `job`. With
/// `compress`, the columnar body additionally runs through the LZ codec —
/// but only when that actually shrinks it, so pathological bodies never pay
/// expansion (the flag byte records which form shipped).
#[must_use]
pub fn encode_block(job: u64, records: &[TrialRecord], compress: bool) -> Vec<u8> {
    let body = encode_columns(records);
    let mut out = Vec::with_capacity(body.len() / 2 + 24);
    out.push(BLOCK_MAGIC);
    out.push(BLOCK_VERSION);
    let mut flags = 0u8;
    let mut packed = None;
    if compress {
        let candidate = lz_compress(&body);
        if candidate.len() < body.len() {
            flags |= FLAG_COMPRESSED;
            packed = Some(candidate);
        }
    }
    out.push(flags);
    write_varint(&mut out, job);
    write_varint(&mut out, records.len() as u64);
    write_varint(&mut out, body.len() as u64);
    match packed {
        Some(candidate) => out.extend_from_slice(&candidate),
        None => out.extend_from_slice(&body),
    }
    out
}

/// Decodes a block frame back into `(job, records)` — the exact records
/// [`encode_block`] was given.
///
/// # Errors
///
/// Every malformed shape is an error naming what broke: wrong magic or
/// version, unknown flag bits, a count or length the body cannot hold, an LZ
/// stream that does not decompress to the declared length, truncated
/// columns, out-of-range values, or trailing bytes.
pub fn decode_block(frame: &[u8]) -> Result<(u64, Vec<TrialRecord>), String> {
    if frame.first() != Some(&BLOCK_MAGIC) {
        return Err("not a block frame (bad magic)".to_string());
    }
    let version = *frame.get(1).ok_or("truncated block header")?;
    if version != BLOCK_VERSION {
        return Err(format!(
            "unsupported block version {version} (this side speaks {BLOCK_VERSION})"
        ));
    }
    let flags = *frame.get(2).ok_or("truncated block header")?;
    if flags & !FLAG_COMPRESSED != 0 {
        return Err(format!("unknown block flags {flags:#04x}"));
    }
    let mut pos = 3usize;
    let job = read_varint(frame, &mut pos)?;
    let count = read_varint(frame, &mut pos)?;
    let raw_len = read_varint(frame, &mut pos)?;
    // Every record costs at least one trial-column byte, so a count above
    // the raw body length is a lie — reject it before any allocation
    // proportional to it.
    if count > raw_len && count != 0 {
        return Err(format!(
            "block claims {count} record(s) in a {raw_len}-byte body"
        ));
    }
    let payload = &frame[pos..];
    let decompressed;
    let body: &[u8] = if flags & FLAG_COMPRESSED != 0 {
        decompressed = lz_decompress(payload, raw_len as usize)?;
        &decompressed
    } else {
        if payload.len() as u64 != raw_len {
            return Err(format!(
                "block declares a {raw_len}-byte body but carries {}",
                payload.len()
            ));
        }
        payload
    };
    let records = decode_columns(body, count as usize)?;
    Ok((job, records))
}

/// Appends `count` bits (one closure call each) as a packed bitset.
fn write_bitset(out: &mut Vec<u8>, count: usize, mut bit: impl FnMut(usize) -> bool) {
    let mut byte = 0u8;
    for i in 0..count {
        if bit(i) {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            out.push(byte);
            byte = 0;
        }
    }
    if !count.is_multiple_of(8) {
        out.push(byte);
    }
}

/// Reads a `count`-bit packed bitset, advancing `*pos` past it.
fn read_bitset(bytes: &[u8], pos: &mut usize, count: usize) -> Result<Vec<bool>, String> {
    let len = count.div_ceil(8);
    let packed = bytes
        .get(*pos..*pos + len)
        .ok_or_else(|| format!("truncated bitset at byte {}", *pos))?;
    *pos += len;
    Ok((0..count)
        .map(|i| packed[i / 8] & (1 << (i % 8)) != 0)
        .collect())
}

/// Writes one u64 column as first-value + zigzag deltas (for near-monotone
/// columns like trial indices and seeds).
fn write_delta_column(out: &mut Vec<u8>, values: impl Iterator<Item = u64>) {
    let mut previous = 0u64;
    let mut first = true;
    for value in values {
        if first {
            write_varint(out, value);
            first = false;
        } else {
            write_varint(out, zigzag_encode(value.wrapping_sub(previous) as i64));
        }
        previous = value;
    }
}

fn read_delta_column(bytes: &[u8], pos: &mut usize, count: usize) -> Result<Vec<u64>, String> {
    let mut values = Vec::with_capacity(count);
    let mut previous = 0u64;
    for i in 0..count {
        previous = if i == 0 {
            read_varint(bytes, pos)?
        } else {
            previous.wrapping_add(zigzag_decode(read_varint(bytes, pos)?) as u64)
        };
        values.push(previous);
    }
    Ok(values)
}

/// Writes one plain varint column.
fn write_column(out: &mut Vec<u8>, values: impl Iterator<Item = u64>) {
    for value in values {
        write_varint(out, value);
    }
}

fn read_column(bytes: &[u8], pos: &mut usize, count: usize) -> Result<Vec<u64>, String> {
    let mut values = Vec::with_capacity(count);
    for _ in 0..count {
        values.push(read_varint(bytes, pos)?);
    }
    Ok(values)
}

/// Writes an `Option<u64>` column: a presence bitset, then the present
/// values as varints.
fn write_optional_column(
    out: &mut Vec<u8>,
    count: usize,
    mut value: impl FnMut(usize) -> Option<u64>,
) {
    let mut present = Vec::with_capacity(count);
    for i in 0..count {
        present.push(value(i));
    }
    write_bitset(out, count, |i| present[i].is_some());
    write_column(out, present.iter().filter_map(|v| *v));
}

fn read_optional_column(
    bytes: &[u8],
    pos: &mut usize,
    count: usize,
) -> Result<Vec<Option<u64>>, String> {
    let present = read_bitset(bytes, pos, count)?;
    present
        .into_iter()
        .map(|set| {
            if set {
                read_varint(bytes, pos).map(Some)
            } else {
                Ok(None)
            }
        })
        .collect()
}

fn encode_columns(records: &[TrialRecord]) -> Vec<u8> {
    let count = records.len();
    // ~2.5 bytes per record for typical campaign batches; resized as needed.
    let mut out = Vec::with_capacity(count * 3 + 16);
    write_delta_column(&mut out, records.iter().map(|r| r.trial));
    write_delta_column(&mut out, records.iter().map(|r| r.seed));
    write_bitset(&mut out, count, |i| records[i].agreement);
    write_bitset(&mut out, count, |i| records[i].validity);
    write_bitset(&mut out, count, |i| records[i].terminated);
    write_bitset(&mut out, count, |i| records[i].halted);
    write_bitset(&mut out, count, |i| records[i].decided.is_some());
    write_bitset(&mut out, count, |i| records[i].decided == Some(Bit::One));
    write_optional_column(&mut out, count, |i| records[i].first_decision_at);
    write_optional_column(&mut out, count, |i| records[i].all_decided_at);
    write_column(&mut out, records.iter().map(|r| r.violations));
    write_column(&mut out, records.iter().map(|r| r.duration));
    write_column(&mut out, records.iter().map(|r| r.longest_chain));
    for metric in METRIC_FIELDS {
        write_column(&mut out, records.iter().map(|r| metric.get(&r.metrics)));
    }
    out
}

fn decode_columns(body: &[u8], count: usize) -> Result<Vec<TrialRecord>, String> {
    let mut pos = 0usize;
    let trial = read_delta_column(body, &mut pos, count)?;
    let seed = read_delta_column(body, &mut pos, count)?;
    let agreement = read_bitset(body, &mut pos, count)?;
    let validity = read_bitset(body, &mut pos, count)?;
    let terminated = read_bitset(body, &mut pos, count)?;
    let halted = read_bitset(body, &mut pos, count)?;
    let decided_present = read_bitset(body, &mut pos, count)?;
    let decided_one = read_bitset(body, &mut pos, count)?;
    for i in 0..count {
        if decided_one[i] && !decided_present[i] {
            return Err(format!(
                "record {i}: decided value bit set without its presence bit"
            ));
        }
    }
    let first_decision_at = read_optional_column(body, &mut pos, count)?;
    let all_decided_at = read_optional_column(body, &mut pos, count)?;
    let violations = read_column(body, &mut pos, count)?;
    let duration = read_column(body, &mut pos, count)?;
    let longest_chain = read_column(body, &mut pos, count)?;
    let mut metrics = vec![Metrics::default(); count];
    for metric in METRIC_FIELDS {
        for target in metrics.iter_mut() {
            metric.set(target, read_varint(body, &mut pos)?);
        }
    }
    if pos != body.len() {
        return Err(format!(
            "block body carries {} trailing byte(s) after the last column",
            body.len() - pos
        ));
    }
    Ok((0..count)
        .map(|i| TrialRecord {
            trial: trial[i],
            seed: seed[i],
            agreement: agreement[i],
            validity: validity[i],
            terminated: terminated[i],
            violations: violations[i],
            halted: halted[i],
            decided: match (decided_present[i], decided_one[i]) {
                (false, _) => None,
                (true, false) => Some(Bit::Zero),
                (true, true) => Some(Bit::One),
            },
            first_decision_at: first_decision_at[i],
            all_decided_at: all_decided_at[i],
            duration: duration[i],
            longest_chain: longest_chain[i],
            metrics: metrics[i],
        })
        .collect())
}

/// One [`Metrics`] counter as a column: accessor pair, kept in a table so the
/// encoder and decoder can never disagree on field order.
struct MetricField {
    get: fn(&Metrics) -> u64,
    set: fn(&mut Metrics, u64),
}

impl MetricField {
    fn get(&self, metrics: &Metrics) -> u64 {
        (self.get)(metrics)
    }
    fn set(&self, metrics: &mut Metrics, value: u64) {
        (self.set)(metrics, value)
    }
}

macro_rules! metric_field {
    ($field:ident) => {
        MetricField {
            get: |m| m.$field,
            set: |m, v| m.$field = v,
        }
    };
}

/// The ten counters, in the same order `TrialRecord::to_json` emits them.
const METRIC_FIELDS: [MetricField; 10] = [
    metric_field!(messages_sent),
    metric_field!(messages_delivered),
    metric_field!(messages_dropped),
    metric_field!(rounds),
    metric_field!(windows),
    metric_field!(steps),
    metric_field!(resets_consumed),
    metric_field!(crashes),
    metric_field!(coin_flips),
    metric_field!(max_chain),
];

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    /// A seeded random record with every field exercised, including the
    /// `Option` and `Bit` shapes.
    fn random_record(state: &mut u64, trial: u64) -> TrialRecord {
        let seed = xorshift(state);
        let agreement = xorshift(state) % 100 < 90;
        let validity = xorshift(state) % 100 < 90;
        let terminated = xorshift(state) % 100 < 80;
        let violations = xorshift(state) % 5;
        let halted = xorshift(state) % 100 < 10;
        let decided = match xorshift(state) % 3 {
            0 => None,
            1 => Some(Bit::Zero),
            _ => Some(Bit::One),
        };
        let first_decision_present = xorshift(state) % 100 < 70;
        let first_decision_value = xorshift(state) % 10_000;
        let all_decided_present = xorshift(state) % 100 < 60;
        let all_decided_value = xorshift(state) % 10_000;
        TrialRecord {
            trial,
            seed,
            agreement,
            validity,
            terminated,
            violations,
            halted,
            decided,
            first_decision_at: first_decision_present.then_some(first_decision_value),
            all_decided_at: all_decided_present.then_some(all_decided_value),
            duration: xorshift(state) % 100_000,
            longest_chain: xorshift(state) % 1_000,
            metrics: Metrics {
                messages_sent: xorshift(state) % 1_000_000,
                messages_delivered: xorshift(state) % 1_000_000,
                messages_dropped: xorshift(state) % 1_000,
                rounds: xorshift(state) % 500,
                windows: xorshift(state) % 2_000,
                steps: xorshift(state) % 5_000_000,
                resets_consumed: xorshift(state) % 20,
                crashes: xorshift(state) % 3,
                coin_flips: xorshift(state) % 10_000,
                max_chain: xorshift(state) % 1_000,
            },
        }
    }

    fn batch(seed: u64, count: usize) -> Vec<TrialRecord> {
        let mut state = seed.max(1);
        (0..count as u64)
            .map(|t| random_record(&mut state, 1_000 + t))
            .collect()
    }

    #[test]
    fn seeded_random_batches_round_trip_compressed_and_raw() {
        for seed in 1..=25u64 {
            let count = (seed as usize * 7) % 300;
            let records = batch(seed, count);
            for compress in [false, true] {
                let frame = encode_block(seed, &records, compress);
                assert!(is_block_frame(&frame));
                let (job, decoded) = decode_block(&frame)
                    .unwrap_or_else(|err| panic!("seed {seed} compress {compress}: {err}"));
                assert_eq!(job, seed);
                assert_eq!(decoded, records, "seed {seed} compress {compress}");
            }
        }
    }

    #[test]
    fn extreme_values_round_trip() {
        let mut extreme = batch(99, 3);
        extreme[0].seed = u64::MAX;
        extreme[0].trial = u64::MAX - 1;
        extreme[1].trial = 0; // a *negative* trial delta after MAX - 1
        extreme[1].metrics.steps = u64::MAX;
        extreme[2].first_decision_at = Some(u64::MAX);
        for compress in [false, true] {
            let frame = encode_block(u64::MAX, &extreme, compress);
            let (job, decoded) = decode_block(&frame).expect("extreme batch decodes");
            assert_eq!(job, u64::MAX);
            assert_eq!(decoded, extreme);
        }
    }

    #[test]
    fn empty_blocks_round_trip() {
        for compress in [false, true] {
            let frame = encode_block(7, &[], compress);
            let (job, decoded) = decode_block(&frame).expect("empty block decodes");
            assert_eq!(job, 7);
            assert!(decoded.is_empty());
        }
    }

    #[test]
    fn campaign_shaped_batches_beat_the_json_encoding_handily() {
        // Contiguous trials, stride-1 seeds, uniform flags: the shape real
        // campaign batches have. This is the size claim the wire change is
        // built on, so pin it.
        let records: Vec<TrialRecord> = (0..256u64)
            .map(|t| TrialRecord {
                trial: t,
                seed: 0x5EED + t,
                agreement: true,
                validity: true,
                terminated: true,
                violations: 0,
                halted: false,
                decided: Some(Bit::One),
                first_decision_at: Some(10 + t % 7),
                all_decided_at: Some(12 + t % 7),
                duration: 12 + t % 7,
                longest_chain: 3,
                metrics: Metrics {
                    messages_sent: 400 + t % 13,
                    messages_delivered: 390 + t % 13,
                    messages_dropped: 10,
                    rounds: 4,
                    windows: 12 + t % 7,
                    steps: 0,
                    resets_consumed: 1,
                    crashes: 0,
                    coin_flips: 60 + t % 5,
                    max_chain: 3,
                },
            })
            .collect();
        let json_bytes: usize = records.iter().map(|r| r.to_json().to_string().len()).sum();
        let raw = encode_block(0, &records, false);
        let packed = encode_block(0, &records, true);
        assert!(
            raw.len() * 10 < json_bytes,
            "columnar ({}) should be under a tenth of JSON ({json_bytes})",
            raw.len()
        );
        assert!(packed.len() < raw.len(), "LZ should shrink this shape");
        assert_eq!(decode_block(&packed).unwrap().1, records);
    }

    #[test]
    fn truncations_and_bit_errors_decode_loudly_never_wrongly() {
        let records = batch(3, 64);
        for compress in [false, true] {
            let frame = encode_block(11, &records, compress);
            // Every prefix must fail: nothing shorter than the frame decodes.
            for cut in 0..frame.len() {
                assert!(
                    decode_block(&frame[..cut]).is_err(),
                    "truncation at {cut} (compress {compress}) must error"
                );
            }
            // Flipping any single header/metadata byte must error or decode
            // to *different* records — never quietly to the originals with a
            // lie somewhere. (In-flight flips are the frame CRC's job; this
            // pins the decoder's own robustness.)
            for target in 0..frame.len().min(16) {
                let mut damaged = frame.clone();
                damaged[target] ^= 0x04;
                if let Ok((job, decoded)) = decode_block(&damaged) {
                    assert!(
                        job != 11 || decoded != records,
                        "byte {target} flip decoded back to the originals"
                    );
                }
            }
        }
    }

    #[test]
    fn wrong_magic_version_and_flags_are_rejected() {
        let frame = encode_block(1, &batch(5, 4), false);
        let mut wrong_magic = frame.clone();
        wrong_magic[0] = b'{';
        assert!(decode_block(&wrong_magic).unwrap_err().contains("magic"));
        let mut wrong_version = frame.clone();
        wrong_version[1] = BLOCK_VERSION + 1;
        assert!(decode_block(&wrong_version)
            .unwrap_err()
            .contains("version"));
        let mut wrong_flags = frame.clone();
        wrong_flags[2] |= 0x80;
        assert!(decode_block(&wrong_flags).unwrap_err().contains("flags"));
    }

    #[test]
    fn absurd_counts_are_rejected_before_allocation() {
        // Header claiming 2^50 records in a 3-byte body.
        let mut frame = vec![BLOCK_MAGIC, BLOCK_VERSION, 0];
        agreement_analysis::write_varint(&mut frame, 9); // job
        agreement_analysis::write_varint(&mut frame, 1 << 50); // count
        agreement_analysis::write_varint(&mut frame, 3); // raw_len
        frame.extend_from_slice(&[0, 0, 0]);
        let err = decode_block(&frame).unwrap_err();
        assert!(err.contains("claims"), "{err}");
    }

    #[test]
    fn json_and_block_frames_are_distinguishable_by_first_byte() {
        let json = b"{\"type\":\"record\"}";
        assert!(!is_block_frame(json));
        let block = encode_block(0, &[], false);
        assert!(is_block_frame(&block));
        assert_ne!(BLOCK_MAGIC, b'{');
    }

    #[test]
    fn max_size_blocks_stay_under_the_frame_cap() {
        // A worst-case record (every field at u64::MAX) costs ~26 varints of
        // ≤ 10 bytes each; 65536 of them — the worker-side batch clamp —
        // must still fit one 64 MiB transport frame.
        let worst = TrialRecord {
            trial: u64::MAX,
            seed: u64::MAX,
            agreement: true,
            validity: true,
            terminated: true,
            violations: u64::MAX,
            halted: true,
            decided: Some(Bit::One),
            first_decision_at: Some(u64::MAX),
            all_decided_at: Some(u64::MAX),
            duration: u64::MAX,
            longest_chain: u64::MAX,
            metrics: Metrics {
                messages_sent: u64::MAX,
                messages_delivered: u64::MAX,
                messages_dropped: u64::MAX,
                rounds: u64::MAX,
                windows: u64::MAX,
                steps: u64::MAX,
                resets_consumed: u64::MAX,
                crashes: u64::MAX,
                coin_flips: u64::MAX,
                max_chain: u64::MAX,
            },
        };
        let records = vec![worst; 65_536];
        let frame = encode_block(0, &records, false);
        assert!(
            frame.len() <= 64 << 20,
            "worst-case max batch is {} bytes",
            frame.len()
        );
        assert_eq!(decode_block(&frame).unwrap().1, records);
    }
}

//! Benchmarks one acceptable window of the reset-tolerant protocol under the
//! strongly adaptive (rotating-reset) adversary, and a full run to decision on
//! unanimous inputs (experiment E1's engine path).

use std::time::Duration;

use agreement_bench::harness::BenchGroup;

use agreement_adversary::RotatingResetAdversary;
use agreement_model::{Bit, InputAssignment, SystemConfig};
use agreement_protocols::ResetTolerantBuilder;
use agreement_sim::{run_windowed, RunLimits, WindowEngine};

fn main() {
    let group = BenchGroup::new("window_engine")
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));
    for n in [13usize, 25, 49] {
        let cfg = SystemConfig::with_sixth_resilience(n).unwrap();
        let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
        group.bench(format!("single_window/{n}"), || {
            let mut engine = WindowEngine::new(cfg, InputAssignment::evenly_split(n), &builder, 1);
            engine.step_window(&mut RotatingResetAdversary::new());
            engine.windows_elapsed()
        });
        group.bench(format!("run_to_decision_unanimous/{n}"), || {
            run_windowed(
                cfg,
                InputAssignment::unanimous(n, Bit::One),
                &builder,
                &mut RotatingResetAdversary::new(),
                7,
                RunLimits::small(),
            )
            .all_decided_at
        });
    }
    group.finish();
}

//! Benchmarks full split-input runs under the split-vote adversary for growing
//! n — the workload behind experiment E2 (exponential running time).

use std::time::Duration;

use agreement_bench::harness::BenchGroup;

use agreement_adversary::SplitVoteAdversary;
use agreement_model::{InputAssignment, SystemConfig};
use agreement_protocols::ResetTolerantBuilder;
use agreement_sim::{run_windowed, RunLimits};

fn main() {
    let group = BenchGroup::new("rounds_to_decision")
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for n in [7usize, 9, 11] {
        let cfg = SystemConfig::with_sixth_resilience(n).unwrap();
        let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
        let mut seed = 0u64;
        group.bench(format!("split_vote_split_inputs/{n}"), || {
            seed += 1;
            run_windowed(
                cfg,
                InputAssignment::evenly_split(n),
                &builder,
                &mut SplitVoteAdversary::new(),
                seed,
                RunLimits::windows(100_000),
            )
            .all_decided_at
        });
    }
    group.finish();
}

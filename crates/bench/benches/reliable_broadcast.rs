//! Benchmarks Bracha agreement (built on reliable broadcast) to decision under
//! fair asynchronous scheduling.

use std::time::Duration;

use agreement_bench::harness::BenchGroup;

use agreement_model::{Bit, InputAssignment, SystemConfig};
use agreement_protocols::BrachaBuilder;
use agreement_sim::{run_async, FairAsyncAdversary, RunLimits};

fn main() {
    let group = BenchGroup::new("reliable_broadcast")
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for n in [4usize, 7, 10] {
        let cfg = SystemConfig::with_third_resilience(n).unwrap();
        group.bench(format!("bracha_unanimous_run/{n}"), || {
            run_async(
                cfg,
                InputAssignment::unanimous(n, Bit::One),
                &BrachaBuilder::new(),
                &mut FairAsyncAdversary::default(),
                3,
                RunLimits::steps(2_000_000),
            )
            .all_decided_at
        });
    }
    group.finish();
}

//! Benchmarks Bracha agreement (built on reliable broadcast) to decision under
//! fair asynchronous scheduling.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use agreement_model::{Bit, InputAssignment, SystemConfig};
use agreement_protocols::BrachaBuilder;
use agreement_sim::{run_async, FairAsyncAdversary, RunLimits};

fn bench_bracha(c: &mut Criterion) {
    let mut group = c.benchmark_group("reliable_broadcast");
    group.sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(300));
    for n in [4usize, 7, 10] {
        let cfg = SystemConfig::with_third_resilience(n).unwrap();
        group.bench_with_input(BenchmarkId::new("bracha_unanimous_run", n), &n, |b, _| {
            b.iter(|| {
                run_async(
                    cfg,
                    InputAssignment::unanimous(n, Bit::One),
                    &BrachaBuilder::new(),
                    &mut FairAsyncAdversary::default(),
                    3,
                    RunLimits::steps(2_000_000),
                )
                .all_decided_at
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bracha);
criterion_main!(benches);

//! Benchmarks the Hamming-geometry primitives and the abstract Z-set recursion
//! (experiments E3/E4's machinery).

use std::time::Duration;

use agreement_bench::harness::BenchGroup;

use agreement_analysis::{distance_between_sets, tau, MiniResetTolerantKernel, ZSetAnalysis};
use agreement_model::ProcessorRng;

fn main() {
    let group = BenchGroup::new("hamming")
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));
    let mut rng = ProcessorRng::from_seed(1);
    for size in [64usize, 256] {
        let a: Vec<Vec<u8>> = (0..size)
            .map(|_| (0..32).map(|_| rng.range(2) as u8).collect())
            .collect();
        let b: Vec<Vec<u8>> = (0..size)
            .map(|_| (0..32).map(|_| rng.range(2) as u8).collect())
            .collect();
        group.bench(format!("set_to_set_distance/{size}"), || {
            distance_between_sets(&a, &b)
        });
    }
    let kernel = MiniResetTolerantKernel::new(4, 1, 4, 3);
    group.bench("zset_profile_n4", || {
        let analysis = ZSetAnalysis::new(&kernel, tau(4, 1));
        analysis.separation_profile(&kernel, 2).len()
    });
    group.finish();
}

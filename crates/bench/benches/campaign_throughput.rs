//! The campaign hot-path throughput guard.
//!
//! Measures end-to-end campaign throughput — seeded trials distilled into
//! `TrialRecord`s per second — on three E-series-shaped workloads, and
//! compares each number against the baseline recorded in
//! `crates/bench/baselines/campaign_throughput.json`. This is the number the
//! trace-gating / arena / workspace optimisations move: unlike `exec_core`
//! (which times raw scheduler steps on a fresh core), this bench pays every
//! per-trial cost a real campaign pays — core construction or reuse, the full
//! run, and the distillation into a record.
//!
//! Workloads:
//!
//! * `windowed/reset_tolerant/split_vote/13` — the E1 shape: the Section 3
//!   reset-tolerant protocol under the split-vote balancing adversary.
//! * `windowed/reset_tolerant/full_delivery/25` — the benign windowed
//!   baseline at the larger E-series size.
//! * `async/ben_or/fair/8` — Ben-Or under fair round-robin asynchronous
//!   scheduling (the E6-style async shape).
//! * `partial_sync/ben_or/eventual/8` — Ben-Or under the partial-synchrony
//!   model's benign-eventual baseline, run through the model-agnostic
//!   `Campaign::run_records` path (the same open-axis dispatch the scenario
//!   layer uses).
//! * `async/sampled_committee/fair/1000` — the sub-quadratic subquad shape:
//!   sampled-committee agreement at n = 1000, where `BufferChoice::Auto`
//!   picks the lazily materialized sparse channel fabric (a dense grid here
//!   would be a million queues per trial).
//!
//! Trials run on `Campaign::serial()` so the measurement is per-worker
//! throughput, free of thread-scheduling noise; the parallel campaign scales
//! this number by the worker count.

use std::time::Duration;

use agreement_bench::baseline::{baseline_path, Baseline, Verdict};
use agreement_bench::harness::BenchGroup;

use agreement_adversary::SplitVoteAdversary;
use agreement_core::{Campaign, TrialPlan};
use agreement_model::{Bit, InputAssignment, SystemConfig};
use agreement_protocols::{BenOrBuilder, ResetTolerantBuilder, SampledCommitteeBuilder};
use agreement_sim::{
    BenignEventualAdversary, BuiltAdversary, FairAsyncAdversary, FullDeliveryAdversary, RunLimits,
};

/// Fractional slowdown tolerated before a measurement is flagged (loose: the
/// baseline is recorded on unspecified hardware; the guard tracks trajectory).
const TOLERANCE: f64 = 0.6;
/// Trials per timed iteration: enough for the per-worker workspace reuse to
/// amortise, small enough to keep the bench under a few seconds.
const TRIALS_PER_ITER: u64 = 8;

fn group() -> BenchGroup {
    BenchGroup::new("campaign_throughput")
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

/// E1 shape: reset-tolerant protocol vs the split-vote adversary, n = 13.
fn windowed_split_vote(n: usize) -> f64 {
    let cfg = SystemConfig::with_sixth_resilience(n).unwrap();
    let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
    let plan = TrialPlan::new(cfg, InputAssignment::evenly_split(n))
        .trials(TRIALS_PER_ITER)
        .limits(RunLimits::windows(2_000));
    let campaign = Campaign::serial();
    let stats = group().bench(format!("windowed/reset_tolerant/split_vote/{n}"), || {
        campaign.run_windowed_records(&plan, &builder, |_seed| SplitVoteAdversary::new())
    });
    stats.throughput() * TRIALS_PER_ITER as f64
}

/// Benign windowed baseline at the larger E-series size.
fn windowed_full_delivery(n: usize) -> f64 {
    let cfg = SystemConfig::with_sixth_resilience(n).unwrap();
    let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
    let plan = TrialPlan::new(cfg, InputAssignment::evenly_split(n))
        .trials(TRIALS_PER_ITER)
        .limits(RunLimits::windows(2_000));
    let campaign = Campaign::serial();
    let stats = group().bench(format!("windowed/reset_tolerant/full_delivery/{n}"), || {
        campaign.run_windowed_records(&plan, &builder, |_seed| FullDeliveryAdversary)
    });
    stats.throughput() * TRIALS_PER_ITER as f64
}

/// The partial-synchrony shape: Ben-Or under the benign-eventual baseline,
/// dispatched model-agnostically through `Campaign::run_records`.
fn partial_sync_ben_or(n: usize) -> f64 {
    let cfg = SystemConfig::new(n, 1).unwrap();
    let builder = BenOrBuilder::new();
    let plan = TrialPlan::new(cfg, InputAssignment::evenly_split(n))
        .trials(TRIALS_PER_ITER)
        .limits(RunLimits::small());
    let campaign = Campaign::serial();
    let stats = group().bench(format!("partial_sync/ben_or/eventual/{n}"), || {
        campaign.run_records(&plan, &builder, |_seed| {
            BuiltAdversary::partial_sync(Box::new(BenignEventualAdversary::default()))
        })
    });
    stats.throughput() * TRIALS_PER_ITER as f64
}

/// E6-style async shape: Ben-Or under fair round-robin scheduling.
fn async_ben_or(n: usize) -> f64 {
    let cfg = SystemConfig::new(n, 1).unwrap();
    let builder = BenOrBuilder::new();
    let plan = TrialPlan::new(cfg, InputAssignment::evenly_split(n))
        .trials(TRIALS_PER_ITER)
        .limits(RunLimits::small());
    let campaign = Campaign::serial();
    let stats = group().bench(format!("async/ben_or/fair/{n}"), || {
        campaign.run_async_records(&plan, &builder, |_seed| FairAsyncAdversary::default())
    });
    stats.throughput() * TRIALS_PER_ITER as f64
}

/// The sub-quadratic subquad shape: sampled-committee agreement at a size
/// where only the sparse channel fabric is viable. Uses the same committee
/// size and sortition seed as the `subquad/` scenario family at n = 1000.
fn async_sampled_committee(n: usize) -> f64 {
    let cfg = SystemConfig::new(n, 7).unwrap();
    let builder = SampledCommitteeBuilder::random(&cfg, 20, 0x5AB5EED);
    let plan = TrialPlan::new(cfg, InputAssignment::unanimous(n, Bit::One))
        .trials(TRIALS_PER_ITER)
        .limits(RunLimits::steps(2_000_000));
    let campaign = Campaign::serial();
    let stats = group().bench(format!("async/sampled_committee/fair/{n}"), || {
        campaign.run_async_records(&plan, &builder, |_seed| FairAsyncAdversary::default())
    });
    stats.throughput() * TRIALS_PER_ITER as f64
}

fn main() {
    let record = std::env::args().any(|a| a == "--record");
    let path = baseline_path("campaign_throughput");
    let baseline = Baseline::load(&path).unwrap_or_else(|err| {
        eprintln!("warning: could not load baseline ({err}); continuing without");
        Baseline::new()
    });

    let mut measured = Baseline::new();
    measured.set(
        "windowed/reset_tolerant/split_vote/13",
        windowed_split_vote(13),
    );
    measured.set(
        "windowed/reset_tolerant/full_delivery/25",
        windowed_full_delivery(25),
    );
    measured.set("async/ben_or/fair/8", async_ben_or(8));
    measured.set("partial_sync/ben_or/eventual/8", partial_sync_ben_or(8));
    measured.set(
        "async/sampled_committee/fair/1000",
        async_sampled_committee(1_000),
    );

    println!("\n== campaign throughput (trials/sec) vs recorded baseline ==");
    let mut regressions = 0;
    for (name, throughput) in measured.iter() {
        let verdict = baseline.check(name, throughput, TOLERANCE);
        if matches!(verdict, Verdict::Regression { .. }) {
            regressions += 1;
        }
        println!("{name:<42} {throughput:>12.2} trials/s  {verdict}");
    }

    if record {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create baselines dir");
        std::fs::write(&path, measured.to_json()).expect("write baseline");
        println!("recorded new baseline at {}", path.display());
    } else if regressions > 0 {
        println!(
            "{regressions} measurement(s) regressed beyond the {TOLERANCE} tolerance; \
             investigate before merging (or re-record with --record if intentional)"
        );
    } else {
        println!("no regressions beyond the {TOLERANCE} tolerance");
    }
}

//! The campaign hot-path throughput guard.
//!
//! Measures end-to-end campaign throughput — seeded trials distilled into
//! `TrialRecord`s per second — on the canonical workloads defined in
//! `agreement_bench::workloads`, and compares each number against the
//! baseline recorded in `crates/bench/baselines/campaign_throughput.json`.
//! This is the number the trace-gating / arena / workspace / orchestration
//! optimisations move: unlike `exec_core` (which times raw scheduler steps
//! on a fresh core), this bench pays every per-trial cost a real campaign
//! pays — core construction or reuse, the full run, and the distillation
//! into a record.
//!
//! Single-process workloads (see `workloads` for the catalogue) run on
//! `Campaign::serial()` so the measurement is per-worker throughput, free of
//! thread-scheduling noise; the parallel campaign scales this number by the
//! worker count.
//!
//! The `orchestrated/*` cases time the multi-process path end to end —
//! coordinator dispatch over the framed transport, record streaming, and the
//! slot-ordered merge — using this package's own `scenarios` binary in
//! `--worker` mode. On a multi-core host two workers beat one process; on a
//! single-core host (the container this repo is developed and CI'd in has
//! `nproc` = 1) coordinator and workers time-slice one core, so the case
//! measures the orchestration overhead trajectory instead of a speedup.
//! Each case is therefore guarded against its own recorded history, never
//! against its single-process twin.

use agreement_bench::baseline::{baseline_path, Baseline, Verdict};
use agreement_bench::workloads::{self, TOLERANCE};

fn main() {
    let record = std::env::args().any(|a| a == "--record");
    let path = baseline_path("campaign_throughput");
    let baseline = Baseline::load(&path).unwrap_or_else(|err| {
        eprintln!("warning: could not load baseline ({err}); continuing without");
        Baseline::new()
    });

    let worker_cmd = vec![
        env!("CARGO_BIN_EXE_scenarios").to_string(),
        "--worker".to_string(),
    ];
    let measured = workloads::measure_all(Some(&worker_cmd));

    println!("\n== campaign throughput (trials/sec) vs recorded baseline ==");
    let mut regressions = 0;
    for (name, throughput) in measured.iter() {
        let verdict = baseline.check(name, throughput, TOLERANCE);
        if matches!(verdict, Verdict::Regression { .. }) {
            regressions += 1;
        }
        println!("{name:<42} {throughput:>12.2} trials/s  {verdict}");
    }

    if record {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create baselines dir");
        std::fs::write(&path, measured.to_json()).expect("write baseline");
        println!("recorded new baseline at {}", path.display());
    } else if regressions > 0 {
        println!(
            "{regressions} measurement(s) regressed beyond the {TOLERANCE} tolerance; \
             investigate before merging (or re-record with --record if intentional)"
        );
    } else {
        println!("no regressions beyond the {TOLERANCE} tolerance");
    }
}

//! Benchmarks the exact Talagrand-inequality evaluation (experiment E3).

use std::time::Duration;

use agreement_bench::harness::BenchGroup;

use agreement_analysis::{worst_case_ratio, ProductDistribution};

fn main() {
    let group = BenchGroup::new("talagrand")
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));
    for n in [8usize, 10, 12] {
        let distribution = ProductDistribution::uniform_bits(n);
        group.bench(format!("worst_case_ratio/{n}"), || {
            worst_case_ratio(&distribution, 3, 4, 7)
        });
    }
    group.finish();
}

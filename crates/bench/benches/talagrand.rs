//! Benchmarks the exact Talagrand-inequality evaluation (experiment E3).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use agreement_analysis::{worst_case_ratio, ProductDistribution};

fn bench_talagrand(c: &mut Criterion) {
    let mut group = c.benchmark_group("talagrand");
    group.sample_size(10).measurement_time(Duration::from_secs(1)).warm_up_time(Duration::from_millis(300));
    for n in [8usize, 10, 12] {
        let distribution = ProductDistribution::uniform_bits(n);
        group.bench_with_input(BenchmarkId::new("worst_case_ratio", n), &n, |b, _| {
            b.iter(|| worst_case_ratio(&distribution, 3, 4, 7))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_talagrand);
criterion_main!(benches);

//! The unified-core throughput guard.
//!
//! Measures window throughput (acceptable windows scheduled per second) of
//! the shared `ExecutionCore` under both the benign full-delivery adversary
//! and the rotating-reset adversary, plus asynchronous step throughput, and
//! compares each number against the baseline recorded in
//! `crates/bench/baselines/exec_core.json`. A future PR that slows the core
//! down shows up as a `REGRESSION` line; run with `--record` to refresh the
//! baseline after an intentional change.

use std::time::Duration;

use agreement_bench::baseline::{baseline_path, Baseline, Verdict};
use agreement_bench::harness::BenchGroup;

use agreement_adversary::RotatingResetAdversary;
use agreement_model::{Bit, Envelope, InputAssignment, Payload, ProcessorId, SystemConfig};
use agreement_protocols::{BenOrBuilder, ResetTolerantBuilder};
use agreement_sim::{
    AsyncScheduler, ExecutionCore, FairAsyncAdversary, FullDeliveryAdversary, FullTrace,
    MessageBuffer, NoProbe, NoTrace, Recorder, Scheduler, WindowScheduler,
};

/// Fractional slowdown tolerated before a measurement is flagged. Baselines
/// are recorded on unspecified hardware, so this is deliberately loose: the
/// guard tracks the trajectory rather than gating merges.
const TOLERANCE: f64 = 0.6;
const WINDOWS_PER_ITER: u64 = 50;
const STEPS_PER_ITER: u64 = 500;

fn drive_windows<R: Recorder>(
    mut core: ExecutionCore<NoProbe, R>,
    mut adversary: impl agreement_sim::WindowAdversary,
) -> u64 {
    let mut scheduler = WindowScheduler::new(&mut adversary);
    for _ in 0..WINDOWS_PER_ITER {
        scheduler.step(&mut core);
    }
    core.time()
}

/// One windowed measurement, parametric in the recorder so the traced and
/// trace-compiled-out variants share workload, budget and throughput math —
/// their gap is exactly the per-message cost of tracing.
fn window_case<R: Recorder>(n: usize, label: &str, benign: bool) -> f64 {
    let cfg = SystemConfig::with_sixth_resilience(n).unwrap();
    let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
    let group = BenchGroup::new("exec_core")
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));
    let stats = group.bench(format!("windows/{label}/{n}"), || {
        let core = ExecutionCore::with_parts(
            cfg,
            InputAssignment::evenly_split(n),
            &builder,
            1,
            NoProbe,
            R::default(),
        );
        if benign {
            drive_windows(core, FullDeliveryAdversary)
        } else {
            drive_windows(core, RotatingResetAdversary::new())
        }
    });
    stats.throughput() * WINDOWS_PER_ITER as f64
}

fn window_throughput(n: usize, benign: bool) -> f64 {
    let label = if benign {
        "full_delivery"
    } else {
        "rotating_reset"
    };
    window_case::<FullTrace>(n, label, benign)
}

fn window_throughput_no_trace(n: usize) -> f64 {
    window_case::<NoTrace>(n, "full_delivery_no_trace", true)
}

fn async_throughput(n: usize) -> f64 {
    let cfg = SystemConfig::new(n, 1).unwrap();
    let builder = BenOrBuilder::new();
    let group = BenchGroup::new("exec_core")
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));
    let stats = group.bench(format!("async_steps/fair/{n}"), || {
        let mut core = ExecutionCore::new(cfg, InputAssignment::evenly_split(n), &builder, 1);
        let mut adversary = FairAsyncAdversary::default();
        let mut scheduler = AsyncScheduler::new(&mut adversary);
        scheduler.on_start(&mut core);
        for _ in 0..STEPS_PER_ITER {
            if !scheduler.step(&mut core) {
                break;
            }
        }
        core.time()
    });
    stats.throughput() * STEPS_PER_ITER as f64
}

/// Raw hot-path throughput of the flat channel array: enqueue one full
/// all-to-all round of messages, pop them back per channel. Measures exactly
/// the `sender * n + recipient` indexing every engine step goes through.
fn buffer_churn_throughput(n: usize) -> f64 {
    const ROUNDS: u64 = 20;
    let group = BenchGroup::new("exec_core")
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));
    // Constructed once outside the timed closure: every iteration leaves the
    // buffer empty again, so reuse keeps the measurement to pure enqueue/pop
    // indexing instead of n*n queue allocations.
    let mut buffer = MessageBuffer::with_processors(n);
    let stats = group.bench(format!("buffer/flat_churn/{n}"), || {
        for round in 0..ROUNDS {
            for from in ProcessorId::all(n) {
                for to in ProcessorId::all(n) {
                    buffer.enqueue(Envelope::new(
                        from,
                        to,
                        Payload::Report {
                            round,
                            value: Bit::Zero,
                        },
                    ));
                }
            }
            for from in ProcessorId::all(n) {
                for to in ProcessorId::all(n) {
                    let _ = buffer.pop(from, to);
                }
            }
        }
        buffer.delivered_count()
    });
    // One "operation" = one enqueue + one pop of one message.
    stats.throughput() * (ROUNDS * (n * n) as u64) as f64
}

fn main() {
    let record = std::env::args().any(|a| a == "--record");
    let path = baseline_path("exec_core");
    let baseline = Baseline::load(&path).unwrap_or_else(|err| {
        eprintln!("warning: could not load baseline ({err}); continuing without");
        Baseline::new()
    });

    let mut measured = Baseline::new();
    measured.set("windows/full_delivery/13", window_throughput(13, true));
    measured.set("windows/full_delivery/25", window_throughput(25, true));
    measured.set(
        "windows/full_delivery_no_trace/13",
        window_throughput_no_trace(13),
    );
    measured.set("windows/rotating_reset/13", window_throughput(13, false));
    measured.set("async_steps/fair/8", async_throughput(8));
    measured.set("buffer/flat_churn/25", buffer_churn_throughput(25));

    println!("\n== exec_core throughput vs recorded baseline ==");
    let mut regressions = 0;
    for (name, throughput) in measured.iter() {
        let verdict = baseline.check(name, throughput, TOLERANCE);
        if matches!(verdict, Verdict::Regression { .. }) {
            regressions += 1;
        }
        println!("{name:<32} {throughput:>14.1}/s  {verdict}");
    }

    if record {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create baselines dir");
        std::fs::write(&path, measured.to_json()).expect("write baseline");
        println!("recorded new baseline at {}", path.display());
    } else if regressions > 0 {
        println!(
            "{regressions} measurement(s) regressed beyond the {TOLERANCE} tolerance; \
             investigate before merging (or re-record with --record if intentional)"
        );
    } else {
        println!("no regressions beyond the {TOLERANCE} tolerance");
    }
}

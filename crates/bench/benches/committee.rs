//! Benchmarks the committee baseline against non-adaptive crash faults
//! (experiment E7's fast path).

use std::time::Duration;

use agreement_bench::harness::BenchGroup;

use agreement_adversary::NonAdaptiveCrashAdversary;
use agreement_model::{Bit, InputAssignment, SystemConfig};
use agreement_protocols::CommitteeBuilder;
use agreement_sim::{run_async, RunLimits};

fn main() {
    let group = BenchGroup::new("committee")
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));
    for n in [18usize, 30, 60] {
        let t = n / 10;
        let cfg = SystemConfig::new(n, t).unwrap();
        let builder = CommitteeBuilder::random(&cfg, 5, 7);
        let mut seed = 0u64;
        group.bench(format!("non_adaptive_run/{n}"), || {
            seed += 1;
            run_async(
                cfg,
                InputAssignment::unanimous(n, Bit::One),
                &builder,
                &mut NonAdaptiveCrashAdversary::random(n, t, seed),
                seed,
                RunLimits::standard(),
            )
            .all_decided_at
        });
    }
    group.finish();
}

//! Benchmarks the threaded cluster runtime end to end (wall-clock agreement
//! latency with real threads and channels).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use agreement_model::{Bit, InputAssignment, SystemConfig};
use agreement_net::Cluster;
use agreement_protocols::BenOrBuilder;

fn bench_cluster(c: &mut Criterion) {
    let mut group = c.benchmark_group("net_cluster");
    group.sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(300));
    for n in [4usize, 8] {
        let cfg = SystemConfig::new(n, n / 4).unwrap();
        group.bench_with_input(BenchmarkId::new("ben_or_unanimous", n), &n, |b, _| {
            b.iter(|| {
                Cluster::new(cfg, InputAssignment::unanimous(n, Bit::One), 7)
                    .deadline(Duration::from_secs(10))
                    .run(&BenOrBuilder::new())
                    .elapsed
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cluster);
criterion_main!(benches);

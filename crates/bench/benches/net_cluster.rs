//! Benchmarks the threaded cluster runtime end to end (wall-clock agreement
//! latency with real threads and channels).

use std::time::Duration;

use agreement_bench::harness::BenchGroup;

use agreement_model::{Bit, InputAssignment, SystemConfig};
use agreement_net::Cluster;
use agreement_protocols::BenOrBuilder;

fn main() {
    let group = BenchGroup::new("net_cluster")
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));
    for n in [4usize, 8] {
        let cfg = SystemConfig::new(n, n / 4).unwrap();
        group.bench(format!("ben_or_unanimous/{n}"), || {
            Cluster::new(cfg, InputAssignment::unanimous(n, Bit::One), 7)
                .deadline(Duration::from_secs(10))
                .run(&BenOrBuilder::new())
                .elapsed
        });
    }
    group.finish();
}

//! Benchmark support for the agreement workspace.
//!
//! The build environment is fully offline, so instead of criterion the
//! workspace carries its own minimal timing harness ([`harness`]) plus a
//! throughput-baseline guard ([`baseline`]) that compares measured
//! window-engine throughput against numbers recorded in the repository, so a
//! future PR that slows the unified execution core down is visible in its CI
//! log.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baseline;
pub mod cli;
pub mod harness;
pub mod workloads;

//! The canonical campaign throughput workloads, shared by the
//! `campaign_throughput` bench guard and the `trajectory` binary.
//!
//! Each function measures end-to-end campaign throughput — seeded trials
//! distilled into `TrialRecord`s per second — on one E-series-shaped
//! workload. Keeping the definitions here means the per-PR numbers in
//! `BENCH_trajectory.json` and the regression baselines in
//! `baselines/campaign_throughput.json` are measurements of *the same code
//! path*, not two drifting copies.
//!
//! Single-process workloads run on `Campaign::serial()` so the measurement
//! is per-worker throughput, free of thread-scheduling noise. The
//! `orchestrated/*` workloads measure the multi-process path end to end:
//! coordinator dispatch, framed record streaming, and the slot-ordered
//! merge. On a multi-core host the worker pool beats one process; on a
//! single-core host (like the CI container this repo is developed in, where
//! `nproc` = 1) the same physical core runs coordinator and workers
//! time-sliced, so the orchestrated number records the IPC overhead instead
//! — that is why the orchestrated baselines are far below their
//! single-process twins, and why the guard compares each case against its
//! own recorded history rather than across cases.

use std::time::Duration;

use crate::baseline::Baseline;
use crate::harness::BenchGroup;

use agreement_adversary::SplitVoteAdversary;
use agreement_core::block::{decode_block, encode_block};
use agreement_core::experiments::Scale;
use agreement_core::orchestrate::Orchestrator;
use agreement_core::{scenario_registry, Campaign, ScenarioSpec, TrialPlan, TrialRecord};
use agreement_model::{Bit, InputAssignment, SystemConfig};
use agreement_protocols::{BenOrBuilder, ResetTolerantBuilder, SampledCommitteeBuilder};
use agreement_search::{run_search, SearchConfig};
use agreement_sim::{
    BenignEventualAdversary, BuiltAdversary, FairAsyncAdversary, FullDeliveryAdversary, Metrics,
    RunLimits,
};

/// Fractional slowdown tolerated before a measurement is flagged (loose: the
/// baseline is recorded on unspecified hardware; the guard tracks trajectory).
pub const TOLERANCE: f64 = 0.6;

/// Trials per timed iteration: enough for the per-worker workspace reuse to
/// amortise, small enough to keep the bench under a few seconds.
pub const TRIALS_PER_ITER: u64 = 8;

fn group() -> BenchGroup {
    BenchGroup::new("campaign_throughput")
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

/// E1 shape: reset-tolerant protocol vs the split-vote adversary, n = 13.
pub fn windowed_split_vote(n: usize) -> f64 {
    let cfg = SystemConfig::with_sixth_resilience(n).unwrap();
    let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
    let plan = TrialPlan::new(cfg, InputAssignment::evenly_split(n))
        .trials(TRIALS_PER_ITER)
        .limits(RunLimits::windows(2_000));
    let campaign = Campaign::serial();
    let stats = group().bench(format!("windowed/reset_tolerant/split_vote/{n}"), || {
        campaign.run_windowed_records(&plan, &builder, |_seed| SplitVoteAdversary::new())
    });
    stats.throughput() * TRIALS_PER_ITER as f64
}

/// Benign windowed baseline at the larger E-series size.
pub fn windowed_full_delivery(n: usize) -> f64 {
    let cfg = SystemConfig::with_sixth_resilience(n).unwrap();
    let builder = ResetTolerantBuilder::recommended(&cfg).unwrap();
    let plan = TrialPlan::new(cfg, InputAssignment::evenly_split(n))
        .trials(TRIALS_PER_ITER)
        .limits(RunLimits::windows(2_000));
    let campaign = Campaign::serial();
    let stats = group().bench(format!("windowed/reset_tolerant/full_delivery/{n}"), || {
        campaign.run_windowed_records(&plan, &builder, |_seed| FullDeliveryAdversary)
    });
    stats.throughput() * TRIALS_PER_ITER as f64
}

/// The partial-synchrony shape: Ben-Or under the benign-eventual baseline,
/// dispatched model-agnostically through `Campaign::run_records`.
pub fn partial_sync_ben_or(n: usize) -> f64 {
    let cfg = SystemConfig::new(n, 1).unwrap();
    let builder = BenOrBuilder::new();
    let plan = TrialPlan::new(cfg, InputAssignment::evenly_split(n))
        .trials(TRIALS_PER_ITER)
        .limits(RunLimits::small());
    let campaign = Campaign::serial();
    let stats = group().bench(format!("partial_sync/ben_or/eventual/{n}"), || {
        campaign.run_records(&plan, &builder, |_seed| {
            BuiltAdversary::partial_sync(Box::new(BenignEventualAdversary::default()))
        })
    });
    stats.throughput() * TRIALS_PER_ITER as f64
}

/// E6-style async shape: Ben-Or under fair round-robin scheduling.
pub fn async_ben_or(n: usize) -> f64 {
    let cfg = SystemConfig::new(n, 1).unwrap();
    let builder = BenOrBuilder::new();
    let plan = TrialPlan::new(cfg, InputAssignment::evenly_split(n))
        .trials(TRIALS_PER_ITER)
        .limits(RunLimits::small());
    let campaign = Campaign::serial();
    let stats = group().bench(format!("async/ben_or/fair/{n}"), || {
        campaign.run_async_records(&plan, &builder, |_seed| FairAsyncAdversary::default())
    });
    stats.throughput() * TRIALS_PER_ITER as f64
}

/// The sub-quadratic subquad shape: sampled-committee agreement at a size
/// where only the sparse channel fabric is viable. Uses the same committee
/// size and sortition seed as the `subquad/` scenario family at n = 1000.
pub fn async_sampled_committee(n: usize) -> f64 {
    let cfg = SystemConfig::new(n, 7).unwrap();
    let builder = SampledCommitteeBuilder::random(&cfg, 20, 0x5AB5EED);
    let plan = TrialPlan::new(cfg, InputAssignment::unanimous(n, Bit::One))
        .trials(TRIALS_PER_ITER)
        .limits(RunLimits::steps(2_000_000));
    let campaign = Campaign::serial();
    let stats = group().bench(format!("async/sampled_committee/fair/{n}"), || {
        campaign.run_async_records(&plan, &builder, |_seed| FairAsyncAdversary::default())
    });
    stats.throughput() * TRIALS_PER_ITER as f64
}

/// The schedule-space search driver end to end — genome generation, NoTrace
/// batch evaluation, corpus folding — on the E1 window harness at n = 7.
/// This is the hot loop of `agreement-search`; its throughput bounds how
/// much schedule space a fixed fuzzing time budget can cover.
pub fn search_window_fuzz(budget: u64) -> f64 {
    let spec = registry_spec("e1/reset-tolerant/split-vote/split/n7t1");
    let campaign = Campaign::serial();
    let config = SearchConfig::default()
        .budget_trials(budget)
        .batch(32)
        .seed(3);
    let stats = group().bench(format!("search/window_fuzz/7/b{budget}"), || {
        run_search(&spec, &campaign, &config).expect("search runs")
    });
    stats.throughput() * budget as f64
}

/// The wire codec alone: one campaign-shaped batch of `count` records
/// through columnar encode → decode twice per iteration, once raw and once
/// through the LZ codec — the exact per-block work a streaming worker and
/// the coordinator's forwarder split between them. Throughput is records
/// through the codec per second.
pub fn codec_record_block(count: u64) -> f64 {
    let records: Vec<TrialRecord> = (0..count)
        .map(|t| TrialRecord {
            trial: t,
            seed: 0x5EED + t,
            agreement: true,
            validity: true,
            terminated: true,
            violations: 0,
            halted: false,
            decided: Some(Bit::One),
            first_decision_at: Some(10 + t % 7),
            all_decided_at: Some(12 + t % 7),
            duration: 12 + t % 7,
            longest_chain: 3,
            metrics: Metrics {
                messages_sent: 400 + t % 13,
                messages_delivered: 390 + t % 13,
                messages_dropped: 10,
                rounds: 4,
                windows: 12 + t % 7,
                steps: 0,
                resets_consumed: 1,
                crashes: 0,
                coin_flips: 60 + t % 5,
                max_chain: 3,
            },
        })
        .collect();
    let stats = group().bench(format!("codec/record_block/encode+decode/{count}"), || {
        let raw = encode_block(7, &records, false);
        let (_, decoded) = decode_block(&raw).expect("raw block decodes");
        let packed = encode_block(7, &records, true);
        let (_, redecoded) = decode_block(&packed).expect("compressed block decodes");
        assert_eq!(decoded.len() + redecoded.len(), 2 * records.len());
        (raw.len(), packed.len())
    });
    stats.throughput() * (2 * count) as f64
}

/// Pulls a registry spec by id substring and pins its trial count to the
/// bench's per-iteration budget.
fn registry_spec(id_contains: &str) -> ScenarioSpec {
    let mut spec = scenario_registry(Scale::Quick)
        .into_iter()
        .find(|spec| spec.id().contains(id_contains))
        .unwrap_or_else(|| panic!("no registry scenario matches '{id_contains}'"));
    spec.trials = TRIALS_PER_ITER;
    spec
}

/// Measures one registry spec through a live orchestration session: spawn
/// once outside the timed region, then time dispatch + framed record
/// streaming + merge per iteration.
fn orchestrated(case: &str, id_contains: &str, workers: usize, worker_cmd: &[String]) -> f64 {
    let spec = registry_spec(id_contains);
    let mut session = Orchestrator::new(Scale::Quick, worker_cmd.to_vec())
        .workers(workers)
        .start()
        .expect("spawn orchestration workers");
    let stats = group().bench(case, || {
        session
            .run_spec_records(&spec)
            .expect("orchestrated range run")
    });
    session.shutdown().expect("worker shutdown");
    stats.throughput() * TRIALS_PER_ITER as f64
}

/// The E1 shape sharded across worker processes.
pub fn orchestrated_split_vote(workers: usize, worker_cmd: &[String]) -> f64 {
    orchestrated(
        &format!("orchestrated/split_vote/13/w{workers}"),
        "e1/reset-tolerant/split-vote/split/n13t2",
        workers,
        worker_cmd,
    )
}

/// The subquad n = 1000 shape sharded across worker processes.
pub fn orchestrated_subquad_fair(workers: usize, worker_cmd: &[String]) -> f64 {
    orchestrated(
        &format!("orchestrated/subquad_fair/1000/w{workers}"),
        "subquad/sampled-committee20/fair-round-robin/unanimous-1/n1000t7",
        workers,
        worker_cmd,
    )
}

/// Measures the whole canonical suite into a [`Baseline`]. Orchestrated
/// cases run only when a worker command is supplied (the caller knows where
/// a worker executable lives; this library does not).
pub fn measure_all(worker_cmd: Option<&[String]>) -> Baseline {
    let mut measured = Baseline::new();
    measured.set(
        "windowed/reset_tolerant/split_vote/13",
        windowed_split_vote(13),
    );
    measured.set(
        "windowed/reset_tolerant/full_delivery/25",
        windowed_full_delivery(25),
    );
    measured.set("async/ben_or/fair/8", async_ben_or(8));
    measured.set("partial_sync/ben_or/eventual/8", partial_sync_ben_or(8));
    measured.set(
        "async/sampled_committee/fair/1000",
        async_sampled_committee(1_000),
    );
    measured.set("search/window_fuzz/64", search_window_fuzz(64));
    measured.set("codec/record_block/encode+decode", codec_record_block(256));
    if let Some(cmd) = worker_cmd {
        measured.set(
            "orchestrated/split_vote/13/w2",
            orchestrated_split_vote(2, cmd),
        );
        measured.set(
            "orchestrated/subquad_fair/1000/w2",
            orchestrated_subquad_fair(2, cmd),
        );
    }
    measured
}

//! Regenerates experiment E3 (see DESIGN.md §3 and EXPERIMENTS.md).
//!
//! Usage: `cargo run --release -p agreement-bench --bin exp3_talagrand [--full]`

use agreement_core::experiments::{exp3_talagrand, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    println!("{}", exp3_talagrand(scale));
}

//! Regenerates experiment E2 (see DESIGN.md §3 and EXPERIMENTS.md).
//!
//! Usage: `cargo run --release -p agreement-bench --bin exp2_exponential_runtime [--full]`

use agreement_core::experiments::{exp2_exponential_runtime, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    println!("{}", exp2_exponential_runtime(scale));
}

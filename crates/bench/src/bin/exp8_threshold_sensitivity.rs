//! Regenerates experiment E8 (see DESIGN.md §3 and EXPERIMENTS.md).
//!
//! Usage: `cargo run --release -p agreement-bench --bin exp8_threshold_sensitivity [--full]`

use agreement_core::experiments::{exp8_threshold_sensitivity, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    println!("{}", exp8_threshold_sensitivity(scale));
}

//! Regenerates experiment E1 (see DESIGN.md §3 and EXPERIMENTS.md).
//!
//! Usage: `cargo run --release -p agreement-bench --bin exp1_correctness [--full]`

use agreement_core::experiments::{exp1_correctness, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    println!("{}", exp1_correctness(scale));
}

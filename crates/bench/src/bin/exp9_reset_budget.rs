//! Regenerates experiment E9 (see DESIGN.md §3 and EXPERIMENTS.md).
//!
//! Usage: `cargo run --release -p agreement-bench --bin exp9_reset_budget [--full]`

use agreement_core::experiments::{exp9_reset_budget, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    println!("{}", exp9_reset_budget(scale));
}

//! Regenerates experiment E10 (see DESIGN.md §3 and EXPERIMENTS.md).
//!
//! Usage: `cargo run --release -p agreement-bench --bin exp10_subquadratic_scaling [--full]`

use agreement_core::experiments::{exp10_subquadratic_scaling, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    println!("{}", exp10_subquadratic_scaling(scale));
}

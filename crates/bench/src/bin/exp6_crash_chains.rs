//! Regenerates experiment E6 (see DESIGN.md §3 and EXPERIMENTS.md).
//!
//! Usage: `cargo run --release -p agreement-bench --bin exp6_crash_chains [--full]`

use agreement_core::experiments::{exp6_crash_chains, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    println!("{}", exp6_crash_chains(scale));
}

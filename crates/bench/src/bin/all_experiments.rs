//! Regenerates every experiment table (E1-E9) in order, optionally emitting
//! machine-readable per-scenario records.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p agreement-bench --bin all_experiments [-- FLAGS]
//!
//!   --full         run the full EXPERIMENTS.md parameters (default: quick)
//!   --json <PATH>  additionally re-run every simulated experiment workload
//!                  and write one JSON record per scenario (aggregate +
//!                  percentile distributions) — the shape committed as
//!                  BENCH_*.json trajectory points
//!   --csv <PATH>   like --json, as one CSV summary row per scenario
//! ```
//!
//! The emission flags re-run the experiment workloads after the tables have
//! printed (the table API returns finished tables, not record streams), so a
//! `--full --json` invocation costs roughly twice a plain `--full` one; for
//! records without tables, prefer `scenarios --filter e1 ... --json`, which
//! runs each workload once. E3 and E4 are pure analysis (no simulation) and
//! appear only in the printed tables, not in the machine-readable records.

use agreement_bench::cli::required_value;
use agreement_core::experiments::{experiment_specs, run_all, Scale};
use agreement_core::{CsvSink, JsonReportSink, ReportSink};

fn main() {
    let mut scale = Scale::Quick;
    let mut json_path: Option<String> = None;
    let mut csv_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--full" => scale = Scale::Full,
            "--json" => json_path = Some(required_value(&mut args, "--json")),
            "--csv" => csv_path = Some(required_value(&mut args, "--csv")),
            "--help" | "-h" => {
                println!(
                    "usage: all_experiments [--full] [--json PATH] [--csv PATH]\n\
                     Regenerates the E1-E9 tables; --json/--csv additionally emit\n\
                     machine-readable per-scenario records."
                );
                return;
            }
            other => {
                eprintln!("unknown argument '{other}' (try --help)");
                std::process::exit(2);
            }
        }
    }

    for table in run_all(scale) {
        println!("{table}");
    }

    if json_path.is_none() && csv_path.is_none() {
        return;
    }

    let mut json = JsonReportSink::with_scale(format!("{scale:?}").to_lowercase());
    let mut csv = CsvSink::new();
    for spec in experiment_specs(scale) {
        let mut sinks: Vec<&mut dyn ReportSink> = Vec::new();
        if json_path.is_some() {
            sinks.push(&mut json);
        }
        if csv_path.is_some() {
            sinks.push(&mut csv);
        }
        if let Err(err) = spec.run_with_sinks(&Default::default(), &mut sinks) {
            eprintln!("{}: {err}", spec.id());
            std::process::exit(1);
        }
    }
    if let Some(path) = json_path {
        std::fs::write(&path, format!("{}\n", json.into_json())).unwrap_or_else(|err| {
            eprintln!("could not write {path}: {err}");
            std::process::exit(1);
        });
        eprintln!("wrote experiment JSON records to {path}");
    }
    if let Some(path) = csv_path {
        std::fs::write(&path, csv.as_str()).unwrap_or_else(|err| {
            eprintln!("could not write {path}: {err}");
            std::process::exit(1);
        });
        eprintln!("wrote experiment CSV summary to {path}");
    }
}

//! Regenerates every experiment table (E1-E9) in order.
//!
//! Usage: `cargo run --release -p agreement-bench --bin all_experiments [--full]`

use agreement_core::experiments::{run_all, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    for table in run_all(scale) {
        println!("{table}");
    }
}

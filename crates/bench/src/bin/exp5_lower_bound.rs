//! Regenerates experiment E5 (see DESIGN.md §3 and EXPERIMENTS.md).
//!
//! Usage: `cargo run --release -p agreement-bench --bin exp5_lower_bound [--full]`

use agreement_core::experiments::{exp5_lower_bound, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    println!("{}", exp5_lower_bound(scale));
}

//! The persisted per-PR performance trajectory.
//!
//! `BENCH_trajectory.json` at the repository root records one entry per PR:
//! the campaign-throughput numbers (trials/sec) of the canonical workloads
//! in `agreement_bench::workloads`, as measured when that PR landed. Where
//! the `campaign_throughput` baseline guard answers "did this change make
//! things slower than last time?", the trajectory answers "how did we get
//! here?" — it is the repository's own perf history, readable without
//! spelunking through CHANGES.md prose.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p agreement-bench --bin trajectory -- <COMMAND>
//!
//!   --check [PATH]     validate the trajectory document: schema, strictly
//!                      increasing PR numbers, positive finite numbers, and
//!                      an emit → re-parse round trip (default PATH:
//!                      BENCH_trajectory.json at the repo root)
//!   --measure          run the canonical workloads and print one entry's
//!                      "cases" object to stdout (no file is touched)
//!   --append --pr N --label TEXT [PATH]
//!                      measure and append an entry for PR N to the document
//! ```
//!
//! Entries are append-only: a PR adds its own line and never rewrites
//! history. Numbers from different machines are not comparable in absolute
//! terms — the trajectory is meaningful within stretches recorded on the
//! same hardware, which is why each entry carries a free-form label.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use agreement_analysis::JsonValue;
use agreement_bench::cli::{parsed_value, required_value};
use agreement_bench::workloads;

/// The unit every case value is measured in.
const UNIT: &str = "trials_per_sec";

fn default_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_trajectory.json")
}

/// Validates a trajectory document. Returns the number of entries.
fn check_document(path: &Path) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|err| format!("{}: {err}", path.display()))?;
    let doc = JsonValue::parse(&text).map_err(|err| format!("{}: {err}", path.display()))?;
    if doc.get("unit").and_then(JsonValue::as_str) != Some(UNIT) {
        return Err(format!("'unit' must be \"{UNIT}\""));
    }
    let entries = doc
        .get("entries")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "document must carry an 'entries' array".to_string())?;
    if entries.is_empty() {
        return Err("'entries' must not be empty".to_string());
    }
    let mut last_pr = 0u64;
    for (i, entry) in entries.iter().enumerate() {
        let pr = entry
            .get("pr")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("entry #{i} is missing integer field 'pr'"))?;
        if pr <= last_pr {
            return Err(format!(
                "entry #{i}: PR numbers must be strictly increasing ({pr} after {last_pr})"
            ));
        }
        last_pr = pr;
        match entry.get("label").and_then(JsonValue::as_str) {
            Some(label) if !label.is_empty() => {}
            _ => return Err(format!("entry #{i} is missing a non-empty 'label'")),
        }
        let cases = entry
            .get("cases")
            .ok_or_else(|| format!("entry #{i} is missing 'cases'"))?;
        let mut seen = 0usize;
        for case in workloads_superset() {
            if let Some(value) = cases.get(case) {
                let value = value
                    .as_f64()
                    .ok_or_else(|| format!("entry #{i} case '{case}' is not a number"))?;
                if !(value.is_finite() && value > 0.0) {
                    return Err(format!(
                        "entry #{i} case '{case}' must be positive and finite, got {value}"
                    ));
                }
                seen += 1;
            }
        }
        if seen == 0 {
            return Err(format!("entry #{i} carries no known case"));
        }
    }
    let reparsed =
        JsonValue::parse(&doc.to_string()).map_err(|err| format!("re-parse failed: {err}"))?;
    if reparsed != doc {
        return Err("emit → parse round trip changed the document".to_string());
    }
    Ok(entries.len())
}

/// Every case name an entry may carry. Kept here (not derived from a live
/// measurement) so `--check` works without running benchmarks.
fn workloads_superset() -> [&'static str; 9] {
    [
        "windowed/reset_tolerant/split_vote/13",
        "windowed/reset_tolerant/full_delivery/25",
        "async/ben_or/fair/8",
        "partial_sync/ben_or/eventual/8",
        "async/sampled_committee/fair/1000",
        "search/window_fuzz/64",
        "codec/record_block/encode+decode",
        "orchestrated/split_vote/13/w2",
        "orchestrated/subquad_fair/1000/w2",
    ]
}

/// Runs the canonical workloads, including the orchestrated ones via the
/// sibling `scenarios` binary in `--worker` mode.
fn measure() -> JsonValue {
    let worker = std::env::current_exe()
        .expect("locate own executable")
        .with_file_name(if cfg!(windows) {
            "scenarios.exe"
        } else {
            "scenarios"
        });
    let cmd = vec![
        worker.to_string_lossy().into_owned(),
        "--worker".to_string(),
    ];
    let worker_cmd = worker.exists().then_some(cmd);
    if worker_cmd.is_none() {
        eprintln!(
            "note: no scenarios binary next to trajectory ({}); skipping orchestrated cases",
            worker.display()
        );
    }
    let measured = workloads::measure_all(worker_cmd.as_deref());
    let mut cases = JsonValue::object();
    for (name, throughput) in measured.iter() {
        // Three decimals, same precision the baseline files keep.
        cases.push(name, (throughput * 1000.0).round() / 1000.0);
    }
    cases
}

fn append(path: &Path, pr: u64, label: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|err| format!("{}: {err}", path.display()))?;
    let doc = JsonValue::parse(&text).map_err(|err| format!("{}: {err}", path.display()))?;
    let entries = doc
        .get("entries")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "document must carry an 'entries' array".to_string())?;
    if let Some(last) = entries.last() {
        let last_pr = last.get("pr").and_then(JsonValue::as_u64).unwrap_or(0);
        if pr <= last_pr {
            return Err(format!(
                "PR {pr} does not follow the last recorded entry (PR {last_pr})"
            ));
        }
    }
    let mut entry = JsonValue::object();
    entry
        .push("pr", pr)
        .push("label", label)
        .push("cases", measure());
    let mut entries: Vec<JsonValue> = entries.to_vec();
    entries.push(entry);
    let mut out = JsonValue::object();
    out.push("unit", UNIT)
        .push("entries", JsonValue::Array(entries));
    std::fs::write(path, format!("{out}\n")).map_err(|err| format!("{}: {err}", path.display()))?;
    println!("appended PR {pr} to {}", path.display());
    Ok(())
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1).peekable();
    let mut mode: Option<&str> = None;
    let mut path: Option<PathBuf> = None;
    let mut pr: Option<u64> = None;
    let mut label: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => mode = Some("check"),
            "--measure" => mode = Some("measure"),
            "--append" => mode = Some("append"),
            "--pr" => pr = Some(parsed_value(&mut args, "--pr")),
            "--label" => label = Some(required_value(&mut args, "--label")),
            "--help" | "-h" => {
                println!(
                    "usage: trajectory --check [PATH] | --measure | \
                     --append --pr N --label TEXT [PATH]"
                );
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with("--") && path.is_none() => {
                path = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("unknown argument '{other}' (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let path = path.unwrap_or_else(default_path);
    match mode {
        Some("check") => match check_document(&path) {
            Ok(count) => {
                eprintln!("{}: valid — {count} trajectory entries", path.display());
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("{}: INVALID — {err}", path.display());
                ExitCode::FAILURE
            }
        },
        Some("measure") => {
            println!("{}", measure());
            ExitCode::SUCCESS
        }
        Some("append") => {
            let (Some(pr), Some(label)) = (pr, label.as_deref()) else {
                eprintln!("--append requires --pr N and --label TEXT");
                return ExitCode::from(2);
            };
            match append(&path, pr, label) {
                Ok(()) => ExitCode::SUCCESS,
                Err(err) => {
                    eprintln!("{err}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprintln!("one of --check, --measure, --append is required (try --help)");
            ExitCode::from(2)
        }
    }
}

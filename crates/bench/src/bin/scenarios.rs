//! Runs registered scenarios — protocol × adversary × inputs × size
//! combinations described as data — from the command line.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p agreement-bench --bin scenarios -- [FLAGS]
//!
//!   --list             print every registered scenario id and exit
//!   --filter <SUBSTR>  only scenarios whose id contains SUBSTR (repeatable;
//!                      a scenario matches if it matches any filter)
//!   --scale <quick|full>  parameter scale (default: quick)
//! ```
//!
//! Examples:
//!
//! ```text
//! scenarios --list
//! scenarios --filter extra/
//! scenarios --filter split-vote --scale full
//! scenarios --filter e7 --filter bracha
//! ```

use agreement_core::experiments::Scale;
use agreement_core::{fmt_f64, fmt_rate, scenario_registry, ScenarioSpec, Table};

struct Options {
    list: bool,
    filters: Vec<String>,
    scale: Scale,
}

fn parse_options() -> Options {
    let mut options = Options {
        list: false,
        filters: Vec::new(),
        scale: Scale::Quick,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => options.list = true,
            "--filter" => {
                let value = args.next().unwrap_or_else(|| {
                    eprintln!("--filter requires a substring argument");
                    std::process::exit(2);
                });
                options.filters.push(value);
            }
            "--scale" => {
                let value = args.next().unwrap_or_default();
                options.scale = match value.as_str() {
                    "quick" => Scale::Quick,
                    "full" => Scale::Full,
                    other => {
                        eprintln!("unknown scale '{other}' (expected 'quick' or 'full')");
                        std::process::exit(2);
                    }
                };
            }
            "--help" | "-h" => {
                println!(
                    "usage: scenarios [--list] [--filter SUBSTR]... [--scale quick|full]\n\
                     Runs every registered protocol × adversary × inputs × size combination."
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument '{other}' (try --help)");
                std::process::exit(2);
            }
        }
    }
    options
}

fn matches(spec: &ScenarioSpec, filters: &[String]) -> bool {
    filters.is_empty() || filters.iter().any(|f| spec.id().contains(f.as_str()))
}

fn main() {
    let options = parse_options();
    let specs: Vec<ScenarioSpec> = scenario_registry(options.scale)
        .into_iter()
        .filter(|spec| matches(spec, &options.filters))
        .collect();

    if options.list {
        for spec in &specs {
            let model = spec
                .model()
                .map(|m| m.to_string())
                .unwrap_or_else(|_| "?".to_string());
            println!("{:<60} {:<8} trials={}", spec.id(), model, spec.trials);
        }
        eprintln!("{} scenario(s)", specs.len());
        return;
    }

    if specs.is_empty() {
        eprintln!("no scenarios match the given filters");
        std::process::exit(1);
    }

    let mut table = Table::new(
        "Scenario matrix results",
        format!(
            "{} scenario(s) at {:?} scale; every combination is data-driven — see \
             EXPERIMENTS.md for how to add one.",
            specs.len(),
            options.scale
        ),
        vec![
            "scenario",
            "model",
            "trials",
            "termination",
            "agreement",
            "validity",
            "mean time",
            "mean chain",
        ],
    );
    let mut failures = 0usize;
    for spec in &specs {
        match spec.run() {
            Ok(aggregate) => {
                let model = spec.model().map(|m| m.to_string()).unwrap_or_default();
                table.push_row(vec![
                    spec.id(),
                    model,
                    aggregate.trials.to_string(),
                    fmt_rate(aggregate.termination_rate),
                    fmt_rate(aggregate.agreement_rate),
                    fmt_rate(aggregate.validity_rate),
                    fmt_f64(aggregate.decision_time.mean),
                    fmt_f64(aggregate.chain_length.mean),
                ]);
            }
            Err(err) => {
                failures += 1;
                table.push_row(vec![
                    spec.id(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    format!("infeasible: {err}"),
                    "-".to_string(),
                ]);
            }
        }
    }
    println!("{table}");
    if failures > 0 {
        eprintln!("{failures} scenario(s) were infeasible");
        std::process::exit(1);
    }
}

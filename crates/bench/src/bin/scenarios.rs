//! Runs registered scenarios — protocol × adversary × inputs × size
//! combinations described as data — from the command line, with
//! machine-readable output.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p agreement-bench --bin scenarios -- [FLAGS]
//!
//!   --list             print every registered scenario id and exit
//!   --filter <SUBSTR>  only scenarios whose id contains SUBSTR (repeatable;
//!                      a scenario matches if it matches any filter)
//!   --exclude <SUBSTR> drop scenarios whose id contains SUBSTR (repeatable;
//!                      applied after --filter — e.g. `--exclude subquad/`
//!                      reproduces the historical registry byte for byte)
//!   --scale <quick|full>  parameter scale (default: quick)
//!   --trials <N>       override the trial count of every matched scenario
//!   --base-seed <S>    override the base seed of every matched scenario
//!   --json <PATH>      write one JSON record per scenario (aggregate +
//!                      percentile distributions) to PATH
//!   --csv <PATH>       write one CSV summary row per scenario to PATH
//!   --jsonl <PATH>     write one JSON line per *trial* to PATH
//!   --check <PATH>     validate a --json file: parse with the in-tree JSON
//!                      parser, verify the schema, and round-trip it
//!   --replay <PATH>    replay a schedule artifact discovered by the
//!                      `search` binary (agreement-search) through the same
//!                      registry path and verify its recorded metrics field
//!                      for field (exit 1 on mismatch)
//!   --workers <N>      shard every scenario's seed range across N local
//!                      worker processes (spawned from this same binary);
//!                      the merged output is byte-identical to a
//!                      single-process run
//!   --checkpoint <P>   with --workers: persist completed seed ranges to P
//!                      (CRC-guarded JSONL) and resume from it on restart
//!   --recv-timeout <S> with --workers: liveness policy receive timeout in
//!                      seconds (default 600) — a worker silent this long
//!                      has its range speculatively re-dispatched, and one
//!                      silent twice this long is dropped and respawned
//!   --respawn-budget <N>  with --workers: how many replacement workers the
//!                      session may spawn after losses (default 2)
//!   --batch-records <N>  with --workers: records per columnar block frame
//!                      (default 256; 1 = one-record blocks, 0 = legacy
//!                      per-trial JSON frames) — output is byte-identical
//!                      at every setting
//!   --compress         with --workers: pass each block's columnar body
//!                      through the std-only LZ codec (off by default: on a
//!                      localhost wire the bytes are cheaper than the
//!                      cycles)
//!   --chaos <SPEC>     with --workers: deterministic fault injection on
//!                      every worker connection, e.g.
//!                      `seed=7,drop=0.01,dup=0.03,flip=0.005,trunc=0.003,\
//!                      hang=0.002,delay=0.05:15` — output stays
//!                      byte-identical to a fault-free run
//!   --worker           internal: run as an orchestration worker (requires
//!                      --connect <ADDR>; spawned by the coordinator)
//! ```
//!
//! Examples:
//!
//! ```text
//! scenarios --list
//! scenarios --filter extra/
//! scenarios --filter e1 --json out.json && scenarios --check out.json
//! scenarios --filter split-vote --scale full --trials 500 --csv sweep.csv
//! ```

use agreement_analysis::JsonValue;
use agreement_bench::cli::{parsed_value, required_value};
use agreement_core::experiments::Scale;
use agreement_core::orchestrate::{worker, OrchestrateError, Orchestrator, Session};
use agreement_core::{
    scenario_registry, stream_records, CsvSink, JsonReportSink, JsonlSink, ReportSink,
    ScenarioSpec, TableSink,
};
use agreement_net::fault::FaultPlan;

struct Options {
    list: bool,
    filters: Vec<String>,
    excludes: Vec<String>,
    scale: Scale,
    trials: Option<u64>,
    base_seed: Option<u64>,
    json: Option<String>,
    csv: Option<String>,
    jsonl: Option<String>,
    check: Option<String>,
    replay: Option<String>,
    workers: Option<usize>,
    checkpoint: Option<String>,
    recv_timeout: Option<u64>,
    respawn_budget: Option<u32>,
    chaos: Option<String>,
    batch_records: Option<u64>,
    compress: bool,
    worker: bool,
    connect: Option<String>,
}

fn parse_options() -> Options {
    let mut options = Options {
        list: false,
        filters: Vec::new(),
        excludes: Vec::new(),
        scale: Scale::Quick,
        trials: None,
        base_seed: None,
        json: None,
        csv: None,
        jsonl: None,
        check: None,
        replay: None,
        workers: None,
        checkpoint: None,
        recv_timeout: None,
        respawn_budget: None,
        chaos: None,
        batch_records: None,
        compress: false,
        worker: false,
        connect: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => options.list = true,
            "--filter" => options.filters.push(required_value(&mut args, "--filter")),
            "--exclude" => options
                .excludes
                .push(required_value(&mut args, "--exclude")),
            "--trials" => options.trials = Some(parsed_value(&mut args, "--trials")),
            "--base-seed" => options.base_seed = Some(parsed_value(&mut args, "--base-seed")),
            "--json" => options.json = Some(required_value(&mut args, "--json")),
            "--csv" => options.csv = Some(required_value(&mut args, "--csv")),
            "--jsonl" => options.jsonl = Some(required_value(&mut args, "--jsonl")),
            "--check" => options.check = Some(required_value(&mut args, "--check")),
            "--replay" => options.replay = Some(required_value(&mut args, "--replay")),
            "--workers" => options.workers = Some(parsed_value(&mut args, "--workers")),
            "--checkpoint" => options.checkpoint = Some(required_value(&mut args, "--checkpoint")),
            "--recv-timeout" => {
                options.recv_timeout = Some(parsed_value(&mut args, "--recv-timeout"))
            }
            "--respawn-budget" => {
                options.respawn_budget = Some(parsed_value(&mut args, "--respawn-budget"))
            }
            "--chaos" => options.chaos = Some(required_value(&mut args, "--chaos")),
            "--batch-records" => {
                options.batch_records = Some(parsed_value(&mut args, "--batch-records"))
            }
            "--compress" => options.compress = true,
            "--worker" => options.worker = true,
            "--connect" => options.connect = Some(required_value(&mut args, "--connect")),
            "--scale" => {
                let value = required_value(&mut args, "--scale");
                options.scale = match value.as_str() {
                    "quick" => Scale::Quick,
                    "full" => Scale::Full,
                    other => {
                        eprintln!("unknown scale '{other}' (expected 'quick' or 'full')");
                        std::process::exit(2);
                    }
                };
            }
            "--help" | "-h" => {
                println!(
                    "usage: scenarios [--list] [--filter SUBSTR]... [--exclude SUBSTR]...\n\
                     \x20                [--scale quick|full]\n\
                     \x20                [--trials N] [--base-seed S]\n\
                     \x20                [--json PATH] [--csv PATH] [--jsonl PATH] [--check PATH]\n\
                     \x20                [--replay PATH]\n\
                     \x20                [--workers N [--checkpoint PATH] [--recv-timeout S]\n\
                     \x20                 [--respawn-budget N] [--chaos SPEC]\n\
                     \x20                 [--batch-records N] [--compress]]\n\
                     Runs every registered protocol × adversary × inputs × size combination."
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument '{other}' (try --help)");
                std::process::exit(2);
            }
        }
    }
    options
}

fn matches(spec: &ScenarioSpec, filters: &[String], excludes: &[String]) -> bool {
    let id = spec.id();
    (filters.is_empty() || filters.iter().any(|f| id.contains(f.as_str())))
        && !excludes.iter().any(|e| id.contains(e.as_str()))
}

/// Validates a `--json` document: it must parse with the in-tree parser,
/// carry a `scenarios` array whose entries have the per-scenario fields, and
/// survive an emit → re-parse round trip unchanged.
fn check_document(path: &str) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = JsonValue::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let scenarios = doc
        .get("scenarios")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "document must carry a 'scenarios' array".to_string())?;
    for (i, entry) in scenarios.iter().enumerate() {
        for field in ["id", "model", "n", "t", "trials", "base_seed"] {
            if entry.get(field).is_none() {
                return Err(format!("scenario #{i} is missing field '{field}'"));
            }
        }
        for rate in ["termination_rate", "agreement_rate", "validity_rate"] {
            let value = entry
                .get(rate)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("scenario #{i} is missing rate '{rate}'"))?;
            if !(0.0..=1.0).contains(&value) {
                return Err(format!("scenario #{i} has out-of-range {rate} = {value}"));
            }
        }
        for dist in ["decision_time_dist", "chain_length_dist"] {
            if entry.get(dist).is_none() {
                return Err(format!("scenario #{i} is missing distribution '{dist}'"));
            }
        }
    }
    let reparsed =
        JsonValue::parse(&doc.to_string()).map_err(|e| format!("re-parse failed: {e}"))?;
    if reparsed != doc {
        return Err("emit → parse round trip changed the document".to_string());
    }
    Ok(scenarios.len())
}

fn write_file(path: &str, contents: &str, what: &str) {
    std::fs::write(path, contents).unwrap_or_else(|err| {
        eprintln!("could not write {what} to {path}: {err}");
        std::process::exit(1);
    });
    eprintln!("wrote {what} to {path}");
}

/// Formats the zero-match diagnostic so the user sees exactly which
/// `--filter`/`--exclude` arguments eliminated everything.
fn no_match_message(filters: &[String], excludes: &[String]) -> String {
    let mut message = String::from("no scenarios match");
    if filters.is_empty() && excludes.is_empty() {
        message.push_str(" (the registry is empty at this scale)");
        return message;
    }
    if !filters.is_empty() {
        message.push_str(&format!(" --filter {}", filters.join(" --filter ")));
    }
    if !excludes.is_empty() {
        message.push_str(&format!(" --exclude {}", excludes.join(" --exclude ")));
    }
    message.push_str("; try --list with no filters to see every registered id");
    message
}

fn main() {
    let options = parse_options();

    if options.worker {
        let Some(addr) = &options.connect else {
            eprintln!("--worker requires --connect <addr>");
            std::process::exit(2);
        };
        if let Err(err) = worker::serve(addr) {
            eprintln!("worker: {err}");
            std::process::exit(1);
        }
        return;
    }

    if let Some(path) = &options.replay {
        match agreement_search::replay_file(path) {
            Ok((artifact, spec, report)) if report.matches && report.predicate_holds => {
                eprintln!(
                    "{path}: replay OK on {} — record matches, predicate '{}' holds",
                    spec.id(),
                    artifact.predicate
                );
                return;
            }
            Ok((artifact, spec, report)) => {
                eprintln!("{path}: replay MISMATCH on {}", spec.id());
                if !report.matches {
                    eprintln!("  stored:   {}", artifact.record.to_json());
                    eprintln!("  replayed: {}", report.replayed.to_json());
                }
                if !report.predicate_holds {
                    eprintln!("  predicate '{}' no longer holds", artifact.predicate);
                }
                std::process::exit(1);
            }
            Err(err) => {
                eprintln!("{path}: replay failed: {err}");
                std::process::exit(1);
            }
        }
    }

    if let Some(path) = &options.check {
        match check_document(path) {
            Ok(count) => {
                eprintln!("{path}: valid — {count} scenario record(s) round-trip cleanly");
                return;
            }
            Err(err) => {
                eprintln!("{path}: INVALID — {err}");
                std::process::exit(1);
            }
        }
    }

    let mut specs: Vec<ScenarioSpec> = scenario_registry(options.scale)
        .into_iter()
        .filter(|spec| matches(spec, &options.filters, &options.excludes))
        .collect();
    for spec in &mut specs {
        if let Some(trials) = options.trials {
            spec.trials = trials;
        }
        if let Some(base_seed) = options.base_seed {
            spec.base_seed = base_seed;
        }
    }

    // A selection that matches nothing is an error in every mode — a silent
    // empty run (or empty listing) hides a typo'd filter.
    if specs.is_empty() {
        eprintln!("{}", no_match_message(&options.filters, &options.excludes));
        std::process::exit(1);
    }

    if options.list {
        for spec in &specs {
            let model = spec
                .model()
                .map(|m| m.to_string())
                .unwrap_or_else(|_| "?".to_string());
            println!("{:<60} {:<8} trials={}", spec.id(), model, spec.trials);
        }
        eprintln!("{} scenario(s)", specs.len());
        return;
    }

    // With --workers, spawn this same binary in --worker mode and shard each
    // scenario's seed range across the pool; the merged record stream feeds
    // the very same sinks, so every output artifact is byte-identical to a
    // single-process run.
    let mut session: Option<Session> = match options.workers {
        Some(workers) => {
            let exe = std::env::current_exe().unwrap_or_else(|err| {
                eprintln!("cannot locate own executable for --workers: {err}");
                std::process::exit(1);
            });
            let mut orchestrator = Orchestrator::new(
                options.scale,
                vec![exe.to_string_lossy().into_owned(), "--worker".to_string()],
            )
            .workers(workers);
            if let Some(path) = &options.checkpoint {
                orchestrator = orchestrator.checkpoint(path);
            }
            if let Some(secs) = options.recv_timeout {
                orchestrator = orchestrator.recv_timeout(std::time::Duration::from_secs(secs));
            }
            if let Some(budget) = options.respawn_budget {
                orchestrator = orchestrator.respawn_budget(budget);
            }
            if let Some(batch) = options.batch_records {
                orchestrator = orchestrator.batch_records(batch);
            }
            orchestrator = orchestrator.compress(options.compress);
            if let Some(spec) = &options.chaos {
                match FaultPlan::parse(spec) {
                    Ok(plan) => orchestrator = orchestrator.worker_faults(plan),
                    Err(err) => {
                        eprintln!("--chaos: {err}");
                        std::process::exit(2);
                    }
                }
            }
            match orchestrator.start() {
                Ok(session) => Some(session),
                Err(err) => {
                    eprintln!("could not start {workers} worker(s): {err}");
                    std::process::exit(1);
                }
            }
        }
        None => {
            for (set, flag) in [
                (options.checkpoint.is_some(), "--checkpoint"),
                (options.recv_timeout.is_some(), "--recv-timeout"),
                (options.respawn_budget.is_some(), "--respawn-budget"),
                (options.chaos.is_some(), "--chaos"),
                (options.batch_records.is_some(), "--batch-records"),
                (options.compress, "--compress"),
            ] {
                if set {
                    eprintln!("{flag} requires --workers");
                    std::process::exit(2);
                }
            }
            None
        }
    };

    let mut table = TableSink::new(
        "Scenario matrix results",
        format!(
            "{} scenario(s) at {:?} scale; every combination is data-driven — see \
             EXPERIMENTS.md for how to add one.",
            specs.len(),
            options.scale
        ),
    );
    let mut csv = CsvSink::new();
    let mut jsonl = JsonlSink::new();
    let mut json = JsonReportSink::with_scale(format!("{:?}", options.scale).to_lowercase());

    let mut failures = 0usize;
    for spec in &specs {
        // Every sink sees every scenario's record stream in one pass.
        let mut sinks: Vec<&mut dyn ReportSink> = Vec::new();
        sinks.push(&mut table);
        if options.csv.is_some() {
            sinks.push(&mut csv);
        }
        if options.jsonl.is_some() {
            sinks.push(&mut jsonl);
        }
        if options.json.is_some() {
            sinks.push(&mut json);
        }
        match session.as_mut() {
            Some(session) => match session.run_spec_records(spec) {
                Ok(records) => {
                    let meta = spec.meta().expect("feasible spec has metadata");
                    stream_records(&meta, &records, &mut sinks);
                }
                Err(OrchestrateError::Scenario(err)) => {
                    failures += 1;
                    table.push_failure(spec.id(), format!("infeasible: {err}"));
                }
                Err(err) => {
                    eprintln!("orchestration of '{}' failed: {err}", spec.id());
                    std::process::exit(1);
                }
            },
            None => {
                if let Err(err) = spec.run_with_sinks(&Default::default(), &mut sinks) {
                    failures += 1;
                    table.push_failure(spec.id(), format!("infeasible: {err}"));
                }
            }
        }
    }
    if let Some(session) = session.take() {
        if let Err(err) = session.shutdown() {
            eprintln!("worker shutdown failed: {err}");
            std::process::exit(1);
        }
    }
    println!("{}", table.into_table());

    if let Some(path) = &options.json {
        write_file(
            path,
            &format!("{}\n", json.into_json()),
            "scenario JSON records",
        );
    }
    if let Some(path) = &options.csv {
        write_file(path, csv.as_str(), "scenario CSV summary");
    }
    if let Some(path) = &options.jsonl {
        write_file(path, jsonl.as_str(), "per-trial JSONL records");
    }

    if failures > 0 {
        eprintln!("{failures} scenario(s) were infeasible");
        std::process::exit(1);
    }
}

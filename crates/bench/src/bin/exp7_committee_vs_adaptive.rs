//! Regenerates experiment E7 (see DESIGN.md §3 and EXPERIMENTS.md).
//!
//! Usage: `cargo run --release -p agreement-bench --bin exp7_committee_vs_adaptive [--full]`

use agreement_core::experiments::{exp7_committee_vs_adaptive, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    println!("{}", exp7_committee_vs_adaptive(scale));
}

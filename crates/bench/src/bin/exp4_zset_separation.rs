//! Regenerates experiment E4 (see DESIGN.md §3 and EXPERIMENTS.md).
//!
//! Usage: `cargo run --release -p agreement-bench --bin exp4_zset_separation [--full]`

use agreement_core::experiments::{exp4_zset_separation, Scale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    println!("{}", exp4_zset_separation(scale));
}

//! Recorded performance baselines and the regression guard.
//!
//! A baseline is a flat JSON object mapping benchmark names to throughput
//! numbers (iterations per second), recorded in the repository under
//! `crates/bench/baselines/`. The `exec_core` bench measures the unified
//! execution core's window throughput and compares it against the recorded
//! numbers so the perf trajectory of future PRs is visible. The parser below
//! handles exactly that flat shape — the environment is offline, so no JSON
//! crate is available.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// A recorded name → throughput (iterations/second) baseline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Baseline {
    entries: BTreeMap<String, f64>,
}

/// How a measurement compares against its recorded baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// No baseline recorded for this benchmark.
    Unrecorded,
    /// Within `tolerance` of the recorded number (or faster).
    Ok {
        /// measured / recorded throughput.
        ratio: f64,
    },
    /// Slower than the recorded number by more than `tolerance`.
    Regression {
        /// measured / recorded throughput.
        ratio: f64,
    },
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Unrecorded => write!(f, "no baseline recorded"),
            Verdict::Ok { ratio } => write!(f, "ok ({:.2}x baseline)", ratio),
            Verdict::Regression { ratio } => write!(f, "REGRESSION ({:.2}x baseline)", ratio),
        }
    }
}

impl Baseline {
    /// Creates an empty baseline.
    pub fn new() -> Self {
        Baseline::default()
    }

    /// Records `throughput` for `name`.
    pub fn set(&mut self, name: impl Into<String>, throughput: f64) {
        self.entries.insert(name.into(), throughput);
    }

    /// The recorded throughput for `name`, if any.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.entries.get(name).copied()
    }

    /// Iterates over `(name, throughput)` entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        self.entries.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Compares a measured throughput against the recorded one.
    ///
    /// `tolerance` is the allowed fractional slowdown (e.g. `0.5` tolerates
    /// running at half the recorded speed — baselines are recorded on
    /// unspecified hardware, so the guard is a trend indicator, not a gate).
    pub fn check(&self, name: &str, measured: f64, tolerance: f64) -> Verdict {
        match self.get(name) {
            None => Verdict::Unrecorded,
            Some(recorded) if recorded <= 0.0 => Verdict::Unrecorded,
            Some(recorded) => {
                let ratio = measured / recorded;
                if ratio + tolerance >= 1.0 {
                    Verdict::Ok { ratio }
                } else {
                    Verdict::Regression { ratio }
                }
            }
        }
    }

    /// Parses the flat `{"name": number, ...}` JSON shape the baselines use.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed construct.
    pub fn parse(json: &str) -> Result<Self, String> {
        let mut entries = BTreeMap::new();
        let body = json.trim();
        let body = body
            .strip_prefix('{')
            .and_then(|b| b.strip_suffix('}'))
            .ok_or_else(|| "baseline JSON must be a single object".to_string())?;
        for pair in body.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (key, value) = pair
                .split_once(':')
                .ok_or_else(|| format!("malformed entry: {pair:?}"))?;
            let key = key
                .trim()
                .strip_prefix('"')
                .and_then(|k| k.strip_suffix('"'))
                .ok_or_else(|| format!("key must be a JSON string: {key:?}"))?;
            let value: f64 = value
                .trim()
                .parse()
                .map_err(|_| format!("value must be a number: {value:?}"))?;
            entries.insert(key.to_string(), value);
        }
        Ok(Baseline { entries })
    }

    /// Renders the baseline back to its JSON shape.
    pub fn to_json(&self) -> String {
        let body: Vec<String> = self
            .entries
            .iter()
            .map(|(k, v)| format!("  \"{k}\": {v:.3}"))
            .collect();
        format!("{{\n{}\n}}\n", body.join(",\n"))
    }

    /// Loads a baseline file; a missing file yields an empty baseline so
    /// benches still run before any numbers have been recorded.
    ///
    /// # Errors
    ///
    /// Returns a description when the file exists but cannot be read or parsed.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, String> {
        let path = path.as_ref();
        if !path.exists() {
            return Ok(Baseline::default());
        }
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Baseline::parse(&text)
    }
}

/// Path to a named baseline file, anchored at this crate's source tree so
/// `cargo bench` finds it regardless of the working directory.
pub fn baseline_path(name: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("baselines")
        .join(format!("{name}.json"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        let json = "{\n  \"a\": 10.500,\n  \"b\": 2.000\n}\n";
        let baseline = Baseline::parse(json).unwrap();
        assert_eq!(baseline.get("a"), Some(10.5));
        assert_eq!(baseline.get("b"), Some(2.0));
        assert_eq!(Baseline::parse(&baseline.to_json()).unwrap(), baseline);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Baseline::parse("[1, 2]").is_err());
        assert!(Baseline::parse("{\"a\" 1}").is_err());
        assert!(Baseline::parse("{\"a\": x}").is_err());
        assert!(Baseline::parse("{a: 1}").is_err());
    }

    #[test]
    fn empty_object_is_empty_baseline() {
        let baseline = Baseline::parse("{}").unwrap();
        assert_eq!(baseline.iter().count(), 0);
    }

    #[test]
    fn check_classifies_measurements() {
        let mut baseline = Baseline::new();
        baseline.set("x", 100.0);
        assert_eq!(baseline.check("x", 120.0, 0.5), Verdict::Ok { ratio: 1.2 });
        assert_eq!(baseline.check("x", 60.0, 0.5), Verdict::Ok { ratio: 0.6 });
        assert!(matches!(
            baseline.check("x", 40.0, 0.5),
            Verdict::Regression { .. }
        ));
        assert_eq!(baseline.check("y", 40.0, 0.5), Verdict::Unrecorded);
    }

    #[test]
    fn missing_file_loads_empty() {
        let baseline = Baseline::load("/nonexistent/path.json").unwrap();
        assert_eq!(baseline.iter().count(), 0);
    }
}

//! Tiny shared argument-parsing helpers for the `agreement-bench` binaries.
//!
//! Both the `scenarios` and `all_experiments` binaries parse flags by
//! consuming an argument iterator left to right; sharing the value-taking
//! helpers keeps their semantics identical (a flag's value is the next
//! argument, consumed — so `--json --csv out.csv` fails loudly on the
//! missing path instead of silently treating `--csv` as a file name... the
//! caller still decides what to do with unknown flags).

/// Takes the next argument as `flag`'s value, exiting with status 2 and a
/// message when the iterator is exhausted or the next argument is itself a
/// flag.
pub fn required_value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    match args.next() {
        Some(value) if !value.starts_with("--") => value,
        Some(other) => {
            eprintln!("{flag} requires an argument, got flag {other:?}");
            std::process::exit(2);
        }
        None => {
            eprintln!("{flag} requires an argument");
            std::process::exit(2);
        }
    }
}

/// Like [`required_value`], additionally parsing the value; exits with
/// status 2 on a parse failure.
pub fn parsed_value<T: std::str::FromStr>(
    args: &mut impl Iterator<Item = String>,
    flag: &str,
) -> T {
    let raw = required_value(args, flag);
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{flag} could not parse {raw:?}");
        std::process::exit(2);
    })
}

//! A minimal, dependency-free timing harness.
//!
//! The container this workspace builds in has no network access, so criterion
//! is unavailable; this module provides the small subset the benches need:
//! named benchmark groups, warm-up, repeated timed samples, and a median /
//! mean / min report on stdout. Benches are ordinary `harness = false`
//! binaries calling [`BenchGroup::bench`].

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Statistics of one benchmark's samples.
#[derive(Debug, Clone, Copy)]
pub struct BenchStats {
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
    /// Mean time per iteration.
    pub mean: Duration,
    /// Median time per iteration.
    pub median: Duration,
    /// Fastest sample's time per iteration.
    pub min: Duration,
}

impl BenchStats {
    /// Iterations per second implied by the median sample.
    pub fn throughput(&self) -> f64 {
        if self.median.as_secs_f64() == 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.median.as_secs_f64()
        }
    }
}

/// A named group of benchmarks, mirroring criterion's `benchmark_group`.
#[derive(Debug)]
pub struct BenchGroup {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchGroup {
    /// Creates a group with default settings (10 samples, 1s measurement,
    /// 300ms warm-up).
    pub fn new(name: impl Into<String>) -> Self {
        BenchGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }

    /// Sets the number of timed samples.
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Sets the total measurement budget (split across samples).
    pub fn measurement_time(mut self, budget: Duration) -> Self {
        self.measurement_time = budget;
        self
    }

    /// Sets the warm-up budget.
    pub fn warm_up_time(mut self, budget: Duration) -> Self {
        self.warm_up_time = budget;
        self
    }

    /// Runs `routine` under this group's budget and prints one report line.
    ///
    /// The routine's return value is passed through [`black_box`] so the
    /// optimizer cannot elide the measured work.
    pub fn bench<T>(&self, id: impl AsRef<str>, mut routine: impl FnMut() -> T) -> BenchStats {
        // Warm-up, and calibrate how many iterations fit in one sample.
        let warm_up_started = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_up_started.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_up_started.elapsed().div_f64(warm_iters as f64);
        let sample_budget = self.measurement_time.div_f64(self.sample_size as f64);
        let iters_per_sample = if per_iter.is_zero() {
            1
        } else {
            (sample_budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, u128::from(u64::MAX))
                as u64
        };

        let mut per_iteration: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let started = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            per_iteration.push(started.elapsed().div_f64(iters_per_sample as f64));
        }
        per_iteration.sort();
        let mean = per_iteration
            .iter()
            .sum::<Duration>()
            .div_f64(per_iteration.len() as f64);
        let stats = BenchStats {
            samples: self.sample_size,
            iters_per_sample,
            mean,
            median: per_iteration[per_iteration.len() / 2],
            min: per_iteration[0],
        };
        println!(
            "{}/{:<32} median {:>12?}  mean {:>12?}  min {:>12?}  ({} samples x {} iters)",
            self.name,
            id.as_ref(),
            stats.median,
            stats.mean,
            stats.min,
            stats.samples,
            stats.iters_per_sample,
        );
        stats
    }

    /// Prints the closing line of the group, mirroring criterion's `finish`.
    pub fn finish(&self) {
        println!("{}: done", self.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_positive_times() {
        let group = BenchGroup::new("test")
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut counter = 0u64;
        let stats = group.bench("count", || {
            counter += 1;
            counter
        });
        assert_eq!(stats.samples, 3);
        assert!(stats.iters_per_sample >= 1);
        assert!(stats.min <= stats.median);
        assert!(stats.throughput() > 0.0);
        group.finish();
    }
}

//! Novelty signatures, fitness scoring and the failure predicate.
//!
//! The signature is the search's notion of *coverage*: two trials with equal
//! signatures explored the same behavioural region, so only the fitter
//! genome is worth keeping. Exact low-cardinality counters (rounds, resets,
//! crashes) enter the hash directly; high-cardinality counters (messages,
//! chain depth, decision time) enter as log₂ buckets so the corpus does not
//! explode into one signature per message count.

use agreement_analysis::Fnv64;
use agreement_core::TrialRecord;

use std::fmt;
use std::str::FromStr;

/// The log₂ bucket of a counter: `0 → 0`, `1 → 1`, `2..=3 → 2`, `4..=7 → 3`,
/// … — 65 buckets cover the whole `u64` range.
pub fn bucket(value: u64) -> u64 {
    64 - u64::from(value.leading_zeros())
}

/// The window/step index by which the last correct processor decided, with
/// undecided trials charged the model's time cap — the same convention the
/// scenario reports use for decision-time distributions.
pub fn decision_time(record: &TrialRecord, time_cap: u64) -> u64 {
    record.all_decided_at.unwrap_or(time_cap)
}

/// Hashes a trial's outcome shape into its 64-bit novelty signature.
///
/// Folded in, in order: the four outcome flags (agreement, validity,
/// terminated, halted), the exact round/reset/crash counters, and log₂
/// buckets of the message counts, causal chain depth and duration. The
/// trial index and seed are deliberately **not** folded in — the signature
/// describes behaviour, not provenance.
pub fn novelty_signature(record: &TrialRecord) -> u64 {
    Fnv64::new()
        .write_u64(u64::from(record.agreement))
        .write_u64(u64::from(record.validity))
        .write_u64(u64::from(record.terminated))
        .write_u64(u64::from(record.halted))
        .write_u64(record.metrics.rounds)
        .write_u64(record.metrics.resets_consumed)
        .write_u64(record.metrics.crashes)
        .write_u64(bucket(record.metrics.messages_sent))
        .write_u64(bucket(record.metrics.messages_delivered))
        .write_u64(bucket(record.metrics.messages_dropped))
        .write_u64(bucket(record.metrics.max_chain))
        .write_u64(bucket(record.duration))
        .finish()
}

/// Fitness bonus that puts every safety violation above every
/// non-termination, which in turn sits above every slow decision.
const VIOLATION_BONUS: u64 = 1_000_000_000_000;
/// Fitness bonus for non-termination (cap-out or a wedged protocol).
const NON_TERMINATION_BONUS: u64 = 1_000_000_000;

/// Scores how adversarial a trial was (higher = better for the adversary).
///
/// Safety violations dominate everything; non-termination dominates any
/// decided run; among decided runs the last correct decision time leads with
/// the protocol round count as tiebreaker. Runs where the adversary *halted*
/// early without wedging anything interesting score below every decided run
/// of equal duration — giving up is not an attack.
pub fn fitness(record: &TrialRecord, time_cap: u64) -> u64 {
    if !record.agreement || !record.validity {
        return VIOLATION_BONUS + record.duration;
    }
    if !record.terminated {
        if record.halted {
            // The adversary stopped scheduling while undelivered work may
            // have remained; mildly interesting at best.
            return record.duration / 2;
        }
        return NON_TERMINATION_BONUS + record.duration;
    }
    decision_time(record, time_cap) * 16 + record.metrics.rounds
}

/// The failure property a discovered schedule is shrunk against and that a
/// stored artifact promises to reproduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Predicate {
    /// Agreement or validity was violated.
    Violation,
    /// Some correct processor never decided (cap-out or wedged run).
    NonTermination,
    /// Every correct processor decided, but the last one no earlier than
    /// the given window/step index.
    DecisionTimeAtLeast(u64),
}

impl Predicate {
    /// Classifies a record as the strongest predicate it witnesses.
    pub fn classify(record: &TrialRecord, time_cap: u64) -> Predicate {
        if !record.agreement || !record.validity {
            Predicate::Violation
        } else if !record.terminated {
            Predicate::NonTermination
        } else {
            Predicate::DecisionTimeAtLeast(decision_time(record, time_cap))
        }
    }

    /// Whether a record still witnesses this predicate. Stronger outcomes
    /// count: a shrink candidate that upgrades a slow decision into a
    /// non-termination (or a violation) is kept, never discarded.
    pub fn holds(&self, record: &TrialRecord, time_cap: u64) -> bool {
        let violated = !record.agreement || !record.validity;
        match self {
            Predicate::Violation => violated,
            Predicate::NonTermination => violated || !record.terminated,
            Predicate::DecisionTimeAtLeast(min) => {
                violated || !record.terminated || decision_time(record, time_cap) >= *min
            }
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Violation => write!(f, "violation"),
            Predicate::NonTermination => write!(f, "non-termination"),
            Predicate::DecisionTimeAtLeast(min) => write!(f, "decision-time>={min}"),
        }
    }
}

impl FromStr for Predicate {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "violation" => Ok(Predicate::Violation),
            "non-termination" => Ok(Predicate::NonTermination),
            other => match other.strip_prefix("decision-time>=") {
                Some(min) => min
                    .parse::<u64>()
                    .map(Predicate::DecisionTimeAtLeast)
                    .map_err(|e| format!("bad decision-time bound '{min}': {e}")),
                None => Err(format!("unknown predicate '{other}'")),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agreement_sim::Metrics;

    fn record() -> TrialRecord {
        TrialRecord {
            trial: 0,
            seed: 1,
            agreement: true,
            validity: true,
            terminated: true,
            violations: 0,
            halted: false,
            decided: None,
            first_decision_at: Some(3),
            all_decided_at: Some(9),
            duration: 12,
            longest_chain: 4,
            metrics: Metrics::default(),
        }
    }

    #[test]
    fn buckets_are_logarithmic() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 1);
        assert_eq!(bucket(3), 2);
        assert_eq!(bucket(4), 3);
        assert_eq!(bucket(u64::MAX), 64);
    }

    #[test]
    fn signature_separates_flags_but_not_message_noise() {
        let base = record();
        let mut violating = record();
        violating.agreement = false;
        assert_ne!(novelty_signature(&base), novelty_signature(&violating));
        // Message counts within one log2 bucket hash identically.
        let mut a = record();
        let mut b = record();
        a.metrics.messages_sent = 130;
        b.metrics.messages_sent = 170;
        assert_eq!(novelty_signature(&a), novelty_signature(&b));
    }

    #[test]
    fn fitness_orders_violation_above_capout_above_slow() {
        let cap = 1_000;
        let mut violating = record();
        violating.validity = false;
        let mut capout = record();
        capout.terminated = false;
        capout.all_decided_at = None;
        capout.duration = cap;
        let slow = record();
        let mut gave_up = record();
        gave_up.terminated = false;
        gave_up.halted = true;
        gave_up.all_decided_at = None;
        assert!(fitness(&violating, cap) > fitness(&capout, cap));
        assert!(fitness(&capout, cap) > fitness(&slow, cap));
        assert!(fitness(&slow, cap) > fitness(&gave_up, cap));
    }

    #[test]
    fn predicate_classify_holds_and_round_trips() {
        let cap = 1_000;
        let slow = record();
        let p = Predicate::classify(&slow, cap);
        assert_eq!(p, Predicate::DecisionTimeAtLeast(9));
        assert!(p.holds(&slow, cap));
        let mut faster = record();
        faster.all_decided_at = Some(8);
        assert!(!p.holds(&faster, cap));
        // Upgrades still hold.
        let mut wedged = record();
        wedged.terminated = false;
        assert!(p.holds(&wedged, cap));

        for p in [
            Predicate::Violation,
            Predicate::NonTermination,
            Predicate::DecisionTimeAtLeast(42),
        ] {
            assert_eq!(p.to_string().parse::<Predicate>().unwrap(), p);
        }
        assert!("gibberish".parse::<Predicate>().is_err());
    }
}

//! Counterexample shrinking: delta debugging on the genome tape.
//!
//! The shrinker removes tape segments (halving chunk sizes, ddmin style) and
//! then zeroes surviving bytes, keeping every candidate whose `FullTrace`
//! replay still satisfies the failure [`Predicate`]. Because exhausted or
//! zeroed tape regions decode to benign scheduling, every candidate is a
//! valid schedule — shrinking can only simplify, never crash the decoder.

use agreement_adversary::{build_from_genome, Genome};
use agreement_core::{ScenarioSpec, TrialRecord};

use crate::signature::Predicate;

/// The result of shrinking one discovered schedule.
#[derive(Debug, Clone)]
pub struct ShrinkReport {
    /// The minimized genome (still tagged with the original model).
    pub genome: Genome,
    /// The `FullTrace` record of the minimized genome at the original seed —
    /// this is what the schedule artifact stores and replay verifies against.
    pub record: TrialRecord,
    /// The predicate every kept candidate (and the final genome) satisfies.
    pub predicate: Predicate,
    /// Replay probes spent.
    pub attempts: u64,
    /// Tape length before shrinking.
    pub original_len: usize,
}

/// One replay probe: rebuild the adversary from a candidate tape and re-run
/// the trial at the pinned seed. The record is built with trial index 0 —
/// artifacts always describe a single standalone trial.
fn probe(spec: &ScenarioSpec, model: &str, tape: &[u8], seed: u64) -> Result<TrialRecord, String> {
    let cfg = spec.config().map_err(|e| e.to_string())?;
    let genome = Genome::new(model, tape.to_vec());
    let mut adversary = build_from_genome(&genome, &cfg).map_err(|e| e.to_string())?;
    let outcome = spec
        .run_single_with(seed, &mut adversary)
        .map_err(|e| e.to_string())?;
    let inputs = spec.inputs.materialize(spec.n);
    Ok(TrialRecord::from_outcome(0, seed, &outcome, &inputs))
}

/// Delta-debugs `genome` down to a (locally) minimal tape whose replay at
/// `seed` still satisfies `predicate`, spending at most `max_attempts`
/// replay probes.
///
/// # Errors
///
/// Returns an error when the spec does not resolve, when the genome's model
/// tag does not match, or when the *unshrunk* genome fails the predicate —
/// the caller handed over a schedule that does not reproduce, which is worth
/// a loud failure rather than a silently empty artifact.
pub fn shrink(
    spec: &ScenarioSpec,
    genome: &Genome,
    seed: u64,
    predicate: Predicate,
    time_cap: u64,
    max_attempts: u64,
) -> Result<ShrinkReport, String> {
    let model = genome.model().to_string();
    let original_len = genome.tape().len();
    let mut attempts = 1u64;
    let mut best_record = probe(spec, &model, genome.tape(), seed)?;
    if !predicate.holds(&best_record, time_cap) {
        return Err(format!(
            "genome does not reproduce predicate '{predicate}' at seed {seed} (got {})",
            Predicate::classify(&best_record, time_cap)
        ));
    }

    let mut tape = genome.tape().to_vec();

    // Pass 1: ddmin segment removal, halving chunk sizes.
    let mut chunk = (tape.len() / 2).max(1);
    loop {
        let mut offset = 0;
        while offset < tape.len() && attempts < max_attempts {
            let end = (offset + chunk).min(tape.len());
            let mut candidate = tape.clone();
            candidate.drain(offset..end);
            attempts += 1;
            match probe(spec, &model, &candidate, seed)? {
                record if predicate.holds(&record, time_cap) => {
                    tape = candidate;
                    best_record = record;
                    // Retry the same offset: the next segment slid into it.
                }
                _ => offset = end,
            }
        }
        if chunk == 1 || attempts >= max_attempts {
            break;
        }
        chunk = (chunk / 2).max(1);
    }

    // Pass 2: zero surviving bytes (a zero byte decodes to the scheduler's
    // most benign choice, so this isolates the bytes that carry the attack).
    let mut pos = 0;
    while pos < tape.len() && attempts < max_attempts {
        if tape[pos] != 0 {
            let mut candidate = tape.clone();
            candidate[pos] = 0;
            attempts += 1;
            let record = probe(spec, &model, &candidate, seed)?;
            if predicate.holds(&record, time_cap) {
                tape = candidate;
                best_record = record;
            }
        }
        pos += 1;
    }

    Ok(ShrinkReport {
        genome: Genome::new(model, tape),
        record: best_record,
        predicate,
        attempts,
        original_len,
    })
}

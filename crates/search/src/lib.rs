//! Coverage-guided schedule-space search for the reproduction of Lewko &
//! Lewko (PODC 2013).
//!
//! The paper's subject is what an *optimal* adversary can force; the 16
//! hand-coded registry adversaries only replay known attacks. This crate
//! turns the campaign hot path into an attack-*discovery* engine:
//!
//! 1. **Genomes** ([`agreement_adversary::Genome`]) encode an adversary's
//!    entire choice sequence as a bounded byte tape, decoded per execution
//!    model by the `search-*` adversaries of `agreement-adversary`. Every
//!    tape is a valid schedule (illegal decodes are engine-refused no-ops,
//!    exhausted tapes fall back to benign scheduling), so the search can
//!    mutate freely.
//! 2. **Coverage and fitness** ([`novelty_signature`], [`fitness`]) hash
//!    each trial's [`Metrics`](agreement_sim::Metrics) into a behavioural
//!    signature and score how adversarial the trial was (violations ≫
//!    non-termination ≫ slow decisions). A bounded [`Corpus`] keeps the best
//!    genome per signature.
//! 3. **The driver** ([`run_search`]) alternates seed-derived random walks
//!    with corpus mutations (byte flips, splices, truncations, seed reruns)
//!    over NoTrace campaign batches, deterministically seeded — the same
//!    `--seed` and budget reproduce the corpus byte for byte at any thread
//!    count.
//! 4. **The shrinker** ([`shrink`]) delta-debugs the winning tape while the
//!    failure [`Predicate`] keeps holding, then the result is replayed under
//!    `FullTrace` and written as a JSON [`ScheduleArtifact`] — a committed,
//!    replayable counterexample (see `examples/`).
//! 5. **Replay** ([`replay_file`]) re-executes a stored artifact through the
//!    scenario registry and verifies the recorded [`TrialRecord`] field for
//!    field; [`compare_with_registry`] pits the artifact against every
//!    hand-coded adversary of the same model on the same harness.
//!
//! The `search` binary wires all five together; `scenarios --replay` reuses
//! the same replay path so discovered schedules are first-class scenario
//! inputs.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod artifact;
mod corpus;
mod driver;
mod shrink;
mod signature;

pub use artifact::{
    compare_with_registry, find_spec, replay, replay_file, BaselineRow, RegistryComparison,
    ReplayReport, ScheduleArtifact,
};
pub use corpus::{Corpus, CorpusEntry};
pub use driver::{run_search, SearchConfig, SearchOutcome};
pub use shrink::{shrink, ShrinkReport};
pub use signature::{bucket, decision_time, fitness, novelty_signature, Predicate};

//! Coverage-guided schedule-space search from the command line.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p agreement-search --bin search -- [FLAGS]
//!
//!   --scenario <ID>       quick-scale registry scenario to search (required
//!                         unless --list or --replay)
//!   --budget-trials <N>   trial budget (default 1000)
//!   --seed <S>            search master seed (default 7)
//!   --batch <N>           trials per generation (default 64)
//!   --threads <N>         campaign threads (default 1; any value produces
//!                         byte-identical output)
//!   --shrink-attempts <N> replay probes the shrinker may spend (default 800)
//!   --out <DIR>           write corpus.json + artifact.json under DIR
//!   --baselines           after the search, run every same-model registry
//!                         adversary on the same harness and print the
//!                         comparison table
//!   --list                print every searchable scenario id and exit
//!   --replay <FILE>       replay a stored schedule artifact and verify its
//!                         recorded metrics field for field (exit 1 on any
//!                         mismatch)
//! ```
//!
//! Examples:
//!
//! ```text
//! search --scenario ben-or/search-async/split/n8t2 --budget-trials 2000 \
//!        --seed 7 --out tmp/search
//! search --replay examples/slow-ben-or.schedule.json
//! ```

use std::str::FromStr;

use agreement_core::Campaign;
use agreement_search::{
    compare_with_registry, find_spec, replay, replay_file, shrink, Predicate, ScheduleArtifact,
    SearchConfig,
};

struct Options {
    scenario: Option<String>,
    budget_trials: u64,
    seed: u64,
    batch: u64,
    threads: usize,
    shrink_attempts: u64,
    out: Option<String>,
    baselines: bool,
    list: bool,
    replay: Option<String>,
}

fn required_value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    })
}

fn parsed_value<T: FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T
where
    T::Err: std::fmt::Display,
{
    let raw = required_value(args, flag);
    raw.parse().unwrap_or_else(|err| {
        eprintln!("{flag} value '{raw}': {err}");
        std::process::exit(2);
    })
}

fn parse_options() -> Options {
    let mut options = Options {
        scenario: None,
        budget_trials: 1_000,
        seed: 7,
        batch: 64,
        threads: 1,
        shrink_attempts: 800,
        out: None,
        baselines: false,
        list: false,
        replay: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scenario" => options.scenario = Some(required_value(&mut args, "--scenario")),
            "--budget-trials" => options.budget_trials = parsed_value(&mut args, "--budget-trials"),
            "--seed" => options.seed = parsed_value(&mut args, "--seed"),
            "--batch" => options.batch = parsed_value(&mut args, "--batch"),
            "--threads" => options.threads = parsed_value(&mut args, "--threads"),
            "--shrink-attempts" => {
                options.shrink_attempts = parsed_value(&mut args, "--shrink-attempts")
            }
            "--out" => options.out = Some(required_value(&mut args, "--out")),
            "--baselines" => options.baselines = true,
            "--list" => options.list = true,
            "--replay" => options.replay = Some(required_value(&mut args, "--replay")),
            "--help" | "-h" => {
                println!(
                    "usage: search --scenario ID [--budget-trials N] [--seed S] [--batch N]\n\
                     \x20             [--threads N] [--shrink-attempts N] [--out DIR] [--baselines]\n\
                     \x20      search --list\n\
                     \x20      search --replay FILE\n\
                     Coverage-guided schedule-space search over the scenario registry."
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument '{other}' (try --help)");
                std::process::exit(2);
            }
        }
    }
    options
}

/// Scenario ids whose registered adversary is a `search-*` decoder — the
/// natural entry points (any id works; the search ignores the registered
/// adversary name but keeps the harness).
fn list_scenarios() {
    for spec in agreement_core::scenario_registry(agreement_core::experiments::Scale::Quick) {
        println!("{}", spec.id());
    }
}

fn run_replay(path: &str) -> ! {
    let (artifact, spec, report) = replay_file(path).unwrap_or_else(|err| {
        eprintln!("replay failed: {err}");
        std::process::exit(1);
    });
    println!("scenario   {}", spec.id());
    println!("model      {}", artifact.model);
    println!("predicate  {}", artifact.predicate);
    println!("seed       {}", artifact.seed);
    println!("tape       {} bytes", artifact.genome.tape().len());
    println!(
        "replayed   rounds={} duration={} all_decided_at={:?}",
        report.replayed.metrics.rounds, report.replayed.duration, report.replayed.all_decided_at
    );
    if !report.matches {
        eprintln!("MISMATCH: replayed record differs from the stored record");
        eprintln!("  stored:   {}", artifact.record.to_json());
        eprintln!("  replayed: {}", report.replayed.to_json());
        std::process::exit(1);
    }
    if !report.predicate_holds {
        eprintln!(
            "MISMATCH: replay no longer witnesses predicate '{}'",
            artifact.predicate
        );
        std::process::exit(1);
    }
    println!(
        "replay OK: record matches, predicate '{}' holds",
        artifact.predicate
    );
    std::process::exit(0);
}

fn main() {
    let options = parse_options();
    if options.list {
        list_scenarios();
        return;
    }
    if let Some(path) = &options.replay {
        run_replay(path);
    }
    let scenario = options.scenario.unwrap_or_else(|| {
        eprintln!("--scenario is required (try --list)");
        std::process::exit(2);
    });
    let spec = find_spec(&scenario).unwrap_or_else(|| {
        eprintln!("unknown scenario '{scenario}' (try --list)");
        std::process::exit(2);
    });

    let campaign = Campaign::with_threads(options.threads.max(1));
    let config = SearchConfig::default()
        .budget_trials(options.budget_trials)
        .seed(options.seed)
        .batch(options.batch);
    let outcome = agreement_search::run_search(&spec, &campaign, &config).unwrap_or_else(|err| {
        eprintln!("search failed: {err}");
        std::process::exit(1);
    });
    eprintln!(
        "searched {} trials over {} generations; corpus holds {} signatures",
        outcome.trials_run,
        outcome.batches_run,
        outcome.corpus.len()
    );
    let best = outcome.best().unwrap_or_else(|| {
        eprintln!("search produced an empty corpus (zero budget?)");
        std::process::exit(1);
    });
    let predicate = Predicate::classify(&best.record, outcome.time_cap);
    eprintln!(
        "best: fitness={} predicate={} seed={} tape={}B",
        best.fitness,
        predicate,
        best.record.seed,
        best.genome.tape().len()
    );

    let report = shrink(
        &spec,
        &best.genome,
        best.record.seed,
        predicate,
        outcome.time_cap,
        options.shrink_attempts,
    )
    .unwrap_or_else(|err| {
        eprintln!("shrink failed: {err}");
        std::process::exit(1);
    });
    eprintln!(
        "shrunk {}B -> {}B in {} probes (predicate '{}')",
        report.original_len,
        report.genome.tape().len(),
        report.attempts,
        report.predicate
    );

    let artifact = ScheduleArtifact {
        scenario: spec.id(),
        model: report.genome.model().to_string(),
        predicate: report.predicate,
        seed: best.record.seed,
        genome: report.genome.clone(),
        record: report.record,
    };

    // Verify the artifact replays before anything is written: a mismatch
    // here means NoTrace/FullTrace drift, which must fail loudly.
    let verification = replay(&spec, &artifact).unwrap_or_else(|err| {
        eprintln!("self-replay failed: {err}");
        std::process::exit(1);
    });
    if !verification.matches || !verification.predicate_holds {
        eprintln!("self-replay mismatch: the artifact does not reproduce its own record");
        std::process::exit(1);
    }

    if let Some(dir) = &options.out {
        std::fs::create_dir_all(dir).unwrap_or_else(|err| {
            eprintln!("could not create {dir}: {err}");
            std::process::exit(1);
        });
        let corpus_path = format!("{dir}/corpus.json");
        let artifact_path = format!("{dir}/artifact.json");
        let mut corpus_text = outcome.corpus.to_json().to_string();
        corpus_text.push('\n');
        let mut artifact_text = artifact.to_json().to_string();
        artifact_text.push('\n');
        std::fs::write(&corpus_path, corpus_text).unwrap_or_else(|err| {
            eprintln!("could not write {corpus_path}: {err}");
            std::process::exit(1);
        });
        std::fs::write(&artifact_path, artifact_text).unwrap_or_else(|err| {
            eprintln!("could not write {artifact_path}: {err}");
            std::process::exit(1);
        });
        eprintln!("wrote {corpus_path} and {artifact_path}");
    }

    if options.baselines {
        let comparison = compare_with_registry(&spec, &artifact, &campaign).unwrap_or_else(|err| {
            eprintln!("baseline comparison failed: {err}");
            std::process::exit(1);
        });
        println!(
            "artifact: decision_time={} forces_failure={} (cap {})",
            comparison.artifact_decision_time,
            comparison.artifact_forces_failure,
            comparison.time_cap
        );
        for row in &comparison.rows {
            println!(
                "baseline {:<28} max_decision_time={:<8} all_terminated={}",
                row.adversary, row.max_decision_time, row.all_terminated
            );
        }
        println!(
            "discovered schedule beats all {} baselines: {}",
            comparison.rows.len(),
            comparison.beats_all()
        );
    }
}

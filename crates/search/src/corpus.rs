//! The deterministic corpus of interesting genomes.
//!
//! One entry per novelty signature, fitter genomes replacing less fit ones,
//! with a deterministic bounded eviction policy — so a corpus built from the
//! same trial stream is byte-identical however many campaign threads
//! produced the stream (records arrive slot-ordered; the corpus is updated
//! sequentially in trial order).

use std::collections::BTreeMap;

use agreement_adversary::Genome;
use agreement_analysis::JsonValue;
use agreement_core::TrialRecord;

/// One kept genome: the behaviour signature that admitted it, the fitness it
/// scored, and the exact trial (seed + record) that produced the score.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusEntry {
    /// The novelty signature of the producing trial.
    pub signature: u64,
    /// The fitness the producing trial scored.
    pub fitness: u64,
    /// The genome that drove the trial.
    pub genome: Genome,
    /// The full record of the producing trial (carries trial index + seed,
    /// which is everything a replay needs).
    pub record: TrialRecord,
}

/// A bounded, deterministic map from novelty signature to fittest genome.
#[derive(Debug, Clone, PartialEq)]
pub struct Corpus {
    cap: usize,
    entries: BTreeMap<u64, CorpusEntry>,
}

impl Corpus {
    /// An empty corpus keeping at most `cap` entries.
    pub fn new(cap: usize) -> Self {
        Corpus {
            cap: cap.max(1),
            entries: BTreeMap::new(),
        }
    }

    /// Number of kept entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been admitted yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Offers an entry. A new signature is admitted outright (evicting the
    /// weakest entry when over capacity); a known signature only if strictly
    /// fitter than the incumbent. Returns `true` when the corpus changed.
    pub fn consider(&mut self, entry: CorpusEntry) -> bool {
        match self.entries.get(&entry.signature) {
            Some(incumbent) if incumbent.fitness >= entry.fitness => false,
            _ => {
                self.entries.insert(entry.signature, entry);
                if self.entries.len() > self.cap {
                    let weakest = self
                        .entries
                        .values()
                        .map(|e| (e.fitness, e.signature))
                        .min()
                        .expect("non-empty corpus has a weakest entry");
                    self.entries.remove(&weakest.1);
                }
                true
            }
        }
    }

    /// The `index`-th entry in signature order (the driver's deterministic
    /// mutation pick).
    pub fn nth(&self, index: usize) -> Option<&CorpusEntry> {
        self.entries.values().nth(index)
    }

    /// The fittest entry; ties break toward the smaller signature, so the
    /// answer is deterministic.
    pub fn best(&self) -> Option<&CorpusEntry> {
        self.entries
            .values()
            .max_by_key(|e| (e.fitness, std::cmp::Reverse(e.signature)))
    }

    /// Iterates entries in signature order.
    pub fn iter(&self) -> impl Iterator<Item = &CorpusEntry> {
        self.entries.values()
    }

    /// Serializes the corpus — signature order, stable field order — for the
    /// `corpus.json` output artifact. Signatures render as hex strings (a
    /// JSON number would round-trip through `f64` and lose precision above
    /// 2⁵³).
    pub fn to_json(&self) -> JsonValue {
        let mut entries = Vec::with_capacity(self.entries.len());
        for entry in self.entries.values() {
            let mut object = JsonValue::object();
            object
                .push("signature", format!("{:016x}", entry.signature))
                .push("fitness", entry.fitness)
                .push("model", entry.genome.model())
                .push("genome", entry.genome.to_hex())
                .push("record", entry.record.to_json());
            entries.push(object);
        }
        let mut out = JsonValue::object();
        out.push("entries", JsonValue::Array(entries));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agreement_sim::Metrics;

    fn entry(signature: u64, fitness: u64) -> CorpusEntry {
        CorpusEntry {
            signature,
            fitness,
            genome: Genome::new("async", vec![signature as u8]),
            record: TrialRecord {
                trial: 0,
                seed: signature,
                agreement: true,
                validity: true,
                terminated: true,
                violations: 0,
                halted: false,
                decided: None,
                first_decision_at: None,
                all_decided_at: Some(fitness),
                duration: fitness,
                longest_chain: 0,
                metrics: Metrics::default(),
            },
        }
    }

    #[test]
    fn keeps_fittest_per_signature() {
        let mut corpus = Corpus::new(8);
        assert!(corpus.consider(entry(1, 10)));
        assert!(!corpus.consider(entry(1, 10)), "equal fitness is rejected");
        assert!(!corpus.consider(entry(1, 5)));
        assert!(corpus.consider(entry(1, 20)));
        assert_eq!(corpus.len(), 1);
        assert_eq!(corpus.best().unwrap().fitness, 20);
    }

    #[test]
    fn evicts_weakest_when_full() {
        let mut corpus = Corpus::new(2);
        corpus.consider(entry(1, 10));
        corpus.consider(entry(2, 30));
        corpus.consider(entry(3, 20));
        assert_eq!(corpus.len(), 2);
        assert!(corpus.nth(0).is_some());
        let signatures: Vec<u64> = corpus.iter().map(|e| e.signature).collect();
        assert_eq!(signatures, vec![2, 3], "the fitness-10 entry was evicted");
    }

    #[test]
    fn json_is_stable_and_ordered() {
        let mut corpus = Corpus::new(8);
        corpus.consider(entry(0xdead, 1));
        corpus.consider(entry(0xbeef, 2));
        let a = corpus.to_json().to_string();
        let b = corpus.clone().to_json().to_string();
        assert_eq!(a, b);
        assert!(a.find("beef").unwrap() < a.find("dead").unwrap());
    }
}

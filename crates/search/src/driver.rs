//! The search driver: batch-synchronous random walks plus corpus mutation
//! over NoTrace campaign trials.
//!
//! Determinism is the load-bearing property. Each generation is built in
//! three strictly sequential phases: (1) a genome batch is derived from the
//! search RNG and the current corpus — pure computation, no trials; (2) the
//! batch is evaluated through
//! [`ScenarioSpec::run_batch_records_with`](agreement_core::ScenarioSpec::run_batch_records_with),
//! whose record stream is slot-ordered and bit-identical across campaign
//! thread counts; (3) the corpus is updated from the records in trial order.
//! No phase reads anything a thread schedule could reorder, so the same
//! seed and budget reproduce the corpus byte for byte at 1, 2 or 4 threads.

use std::time::{Duration, Instant};

use agreement_adversary::{build_from_genome, Genome, DEFAULT_TAPE_LEN};
use agreement_core::{Campaign, ScenarioError, ScenarioSpec};
use agreement_model::ProcessorRng;

use crate::corpus::{Corpus, CorpusEntry};
use crate::signature::{fitness, novelty_signature};

/// RNG stream label of the search driver (disjoint from processor, adversary
/// and genome streams).
const SEARCH_STREAM: u64 = 0x005E_A2C4_0002;

/// Budgets and knobs of one search run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchConfig {
    /// Total trial budget (the run stops once spent).
    pub budget_trials: u64,
    /// Master seed of the search RNG: same seed + budget ⇒ byte-identical
    /// corpus and artifact output.
    pub seed: u64,
    /// Trials per generation (one campaign batch).
    pub batch: u64,
    /// Tape length of freshly generated random genomes; mutations may grow a
    /// tape to at most four times this.
    pub tape_len: usize,
    /// Maximum corpus entries kept (deterministic weakest-first eviction).
    pub corpus_cap: usize,
    /// Optional wall-clock budget. Cutting a run short by time makes it
    /// non-reproducible (a faster machine runs more generations), so
    /// deterministic workflows (CI diffs, the determinism tests) leave this
    /// `None` and rely on the trial budget alone.
    pub time_budget_ms: Option<u64>,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            budget_trials: 1_000,
            seed: 7,
            batch: 64,
            tape_len: DEFAULT_TAPE_LEN,
            corpus_cap: 256,
            time_budget_ms: None,
        }
    }
}

impl SearchConfig {
    /// Sets the trial budget.
    pub fn budget_trials(mut self, budget: u64) -> Self {
        self.budget_trials = budget;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the generation size.
    pub fn batch(mut self, batch: u64) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Sets the wall-clock budget in milliseconds.
    pub fn time_budget_ms(mut self, ms: u64) -> Self {
        self.time_budget_ms = Some(ms);
        self
    }
}

/// What a finished search hands back.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The corpus of interesting genomes, one per novelty signature.
    pub corpus: Corpus,
    /// Trials actually run (equals the budget unless a time budget cut in).
    pub trials_run: u64,
    /// Generations run.
    pub batches_run: u64,
    /// The model's per-trial time cap (undecided trials are charged this in
    /// fitness and decision-time accounting).
    pub time_cap: u64,
}

impl SearchOutcome {
    /// The fittest corpus entry — the discovery the shrinker works on.
    pub fn best(&self) -> Option<&CorpusEntry> {
        self.corpus.best()
    }
}

/// One mutation of `parent`, possibly splicing bytes from `donor`:
/// byte flips, a donor splice, a tail truncation, fresh appended bytes, or a
/// verbatim *seed rerun* (the same tape re-evaluated at a fresh trial seed —
/// cheap variance probing for genomes whose damage depends on the protocol's
/// coin flips).
fn mutate(parent: &Genome, donor: &Genome, rng: &mut ProcessorRng, max_len: usize) -> Genome {
    let mut tape = parent.tape().to_vec();
    match rng.range(5) {
        0 => {} // seed rerun
        1 => {
            if !tape.is_empty() {
                let flips = 1 + rng.range(8) as usize;
                for _ in 0..flips {
                    let pos = rng.range(tape.len() as u64) as usize;
                    tape[pos] ^= 1 + rng.range(255) as u8;
                }
            }
        }
        2 => {
            let src = donor.tape();
            if !src.is_empty() {
                let start = rng.range(src.len() as u64) as usize;
                let len = 1 + rng.range((src.len() - start) as u64) as usize;
                let at = if tape.is_empty() {
                    0
                } else {
                    rng.range(tape.len() as u64 + 1) as usize
                };
                let mut spliced = Vec::with_capacity(tape.len() + len);
                spliced.extend_from_slice(&tape[..at]);
                spliced.extend_from_slice(&src[start..start + len]);
                spliced.extend_from_slice(&tape[at..]);
                spliced.truncate(max_len);
                tape = spliced;
            }
        }
        3 => {
            if tape.len() > 4 {
                let keep = 4 + rng.range((tape.len() - 4) as u64) as usize;
                tape.truncate(keep);
            }
        }
        _ => {
            let extra = 1 + rng.range(64) as usize;
            for _ in 0..extra {
                tape.push(rng.range(256) as u8);
            }
            tape.truncate(max_len);
        }
    }
    parent.with_tape(tape)
}

/// Runs the coverage-guided search over `spec`'s harness (protocol, inputs,
/// limits — the spec's own adversary name is ignored; genomes drive every
/// trial). Trial seeds advance from `spec.base_seed`, one per budgeted
/// trial, so a stored artifact's seed pins its exact execution.
///
/// # Errors
///
/// Returns a [`ScenarioError`] when the spec's configuration, protocol or
/// model does not resolve.
pub fn run_search(
    spec: &ScenarioSpec,
    campaign: &Campaign,
    config: &SearchConfig,
) -> Result<SearchOutcome, ScenarioError> {
    let model_id = spec.model()?.id();
    let time_cap = spec.meta()?.time_cap;
    let cfg = spec.config()?;
    let max_len = config.tape_len.max(1) * 4;
    let deadline = config
        .time_budget_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));

    let mut rng = ProcessorRng::labelled(config.seed, SEARCH_STREAM);
    let mut corpus = Corpus::new(config.corpus_cap);
    let mut seed_cursor = spec.base_seed;
    let mut trials_run = 0u64;
    let mut batches_run = 0u64;

    while trials_run < config.budget_trials {
        if let Some(deadline) = deadline {
            if Instant::now() >= deadline {
                break;
            }
        }
        let batch = config.batch.max(1).min(config.budget_trials - trials_run);
        // Phase 1: derive the generation (RNG + corpus only, no trials).
        let mut genomes = Vec::with_capacity(batch as usize);
        for _ in 0..batch {
            let genome = if corpus.is_empty() || rng.range(4) == 0 {
                Genome::from_seed(model_id, rng.ticket(), config.tape_len)
            } else {
                let parent = &corpus
                    .nth(rng.range(corpus.len() as u64) as usize)
                    .expect("index < len")
                    .genome;
                let donor = &corpus
                    .nth(rng.range(corpus.len() as u64) as usize)
                    .expect("index < len")
                    .genome;
                mutate(parent, donor, &mut rng, max_len)
            };
            genomes.push(genome);
        }
        // Phase 2: evaluate on the NoTrace campaign path (slot-ordered,
        // thread-count independent).
        let records = spec.run_batch_records_with(campaign, batch, seed_cursor, |seed| {
            let genome = &genomes[(seed - seed_cursor) as usize];
            build_from_genome(genome, &cfg).expect("search genomes carry the spec's model tag")
        })?;
        // Phase 3: fold into the corpus in trial order.
        for (genome, record) in genomes.iter().zip(&records) {
            corpus.consider(CorpusEntry {
                signature: novelty_signature(record),
                fitness: fitness(record, time_cap),
                genome: genome.clone(),
                record: *record,
            });
        }
        seed_cursor += batch;
        trials_run += batch;
        batches_run += 1;
    }

    Ok(SearchOutcome {
        corpus,
        trials_run,
        batches_run,
        time_cap,
    })
}

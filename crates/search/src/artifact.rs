//! Replayable schedule artifacts: JSON serialization, registry lookup,
//! `FullTrace` replay verification, and the baseline comparison against the
//! hand-coded adversaries.
//!
//! An artifact pins everything a third party needs to re-execute a
//! discovered schedule bit for bit: the scenario id (protocol, inputs, n, t,
//! limits via the registry), the execution-model tag, the genome tape, the
//! trial seed, and the full [`TrialRecord`] the discovery produced. Replay
//! re-runs the trial and compares the fresh record field for field — any
//! drift (a changed decoder, a changed protocol) is a loud mismatch, not a
//! silently different experiment.

use agreement_adversary::{build_from_genome, Genome};
use agreement_analysis::JsonValue;
use agreement_core::experiments::Scale;
use agreement_core::{scenario_registry, Campaign, ScenarioSpec, TrialRecord};

use crate::signature::{decision_time, Predicate};

/// A committed, replayable counterexample schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleArtifact {
    /// The scenario id the schedule was discovered on (resolved through
    /// [`scenario_registry`] at `Scale::Quick`, whose limits are part of the
    /// artifact's meaning).
    pub scenario: String,
    /// The execution-model descriptor id the genome is tagged with.
    pub model: String,
    /// The failure predicate the schedule witnesses.
    pub predicate: Predicate,
    /// The trial seed pinning the execution.
    pub seed: u64,
    /// The (shrunk) genome tape.
    pub genome: Genome,
    /// The record the discovery produced — replay must reproduce it exactly.
    pub record: TrialRecord,
}

impl ScheduleArtifact {
    /// Serializes the artifact (stable field order; the genome renders as a
    /// hex string).
    pub fn to_json(&self) -> JsonValue {
        let mut out = JsonValue::object();
        out.push("version", 1u64)
            .push("scenario", self.scenario.as_str())
            .push("model", self.model.as_str())
            .push("predicate", self.predicate.to_string())
            .push("seed", self.seed)
            .push("genome", self.genome.to_hex())
            .push("record", self.record.to_json());
        out
    }

    /// Deserializes an artifact.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(value: &JsonValue) -> Result<Self, String> {
        let version = value
            .get("version")
            .and_then(JsonValue::as_u64)
            .ok_or("artifact missing 'version'")?;
        if version != 1 {
            return Err(format!("unsupported artifact version {version}"));
        }
        let field = |key: &str| -> Result<&JsonValue, String> {
            value.get(key).ok_or(format!("artifact missing '{key}'"))
        };
        let scenario = field("scenario")?
            .as_str()
            .ok_or("'scenario' is not a string")?
            .to_string();
        let model = field("model")?
            .as_str()
            .ok_or("'model' is not a string")?
            .to_string();
        let predicate: Predicate = field("predicate")?
            .as_str()
            .ok_or("'predicate' is not a string")?
            .parse()?;
        let seed = field("seed")?.as_u64().ok_or("'seed' is not a number")?;
        let genome = Genome::from_hex(
            &model,
            field("genome")?
                .as_str()
                .ok_or("'genome' is not a string")?,
        )
        .map_err(|e| e.to_string())?;
        let record = TrialRecord::from_json(field("record")?)?;
        Ok(ScheduleArtifact {
            scenario,
            model,
            predicate,
            seed,
            genome,
            record,
        })
    }

    /// Parses an artifact from JSON text.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON or a malformed artifact.
    pub fn parse(text: &str) -> Result<Self, String> {
        ScheduleArtifact::from_json(&JsonValue::parse(text)?)
    }
}

/// Resolves a scenario id against the quick-scale registry (the scale the
/// search runs on — registry limits are part of an artifact's meaning).
pub fn find_spec(scenario: &str) -> Option<ScenarioSpec> {
    scenario_registry(Scale::Quick)
        .into_iter()
        .find(|spec| spec.id() == scenario)
}

/// The verdict of replaying one artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// The freshly replayed record (trial index copied from the artifact so
    /// the comparison is field-for-field meaningful).
    pub replayed: TrialRecord,
    /// `true` when the replayed record equals the stored record exactly.
    pub matches: bool,
    /// `true` when the replayed record still witnesses the artifact's
    /// predicate.
    pub predicate_holds: bool,
    /// The model's per-trial time cap used for predicate evaluation.
    pub time_cap: u64,
}

/// Replays `artifact` on `spec` under `FullTrace` and verifies the recorded
/// metrics.
///
/// # Errors
///
/// Returns a message when the spec does not resolve, when the spec's model
/// does not match the artifact's model tag, or when the genome is rejected
/// by the factory (foreign model tag).
pub fn replay(spec: &ScenarioSpec, artifact: &ScheduleArtifact) -> Result<ReplayReport, String> {
    let model = spec.model().map_err(|e| e.to_string())?;
    if model.id() != artifact.model {
        return Err(format!(
            "artifact is tagged for model '{}' but scenario '{}' runs model '{}'",
            artifact.model,
            spec.id(),
            model.id()
        ));
    }
    let cfg = spec.config().map_err(|e| e.to_string())?;
    let time_cap = spec.meta().map_err(|e| e.to_string())?.time_cap;
    let mut adversary = build_from_genome(&artifact.genome, &cfg).map_err(|e| e.to_string())?;
    let outcome = spec
        .run_single_with(artifact.seed, &mut adversary)
        .map_err(|e| e.to_string())?;
    let inputs = spec.inputs.materialize(spec.n);
    let replayed =
        TrialRecord::from_outcome(artifact.record.trial, artifact.seed, &outcome, &inputs);
    let matches = replayed == artifact.record;
    let predicate_holds = artifact.predicate.holds(&replayed, time_cap);
    Ok(ReplayReport {
        replayed,
        matches,
        predicate_holds,
        time_cap,
    })
}

/// Reads, parses, resolves and replays an artifact file in one step — the
/// shared implementation behind `search --replay` and `scenarios --replay`.
///
/// # Errors
///
/// Returns a message for I/O failures, malformed artifacts, unknown
/// scenario ids, and every error [`replay`] reports.
pub fn replay_file(path: &str) -> Result<(ScheduleArtifact, ScenarioSpec, ReplayReport), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let artifact = ScheduleArtifact::parse(&text)?;
    let spec = find_spec(&artifact.scenario).ok_or(format!(
        "artifact scenario '{}' is not in the quick-scale registry",
        artifact.scenario
    ))?;
    let report = replay(&spec, &artifact)?;
    Ok((artifact, spec, report))
}

/// One hand-coded adversary's best showing on the artifact's harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineRow {
    /// Registry adversary name.
    pub adversary: String,
    /// Worst (largest) decision time over the spec's full trial range, with
    /// undecided trials charged the time cap.
    pub max_decision_time: u64,
    /// `true` when every trial of the baseline decided within the cap.
    pub all_terminated: bool,
}

/// The artifact pitted against every same-model registry adversary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryComparison {
    /// One row per same-model, non-search registry adversary.
    pub rows: Vec<BaselineRow>,
    /// The artifact's decision time (undecided charged the cap).
    pub artifact_decision_time: u64,
    /// `true` when the artifact forces a violation or non-termination — an
    /// outcome no decision-time comparison is needed for.
    pub artifact_forces_failure: bool,
    /// The model's time cap.
    pub time_cap: u64,
}

impl RegistryComparison {
    /// `true` when the discovered schedule strictly beats every hand-coded
    /// adversary: it forces a failure outright, or its decision time exceeds
    /// each baseline's worst trial.
    pub fn beats_all(&self) -> bool {
        self.artifact_forces_failure
            || self
                .rows
                .iter()
                .all(|row| self.artifact_decision_time > row.max_decision_time)
    }
}

/// Runs every same-model registry adversary (excluding the `search-*`
/// decoders themselves) over `spec`'s full trial range and compares worst
/// decision times against the artifact's record.
///
/// # Errors
///
/// Returns a message when the spec or a baseline variant does not resolve.
pub fn compare_with_registry(
    spec: &ScenarioSpec,
    artifact: &ScheduleArtifact,
    campaign: &Campaign,
) -> Result<RegistryComparison, String> {
    let model = spec.model().map_err(|e| e.to_string())?;
    let time_cap = spec.meta().map_err(|e| e.to_string())?.time_cap;
    let mut rows = Vec::new();
    for factory in agreement_adversary::registry() {
        if factory.model().id() != model.id() || factory.name().starts_with("search-") {
            continue;
        }
        let mut variant = spec.clone();
        variant.adversary = factory.name().to_string();
        let records = variant
            .run_range_records(campaign, 0, variant.trials)
            .map_err(|e| format!("baseline '{}': {e}", factory.name()))?;
        let max_decision_time = records
            .iter()
            .map(|r| decision_time(r, time_cap))
            .max()
            .unwrap_or(0);
        let all_terminated = records.iter().all(|r| r.terminated);
        rows.push(BaselineRow {
            adversary: factory.name().to_string(),
            max_decision_time,
            all_terminated,
        });
    }
    let artifact_forces_failure =
        !artifact.record.agreement || !artifact.record.validity || !artifact.record.terminated;
    Ok(RegistryComparison {
        rows,
        artifact_decision_time: decision_time(&artifact.record, time_cap),
        artifact_forces_failure,
        time_cap,
    })
}

//! Determinism and replay-fidelity contracts of the schedule-space search:
//!
//! - the same seed + budget produce a byte-identical corpus and best entry
//!   at 1, 2 and 4 campaign threads;
//! - the shrinker returns a valid genome (same model tag, no longer tape)
//!   whose replay still satisfies the failure predicate;
//! - the NoTrace search path and the FullTrace replay path agree on every
//!   record field for the same genome and seed;
//! - the committed example artifact replays exactly and still beats every
//!   hand-coded registry adversary on its harness.

use agreement_adversary::build_from_genome;
use agreement_core::{Campaign, ScenarioSpec, TrialRecord};
use agreement_search::{
    compare_with_registry, find_spec, replay, replay_file, run_search, shrink, Predicate,
    SearchConfig,
};

const SCENARIO: &str = "e1/reset-tolerant/split-vote/split/n7t1";

fn spec() -> ScenarioSpec {
    find_spec(SCENARIO).expect("registry scenario exists")
}

fn small_config() -> SearchConfig {
    SearchConfig::default()
        .budget_trials(192)
        .batch(32)
        .seed(11)
}

#[test]
fn corpus_is_byte_identical_across_thread_counts() {
    let spec = spec();
    let config = small_config();
    let mut outputs = Vec::new();
    for threads in [1usize, 2, 4] {
        let campaign = Campaign::with_threads(threads);
        let outcome = run_search(&spec, &campaign, &config).expect("search runs");
        assert_eq!(outcome.trials_run, 192);
        outputs.push(outcome.corpus.to_json().to_string());
    }
    assert_eq!(outputs[0], outputs[1], "1 vs 2 threads diverged");
    assert_eq!(outputs[0], outputs[2], "1 vs 4 threads diverged");
}

#[test]
fn shrinker_preserves_predicate_and_model_tag() {
    let spec = spec();
    let campaign = Campaign::serial();
    let outcome = run_search(&spec, &campaign, &small_config()).expect("search runs");
    let best = outcome.best().expect("non-empty corpus").clone();
    let predicate = Predicate::classify(&best.record, outcome.time_cap);

    let report = shrink(
        &spec,
        &best.genome,
        best.record.seed,
        predicate,
        outcome.time_cap,
        400,
    )
    .expect("shrink runs");

    assert_eq!(report.genome.model(), best.genome.model());
    assert!(report.genome.tape().len() <= best.genome.tape().len());
    assert!(
        predicate.holds(&report.record, outcome.time_cap),
        "shrunk genome's record no longer witnesses {predicate}"
    );

    // The shrunk genome must be a valid, replayable schedule: rebuild the
    // adversary from scratch and re-run at the pinned seed.
    let cfg = spec.config().expect("config resolves");
    let mut adversary = build_from_genome(&report.genome, &cfg).expect("genome rebuilds");
    let outcome2 = spec
        .run_single_with(best.record.seed, &mut adversary)
        .expect("replay runs");
    let inputs = spec.inputs.materialize(spec.n);
    let replayed = TrialRecord::from_outcome(0, best.record.seed, &outcome2, &inputs);
    assert_eq!(replayed, report.record, "shrink probe is not reproducible");
}

#[test]
fn notrace_search_trial_equals_fulltrace_replay() {
    let spec = spec();
    let campaign = Campaign::serial();
    let outcome = run_search(&spec, &campaign, &small_config()).expect("search runs");
    let cfg = spec.config().expect("config resolves");
    let inputs = spec.inputs.materialize(spec.n);

    // Every corpus survivor, not just the winner: re-evaluate its genome on
    // the NoTrace campaign path and on the FullTrace replay path at the same
    // seed and demand field-for-field equality.
    for entry in outcome.corpus.iter().take(16) {
        let seed = entry.record.seed;
        let notrace = spec
            .run_batch_records_with(&campaign, 1, seed, |_| {
                build_from_genome(&entry.genome, &cfg).expect("genome rebuilds")
            })
            .expect("batch runs");
        let mut adversary = build_from_genome(&entry.genome, &cfg).expect("genome rebuilds");
        let traced = spec
            .run_single_with(seed, &mut adversary)
            .expect("replay runs");
        let fulltrace = TrialRecord::from_outcome(0, seed, &traced, &inputs);
        assert_eq!(
            notrace[0], fulltrace,
            "NoTrace and FullTrace disagree for seed {seed}"
        );
    }
}

#[test]
fn committed_example_artifact_replays_and_beats_every_baseline() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/search-slow-reset-tolerant-n7t1.schedule.json"
    );
    let (artifact, spec, report) = replay_file(path).expect("artifact replays");
    assert!(report.matches, "stored record drifted from replay");
    assert!(report.predicate_holds, "stored predicate no longer holds");

    // Acceptance pin: the discovered schedule forces strictly more
    // rounds-to-decision than every hand-coded adversary of the same model
    // on the same protocol/n/t harness.
    let comparison =
        compare_with_registry(&spec, &artifact, &Campaign::serial()).expect("baselines run");
    assert!(!comparison.rows.is_empty(), "no baselines found");
    assert!(
        comparison.beats_all(),
        "artifact (decision time {}) no longer beats all baselines: {:?}",
        comparison.artifact_decision_time,
        comparison.rows
    );
}

#[test]
fn replay_rejects_model_mismatch_loudly() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/search-slow-reset-tolerant-n7t1.schedule.json"
    );
    let text = std::fs::read_to_string(path).expect("artifact readable");
    let mut artifact = agreement_search::ScheduleArtifact::parse(&text).expect("artifact parses");
    // Retag the genome for a different execution model: replay must refuse
    // with a loud error, never silently fall back to a benign schedule.
    artifact.model = "async".to_string();
    artifact.genome = agreement_adversary::Genome::new("async", artifact.genome.tape().to_vec());
    let spec = find_spec(&artifact.scenario).expect("scenario resolves");
    let err = replay(&spec, &artifact).expect_err("model mismatch must fail");
    assert!(err.contains("model"), "unhelpful error: {err}");
}

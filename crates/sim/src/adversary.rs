//! Adversary interfaces: what an adversary sees and what it may decide.
//!
//! The paper's adversaries are computationally unbounded, full-information
//! schedulers: they see all processor states and all message contents, and
//! they choose the schedule (and failures) subject to the model's constraints.
//! The traits here expose exactly that interface:
//!
//! * [`WindowAdversary`] chooses the next acceptable window (strongly adaptive
//!   model, Section 2); the engine validates every window against
//!   Definition 1, so an implementation cannot exceed its power.
//! * [`AsyncAdversary`] chooses individual steps (message delivery, crashes,
//!   Byzantine corruption) in the fully asynchronous model of Section 5.
//! * [`PartialSyncAdversary`] chooses a global stabilization time, a delivery
//!   bound Δ and individual pre-GST steps in the partial-synchrony model; the
//!   scheduler *enforces* the post-GST bound, so the adversary's power is
//!   genuinely curtailed.
//!
//! Which model a data-described adversary drives is carried by a
//! [`ModelDescriptor`](crate::ModelDescriptor) on its factory — an open
//! registry of models, not a closed enum.

use agreement_model::{Bit, Payload, ProcessorId, StateDigest, SystemConfig};

use crate::buffer::MessageBuffer;
use crate::window::Window;

/// The full-information view an adversary is given before each decision.
#[derive(Debug)]
pub struct SystemView<'a> {
    /// The static configuration (`n`, `t`).
    pub config: SystemConfig,
    /// Index of the decision point: the window index for the window engine,
    /// the step index for the asynchronous engine.
    pub time: u64,
    /// Adversary-visible digests of every processor's internal state.
    pub digests: &'a [StateDigest],
    /// The durable output bits (decisions) of every processor.
    pub outputs: &'a [Option<Bit>],
    /// Which processors have crashed.
    pub crashed: &'a [bool],
    /// Every undelivered message (the adversary reads all contents).
    pub buffer: &'a MessageBuffer,
}

impl<'a> SystemView<'a> {
    /// Number of processors.
    pub fn n(&self) -> usize {
        self.config.n()
    }

    /// The per-window fault budget.
    pub fn t(&self) -> usize {
        self.config.t()
    }

    /// Identities of processors that have not decided yet (and have not
    /// crashed). Returns a lazy iterator so adversary decision loops can scan
    /// without allocating a `Vec` per decision.
    pub fn undecided(&self) -> impl Iterator<Item = ProcessorId> + '_ {
        self.outputs
            .iter()
            .enumerate()
            .filter(|(i, out)| out.is_none() && !self.crashed[*i])
            .map(|(i, _)| ProcessorId::new(i))
    }

    /// Finds the first nonempty channel at or after `cursor` in the
    /// sender-major round-robin order (channel `(from, to)` has index
    /// `from * n + to`), skipping channels whose recipient has crashed.
    ///
    /// Returns the cursor to resume the round-robin from (the slot *after*
    /// the found channel, already wrapped) alongside the channel's endpoints;
    /// an adversary that acts on the channel persists it, one that defers
    /// (e.g. to corrupt the head first) leaves its own cursor untouched.
    /// This is the shared scan loop of every fair-scheduling adversary; it
    /// allocates nothing and each channel probe is O(1) on the flat buffer.
    pub fn next_pending_channel(&self, cursor: usize) -> Option<(usize, ProcessorId, ProcessorId)> {
        self.next_pending_channel_where(cursor, |_, _| true)
    }

    /// Like [`SystemView::next_pending_channel`], but additionally skips
    /// channels rejected by `admit(from, to)` (e.g. withheld senders).
    ///
    /// Delegates to
    /// [`MessageBuffer::next_pending_channel_where`], which knows its own
    /// layout: a flat wrapping scan on the dense grid, a live-bitset walk on
    /// the sparse fabric (identical results either way). Crashed recipients
    /// are folded into the admission predicate here, since crash state lives
    /// in the view, not the buffer.
    pub fn next_pending_channel_where(
        &self,
        cursor: usize,
        admit: impl Fn(ProcessorId, ProcessorId) -> bool,
    ) -> Option<(usize, ProcessorId, ProcessorId)> {
        let crashed = self.crashed;
        self.buffer
            .next_pending_channel_where(self.n(), cursor, move |from, to| {
                !crashed[to.index()] && admit(from, to)
            })
    }

    /// Returns `true` if some processor has written its output bit.
    pub fn any_decided(&self) -> bool {
        self.outputs.iter().any(Option::is_some)
    }

    /// Returns `true` if every non-crashed processor has written its output bit.
    pub fn all_correct_decided(&self) -> bool {
        self.outputs
            .iter()
            .zip(self.crashed)
            .all(|(out, crashed)| *crashed || out.is_some())
    }

    /// Counts how many (non-crashed) processors currently hold estimate `value`.
    pub fn estimate_count(&self, value: Bit) -> usize {
        self.digests
            .iter()
            .zip(self.crashed)
            .filter(|(d, crashed)| !**crashed && d.estimate == Some(value))
            .count()
    }

    /// The highest protocol round any processor has reached.
    pub fn max_round(&self) -> u64 {
        self.digests
            .iter()
            .filter_map(|d| d.round)
            .max()
            .unwrap_or(0)
    }
}

/// An adversary for the strongly adaptive (resetting) model: it chooses each
/// acceptable window.
pub trait WindowAdversary {
    /// A short human-readable name, used in reports.
    fn name(&self) -> &'static str;

    /// Chooses the next acceptable window, given the full-information view
    /// taken after all sending steps of the window have executed (so the
    /// buffer already contains the window's fresh messages).
    ///
    /// The returned window must satisfy Definition 1; the engine validates it
    /// and treats a violation as a programming error (panics).
    fn next_window(&mut self, view: &SystemView<'_>) -> Window;
}

/// A single scheduling decision of an asynchronous adversary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsyncAction {
    /// Deliver the oldest undelivered message on the channel `from -> to`.
    Deliver {
        /// The sender of the message to deliver.
        from: ProcessorId,
        /// The recipient of the message to deliver.
        to: ProcessorId,
    },
    /// Crash processor `id` (it takes no further steps). The engine enforces
    /// the crash budget `t`.
    Crash(ProcessorId),
    /// Replace the payload of the oldest undelivered message on the channel
    /// `from -> to` before delivering it. Models Byzantine corruption of a
    /// message sent by a corrupted processor; the engine enforces that only
    /// processors previously declared corrupted may have their messages
    /// rewritten.
    Corrupt {
        /// The (corrupted) sender whose in-flight message is rewritten.
        from: ProcessorId,
        /// The recipient of the rewritten message.
        to: ProcessorId,
        /// The replacement payload.
        payload: Payload,
    },
    /// Declare processor `id` Byzantine-corrupted (counts against the budget
    /// `t`); its future messages may be corrupted or withheld.
    CorruptProcessor(ProcessorId),
    /// The adversary stops scheduling: the execution ends (used when the
    /// adversary has exhausted its strategy).
    Halt,
}

/// An adversary for the fully asynchronous model (crash / Byzantine failures).
pub trait AsyncAdversary {
    /// A short human-readable name, used in reports.
    fn name(&self) -> &'static str;

    /// Chooses the next step given the full-information view.
    fn next_action(&mut self, view: &SystemView<'_>) -> AsyncAction;
}

impl<A: WindowAdversary + ?Sized> WindowAdversary for Box<A> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn next_window(&mut self, view: &SystemView<'_>) -> Window {
        (**self).next_window(view)
    }
}

impl<A: AsyncAdversary + ?Sized> AsyncAdversary for Box<A> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn next_action(&mut self, view: &SystemView<'_>) -> AsyncAction {
        (**self).next_action(view)
    }
}

/// A single discretionary decision of a partial-synchrony adversary.
///
/// Unlike [`AsyncAction`], stalling is a first-class move: before GST the
/// adversary may withhold everything indefinitely, which is exactly the power
/// the post-GST delivery bound takes away (overdue messages are delivered by
/// the scheduler whether the adversary likes it or not).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartialSyncAction {
    /// Deliver the oldest undelivered message on the channel `from -> to`.
    Deliver {
        /// The sender of the message to deliver.
        from: ProcessorId,
        /// The recipient of the message to deliver.
        to: ProcessorId,
    },
    /// Crash processor `id` (the engine enforces the fault budget `t`).
    Crash(ProcessorId),
    /// Deliver nothing this step; time passes. Before GST this withholds
    /// every message; after GST the bounded-delay enforcement limits how long
    /// a stall can actually delay anything.
    Stall,
    /// The adversary stops scheduling: the execution ends (used when nothing
    /// the adversary could do would change the state again).
    Halt,
}

/// An adversary for the partial-synchrony (eventual-synchrony) model.
///
/// The adversary picks the model parameters — the global stabilization time
/// ([`gst`](PartialSyncAdversary::gst)), the post-GST delivery bound
/// ([`delta`](PartialSyncAdversary::delta)) and up to `t` omission-faulty
/// senders ([`omitted_senders`](PartialSyncAdversary::omitted_senders)) —
/// and then schedules one discretionary [`PartialSyncAction`] per step with
/// full information. The parameters are *binding*: the
/// [`PartialSyncScheduler`](crate::exec::PartialSyncScheduler) consults them
/// every step and force-delivers any pending message older than Δ once GST
/// has passed, so implementations must return constant values throughout a
/// run.
pub trait PartialSyncAdversary {
    /// A short human-readable name, used in reports.
    fn name(&self) -> &'static str;

    /// The adversary-chosen global stabilization time, in steps. Before this
    /// step the adversary schedules with full asynchronous freedom; from it
    /// on, the scheduler enforces the delivery bound. Must be constant over
    /// a run.
    fn gst(&self) -> u64;

    /// The adversary-chosen post-GST delivery bound Δ ≥ 1 (values below 1
    /// are clamped): once GST has passed, a pending message sent at step `s`
    /// is delivered no later than step `max(s, gst) + Δ`. Must be constant
    /// over a run.
    fn delta(&self) -> u64;

    /// Senders whose messages the adversary omits (never delivers) even
    /// after GST — the model's omission faults. The scheduler honours at
    /// most the first `t` entries; the rest are ignored. Omissions and
    /// crashes share **one** fault budget of `t`: the honoured omission set
    /// is charged up front, and crash actions beyond the remainder are
    /// refused. Must be constant over a run.
    fn omitted_senders(&self) -> &[ProcessorId] {
        &[]
    }

    /// Chooses this step's discretionary action given the full-information
    /// view.
    fn next_action(&mut self, view: &SystemView<'_>) -> PartialSyncAction;
}

impl<A: PartialSyncAdversary + ?Sized> PartialSyncAdversary for Box<A> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn gst(&self) -> u64 {
        (**self).gst()
    }

    fn delta(&self) -> u64 {
        (**self).delta()
    }

    fn omitted_senders(&self) -> &[ProcessorId] {
        (**self).omitted_senders()
    }

    fn next_action(&mut self, view: &SystemView<'_>) -> PartialSyncAction {
        (**self).next_action(view)
    }
}

/// The benign window adversary: full delivery, no resets. Useful as a
/// best-case baseline and in tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullDeliveryAdversary;

impl WindowAdversary for FullDeliveryAdversary {
    fn name(&self) -> &'static str {
        "full-delivery"
    }

    fn next_window(&mut self, view: &SystemView<'_>) -> Window {
        Window::full_delivery(&view.config)
    }
}

/// The benign asynchronous adversary: delivers the oldest message of the
/// least-recently-served nonempty channel, never crashes anybody. This yields
/// a fair, round-robin schedule.
#[derive(Debug, Clone, Default)]
pub struct FairAsyncAdversary {
    cursor: usize,
}

impl AsyncAdversary for FairAsyncAdversary {
    fn name(&self) -> &'static str {
        "fair-round-robin"
    }

    fn next_action(&mut self, view: &SystemView<'_>) -> AsyncAction {
        match view.next_pending_channel(self.cursor) {
            Some((next_cursor, from, to)) => {
                self.cursor = next_cursor;
                AsyncAction::Deliver { from, to }
            }
            None => AsyncAction::Halt,
        }
    }
}

/// The benign partial-synchrony baseline: synchrony from the start
/// (GST = 0), no omissions, eager fair round-robin delivery. Halts once the
/// buffer is quiescent (nothing pending means nothing can ever change).
#[derive(Debug, Clone, Default)]
pub struct BenignEventualAdversary {
    cursor: usize,
}

impl BenignEventualAdversary {
    /// The delivery bound the benign baseline declares. It rarely matters —
    /// the baseline delivers eagerly — but it is what the scheduler would
    /// enforce if it stalled.
    pub const DELTA: u64 = 8;
}

impl PartialSyncAdversary for BenignEventualAdversary {
    fn name(&self) -> &'static str {
        "benign-eventual"
    }

    fn gst(&self) -> u64 {
        0
    }

    fn delta(&self) -> u64 {
        BenignEventualAdversary::DELTA
    }

    fn next_action(&mut self, view: &SystemView<'_>) -> PartialSyncAction {
        match view.next_pending_channel(self.cursor) {
            Some((next_cursor, from, to)) => {
                self.cursor = next_cursor;
                PartialSyncAction::Deliver { from, to }
            }
            None => PartialSyncAction::Halt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agreement_model::Envelope;

    fn digests(n: usize) -> Vec<StateDigest> {
        (0..n).map(|_| StateDigest::initial(Bit::Zero)).collect()
    }

    #[test]
    fn system_view_helpers() {
        let cfg = SystemConfig::new(4, 1).unwrap();
        let digests = digests(4);
        let outputs = vec![None, Some(Bit::One), None, None];
        let crashed = vec![false, false, true, false];
        let buffer = MessageBuffer::new();
        let view = SystemView {
            config: cfg,
            time: 3,
            digests: &digests,
            outputs: &outputs,
            crashed: &crashed,
            buffer: &buffer,
        };
        assert_eq!(view.n(), 4);
        assert_eq!(view.t(), 1);
        assert!(view.any_decided());
        assert!(!view.all_correct_decided());
        assert_eq!(
            view.undecided().collect::<Vec<_>>(),
            vec![ProcessorId::new(0), ProcessorId::new(3)]
        );
        assert_eq!(view.estimate_count(Bit::Zero), 3);
        assert_eq!(view.estimate_count(Bit::One), 0);
        assert_eq!(view.max_round(), 1);
    }

    #[test]
    fn full_delivery_adversary_emits_valid_windows() {
        let cfg = SystemConfig::new(6, 1).unwrap();
        let digests = digests(6);
        let outputs = vec![None; 6];
        let crashed = vec![false; 6];
        let buffer = MessageBuffer::new();
        let view = SystemView {
            config: cfg,
            time: 0,
            digests: &digests,
            outputs: &outputs,
            crashed: &crashed,
            buffer: &buffer,
        };
        let mut adv = FullDeliveryAdversary;
        let w = adv.next_window(&view);
        assert!(w.validate(&cfg).is_ok());
        assert_eq!(adv.name(), "full-delivery");
    }

    #[test]
    fn fair_async_adversary_serves_channels_round_robin_and_halts_when_empty() {
        let cfg = SystemConfig::new(2, 0).unwrap();
        let digests = digests(2);
        let outputs = vec![None; 2];
        let crashed = vec![false; 2];
        let mut buffer = MessageBuffer::new();
        buffer.enqueue(Envelope::new(
            ProcessorId::new(0),
            ProcessorId::new(1),
            Payload::Decided { value: Bit::One },
        ));
        buffer.enqueue(Envelope::new(
            ProcessorId::new(1),
            ProcessorId::new(0),
            Payload::Decided { value: Bit::One },
        ));
        let mut adv = FairAsyncAdversary::default();
        let view = SystemView {
            config: cfg,
            time: 0,
            digests: &digests,
            outputs: &outputs,
            crashed: &crashed,
            buffer: &buffer,
        };
        let first = adv.next_action(&view);
        assert_eq!(
            first,
            AsyncAction::Deliver {
                from: ProcessorId::new(0),
                to: ProcessorId::new(1)
            }
        );
        // Pretend the first was delivered; the adversary should move on.
        buffer.pop(ProcessorId::new(0), ProcessorId::new(1));
        let view = SystemView {
            config: cfg,
            time: 1,
            digests: &digests,
            outputs: &outputs,
            crashed: &crashed,
            buffer: &buffer,
        };
        let second = adv.next_action(&view);
        assert_eq!(
            second,
            AsyncAction::Deliver {
                from: ProcessorId::new(1),
                to: ProcessorId::new(0)
            }
        );
        buffer.pop(ProcessorId::new(1), ProcessorId::new(0));
        let view = SystemView {
            config: cfg,
            time: 2,
            digests: &digests,
            outputs: &outputs,
            crashed: &crashed,
            buffer: &buffer,
        };
        assert_eq!(adv.next_action(&view), AsyncAction::Halt);
    }

    #[test]
    fn fair_async_adversary_skips_crashed_recipients() {
        let cfg = SystemConfig::new(2, 1).unwrap();
        let digests = digests(2);
        let outputs = vec![None; 2];
        let crashed = vec![false, true];
        let mut buffer = MessageBuffer::new();
        buffer.enqueue(Envelope::new(
            ProcessorId::new(0),
            ProcessorId::new(1),
            Payload::Decided { value: Bit::One },
        ));
        let mut adv = FairAsyncAdversary::default();
        let view = SystemView {
            config: cfg,
            time: 0,
            digests: &digests,
            outputs: &outputs,
            crashed: &crashed,
            buffer: &buffer,
        };
        assert_eq!(adv.next_action(&view), AsyncAction::Halt);
    }
}

//! Structured per-run metrics and the zero-cost [`Probe`] instrumentation
//! hook.
//!
//! Every execution — windowed or asynchronous — produces a [`Metrics`]
//! snapshot assembled by the [`ExecutionCore`](crate::ExecutionCore) from
//! counters it already maintains on the hot path (buffer counts, reset and
//! crash counters, causal depths, per-processor coin draws). Assembly happens
//! once, at outcome time, so recording metrics costs nothing per step.
//!
//! The [`Probe`] trait is the *extension point* for observers that want to
//! see the primitive transitions as they happen: every send, delivery, drop,
//! reset, crash and clock advance fires a hook. The core is generic over its
//! probe with [`NoProbe`] as the default, so the un-instrumented path
//! monomorphizes to exactly the code that existed before probes — every hook
//! is an empty inlined body, no allocation, no branch (guarded by the
//! `exec_core` bench baseline). [`MetricsProbe`] is the reference
//! implementation: it accumulates the event-observable subset of [`Metrics`]
//! and is cross-checked in tests against the core-assembled snapshot, pinning
//! the hook placement.

use agreement_model::ProcessorId;

/// Structured counters describing one execution.
///
/// Assembled by [`ExecutionCore::outcome`](crate::ExecutionCore::outcome);
/// carried by [`RunOutcome::metrics`](crate::RunOutcome::metrics) and by the
/// per-trial records of the campaign layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Messages placed into the buffer by sending steps.
    pub messages_sent: u64,
    /// Messages delivered to (and processed by) their recipients.
    pub messages_delivered: u64,
    /// Messages discarded undelivered (window expiry or recipient crash).
    pub messages_dropped: u64,
    /// The highest protocol round observed in the final state digests
    /// (`0` when no processor reports a round; resets may lower a
    /// processor's round, so this is the surviving watermark, not a peak).
    pub rounds: u64,
    /// Acceptable windows scheduled (windowed executions; `0` for async).
    pub windows: u64,
    /// Adversary steps scheduled (asynchronous executions; `0` for windowed).
    pub steps: u64,
    /// Resetting steps performed by the adversary.
    pub resets_consumed: u64,
    /// Crash failures charged against the fault budget.
    pub crashes: u64,
    /// Private random draws (bits, ranges and tickets) across all processors.
    pub coin_flips: u64,
    /// The longest causal message chain any processor has received: the
    /// maximum over processors of the longest chain `m_1, ..., m_k` where
    /// each `m_i` was received by the sender of `m_{i+1}` before `m_{i+1}`
    /// was sent (Section 5's running-time measure, tracked in both models).
    pub max_chain: u64,
}

/// Observes the primitive transitions of an
/// [`ExecutionCore`](crate::ExecutionCore) as they happen.
///
/// Every method has an empty default body; implementations override only the
/// events they care about. The core is generic over its probe, so a
/// [`NoProbe`] core compiles to exactly the un-instrumented code.
pub trait Probe {
    /// A sending step placed a message with causal tag `chain` into the buffer.
    #[inline]
    fn on_send(&mut self, from: ProcessorId, chain: u64) {
        let _ = (from, chain);
    }

    /// A receiving step delivered a message with causal tag `chain`.
    #[inline]
    fn on_deliver(&mut self, from: ProcessorId, to: ProcessorId, chain: u64) {
        let _ = (from, to, chain);
    }

    /// `count` undelivered messages were discarded (window expiry or crash).
    #[inline]
    fn on_drop(&mut self, count: u64) {
        let _ = count;
    }

    /// A resetting step erased processor `id`'s memory.
    #[inline]
    fn on_reset(&mut self, id: ProcessorId) {
        let _ = id;
    }

    /// Processor `id` was crashed (charged against the fault budget).
    #[inline]
    fn on_crash(&mut self, id: ProcessorId) {
        let _ = id;
    }

    /// One acceptable window completed.
    #[inline]
    fn on_window(&mut self) {}

    /// One asynchronous adversary step completed.
    #[inline]
    fn on_step(&mut self) {}
}

/// The default probe: observes nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoProbe;

impl Probe for NoProbe {}

/// Accumulates the event-observable subset of [`Metrics`] from probe hooks.
///
/// `rounds` and `coin_flips` happen inside processors, not as core
/// transitions, so they stay `0` here; every other field mirrors what the
/// core assembles at outcome time. Tests assert the two stay equal, which
/// pins the placement of every hook.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsProbe {
    observed: Metrics,
}

impl MetricsProbe {
    /// A probe with all counters at zero.
    pub fn new() -> Self {
        MetricsProbe::default()
    }

    /// The counters accumulated so far.
    pub fn observed(&self) -> Metrics {
        self.observed
    }
}

impl Probe for MetricsProbe {
    #[inline]
    fn on_send(&mut self, _from: ProcessorId, _chain: u64) {
        self.observed.messages_sent += 1;
    }

    #[inline]
    fn on_deliver(&mut self, _from: ProcessorId, _to: ProcessorId, chain: u64) {
        self.observed.messages_delivered += 1;
        self.observed.max_chain = self.observed.max_chain.max(chain);
    }

    #[inline]
    fn on_drop(&mut self, count: u64) {
        self.observed.messages_dropped += count;
    }

    #[inline]
    fn on_reset(&mut self, _id: ProcessorId) {
        self.observed.resets_consumed += 1;
    }

    #[inline]
    fn on_crash(&mut self, _id: ProcessorId) {
        self.observed.crashes += 1;
    }

    #[inline]
    fn on_window(&mut self) {
        self.observed.windows += 1;
    }

    #[inline]
    fn on_step(&mut self) {
        self.observed.steps += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_probe_observes_nothing_and_is_zero_sized() {
        assert_eq!(std::mem::size_of::<NoProbe>(), 0);
        let mut probe = NoProbe;
        probe.on_send(ProcessorId::new(0), 1);
        probe.on_window();
    }

    #[test]
    fn metrics_probe_accumulates_events() {
        let mut probe = MetricsProbe::new();
        probe.on_send(ProcessorId::new(0), 1);
        probe.on_send(ProcessorId::new(1), 2);
        probe.on_deliver(ProcessorId::new(0), ProcessorId::new(1), 5);
        probe.on_deliver(ProcessorId::new(1), ProcessorId::new(0), 3);
        probe.on_drop(4);
        probe.on_reset(ProcessorId::new(2));
        probe.on_crash(ProcessorId::new(3));
        probe.on_window();
        probe.on_step();
        let m = probe.observed();
        assert_eq!(m.messages_sent, 2);
        assert_eq!(m.messages_delivered, 2);
        assert_eq!(m.messages_dropped, 4);
        assert_eq!(m.max_chain, 5);
        assert_eq!(m.resets_consumed, 1);
        assert_eq!(m.crashes, 1);
        assert_eq!(m.windows, 1);
        assert_eq!(m.steps, 1);
        assert_eq!(m.rounds, 0, "rounds are not event-observable");
        assert_eq!(m.coin_flips, 0, "coin flips are not event-observable");
    }

    #[test]
    fn metrics_default_is_all_zero() {
        assert_eq!(Metrics::default().messages_sent, 0);
        assert_eq!(Metrics::default(), MetricsProbe::new().observed());
    }
}

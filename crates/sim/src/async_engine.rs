//! The fully asynchronous engine: crash and Byzantine failures under
//! adversarial scheduling (the model of Section 5 of the paper).
//!
//! The adversary chooses one step at a time: deliver a specific buffered
//! message, crash a processor, corrupt an in-flight message of a corrupted
//! processor, or halt. The only structural constraint (enforced here) is the
//! fault budget: at most `t` processors may be crashed or corrupted over the
//! whole execution. Liveness ("all messages to correct processors are
//! eventually delivered") is the adversary implementation's responsibility;
//! the run limits bound how long we wait.
//!
//! Running time in this model is measured as the length of the longest
//! *message chain* preceding the first decision: a chain `m_1, ..., m_k` where
//! `m_i` is received by the sender of `m_{i+1}` before `m_{i+1}` is sent. The
//! engine tracks per-message causal depths to compute this exactly.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use agreement_model::{
    Bit, InputAssignment, ProcessorId, ProtocolBuilder, StateDigest, SystemConfig, Trace,
    TraceEvent,
};

use crate::adversary::{AsyncAction, AsyncAdversary, SystemView};
use crate::buffer::MessageBuffer;
use crate::harness::ProcessorHarness;
use crate::outcome::{RunLimits, RunOutcome};

/// An execution of the fully asynchronous model with crash/Byzantine faults.
#[derive(Debug)]
pub struct AsyncEngine {
    cfg: SystemConfig,
    inputs: InputAssignment,
    harnesses: Vec<ProcessorHarness>,
    buffer: MessageBuffer,
    /// Chain depth of each buffered message, kept in lock-step with `buffer`.
    chains: BTreeMap<(ProcessorId, ProcessorId), VecDeque<u64>>,
    /// Causal depth of each processor: the longest chain among messages it has received.
    depth: Vec<u64>,
    trace: Trace,
    step_index: u64,
    crashes_performed: u64,
    corrupted: Vec<bool>,
    first_decision_at: Option<u64>,
    all_decided_at: Option<u64>,
    chain_at_first_decision: Option<u64>,
    halted: bool,
}

impl AsyncEngine {
    /// Creates the engine, runs every processor's `on_start`, and places the
    /// initial messages into the buffer.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not assign exactly `cfg.n()` bits.
    pub fn new(
        cfg: SystemConfig,
        inputs: InputAssignment,
        builder: &dyn ProtocolBuilder,
        master_seed: u64,
    ) -> Self {
        assert_eq!(
            inputs.len(),
            cfg.n(),
            "input assignment must cover every processor"
        );
        let mut harnesses: Vec<ProcessorHarness> = ProcessorId::all(cfg.n())
            .map(|id| ProcessorHarness::new(id, inputs.bit(id.index()), cfg, builder, master_seed))
            .collect();
        for harness in &mut harnesses {
            harness.start();
        }
        let mut engine = AsyncEngine {
            depth: vec![0; cfg.n()],
            chains: BTreeMap::new(),
            cfg,
            inputs,
            harnesses,
            buffer: MessageBuffer::new(),
            trace: Trace::new(),
            step_index: 0,
            crashes_performed: 0,
            corrupted: vec![false; cfg.n()],
            first_decision_at: None,
            all_decided_at: None,
            chain_at_first_decision: None,
            halted: false,
        };
        for i in 0..engine.harnesses.len() {
            engine.flush_outbox(ProcessorId::new(i));
        }
        engine.record_decision_progress();
        engine
    }

    /// The system configuration.
    pub fn config(&self) -> SystemConfig {
        self.cfg
    }

    /// Number of adversary steps taken so far.
    pub fn steps_elapsed(&self) -> u64 {
        self.step_index
    }

    /// The current output bits of all processors.
    pub fn decisions(&self) -> Vec<Option<Bit>> {
        self.harnesses.iter().map(ProcessorHarness::decision).collect()
    }

    /// The adversary-visible digests of all processors.
    pub fn digests(&self) -> Vec<StateDigest> {
        self.harnesses.iter().map(ProcessorHarness::digest).collect()
    }

    /// Which processors have been crashed so far.
    pub fn crashed(&self) -> Vec<bool> {
        self.harnesses.iter().map(ProcessorHarness::is_crashed).collect()
    }

    /// Which processors have been declared Byzantine-corrupted so far.
    pub fn corrupted(&self) -> &[bool] {
        &self.corrupted
    }

    /// `true` once every non-crashed processor has written its output bit.
    pub fn all_correct_decided(&self) -> bool {
        self.harnesses
            .iter()
            .all(|h| h.is_crashed() || h.decision().is_some())
    }

    /// Number of faults (crashes plus corruptions) charged so far.
    pub fn faults_used(&self) -> usize {
        self.crashes_performed as usize + self.corrupted.iter().filter(|&&c| c).count()
    }

    fn flush_outbox(&mut self, id: ProcessorId) {
        let chain = self.depth[id.index()] + 1;
        let envelopes = self.harnesses[id.index()].take_outbox();
        for envelope in envelopes {
            self.trace.push(TraceEvent::Sent {
                from: envelope.sender,
                to: envelope.recipient,
            });
            self.chains
                .entry((envelope.sender, envelope.recipient))
                .or_default()
                .push_back(chain);
            self.buffer.enqueue(envelope);
        }
    }

    fn record_decision_progress(&mut self) {
        if self.first_decision_at.is_none() && self.harnesses.iter().any(|h| h.decision().is_some())
        {
            self.first_decision_at = Some(self.step_index);
        }
        if self.all_decided_at.is_none() && self.all_correct_decided() {
            self.all_decided_at = Some(self.step_index);
        }
    }

    /// Executes one adversary-chosen step. Returns `false` once the execution
    /// has halted (adversary gave up) — further calls do nothing.
    pub fn step(&mut self, adversary: &mut dyn AsyncAdversary) -> bool {
        if self.halted {
            return false;
        }
        let action = {
            let digests = self.digests();
            let outputs = self.decisions();
            let crashed = self.crashed();
            let view = SystemView {
                config: self.cfg,
                time: self.step_index,
                digests: &digests,
                outputs: &outputs,
                crashed: &crashed,
                buffer: &self.buffer,
            };
            adversary.next_action(&view)
        };
        self.step_index += 1;
        match action {
            AsyncAction::Deliver { from, to } => self.deliver(from, to),
            AsyncAction::Crash(id) => self.crash(id),
            AsyncAction::CorruptProcessor(id) => self.corrupt_processor(id),
            AsyncAction::Corrupt { from, to, payload } => {
                if self.corrupted[from.index()] {
                    if self.buffer.corrupt_head(from, to, payload).is_some() {
                        self.trace.push(TraceEvent::Corrupted { id: from });
                    }
                } else {
                    self.trace.push(TraceEvent::Violation {
                        description: format!(
                            "adversary attempted to corrupt a message of uncorrupted {from}; ignored"
                        ),
                    });
                }
            }
            AsyncAction::Halt => {
                self.halted = true;
            }
        }
        self.record_decision_progress();
        !self.halted
    }

    fn deliver(&mut self, from: ProcessorId, to: ProcessorId) {
        if self.harnesses[to.index()].is_crashed() {
            return;
        }
        let Some(payload) = self.buffer.pop(from, to) else {
            return;
        };
        let chain = self
            .chains
            .get_mut(&(from, to))
            .and_then(VecDeque::pop_front)
            .unwrap_or(0);
        self.trace.push(TraceEvent::Delivered { from, to });
        let before = self.harnesses[to.index()].decision();
        self.harnesses[to.index()].deliver(from, &payload);
        let depth = &mut self.depth[to.index()];
        *depth = (*depth).max(chain);
        let after = self.harnesses[to.index()].decision();
        if before.is_none() {
            if let Some(value) = after {
                self.trace.push(TraceEvent::Decided {
                    id: to,
                    value,
                    at: self.step_index,
                });
                if self.chain_at_first_decision.is_none() {
                    self.chain_at_first_decision = Some(self.depth[to.index()]);
                }
            }
        }
        self.flush_outbox(to);
    }

    fn crash(&mut self, id: ProcessorId) {
        if self.harnesses[id.index()].is_crashed() {
            return;
        }
        if self.faults_used() >= self.cfg.t() {
            self.trace.push(TraceEvent::Violation {
                description: format!(
                    "adversary attempted to crash {id} beyond the fault budget t={}; ignored",
                    self.cfg.t()
                ),
            });
            return;
        }
        self.harnesses[id.index()].crash();
        self.buffer.drop_to(id);
        self.crashes_performed += 1;
        self.trace.push(TraceEvent::Crashed { id });
    }

    fn corrupt_processor(&mut self, id: ProcessorId) {
        if self.corrupted[id.index()] {
            return;
        }
        if self.faults_used() >= self.cfg.t() {
            self.trace.push(TraceEvent::Violation {
                description: format!(
                    "adversary attempted to corrupt {id} beyond the fault budget t={}; ignored",
                    self.cfg.t()
                ),
            });
            return;
        }
        self.corrupted[id.index()] = true;
    }

    /// Runs adversary steps until every correct processor has decided, the
    /// adversary halts, or `limits.max_steps` steps have elapsed.
    pub fn run(&mut self, adversary: &mut dyn AsyncAdversary, limits: RunLimits) -> RunOutcome {
        while !self.all_correct_decided() && !self.halted && self.step_index < limits.max_steps {
            self.step(adversary);
        }
        self.outcome()
    }

    /// Produces the outcome snapshot of the execution so far.
    pub fn outcome(&self) -> RunOutcome {
        let violations: Vec<String> = self
            .harnesses
            .iter()
            .flat_map(|h| h.violations().iter().cloned())
            .chain(self.validity_violations())
            .collect();
        RunOutcome {
            decisions: self.decisions(),
            crashed: self.crashed(),
            duration: self.step_index,
            first_decision_at: self.first_decision_at,
            all_decided_at: self.all_decided_at,
            violations,
            messages_sent: self.buffer.enqueued_count(),
            messages_delivered: self.buffer.delivered_count(),
            resets_performed: 0,
            crashes_performed: self.crashes_performed,
            longest_chain: self.chain_at_first_decision.unwrap_or(0),
            halted_by_adversary: self.halted,
            trace: self.trace.clone(),
        }
    }

    fn validity_violations(&self) -> Vec<String> {
        let mut violations = Vec::new();
        if let Some(unanimous) = self.inputs.unanimous_value() {
            for harness in &self.harnesses {
                if let Some(decided) = harness.decision() {
                    if decided != unanimous {
                        violations.push(format!(
                            "{} decided {decided} although every input is {unanimous}",
                            harness.id()
                        ));
                    }
                }
            }
        }
        let mut decided_values = self.harnesses.iter().filter_map(ProcessorHarness::decision);
        if let Some(first) = decided_values.next() {
            if decided_values.any(|other| other != first) {
                violations.push("processors decided conflicting values".to_string());
            }
        }
        violations
    }
}

/// Convenience: build an asynchronous engine, run it, return the outcome.
pub fn run_async(
    cfg: SystemConfig,
    inputs: InputAssignment,
    builder: &dyn ProtocolBuilder,
    adversary: &mut dyn AsyncAdversary,
    master_seed: u64,
    limits: RunLimits,
) -> RunOutcome {
    let mut engine = AsyncEngine::new(cfg, inputs, builder, master_seed);
    engine.run(adversary, limits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::FairAsyncAdversary;
    use agreement_model::{Context, Payload, Protocol, ProtocolBuilder};

    /// Waits for `n - t` round-1 reports (its own included) and decides the
    /// majority value among them.
    #[derive(Debug)]
    struct QuorumMajority {
        input: Bit,
        zeros: usize,
        ones: usize,
        quorum: usize,
        decided: Option<Bit>,
    }

    impl Protocol for QuorumMajority {
        fn on_start(&mut self, ctx: &mut dyn Context) {
            ctx.broadcast(Payload::Report {
                round: 1,
                value: self.input,
            });
        }

        fn on_message(&mut self, _from: ProcessorId, payload: &Payload, ctx: &mut dyn Context) {
            if self.decided.is_some() {
                return;
            }
            if let Payload::Report { round: 1, value } = payload {
                match value {
                    Bit::Zero => self.zeros += 1,
                    Bit::One => self.ones += 1,
                }
                if self.zeros + self.ones >= self.quorum {
                    let v = if self.ones >= self.zeros { Bit::One } else { Bit::Zero };
                    self.decided = Some(v);
                    ctx.decide(v);
                }
            }
        }

        fn digest(&self) -> StateDigest {
            StateDigest {
                round: Some(1),
                estimate: Some(self.input),
                decided: self.decided,
                reset_count: 0,
                phase: "quorum-majority",
            }
        }
    }

    #[derive(Debug)]
    struct QuorumBuilder;

    impl ProtocolBuilder for QuorumBuilder {
        fn name(&self) -> &'static str {
            "quorum-majority"
        }

        fn build(&self, _id: ProcessorId, input: Bit, cfg: &SystemConfig) -> Box<dyn Protocol> {
            Box::new(QuorumMajority {
                input,
                zeros: 0,
                ones: 0,
                quorum: cfg.quorum(),
                decided: None,
            })
        }
    }

    #[test]
    fn fair_schedule_reaches_decision_for_unanimous_inputs() {
        let cfg = SystemConfig::new(5, 1).unwrap();
        let inputs = InputAssignment::unanimous(5, Bit::Zero);
        let outcome = run_async(
            cfg,
            inputs.clone(),
            &QuorumBuilder,
            &mut FairAsyncAdversary::default(),
            42,
            RunLimits::small(),
        );
        assert!(outcome.all_correct_decided());
        assert_eq!(outcome.decided_value(), Some(Bit::Zero));
        assert!(outcome.is_correct(&inputs));
        assert!(outcome.longest_chain >= 1);
        assert!(!outcome.halted_by_adversary);
    }

    #[test]
    fn crash_budget_is_enforced() {
        struct CrashHappy {
            next: usize,
            inner: FairAsyncAdversary,
        }
        impl AsyncAdversary for CrashHappy {
            fn name(&self) -> &'static str {
                "crash-happy"
            }
            fn next_action(&mut self, view: &SystemView<'_>) -> AsyncAction {
                if self.next < view.n() {
                    let id = ProcessorId::new(self.next);
                    self.next += 1;
                    AsyncAction::Crash(id)
                } else {
                    self.inner.next_action(view)
                }
            }
        }
        let cfg = SystemConfig::new(5, 1).unwrap();
        let inputs = InputAssignment::unanimous(5, Bit::One);
        let mut engine = AsyncEngine::new(cfg, inputs, &QuorumBuilder, 9);
        let mut adv = CrashHappy {
            next: 0,
            inner: FairAsyncAdversary::default(),
        };
        let outcome = engine.run(&mut adv, RunLimits::small());
        // Only one crash may be charged; the rest are ignored (and logged).
        assert_eq!(outcome.crashes_performed, 1);
        assert_eq!(outcome.crashed.iter().filter(|&&c| c).count(), 1);
        // The remaining four processors still decide.
        assert!(outcome.all_correct_decided());
        assert_eq!(outcome.decided_value(), Some(Bit::One));
    }

    #[test]
    fn corruption_requires_prior_corrupt_processor_declaration() {
        struct OneCorruption {
            declared: bool,
            corrupted_once: bool,
            inner: FairAsyncAdversary,
        }
        impl AsyncAdversary for OneCorruption {
            fn name(&self) -> &'static str {
                "one-corruption"
            }
            fn next_action(&mut self, view: &SystemView<'_>) -> AsyncAction {
                if !self.declared {
                    self.declared = true;
                    return AsyncAction::CorruptProcessor(ProcessorId::new(0));
                }
                if !self.corrupted_once {
                    self.corrupted_once = true;
                    return AsyncAction::Corrupt {
                        from: ProcessorId::new(0),
                        to: ProcessorId::new(1),
                        payload: Payload::Report {
                            round: 1,
                            value: Bit::Zero,
                        },
                    };
                }
                self.inner.next_action(view)
            }
        }
        let cfg = SystemConfig::new(4, 1).unwrap();
        // Inputs: 3 ones, 1 zero — a corrupted lie of `Zero` cannot flip the majority.
        let inputs = InputAssignment::split_at(4, 1);
        let mut engine = AsyncEngine::new(cfg, inputs.clone(), &QuorumBuilder, 3);
        let mut adv = OneCorruption {
            declared: false,
            corrupted_once: false,
            inner: FairAsyncAdversary::default(),
        };
        let outcome = engine.run(&mut adv, RunLimits::small());
        assert!(outcome.all_correct_decided());
        assert_eq!(outcome.trace.corruption_count(), 1);
        assert!(outcome.agreement_holds());
        assert!(outcome.validity_holds(&inputs));
    }

    #[test]
    fn halting_adversary_stops_the_run_without_decisions() {
        struct Lazy;
        impl AsyncAdversary for Lazy {
            fn name(&self) -> &'static str {
                "lazy"
            }
            fn next_action(&mut self, _view: &SystemView<'_>) -> AsyncAction {
                AsyncAction::Halt
            }
        }
        let cfg = SystemConfig::new(3, 0).unwrap();
        let inputs = InputAssignment::unanimous(3, Bit::One);
        let outcome = run_async(cfg, inputs, &QuorumBuilder, &mut Lazy, 1, RunLimits::small());
        assert!(outcome.halted_by_adversary);
        assert!(!outcome.any_decided());
        assert_eq!(outcome.duration, 1);
    }

    #[test]
    fn message_chains_grow_with_protocol_depth() {
        /// Each processor forwards a token around a ring `k` times before deciding.
        #[derive(Debug)]
        struct Ring {
            hops_left: u64,
        }
        impl Protocol for Ring {
            fn on_start(&mut self, ctx: &mut dyn Context) {
                if ctx.id().index() == 0 {
                    let next = ProcessorId::new(1 % ctx.config().n());
                    ctx.send(next, Payload::Opaque(vec![0]));
                }
            }
            fn on_message(&mut self, _from: ProcessorId, payload: &Payload, ctx: &mut dyn Context) {
                if let Payload::Opaque(bytes) = payload {
                    self.hops_left = self.hops_left.saturating_sub(1);
                    if bytes[0] >= 9 {
                        ctx.decide(Bit::One);
                        return;
                    }
                    let next = ProcessorId::new((ctx.id().index() + 1) % ctx.config().n());
                    ctx.send(next, Payload::Opaque(vec![bytes[0] + 1]));
                }
            }
            fn digest(&self) -> StateDigest {
                StateDigest::initial(Bit::One)
            }
        }
        #[derive(Debug)]
        struct RingBuilder;
        impl ProtocolBuilder for RingBuilder {
            fn name(&self) -> &'static str {
                "ring"
            }
            fn build(&self, _i: ProcessorId, _b: Bit, _c: &SystemConfig) -> Box<dyn Protocol> {
                Box::new(Ring { hops_left: 10 })
            }
        }
        let cfg = SystemConfig::new(3, 0).unwrap();
        let inputs = InputAssignment::unanimous(3, Bit::One);
        let outcome = run_async(
            cfg,
            inputs,
            &RingBuilder,
            &mut FairAsyncAdversary::default(),
            1,
            RunLimits::small(),
        );
        assert!(outcome.any_decided());
        // The token is forwarded 9 times after the initial send; the deciding
        // processor's causal depth is the full chain of 10 messages.
        assert_eq!(outcome.longest_chain, 10);
    }
}

//! The fully asynchronous engine: crash and Byzantine failures under
//! adversarial scheduling (the model of Section 5 of the paper).
//!
//! The adversary chooses one step at a time: deliver a specific buffered
//! message, crash a processor, corrupt an in-flight message of a corrupted
//! processor, or halt. The only structural constraint (enforced by the shared
//! [`ExecutionCore`](crate::ExecutionCore)) is the fault budget: at most `t`
//! processors may be crashed or corrupted over the whole execution. Liveness
//! ("all messages to correct processors are eventually delivered") is the
//! adversary implementation's responsibility; the run limits bound how long
//! we wait.
//!
//! Running time in this model is measured as the length of the longest
//! *message chain* preceding the first decision: a chain `m_1, ..., m_k` where
//! `m_i` is received by the sender of `m_{i+1}` before `m_{i+1}` is sent. The
//! core tags every buffered message with its causal depth to compute this
//! exactly.
//!
//! [`AsyncEngine`] is a thin alias of the generic [`Engine`](crate::Engine)
//! facade bound to [`AsyncModel`]: all mechanics live in the shared core and
//! the per-message scheduling in
//! [`AsyncScheduler`](crate::exec::AsyncScheduler).

use agreement_model::{FullTrace, InputAssignment, ProtocolBuilder, Recorder, SystemConfig};

use crate::adversary::AsyncAdversary;
use crate::engine::{AsyncModel, Engine};
use crate::exec::{AsyncScheduler, Scheduler};
use crate::metrics::{NoProbe, Probe};
use crate::outcome::{RunLimits, RunOutcome};

/// An execution of the fully asynchronous model with crash/Byzantine faults:
/// the generic [`Engine`] facade bound to [`AsyncModel`].
pub type AsyncEngine<P = NoProbe, R = FullTrace> = Engine<AsyncModel, P, R>;

impl<P: Probe, R: Recorder> Engine<AsyncModel, P, R> {
    /// Number of adversary steps taken so far.
    pub fn steps_elapsed(&self) -> u64 {
        self.time()
    }

    /// Executes one adversary-chosen step. Returns `false` once the execution
    /// has halted (adversary gave up) — further calls do nothing.
    pub fn step(&mut self, adversary: &mut dyn AsyncAdversary) -> bool {
        AsyncScheduler::new(adversary).step(self.core_mut())
    }
}

/// Convenience: build a fresh trace-keeping core, run it against `adversary`,
/// return the outcome. Equivalent to driving an [`AsyncEngine`].
pub fn run_async(
    cfg: SystemConfig,
    inputs: InputAssignment,
    builder: &dyn ProtocolBuilder,
    adversary: &mut dyn AsyncAdversary,
    master_seed: u64,
    limits: RunLimits,
) -> RunOutcome {
    let mut core = crate::exec::ExecutionCore::new(cfg, inputs, builder, master_seed);
    let mut scheduler = AsyncScheduler::new(adversary);
    core.run(&mut scheduler, limits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{AsyncAction, FairAsyncAdversary, SystemView};
    use agreement_model::{Bit, Context, Payload, ProcessorId, Protocol, StateDigest};

    /// Waits for `n - t` round-1 reports (its own included) and decides the
    /// majority value among them.
    #[derive(Debug)]
    struct QuorumMajority {
        input: Bit,
        zeros: usize,
        ones: usize,
        quorum: usize,
        decided: Option<Bit>,
    }

    impl Protocol for QuorumMajority {
        fn on_start(&mut self, ctx: &mut dyn Context) {
            ctx.broadcast(Payload::Report {
                round: 1,
                value: self.input,
            });
        }

        fn on_message(&mut self, _from: ProcessorId, payload: &Payload, ctx: &mut dyn Context) {
            if self.decided.is_some() {
                return;
            }
            if let Payload::Report { round: 1, value } = payload {
                match value {
                    Bit::Zero => self.zeros += 1,
                    Bit::One => self.ones += 1,
                }
                if self.zeros + self.ones >= self.quorum {
                    let v = if self.ones >= self.zeros {
                        Bit::One
                    } else {
                        Bit::Zero
                    };
                    self.decided = Some(v);
                    ctx.decide(v);
                }
            }
        }

        fn digest(&self) -> StateDigest {
            StateDigest {
                round: Some(1),
                estimate: Some(self.input),
                decided: self.decided,
                reset_count: 0,
                phase: "quorum-majority",
            }
        }
    }

    #[derive(Debug)]
    struct QuorumBuilder;

    impl ProtocolBuilder for QuorumBuilder {
        fn name(&self) -> &'static str {
            "quorum-majority"
        }

        fn build(&self, _id: ProcessorId, input: Bit, cfg: &SystemConfig) -> Box<dyn Protocol> {
            Box::new(QuorumMajority {
                input,
                zeros: 0,
                ones: 0,
                quorum: cfg.quorum(),
                decided: None,
            })
        }
    }

    #[test]
    fn fair_schedule_reaches_decision_for_unanimous_inputs() {
        let cfg = SystemConfig::new(5, 1).unwrap();
        let inputs = InputAssignment::unanimous(5, Bit::Zero);
        let outcome = run_async(
            cfg,
            inputs.clone(),
            &QuorumBuilder,
            &mut FairAsyncAdversary::default(),
            42,
            RunLimits::small(),
        );
        assert!(outcome.all_correct_decided());
        assert_eq!(outcome.decided_value(), Some(Bit::Zero));
        assert!(outcome.is_correct(&inputs));
        assert!(outcome.longest_chain >= 1);
        assert!(!outcome.halted_by_adversary);
    }

    #[test]
    fn crash_budget_is_enforced() {
        struct CrashHappy {
            next: usize,
            inner: FairAsyncAdversary,
        }
        impl AsyncAdversary for CrashHappy {
            fn name(&self) -> &'static str {
                "crash-happy"
            }
            fn next_action(&mut self, view: &SystemView<'_>) -> AsyncAction {
                if self.next < view.n() {
                    let id = ProcessorId::new(self.next);
                    self.next += 1;
                    AsyncAction::Crash(id)
                } else {
                    self.inner.next_action(view)
                }
            }
        }
        let cfg = SystemConfig::new(5, 1).unwrap();
        let inputs = InputAssignment::unanimous(5, Bit::One);
        let mut engine = AsyncEngine::new(cfg, inputs, &QuorumBuilder, 9);
        let mut adv = CrashHappy {
            next: 0,
            inner: FairAsyncAdversary::default(),
        };
        let outcome = engine.run(&mut adv, RunLimits::small());
        // Only one crash may be charged; the rest are ignored (and logged).
        assert_eq!(outcome.crashes_performed, 1);
        assert_eq!(outcome.crashed.iter().filter(|&&c| c).count(), 1);
        // The remaining four processors still decide.
        assert!(outcome.all_correct_decided());
        assert_eq!(outcome.decided_value(), Some(Bit::One));
    }

    #[test]
    fn corruption_requires_prior_corrupt_processor_declaration() {
        struct OneCorruption {
            declared: bool,
            corrupted_once: bool,
            inner: FairAsyncAdversary,
        }
        impl AsyncAdversary for OneCorruption {
            fn name(&self) -> &'static str {
                "one-corruption"
            }
            fn next_action(&mut self, view: &SystemView<'_>) -> AsyncAction {
                if !self.declared {
                    self.declared = true;
                    return AsyncAction::CorruptProcessor(ProcessorId::new(0));
                }
                if !self.corrupted_once {
                    self.corrupted_once = true;
                    return AsyncAction::Corrupt {
                        from: ProcessorId::new(0),
                        to: ProcessorId::new(1),
                        payload: Payload::Report {
                            round: 1,
                            value: Bit::Zero,
                        },
                    };
                }
                self.inner.next_action(view)
            }
        }
        let cfg = SystemConfig::new(4, 1).unwrap();
        // Inputs: 3 ones, 1 zero — a corrupted lie of `Zero` cannot flip the majority.
        let inputs = InputAssignment::split_at(4, 1);
        let mut engine = AsyncEngine::new(cfg, inputs.clone(), &QuorumBuilder, 3);
        let mut adv = OneCorruption {
            declared: false,
            corrupted_once: false,
            inner: FairAsyncAdversary::default(),
        };
        let outcome = engine.run(&mut adv, RunLimits::small());
        assert!(outcome.all_correct_decided());
        assert_eq!(outcome.trace.corruption_count(), 1);
        assert!(outcome.agreement_holds());
        assert!(outcome.validity_holds(&inputs));
    }

    #[test]
    fn halting_adversary_stops_the_run_without_decisions() {
        struct Lazy;
        impl AsyncAdversary for Lazy {
            fn name(&self) -> &'static str {
                "lazy"
            }
            fn next_action(&mut self, _view: &SystemView<'_>) -> AsyncAction {
                AsyncAction::Halt
            }
        }
        let cfg = SystemConfig::new(3, 0).unwrap();
        let inputs = InputAssignment::unanimous(3, Bit::One);
        let outcome = run_async(
            cfg,
            inputs,
            &QuorumBuilder,
            &mut Lazy,
            1,
            RunLimits::small(),
        );
        assert!(outcome.halted_by_adversary);
        assert!(!outcome.any_decided());
        assert_eq!(outcome.duration, 1);
    }

    #[test]
    fn message_chains_grow_with_protocol_depth() {
        /// Each processor forwards a token around a ring `k` times before deciding.
        #[derive(Debug)]
        struct Ring {
            hops_left: u64,
        }
        impl Protocol for Ring {
            fn on_start(&mut self, ctx: &mut dyn Context) {
                if ctx.id().index() == 0 {
                    let next = ProcessorId::new(1 % ctx.config().n());
                    ctx.send(next, Payload::Opaque(vec![0]));
                }
            }
            fn on_message(&mut self, _from: ProcessorId, payload: &Payload, ctx: &mut dyn Context) {
                if let Payload::Opaque(bytes) = payload {
                    self.hops_left = self.hops_left.saturating_sub(1);
                    if bytes[0] >= 9 {
                        ctx.decide(Bit::One);
                        return;
                    }
                    let next = ProcessorId::new((ctx.id().index() + 1) % ctx.config().n());
                    ctx.send(next, Payload::Opaque(vec![bytes[0] + 1]));
                }
            }
            fn digest(&self) -> StateDigest {
                StateDigest::initial(Bit::One)
            }
        }
        #[derive(Debug)]
        struct RingBuilder;
        impl ProtocolBuilder for RingBuilder {
            fn name(&self) -> &'static str {
                "ring"
            }
            fn build(&self, _i: ProcessorId, _b: Bit, _c: &SystemConfig) -> Box<dyn Protocol> {
                Box::new(Ring { hops_left: 10 })
            }
        }
        let cfg = SystemConfig::new(3, 0).unwrap();
        let inputs = InputAssignment::unanimous(3, Bit::One);
        let outcome = run_async(
            cfg,
            inputs,
            &RingBuilder,
            &mut FairAsyncAdversary::default(),
            1,
            RunLimits::small(),
        );
        assert!(outcome.any_decided());
        // The token is forwarded 9 times after the initial send; the deciding
        // processor's causal depth is the full chain of 10 messages.
        assert_eq!(outcome.longest_chain, 10);
    }

    #[test]
    fn stepwise_and_run_produce_identical_outcomes() {
        let cfg = SystemConfig::new(5, 1).unwrap();
        let inputs = InputAssignment::evenly_split(5);
        let run_outcome = run_async(
            cfg,
            inputs.clone(),
            &QuorumBuilder,
            &mut FairAsyncAdversary::default(),
            17,
            RunLimits::small(),
        );
        let mut engine = AsyncEngine::new(cfg, inputs, &QuorumBuilder, 17);
        let mut adversary = FairAsyncAdversary::default();
        while !engine.all_correct_decided()
            && engine.steps_elapsed() < RunLimits::small().max_steps
            && engine.step(&mut adversary)
        {}
        let stepped = engine.outcome();
        assert_eq!(stepped.decisions, run_outcome.decisions);
        assert_eq!(stepped.duration, run_outcome.duration);
        assert_eq!(stepped.first_decision_at, run_outcome.first_decision_at);
        assert_eq!(stepped.all_decided_at, run_outcome.all_decided_at);
        assert_eq!(stepped.longest_chain, run_outcome.longest_chain);
        assert_eq!(stepped.messages_sent, run_outcome.messages_sent);
        assert_eq!(stepped.messages_delivered, run_outcome.messages_delivered);
    }
}

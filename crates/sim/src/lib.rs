//! Adversary-controlled simulation of asynchronous message-passing agreement.
//!
//! This crate is the execution substrate of the reproduction of Lewko & Lewko
//! (PODC 2013). Every execution model shares one substrate — the
//! [`ExecutionCore`] of the [`exec`] module, which owns processor harnesses,
//! the in-flight [`MessageBuffer`], decision/validity tracking, trace emission
//! and limit enforcement — while a pluggable [`Scheduler`] supplies what
//! differs between models. The execution-model axis itself is **open**: a
//! model is a [`Scheduler`] plus an [`ExecutionModel`] marker with a runtime
//! [`ModelDescriptor`], and the generic [`Engine`] facade drives any of them.
//! Three models ship, as thin aliases over [`Engine`]:
//!
//! * [`WindowEngine`] — the **strongly adaptive model** of Section 2: the
//!   execution is a sequence of *acceptable windows* ([`Window`],
//!   Definition 1), each consisting of sending steps for all processors,
//!   receiving steps from at least `n - t` senders per processor, and at most
//!   `t` resetting steps. Running time is measured in windows.
//! * [`AsyncEngine`] — the **fully asynchronous model** of Section 5: the
//!   adversary schedules individual message deliveries and may cause up to `t`
//!   crash (or Byzantine) failures. Running time is measured as the longest
//!   message chain preceding the first decision.
//! * [`PartialSyncEngine`] — the **partial-synchrony model** (eventual
//!   synchrony with omission faults): the adversary schedules freely before
//!   its chosen GST; afterwards every pending message is force-delivered
//!   within its declared bound Δ, except messages from up to `t`
//!   omission-faulty senders. This is the "weaker adversary" side of the
//!   paper's dichotomy.
//!
//! Adversaries implement [`WindowAdversary`], [`AsyncAdversary`] or
//! [`PartialSyncAdversary`] and are given a [`SystemView`] exposing every
//! processor state digest and every in-flight message — the full-information
//! assumption of the paper. Concrete adversary strategies (strongly adaptive
//! resetting, split-vote balancing, crash scheduling, GST procrastination, …)
//! live in the `agreement-adversary` crate; this crate only ships the benign
//! baselines [`FullDeliveryAdversary`], [`FairAsyncAdversary`] and
//! [`BenignEventualAdversary`].
//!
//! # Example
//!
//! ```
//! use agreement_model::{Bit, InputAssignment, SystemConfig};
//! use agreement_sim::{run_windowed, FullDeliveryAdversary, RunLimits};
//! # use agreement_model::{Context, Payload, Protocol, ProtocolBuilder, ProcessorId, StateDigest};
//! # #[derive(Debug)]
//! # struct Trivial { input: Bit }
//! # impl Protocol for Trivial {
//! #     fn on_start(&mut self, ctx: &mut dyn Context) { ctx.decide(self.input); }
//! #     fn on_message(&mut self, _f: ProcessorId, _p: &Payload, _c: &mut dyn Context) {}
//! #     fn digest(&self) -> StateDigest { StateDigest::initial(self.input) }
//! # }
//! # #[derive(Debug)]
//! # struct TrivialBuilder;
//! # impl ProtocolBuilder for TrivialBuilder {
//! #     fn name(&self) -> &'static str { "trivial" }
//! #     fn build(&self, _id: ProcessorId, input: Bit, _cfg: &SystemConfig) -> Box<dyn Protocol> {
//! #         Box::new(Trivial { input })
//! #     }
//! # }
//!
//! let cfg = SystemConfig::new(4, 0)?;
//! let inputs = InputAssignment::unanimous(4, Bit::One);
//! let outcome = run_windowed(
//!     cfg,
//!     inputs.clone(),
//!     &TrivialBuilder,
//!     &mut FullDeliveryAdversary,
//!     42,
//!     RunLimits::small(),
//! );
//! assert!(outcome.is_correct(&inputs));
//! # Ok::<(), agreement_model::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod adversary;
mod async_engine;
mod buffer;
mod engine;
pub mod exec;
mod harness;
mod metrics;
mod outcome;
mod partial_sync_engine;
mod window;
mod window_engine;
mod workspace;

pub use adversary::{
    AsyncAction, AsyncAdversary, BenignEventualAdversary, FairAsyncAdversary,
    FullDeliveryAdversary, PartialSyncAction, PartialSyncAdversary, SystemView, WindowAdversary,
};
pub use agreement_model::{FullTrace, NoTrace, Recorder};
pub use async_engine::{run_async, AsyncEngine};
pub use buffer::{BufferChoice, MessageBuffer, PayloadRef, PoppedPayload};
pub use engine::{
    find_model, model_registry, AsyncModel, BuiltAdversary, Engine, ExecutionModel,
    ModelDescriptor, PartialSyncModel, WindowModel, ASYNC, PARTIAL_SYNC, WINDOWED,
};
pub use exec::{AsyncScheduler, ExecutionCore, PartialSyncScheduler, Scheduler, WindowScheduler};
pub use harness::{HarnessCore, Outgoing, ProcessorHarness};
pub use metrics::{Metrics, MetricsProbe, NoProbe, Probe};
pub use outcome::{RunLimits, RunOutcome};
pub use partial_sync_engine::{run_partial_sync, PartialSyncEngine};
pub use window::{Window, WindowError};
pub use window_engine::{run_windowed, WindowEngine};
pub use workspace::TrialWorkspace;

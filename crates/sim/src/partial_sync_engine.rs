//! The partial-synchrony engine: eventual synchrony with omission faults,
//! the "curtailed adversary" counterpart to the paper's two strong models.
//!
//! The adversary schedules freely (deliver, crash, stall) before its chosen
//! global stabilization time; from GST on, the
//! [`PartialSyncScheduler`](crate::exec::PartialSyncScheduler) *enforces*
//! delivery of every pending message within the adversary's declared bound Δ
//! — the adversary may still omit messages from up to `t` senders, and
//! nothing more. [`PartialSyncEngine`] is a thin alias of the generic
//! [`Engine`](crate::Engine) facade bound to [`PartialSyncModel`].
//!
//! Running time is measured in steps and the chain metric is the causal
//! depth at the first decision — the same scale as the fully asynchronous
//! model, so "strong adversary vs curtailed adversary" comparisons are
//! direct.

use agreement_model::{FullTrace, InputAssignment, ProtocolBuilder, Recorder, SystemConfig};

use crate::adversary::PartialSyncAdversary;
use crate::engine::{Engine, PartialSyncModel};
use crate::exec::PartialSyncScheduler;
use crate::metrics::{NoProbe, Probe};
use crate::outcome::{RunLimits, RunOutcome};

/// An execution of the partial-synchrony model: the generic [`Engine`]
/// facade bound to [`PartialSyncModel`].
pub type PartialSyncEngine<P = NoProbe, R = FullTrace> = Engine<PartialSyncModel, P, R>;

impl<P: Probe, R: Recorder> Engine<PartialSyncModel, P, R> {
    /// Number of adversary steps taken so far.
    pub fn steps_elapsed(&self) -> u64 {
        self.time()
    }

    /// Executes one partial-synchrony step: discretionary adversary action
    /// plus the scheduler's post-GST bounded-delay enforcement. Returns
    /// `false` once the execution has halted.
    pub fn step(&mut self, adversary: &mut dyn PartialSyncAdversary) -> bool {
        PartialSyncScheduler::new(adversary).step_partial_sync(self.core_mut())
    }
}

/// Convenience: build a fresh trace-keeping core, run it against `adversary`,
/// return the outcome. Equivalent to driving a [`PartialSyncEngine`].
pub fn run_partial_sync(
    cfg: SystemConfig,
    inputs: InputAssignment,
    builder: &dyn ProtocolBuilder,
    adversary: &mut dyn PartialSyncAdversary,
    master_seed: u64,
    limits: RunLimits,
) -> RunOutcome {
    let mut core = crate::exec::ExecutionCore::new(cfg, inputs, builder, master_seed);
    let mut scheduler = PartialSyncScheduler::new(adversary);
    core.run(&mut scheduler, limits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{
        BenignEventualAdversary, PartialSyncAction, PartialSyncAdversary, SystemView,
    };
    use agreement_model::{Bit, Context, Payload, ProcessorId, Protocol, StateDigest};

    /// Waits for `n - t` round-1 reports (its own included) and decides the
    /// majority value among them.
    #[derive(Debug)]
    struct QuorumMajority {
        input: Bit,
        zeros: usize,
        ones: usize,
        quorum: usize,
        decided: Option<Bit>,
    }

    impl Protocol for QuorumMajority {
        fn on_start(&mut self, ctx: &mut dyn Context) {
            ctx.broadcast(Payload::Report {
                round: 1,
                value: self.input,
            });
        }

        fn on_message(&mut self, _from: ProcessorId, payload: &Payload, ctx: &mut dyn Context) {
            if self.decided.is_some() {
                return;
            }
            if let Payload::Report { round: 1, value } = payload {
                match value {
                    Bit::Zero => self.zeros += 1,
                    Bit::One => self.ones += 1,
                }
                if self.zeros + self.ones >= self.quorum {
                    let v = if self.ones >= self.zeros {
                        Bit::One
                    } else {
                        Bit::Zero
                    };
                    self.decided = Some(v);
                    ctx.decide(v);
                }
            }
        }

        fn digest(&self) -> StateDigest {
            StateDigest {
                round: Some(1),
                estimate: Some(self.input),
                decided: self.decided,
                reset_count: 0,
                phase: "quorum-majority",
            }
        }
    }

    #[derive(Debug)]
    struct QuorumBuilder;

    impl ProtocolBuilder for QuorumBuilder {
        fn name(&self) -> &'static str {
            "quorum-majority"
        }

        fn build(&self, _id: ProcessorId, input: Bit, cfg: &SystemConfig) -> Box<dyn Protocol> {
            Box::new(QuorumMajority {
                input,
                zeros: 0,
                ones: 0,
                quorum: cfg.quorum(),
                decided: None,
            })
        }
    }

    /// Stalls forever with the given parameters: every delivery that happens
    /// is the scheduler's enforcement, never the adversary's choice.
    struct Stonewall {
        gst: u64,
        delta: u64,
        omitted: Vec<ProcessorId>,
    }

    impl PartialSyncAdversary for Stonewall {
        fn name(&self) -> &'static str {
            "stonewall"
        }
        fn gst(&self) -> u64 {
            self.gst
        }
        fn delta(&self) -> u64 {
            self.delta
        }
        fn omitted_senders(&self) -> &[ProcessorId] {
            &self.omitted
        }
        fn next_action(&mut self, _view: &SystemView<'_>) -> PartialSyncAction {
            PartialSyncAction::Stall
        }
    }

    #[test]
    fn benign_eventual_schedule_reaches_decision() {
        let cfg = SystemConfig::new(5, 1).unwrap();
        let inputs = InputAssignment::unanimous(5, Bit::Zero);
        let outcome = run_partial_sync(
            cfg,
            inputs.clone(),
            &QuorumBuilder,
            &mut BenignEventualAdversary::default(),
            42,
            RunLimits::small(),
        );
        assert!(outcome.all_correct_decided());
        assert_eq!(outcome.decided_value(), Some(Bit::Zero));
        assert!(outcome.is_correct(&inputs));
        assert!(outcome.longest_chain >= 1);
    }

    #[test]
    fn the_model_forces_decisions_out_of_a_stonewalling_adversary() {
        // The adversary never delivers anything by choice. After GST the
        // bounded-delay enforcement delivers the backlog regardless, so the
        // quorum protocol still terminates — this is exactly the curtailment
        // the partial-synchrony model exists to demonstrate.
        let cfg = SystemConfig::new(5, 1).unwrap();
        let inputs = InputAssignment::unanimous(5, Bit::One);
        let mut adversary = Stonewall {
            gst: 40,
            delta: 5,
            omitted: Vec::new(),
        };
        let outcome = run_partial_sync(
            cfg,
            inputs.clone(),
            &QuorumBuilder,
            &mut adversary,
            7,
            RunLimits::small(),
        );
        assert!(outcome.all_correct_decided());
        assert!(outcome.is_correct(&inputs));
        // Nothing can be delivered before GST, so no decision before it; the
        // first batch of forced deliveries lands at gst + delta.
        assert!(outcome.first_decision_at.unwrap() >= 45);
        assert!(
            outcome.all_decided_at.unwrap() <= 60,
            "decided soon after GST"
        );
    }

    #[test]
    fn before_gst_nothing_is_forced() {
        let cfg = SystemConfig::new(4, 1).unwrap();
        let inputs = InputAssignment::unanimous(4, Bit::One);
        let mut engine = PartialSyncEngine::new(cfg, inputs, &QuorumBuilder, 3);
        let mut adversary = Stonewall {
            gst: 1_000,
            delta: 1,
            omitted: Vec::new(),
        };
        for _ in 0..50 {
            assert!(engine.step(&mut adversary));
        }
        // All 16 initial broadcasts are still pending: the adversary's
        // pre-GST freedom to withhold is intact.
        assert_eq!(engine.core().buffer().pending_total(), 16);
        assert!(!engine.all_correct_decided());
    }

    #[test]
    fn omission_faults_are_honoured_but_capped_at_t() {
        // The adversary declares three omitted senders with t = 1: only the
        // first is honoured, so n - 1 = 4 senders still reach everyone and
        // the quorum of 4 is met.
        let cfg = SystemConfig::new(5, 1).unwrap();
        let inputs = InputAssignment::unanimous(5, Bit::Zero);
        let mut adversary = Stonewall {
            gst: 0,
            delta: 3,
            omitted: vec![
                ProcessorId::new(0),
                ProcessorId::new(1),
                ProcessorId::new(2),
            ],
        };
        let outcome = run_partial_sync(
            cfg,
            inputs.clone(),
            &QuorumBuilder,
            &mut adversary,
            11,
            RunLimits::small(),
        );
        assert!(outcome.all_correct_decided());
        assert!(outcome.is_correct(&inputs));
        // Processor 0's five messages were omitted (never delivered), and
        // only those: the other 20 initial reports all arrived.
        assert_eq!(outcome.messages_delivered, 20);
    }

    #[test]
    fn stepwise_and_run_produce_identical_outcomes() {
        let cfg = SystemConfig::new(5, 1).unwrap();
        let inputs = InputAssignment::evenly_split(5);
        let run_outcome = run_partial_sync(
            cfg,
            inputs.clone(),
            &QuorumBuilder,
            &mut BenignEventualAdversary::default(),
            17,
            RunLimits::small(),
        );
        let mut engine = PartialSyncEngine::new(cfg, inputs, &QuorumBuilder, 17);
        let mut adversary = BenignEventualAdversary::default();
        while !engine.all_correct_decided()
            && engine.steps_elapsed() < RunLimits::small().max_steps
            && engine.step(&mut adversary)
        {}
        let stepped = engine.outcome();
        assert_eq!(stepped.decisions, run_outcome.decisions);
        assert_eq!(stepped.duration, run_outcome.duration);
        assert_eq!(stepped.first_decision_at, run_outcome.first_decision_at);
        assert_eq!(stepped.all_decided_at, run_outcome.all_decided_at);
        assert_eq!(stepped.longest_chain, run_outcome.longest_chain);
        assert_eq!(stepped.messages_sent, run_outcome.messages_sent);
        assert_eq!(stepped.messages_delivered, run_outcome.messages_delivered);
    }
}

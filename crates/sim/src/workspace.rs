//! Reusable per-worker trial state for campaign runners.
//!
//! A campaign runs thousands of seeded trials, each of which used to build a
//! brand-new [`ExecutionCore`](crate::ExecutionCore): a harness vector, an
//! `n * n` flat channel array, a payload arena and assorted scratch vectors —
//! allocated, warmed up, and thrown away per trial. A [`TrialWorkspace`] is
//! the retained version of all of that: each campaign worker thread owns one
//! and runs every trial it claims inside it, so the allocations of trial `k`
//! are the warm starting point of trial `k + 1`
//! ([`ExecutionCore::reinit`](crate::ExecutionCore::reinit) re-initializes
//! the state in place).
//!
//! The workspace runs its executions with
//! [`NoTrace`](agreement_model::NoTrace): campaign trials are distilled into
//! records and their traces dropped unread, so the trace is never built in
//! the first place — every per-message trace push monomorphizes away. The
//! results are **bit-identical** to the trace-keeping, allocate-per-trial
//! path (`run_windowed` / `run_async`) in every field except the trace
//! itself; the equivalence tests pin that down across both schedulers.

use agreement_model::{InputAssignment, NoTrace, ProtocolBuilder, SystemConfig};

use crate::adversary::{AsyncAdversary, PartialSyncAdversary, WindowAdversary};
use crate::buffer::BufferChoice;
use crate::engine::BuiltAdversary;
use crate::exec::{AsyncScheduler, ExecutionCore, PartialSyncScheduler, WindowScheduler};
use crate::metrics::NoProbe;
use crate::outcome::{RunLimits, RunOutcome};

/// One worker's reusable execution state: a trace-free [`ExecutionCore`]
/// whose allocations persist across trials.
#[derive(Debug, Default)]
pub struct TrialWorkspace {
    /// Created lazily by the first trial, re-initialized in place by every
    /// trial after it.
    core: Option<ExecutionCore<NoProbe, NoTrace>>,
    /// The channel layout applied to the core before every trial.
    buffer_choice: BufferChoice,
}

impl TrialWorkspace {
    /// An empty workspace; the first trial pays the one-time construction.
    pub fn new() -> Self {
        TrialWorkspace::default()
    }

    /// Sets the channel layout policy every subsequent trial runs under.
    /// The default, [`BufferChoice::Auto`], picks dense channels for small
    /// systems and the sparse fabric for large ones.
    pub fn set_buffer_choice(&mut self, choice: BufferChoice) {
        self.buffer_choice = choice;
    }

    /// The core, re-initialized for a fresh trial with the given parameters.
    fn core_for(
        &mut self,
        cfg: SystemConfig,
        inputs: &InputAssignment,
        builder: &dyn ProtocolBuilder,
        master_seed: u64,
    ) -> &mut ExecutionCore<NoProbe, NoTrace> {
        match &mut self.core {
            Some(core) => core.reinit(cfg, inputs, builder, master_seed),
            slot @ None => {
                *slot = Some(ExecutionCore::with_parts(
                    cfg,
                    inputs.clone(),
                    builder,
                    master_seed,
                    NoProbe,
                    NoTrace,
                ));
            }
        }
        let core = self.core.as_mut().expect("workspace core just initialized");
        core.set_buffer_choice(self.buffer_choice);
        core
    }

    /// Runs one windowed (strongly adaptive) trial inside this workspace.
    /// Same results as [`run_windowed`](crate::run_windowed), minus the
    /// trace; no per-trial allocation of core state.
    pub fn run_windowed(
        &mut self,
        cfg: SystemConfig,
        inputs: &InputAssignment,
        builder: &dyn ProtocolBuilder,
        adversary: &mut dyn WindowAdversary,
        master_seed: u64,
        limits: RunLimits,
    ) -> RunOutcome {
        let core = self.core_for(cfg, inputs, builder, master_seed);
        let mut scheduler = WindowScheduler::new(adversary);
        core.run(&mut scheduler, limits)
    }

    /// Runs one asynchronous trial inside this workspace. Same results as
    /// [`run_async`](crate::run_async), minus the trace; no per-trial
    /// allocation of core state.
    pub fn run_async(
        &mut self,
        cfg: SystemConfig,
        inputs: &InputAssignment,
        builder: &dyn ProtocolBuilder,
        adversary: &mut dyn AsyncAdversary,
        master_seed: u64,
        limits: RunLimits,
    ) -> RunOutcome {
        let core = self.core_for(cfg, inputs, builder, master_seed);
        let mut scheduler = AsyncScheduler::new(adversary);
        core.run(&mut scheduler, limits)
    }

    /// Runs one partial-synchrony trial inside this workspace. Same results
    /// as [`run_partial_sync`](crate::run_partial_sync), minus the trace; no
    /// per-trial allocation of core state.
    pub fn run_partial_sync(
        &mut self,
        cfg: SystemConfig,
        inputs: &InputAssignment,
        builder: &dyn ProtocolBuilder,
        adversary: &mut dyn PartialSyncAdversary,
        master_seed: u64,
        limits: RunLimits,
    ) -> RunOutcome {
        let core = self.core_for(cfg, inputs, builder, master_seed);
        let mut scheduler = PartialSyncScheduler::new(adversary);
        core.run(&mut scheduler, limits)
    }

    /// Runs one trial of *any* execution model inside this workspace: the
    /// model-agnostic entry point campaign workers use. The
    /// [`BuiltAdversary`] carries its own scheduler glue, so no caller ever
    /// matches on the model.
    pub fn run_built(
        &mut self,
        cfg: SystemConfig,
        inputs: &InputAssignment,
        builder: &dyn ProtocolBuilder,
        adversary: &mut BuiltAdversary,
        master_seed: u64,
        limits: RunLimits,
    ) -> RunOutcome {
        let core = self.core_for(cfg, inputs, builder, master_seed);
        adversary.run(core, limits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{FairAsyncAdversary, FullDeliveryAdversary};
    use crate::async_engine::run_async;
    use crate::window_engine::run_windowed;
    use agreement_model::{Bit, Context, Payload, ProcessorId, Protocol, StateDigest, Trace};

    /// Decides the majority value once it has heard a round-1 report from
    /// everyone (ties -> One).
    #[derive(Debug)]
    struct MajorityOnce {
        input: Bit,
        zeros: usize,
        ones: usize,
        n: usize,
    }

    impl Protocol for MajorityOnce {
        fn on_start(&mut self, ctx: &mut dyn Context) {
            ctx.broadcast(Payload::Report {
                round: 1,
                value: self.input,
            });
        }

        fn on_message(&mut self, _from: ProcessorId, payload: &Payload, ctx: &mut dyn Context) {
            if let Payload::Report { round: 1, value } = payload {
                match value {
                    Bit::Zero => self.zeros += 1,
                    Bit::One => self.ones += 1,
                }
                if self.zeros + self.ones == self.n {
                    ctx.decide(if self.ones >= self.zeros {
                        Bit::One
                    } else {
                        Bit::Zero
                    });
                }
            }
        }

        fn digest(&self) -> StateDigest {
            StateDigest::initial(self.input)
        }
    }

    #[derive(Debug)]
    struct MajorityBuilder;

    impl ProtocolBuilder for MajorityBuilder {
        fn name(&self) -> &'static str {
            "majority-once"
        }

        fn build(&self, _id: ProcessorId, input: Bit, cfg: &SystemConfig) -> Box<dyn Protocol> {
            Box::new(MajorityOnce {
                input,
                zeros: 0,
                ones: 0,
                n: cfg.n(),
            })
        }
    }

    fn strip_trace(mut outcome: RunOutcome) -> RunOutcome {
        outcome.trace = Trace::new();
        outcome
    }

    #[test]
    fn reused_workspace_matches_fresh_runs_across_seeds() {
        let cfg = SystemConfig::new(5, 0).unwrap();
        let inputs = InputAssignment::evenly_split(5);
        let mut ws = TrialWorkspace::new();
        for seed in 0..6 {
            let reused = ws.run_windowed(
                cfg,
                &inputs,
                &MajorityBuilder,
                &mut FullDeliveryAdversary,
                seed,
                RunLimits::small(),
            );
            let fresh = run_windowed(
                cfg,
                inputs.clone(),
                &MajorityBuilder,
                &mut FullDeliveryAdversary,
                seed,
                RunLimits::small(),
            );
            assert!(
                reused.trace.total_events() == 0,
                "workspace runs are trace-free"
            );
            assert_eq!(reused, strip_trace(fresh), "seed {seed}");
        }
    }

    #[test]
    fn workspace_alternates_models_without_state_leaking() {
        let cfg = SystemConfig::new(4, 0).unwrap();
        let inputs = InputAssignment::unanimous(4, Bit::One);
        let mut ws = TrialWorkspace::new();
        for seed in [3u64, 9, 27] {
            let windowed = ws.run_windowed(
                cfg,
                &inputs,
                &MajorityBuilder,
                &mut FullDeliveryAdversary,
                seed,
                RunLimits::small(),
            );
            let asynchronous = ws.run_async(
                cfg,
                &inputs,
                &MajorityBuilder,
                &mut FairAsyncAdversary::default(),
                seed,
                RunLimits::small(),
            );
            assert_eq!(
                windowed,
                strip_trace(run_windowed(
                    cfg,
                    inputs.clone(),
                    &MajorityBuilder,
                    &mut FullDeliveryAdversary,
                    seed,
                    RunLimits::small(),
                ))
            );
            assert_eq!(
                asynchronous,
                strip_trace(run_async(
                    cfg,
                    inputs.clone(),
                    &MajorityBuilder,
                    &mut FairAsyncAdversary::default(),
                    seed,
                    RunLimits::small(),
                ))
            );
            assert_eq!(windowed.metrics.steps, 0);
            assert_eq!(asynchronous.metrics.windows, 0);
        }
    }

    #[test]
    fn workspace_handles_changing_system_sizes() {
        let mut ws = TrialWorkspace::new();
        for n in [3usize, 7, 5] {
            let cfg = SystemConfig::new(n, 0).unwrap();
            let inputs = InputAssignment::unanimous(n, Bit::Zero);
            let outcome = ws.run_windowed(
                cfg,
                &inputs,
                &MajorityBuilder,
                &mut FullDeliveryAdversary,
                1,
                RunLimits::small(),
            );
            assert_eq!(outcome.decisions.len(), n);
            assert!(outcome.all_correct_decided());
            assert_eq!(outcome.messages_sent, (n * n) as u64);
        }
    }
}
